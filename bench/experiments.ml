(* Reproduction of every table and figure in the paper's evaluation
   (see DESIGN.md §4 for the experiment index and the expected shapes,
   and EXPERIMENTS.md for recorded results). *)

open Legodb

let params = Cost.default_params

let annotated stats = Annotate.schema stats Imdb.Schema.schema

(* cost of one query under a configuration; indexes are granted for the
   equality columns of the whole workload being studied, uniformly
   across configurations *)
let query_costs ?(workload_indexes = false) schema queries =
  match Mapping.of_pschema schema with
  | Error es -> failwith (String.concat "; " es)
  | Ok m ->
      let translated = List.map (Xq_translate.translate m) queries in
      (* keys and foreign keys only by default, as the mapping generates
         them; experiments where the paper says selections "can be
         pushed" grant indexes on the workload's equality columns *)
      let catalog =
        if workload_indexes then
          Rschema.add_indexes m.Mapping.catalog
            (Xq_translate.equality_columns translated)
        else m.Mapping.catalog
      in
      List.map (fun q -> snd (Optimizer.query_cost ~params catalog q)) translated

let workload_cost schema w = Search.pschema_cost ~params ~workload:w schema

(* ------------------------------------------------------------------ *)
(* configurations                                                      *)
(* ------------------------------------------------------------------ *)

let all_inlined stats = Init.all_inlined (annotated stats)

let find_choice schema ty =
  match
    List.find_opt
      (fun (_, t) -> match t with Xtype.Choice _ -> true | _ -> false)
      (Xtype.locations (Xschema.find schema ty))
  with
  | Some (loc, _) -> loc
  | None -> failwith ("no union in " ^ ty)

(* Figure 4(c): the Show union distributed, everything else inlined *)
let union_distributed stats =
  let ps0 = Init.normalize (annotated stats) in
  let dist = Rewrite.distribute_union ps0 ~tname:"Show" ~loc:(find_choice ps0 "Show") in
  Init.all_inlined ~union_to_options:false dist

(* Figure 4(b)-style: all inlined, NYT reviews materialized out of the
   wildcard *)
let wildcard_materialized stats ~tag =
  let inl = all_inlined stats in
  let body = Xschema.find inl "Reviews" in
  let loc =
    match
      List.find_opt
        (fun (_, t) ->
          match t with
          | Xtype.Elem { label = Label.Any | Label.Any_except _; _ } -> true
          | _ -> false)
        (Xtype.locations body)
    with
    | Some (l, _) -> l
    | None -> failwith "no wildcard in Reviews"
  in
  Rewrite.materialize_wildcard inl ~tname:"Reviews" ~loc ~tag

(* ------------------------------------------------------------------ *)
(* printing helpers                                                    *)
(* ------------------------------------------------------------------ *)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row1 fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Figure 6: estimated costs of the Section 2 queries and workloads    *)
(* under the three storage mappings of Figure 4, normalized by the     *)
(* all-inlined mapping                                                 *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "Figure 6 -- normalized costs, storage mappings of Figure 4";
  let stats =
    Imdb.Stats.with_review_sources Imdb.Stats.full ~total:11250
      [ ("nyt", 0.125); ("suntimes", 0.875) ]
  in
  let queries = List.init 4 (fun i -> Imdb.Queries.fig5 (i + 1)) in
  let configs =
    [
      ("Map1 (all-inlined, 4a)", all_inlined stats);
      ("Map2 (nyt wildcard, 4b)", wildcard_materialized stats ~tag:"nyt");
      ("Map3 (union dist., 4c)", union_distributed stats);
    ]
  in
  let per_query = List.map (fun (_, s) -> query_costs s queries) configs in
  let w_costs w = List.map (fun (_, s) -> workload_cost s w) configs in
  let w1 = w_costs Imdb.Workloads.w1 and w2 = w_costs Imdb.Workloads.w2 in
  let base = List.hd per_query in
  let base_w1 = List.hd w1 and base_w2 = List.hd w2 in
  row1 "%-10s %-26s %-26s %-26s\n" "" "Storage Map 1" "Storage Map 2" "Storage Map 3";
  List.iteri
    (fun qi qname ->
      let cells =
        List.map (fun costs -> List.nth costs qi /. List.nth base qi) per_query
      in
      row1 "%-10s %-26.2f %-26.2f %-26.2f\n" qname (List.nth cells 0)
        (List.nth cells 1) (List.nth cells 2))
    [ "Q1"; "Q2"; "Q3"; "Q4" ];
  row1 "%-10s %-26.2f %-26.2f %-26.2f\n" "W1" (List.nth w1 0 /. base_w1)
    (List.nth w1 1 /. base_w1) (List.nth w1 2 /. base_w1);
  row1 "%-10s %-26.2f %-26.2f %-26.2f\n" "W2" (List.nth w2 0 /. base_w2)
    (List.nth w2 1 /. base_w2) (List.nth w2 2 /. base_w2)

(* ------------------------------------------------------------------ *)
(* Figure 10: greedy cost per iteration, greedy-so vs greedy-si,       *)
(* lookup and publish workloads                                        *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "Figure 10 -- cost at each greedy iteration";
  let schema = annotated Imdb.Stats.full in
  let run name workload =
    let si = Search.greedy_si ~params ~workload schema in
    let so = Search.greedy_so ~params ~workload schema in
    Printf.printf "\n[%s workload]\n%-5s %-16s %-16s\n" name "iter" "greedy-si" "greedy-so";
    let costs trace = List.map (fun (e : Search.trace_entry) -> e.cost) trace in
    let csi = costs si.Search.trace and cso = costs so.Search.trace in
    let n = max (List.length csi) (List.length cso) in
    for i = 0 to n - 1 do
      let cell l = match List.nth_opt l i with
        | Some c -> Printf.sprintf "%.1f" c
        | None -> "-" in
      Printf.printf "%-5d %-16s %-16s\n" i (cell csi) (cell cso)
    done;
    Printf.printf "final: greedy-si %.1f (%d iters), greedy-so %.1f (%d iters)\n"
      si.Search.cost (List.length si.Search.trace - 1)
      so.Search.cost (List.length so.Search.trace - 1)
  in
  run "lookup" Imdb.Workloads.lookup;
  run "publish" Imdb.Workloads.publish

(* ------------------------------------------------------------------ *)
(* Figure 11: sensitivity of fixed configurations across the           *)
(* lookup:publish workload spectrum                                    *)
(* ------------------------------------------------------------------ *)

let fig11 ?(grid = 11) () =
  header "Figure 11 -- sensitivity to workload variations";
  let schema = annotated Imdb.Stats.full in
  let design k =
    (Search.greedy_si ~params ~threshold:0.01
       ~workload:(Imdb.Workloads.mixed k) schema)
      .Search.schema
  in
  Printf.printf "designing C[0.25], C[0.50], C[0.75]...\n%!";
  let c25 = design 0.25 and c50 = design 0.5 and c75 = design 0.75 in
  let inlined = Init.all_inlined schema in
  let ks = List.init grid (fun i -> float_of_int i /. float_of_int (grid - 1)) in
  Printf.printf "%-6s %-12s %-12s %-12s %-14s %-12s\n" "k" "C[0.25]" "C[0.50]"
    "C[0.75]" "ALL-INLINED" "OPT";
  List.iter
    (fun k ->
      let w = Imdb.Workloads.mixed k in
      let cost s = workload_cost s w in
      let opt =
        (Search.greedy_si ~params ~threshold:0.01 ~workload:w schema).Search.cost
      in
      Printf.printf "%-6.2f %-12.1f %-12.1f %-12.1f %-14.1f %-12.1f\n%!" k
        (cost c25) (cost c50) (cost c75) (cost inlined) opt)
    ks

(* ------------------------------------------------------------------ *)
(* Figure 13: union-distributed configuration vs all-inlined, per      *)
(* query (cost as a percentage of the all-inlined cost)                *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  header "Figure 13 -- union distribution vs all-inlined (% of all-inlined)";
  let stats = Imdb.Stats.full in
  let inl = all_inlined stats and dist = union_distributed stats in
  let qs = [ 4; 5; 6; 7; 13; 16; 19 ] in
  let queries = List.map Imdb.Queries.q qs in
  let ci = query_costs inl queries and cd = query_costs dist queries in
  Printf.printf "%-6s %-14s %-14s %-10s\n" "query" "all-inlined" "union-dist"
    "percent";
  List.iteri
    (fun i qn ->
      let a = List.nth ci i and b = List.nth cd i in
      Printf.printf "Q%-5d %-14.1f %-14.1f %-10.1f\n" qn a b (100. *. b /. a))
    qs

(* ------------------------------------------------------------------ *)
(* Figure 14: all-inlined vs repetition-split while the number of akas *)
(* grows (aka made {1,*} so the mandatory first occurrence exists, as  *)
(* in the paper's example)                                             *)
(* ------------------------------------------------------------------ *)

let aka_plus_schema =
  (* the IMDB schema with aka{1,*} instead of aka{0,*} *)
  lazy
    (let body = Xschema.find Imdb.Schema.schema "Show" in
     let loc =
       match
         List.find_opt
           (fun (_, t) ->
             match t with
             | Xtype.Rep (Xtype.Elem { label = Label.Name "aka"; _ }, _) -> true
             | _ -> false)
           (Xtype.locations body)
       with
       | Some (l, _) -> l
       | None -> failwith "no aka repetition"
     in
     let aka =
       match Xtype.subterm body loc with
       | Some (Xtype.Rep (inner, _)) -> inner
       | _ -> assert false
     in
     Xschema.update Imdb.Schema.schema "Show"
       (Xtype.replace body loc (Xtype.rep aka Xtype.plus)))

let split_config schema =
  (* normalize, split the aka repetition, inline the mandatory copy *)
  let ps0 = Init.normalize schema in
  let loc =
    match
      List.find_opt
        (fun (_, t) ->
          match t with
          | Xtype.Rep (Xtype.Ref "Aka", o) -> o.Xtype.lo >= 1
          | _ -> false)
        (Xtype.locations (Xschema.find ps0 "Show"))
    with
    | Some (l, _) -> l
    | None -> failwith "no Aka{1,*} in ps0"
  in
  let split = Rewrite.split_repetition ps0 ~tname:"Show" ~loc in
  Init.all_inlined ~union_to_options:true split

let fig14 () =
  header "Figure 14 -- all-inlined vs repetition-split, growing akas";
  let lookup_q =
    Xq_parse.parse ~name:"aka-lookup"
      "FOR $v IN document(\"x\")/imdb/show WHERE $v/title = c1 RETURN $v/aka"
  in
  let publish_q = Imdb.Queries.q 16 in
  Printf.printf "%-9s %-13s %-13s %-13s %-13s\n" "akas" "lookup/inl"
    "lookup/split" "publish/inl" "publish/split";
  List.iter
    (fun akas ->
      let stats = Imdb.Stats.with_aka_count Imdb.Stats.full akas in
      let schema = Annotate.schema stats (Lazy.force aka_plus_schema) in
      let inl = Init.all_inlined schema in
      let split = split_config schema in
      let qs = [ lookup_q; publish_q ] in
      match
        ( query_costs ~workload_indexes:true inl qs,
          query_costs ~workload_indexes:true split qs )
      with
      | [ li; pi ], [ ls; ps ] ->
          Printf.printf "%-9d %-13.1f %-13.1f %-13.1f %-13.1f\n" akas li ls pi ps
      | _ -> assert false)
    [ 40_000; 80_000; 160_000; 320_000; 640_000 ]

(* ------------------------------------------------------------------ *)
(* Table 2: all-inlined vs wildcard-materialized for the NYT-reviews   *)
(* query, varying the share of NYT reviews and the review count        *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2 -- all-inlined vs wildcard-materialized (NYT reviews)";
  let query =
    Xq_parse.parse ~name:"nyt-1999"
      "FOR $v IN document(\"x\")/imdb/show WHERE $v/year = 1999 RETURN $v/title, $v/reviews/nyt"
  in
  Printf.printf "%-9s %-9s %-13s %-13s\n" "reviews" "nyt%" "inlined" "wildcard";
  List.iter
    (fun total ->
      List.iter
        (fun pct ->
          let stats =
            Imdb.Stats.with_review_sources Imdb.Stats.full ~total
              [ ("nyt", pct /. 100.); ("suntimes", 1. -. (pct /. 100.)) ]
          in
          let inl = all_inlined stats in
          let wild = wildcard_materialized stats ~tag:"nyt" in
          match (query_costs inl [ query ], query_costs wild [ query ]) with
          | [ ci ], [ cw ] ->
              Printf.printf "%-9d %-9.1f %-13.2f %-13.2f\n" total pct ci cw
          | _ -> assert false)
        [ 50.; 25.; 12.5 ])
    [ 10_000; 100_000 ]

(* ------------------------------------------------------------------ *)
(* Ablations: the modelling decisions of DESIGN.md §4b, each toggled   *)
(* in isolation                                                        *)
(* ------------------------------------------------------------------ *)

let no_sharing_cost catalog (q : Logical.query) =
  (* every block costed independently: what happens without the
     common-subexpression sharing of the MQO-style optimizer *)
  List.fold_left
    (fun acc b ->
      let r = Optimizer.optimize_block ~params catalog b in
      acc +. Cost.total params r.Optimizer.cost)
    0. q.Logical.blocks

let variable_width catalog =
  (* what the estimates look like if NULLs cost nothing (variable-width
     storage instead of the paper-era fixed-width CHAR columns) *)
  {
    Rschema.tables =
      List.map
        (fun (t : Rschema.table) ->
          {
            t with
            Rschema.columns =
              List.map
                (fun (c : Rschema.column) ->
                  let st = c.Rschema.stats in
                  {
                    c with
                    Rschema.stats =
                      {
                        st with
                        Rschema.avg_width =
                          Float.max 1. (st.Rschema.avg_width *. (1. -. st.Rschema.null_frac));
                      };
                  })
                t.Rschema.columns;
          })
        catalog.Rschema.tables;
  }

let ablation () =
  header "Ablations -- the cost-model choices of DESIGN.md, toggled";
  let schema = annotated Imdb.Stats.full in

  (* 1. search strategies *)
  Printf.printf "\n[search strategy: final workload cost (tables)]\n";
  Printf.printf "%-12s %-20s %-20s %-20s\n" "workload" "greedy-si" "greedy-so" "beam(w=4)";
  List.iter
    (fun (name, w) ->
      let final (r : Search.result) =
        Printf.sprintf "%.1f (%d)" r.Search.cost
          (List.nth r.Search.trace (List.length r.Search.trace - 1)).Search.tables
      in
      let si = Search.greedy_si ~params ~workload:w schema in
      let so = Search.greedy_so ~params ~workload:w schema in
      let b =
        Search.beam ~params ~width:4 ~kinds:[ Legodb.Space.K_outline ]
          ~workload:w (Init.all_inlined schema)
      in
      Printf.printf "%-12s %-20s %-20s %-20s\n%!" name (final si) (final so) (final b))
    [
      ("lookup", Imdb.Workloads.lookup);
      ("publish", Imdb.Workloads.publish);
      ("mixed 0.5", Imdb.Workloads.mixed 0.5);
    ];

  (* 2. common-subexpression sharing *)
  Printf.printf "\n[shared subexpressions across a query's blocks]\n";
  Printf.printf "%-8s %-14s %-14s %-14s\n" "query" "with CSE" "without" "ratio";
  let dist = union_distributed Imdb.Stats.full in
  (match Mapping.of_pschema dist with
  | Error es -> failwith (String.concat ";" es)
  | Ok m ->
      List.iter
        (fun qn ->
          let q = Xq_translate.translate m (Imdb.Queries.q qn) in
          let with_cse = snd (Optimizer.query_cost ~params m.Mapping.catalog q) in
          let without = no_sharing_cost m.Mapping.catalog q in
          Printf.printf "Q%-7d %-14.1f %-14.1f %-14.2f\n" qn with_cse without
            (without /. with_cse))
        [ 13; 16; 19 ]);

  (* 3. fixed-width vs variable-width columns *)
  Printf.printf "\n[fixed-width CHAR vs variable-width storage]\n";
  Printf.printf "%-8s %-16s %-16s\n" "query" "fixed (paper)" "variable";
  let inl_m =
    match Mapping.of_pschema (all_inlined Imdb.Stats.full) with
    | Ok m -> m
    | Error es -> failwith (String.concat ";" es)
  in
  List.iter
    (fun qn ->
      let q = Xq_translate.translate inl_m (Imdb.Queries.q qn) in
      let fixed = snd (Optimizer.query_cost ~params inl_m.Mapping.catalog q) in
      let var =
        snd (Optimizer.query_cost ~params (variable_width inl_m.Mapping.catalog) q)
      in
      Printf.printf "Q%-7d %-16.1f %-16.1f\n" qn fixed var)
    [ 4; 16 ];

  (* 4. workload-derived indexes *)
  Printf.printf "\n[indexes on the workload's equality columns]\n";
  let inl = all_inlined Imdb.Stats.full in
  let without = Search.pschema_cost ~params ~workload:Imdb.Workloads.lookup inl in
  let with_idx =
    Search.pschema_cost ~params ~workload_indexes:true
      ~workload:Imdb.Workloads.lookup inl
  in
  Printf.printf "lookup workload, all-inlined: keys/fks only %.1f, +eq-column indexes %.1f\n"
    without with_idx;

  (* 5. order columns *)
  Printf.printf "\n[document-order columns]\n";
  (match
     ( Mapping.of_pschema inl,
       Mapping.of_pschema ~order_columns:true inl )
   with
  | Ok plain, Ok ordered ->
      let cost m =
        let q = Xq_translate.translate m (Imdb.Queries.q 16) in
        snd (Optimizer.query_cost ~params m.Mapping.catalog q)
      in
      Printf.printf "publish Q16: plain %.1f, with doc_order %.1f (+%.1f%%)\n"
        (cost plain) (cost ordered)
        (100. *. ((cost ordered /. cost plain) -. 1.))
  | _ -> failwith "mapping failed");

  (* 6. update-aware design *)
  Printf.printf "\n[update weight pulls the design toward fewer tables]\n";
  Printf.printf "%-14s %-12s %-10s\n" "insert weight" "cost" "tables";
  (* actor inserts write the Actor/Played/Award subtree — the same
     tables the Q12 workload wants to carve up *)
  let ins = Legodb.Xq_parse.parse_update ~name:"ins" "INSERT imdb/actor" in
  let w = Workload.of_queries [ Imdb.Queries.q 12 ] in
  List.iter
    (fun weight ->
      let r =
        Search.greedy_si ~params ~workload:w
          ~updates:(if weight = 0. then [] else [ (ins, weight) ])
          schema
      in
      let tables =
        (List.nth r.Search.trace (List.length r.Search.trace - 1)).Search.tables
      in
      Printf.printf "%-14.0f %-12.1f %-10d\n%!" weight r.Search.cost tables)
    [ 0.; 5.; 20.; 80. ]

(* ------------------------------------------------------------------ *)
(* search_perf: cost-engine caching effect on the search wall-clock    *)
(* ------------------------------------------------------------------ *)

(* Three timed runs per (workload, strategy): [cold] disables the cache
   entirely, [first] runs with a fresh engine (within-run reuse across
   neighbours and iterations), [rerun] repeats the search on the warm
   engine (the incremental re-tuning scenario: every configuration the
   search visits is already cached).  All three must agree bit for bit
   on the selected cost — the cache is pure memoization.

   The jobs sweep then re-runs the cold mixed-workload search with
   parallel neighbor costing at each [-j] value, asserting the selected
   schema, cost, and trace are bit-identical throughout ([--smoke] mode
   runs only the sweep, on greedy_si, for CI).  Each sweep row also
   reports the seam's own accounting — fan-outs, time inside fan-outs,
   merge time, and the caller's barrier-idle time — so a regression is
   attributable to a layer, not just visible in the wall clock.

   Two gates guard the seam.  Full mode: >= 2x speedup at -j 4 over
   -j 1 for {e both} strategies, asserted only where it can physically
   hold (domains backend, 4+ recommended cores, sweep reaching 4
   jobs).  Smoke mode (CI, any core count): -j 2 wall time must stay
   within 1.15x of -j 1 — the parallel seam must cost ~nothing even
   when it cannot win; timed best-of-2 to damp scheduler noise.  On an
   OCaml 5 compiler the sweep additionally fails outright if the build
   selected the sequential backend, so a dune [select] regression
   cannot silently turn the sweep into a no-op. *)

(* trace equality up to engine counters: wall-clock timers (and, with
   jobs > 1, hit/miss splits) legitimately differ between runs *)
let same_trace a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Search.trace_entry) (y : Search.trace_entry) ->
         x.Search.iteration = y.Search.iteration
         && Float.equal x.Search.cost y.Search.cost
         && x.Search.tables = y.Search.tables
         && Option.equal
              (fun s s' ->
                String.equal
                  (Format.asprintf "%a" Space.pp_step s)
                  (Format.asprintf "%a" Space.pp_step s'))
              x.Search.step y.Search.step)
       a b

let search_perf ?(jobs = 1) ?(smoke = false) () =
  print_endline
    "\nSearch wall-clock vs. cost-engine caching\n\
     =========================================";
  let schema = annotated Imdb.Stats.full in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first_row = ref true in
  let row ~strategy ~wname ~(workload : Workload.t) run =
    let cold, t_cold = time (fun () -> run ~engine:None ~memoize:(Some false)) in
    let eng = Cost_engine.create ~params ~workload () in
    let first, t_first = time (fun () -> run ~engine:(Some eng) ~memoize:None) in
    let rerun, t_rerun = time (fun () -> run ~engine:(Some eng) ~memoize:None) in
    if
      not
        (Float.equal cold.Search.cost first.Search.cost
        && Float.equal first.Search.cost rerun.Search.cost)
    then
      failwith
        (Printf.sprintf "search_perf: %s/%s cached cost diverges" strategy wname);
    let e1 = first.Search.engine and e2 = rerun.Search.engine in
    let e0 = cold.Search.engine in
    Printf.printf
      "%-9s %-7s  cold %6.3fs (optimize %6.3fs)  first %6.3fs (%3.0f%% hits, \
       %.1fx)  rerun %6.3fs (%3.0f%% hits, %.1fx)\n\
       %!"
      strategy wname t_cold e0.Cost_engine.t_optimize t_first
      (100. *. Cost_engine.hit_rate e1)
      (t_cold /. t_first) t_rerun
      (100. *. Cost_engine.hit_rate e2)
      (t_cold /. t_rerun);
    if not !first_row then Buffer.add_string buf ",";
    first_row := false;
    Buffer.add_string buf
      (Printf.sprintf
         "\n\
          \  {\"kind\": \"cache\", \"strategy\": \"%s\", \"workload\": \
          \"%s\", \"cost\": %.1f,\n\
          \   \"configs_costed\": %d, \"hits\": %d, \"misses\": %d, \
          \"hit_rate\": %.3f,\n\
          \   \"cold_s\": %.4f, \"first_s\": %.4f, \"rerun_s\": %.4f,\n\
          \   \"cold_t_mapping\": %.4f, \"cold_t_translate\": %.4f, \
          \"cold_t_optimize\": %.4f,\n\
          \   \"first_speedup\": %.2f, \"rerun_speedup\": %.2f, \
          \"rerun_hit_rate\": %.3f}"
         strategy wname cold.Search.cost e1.Cost_engine.evaluations
         e1.Cost_engine.hits e1.Cost_engine.misses (Cost_engine.hit_rate e1)
         t_cold t_first t_rerun e0.Cost_engine.t_mapping
         e0.Cost_engine.t_translate e0.Cost_engine.t_optimize
         (t_cold /. t_first) (t_cold /. t_rerun)
         (Cost_engine.hit_rate e2))
  in
  if not smoke then
    List.iter
      (fun (wname, workload) ->
        row ~strategy:"greedy_si" ~wname ~workload (fun ~engine ~memoize ->
            Search.greedy_si ~params ?memoize ?engine ~workload schema);
        row ~strategy:"beam" ~wname ~workload (fun ~engine ~memoize ->
            Search.beam ~params ?memoize ?engine ~workload
              (Init.all_inlined schema)))
      [
        ("lookup", Imdb.Workloads.lookup);
        ("publish", Imdb.Workloads.publish);
        ("mixed", Imdb.Workloads.mixed 0.5);
      ]
  else ignore row;

  (* ---- parallel neighbor costing: the jobs sweep ---- *)
  let sweep =
    List.sort_uniq compare
      (List.filter (fun j -> j >= 1) (if smoke then [ 1; jobs ] else [ 1; 2; 4; jobs ]))
  in
  Printf.printf
    "\nParallel neighbor costing on the cold mixed workload (backend %s, %d \
     recommended cores)\n"
    Par.backend (Par.default_jobs ());
  (* dune's [select] must have picked the domains backend on OCaml 5;
     a silent fall-through to par_seq would keep every row green while
     measuring nothing *)
  if
    String.length Sys.ocaml_version > 0
    && Sys.ocaml_version.[0] >= '5'
    && not (String.equal Par.backend "domains")
  then
    failwith
      (Printf.sprintf
         "search_perf: OCaml %s built the \"%s\" backend; expected \
          \"domains\" — the jobs sweep would measure nothing"
         Sys.ocaml_version Par.backend);
  let workload = Imdb.Workloads.mixed 0.5 in
  let strategies =
    ( "greedy_si",
      fun j -> Search.greedy_si ~params ~jobs:j ~workload schema )
    ::
    (if smoke then []
     else
       [
         ( "beam",
           fun j ->
             Search.beam ~params ~jobs:j ~workload (Init.all_inlined schema) );
       ])
  in
  List.iter
    (fun (sname, run) ->
      let results =
        List.map
          (fun j ->
            Search.seam_reset ();
            let r, t = time (fun () -> run j) in
            let seam = Search.seam_stats () in
            (* smoke runs are short enough for scheduler noise to
               matter; the -j 2 gate compares best-of-2 walls *)
            let t =
              if smoke then min t (snd (time (fun () -> run j))) else t
            in
            (j, r, t, seam))
          sweep
      in
      let _, base, t1, _ =
        List.find (fun (j, _, _, _) -> j = 1) results
      in
      List.iter
        (fun (j, (r : Search.result), t, (seam : Search.seam_stats)) ->
          if not (Float.equal r.Search.cost base.Search.cost) then
            failwith
              (Printf.sprintf
                 "search_perf: %s -j %d cost diverges from -j 1 (%h vs %h)"
                 sname j r.Search.cost base.Search.cost);
          if
            not
              (String.equal
                 (Xschema.to_string r.Search.schema)
                 (Xschema.to_string base.Search.schema))
          then
            failwith
              (Printf.sprintf
                 "search_perf: %s -j %d selects a different schema" sname j);
          if not (same_trace r.Search.trace base.Search.trace) then
            failwith
              (Printf.sprintf "search_perf: %s -j %d trace diverges" sname j);
          let sp = t1 /. t in
          Printf.printf
            "%-9s -j %-3d  %7.3fs  speedup %5.2fx  (fanouts %3d, fanout \
             %6.3fs, merge %6.3fs, barrier idle %6.3fs)%s\n\
             %!"
            sname j t sp seam.Search.s_fanouts seam.Search.s_t_fanout
            seam.Search.s_t_merge seam.Search.s_t_barrier_idle
            (if j = 1 then " (baseline)" else "");
          if not !first_row then Buffer.add_string buf ",";
          first_row := false;
          Buffer.add_string buf
            (Printf.sprintf
               "\n\
                \  {\"kind\": \"jobs_sweep\", \"strategy\": \"%s\", \
                \"workload\": \"mixed\", \"backend\": \"%s\", \"jobs\": %d, \
                \"cost\": %.1f, \"wall_s\": %.4f, \"speedup_vs_j1\": %.2f,\n\
                \   \"fanouts\": %d, \"t_fanout\": %.4f, \"t_merge\": %.4f, \
                \"t_barrier_idle\": %.4f}"
               sname Par.backend j r.Search.cost t sp seam.Search.s_fanouts
               seam.Search.s_t_fanout seam.Search.s_t_merge
               seam.Search.s_t_barrier_idle))
        results;
      let jmax = List.fold_left max 1 sweep in
      (* the wall-clock claim, asserted where it can physically hold:
         >= 2x at -j 4 for every swept strategy *)
      if (not smoke) && Par.available && Par.default_jobs () >= 4 && jmax >= 4
      then begin
        let _, _, tmax, _ = List.find (fun (j, _, _, _) -> j = jmax) results in
        let sp = t1 /. tmax in
        if sp < 2.0 then
          failwith
            (Printf.sprintf
               "search_perf: %s -j %d speedup %.2fx < 2x on %d-core hardware"
               sname jmax sp (Par.default_jobs ()))
      end;
      (* the overhead claim, asserted everywhere the domains backend
         runs (CI included): even when extra jobs cannot win — one
         core, oversubscription — the seam must not cost wall time *)
      if smoke && Par.available && List.mem 2 sweep then begin
        let _, _, t2, _ = List.find (fun (j, _, _, _) -> j = 2) results in
        if t2 > t1 *. 1.15 then
          failwith
            (Printf.sprintf
               "search_perf: %s -j 2 wall %.3fs exceeds 1.15x of -j 1 \
                (%.3fs): the parallel seam is taxing the search"
               sname t2 t1)
      end)
    strategies;
  Buffer.add_string buf "\n]\n";
  print_newline ();
  print_string (Buffer.contents buf);
  if not smoke then begin
    let oc = open_out "BENCH_search_perf.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "[wrote BENCH_search_perf.json]"
  end

(* ------------------------------------------------------------------ *)
(* optimizer_perf: mask-indexed join DP vs the frozen reference        *)
(* ------------------------------------------------------------------ *)

(* Times the per-candidate optimizer in isolation: for each (storage
   configuration, workload) pair, the whole translated workload is
   costed through the fast mask-indexed [Optimizer] and through the
   frozen pre-rewrite [Optimizer_reference], after asserting that the
   two return bit-identical plans, row estimates, and costs on every
   block.  The stage breakdown (t_mapping / t_translate / t_optimize)
   localizes where a candidate evaluation spends its time.  [--smoke]
   runs one repetition and skips the JSON, keeping the divergence
   check for CI. *)
let optimizer_perf ?(smoke = false) () =
  print_endline
    "\nPer-candidate optimizer: mask-indexed DP vs frozen reference\n\
     ============================================================";
  let schema = annotated Imdb.Stats.full in
  let configs =
    [
      ("inlined", Init.all_inlined schema);
      ("outlined", Init.normalize schema);
    ]
  in
  let workloads =
    [
      ("lookup", Imdb.Workloads.lookup);
      ("publish", Imdb.Workloads.publish);
      ("mixed", Imdb.Workloads.mixed 0.5);
    ]
  in
  let reps = if smoke then 1 else 7 in
  let bits = Int64.bits_of_float in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "[";
  let first_row = ref true in
  (* per-workload fast/reference optimize time, summed over configs —
     the >= 2x gate below reads these *)
  let gate : (string, float * float) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (cname, config) ->
      let t0 = Unix.gettimeofday () in
      let m =
        match Mapping.of_pschema config with
        | Ok m -> m
        | Error es -> failwith (String.concat "; " es)
      in
      let t_mapping = Unix.gettimeofday () -. t0 in
      let catalog = m.Mapping.catalog in
      List.iter
        (fun (wname, workload) ->
          let t1 = Unix.gettimeofday () in
          let queries =
            List.map (fun (q, w) -> (Xq_translate.translate m q, w)) workload
          in
          let t_translate = Unix.gettimeofday () -. t1 in
          let blocks =
            List.fold_left
              (fun n (q, _) -> n + List.length q.Logical.blocks)
              0 queries
          in
          let max_rels =
            List.fold_left
              (fun n (q, _) ->
                List.fold_left
                  (fun n (b : Logical.block) ->
                    max n (List.length b.Logical.relations))
                  n q.Logical.blocks)
              0 queries
          in
          (* bit-identity on every block before any timing *)
          List.iter
            (fun (q, _) ->
              let fast, ft = Optimizer.query_cost ~params catalog q in
              let refr, rt = Optimizer_reference.query_cost ~params catalog q in
              if bits ft <> bits rt then
                failwith
                  (Printf.sprintf
                     "optimizer_perf: %s/%s/%s cost diverges from reference \
                      (%h vs %h)"
                     cname wname q.Logical.qname ft rt);
              List.iter2
                (fun (f : Optimizer.result) (r : Optimizer_reference.result) ->
                  if
                    not
                      (f.Optimizer.plan = r.Optimizer_reference.plan
                      && bits f.Optimizer.rows = bits r.Optimizer_reference.rows
                      && bits (Cost.total params f.Optimizer.cost)
                         = bits (Cost.total params r.Optimizer_reference.cost))
                  then
                    failwith
                      (Printf.sprintf
                         "optimizer_perf: %s/%s/%s plan diverges from reference"
                         cname wname q.Logical.qname))
                fast refr)
            queries;
          let time_path f =
            let t = ref infinity in
            for _ = 1 to reps do
              let t0 = Unix.gettimeofday () in
              ignore (f ());
              t := Float.min !t (Unix.gettimeofday () -. t0)
            done;
            !t
          in
          let t_fast =
            time_path (fun () -> Optimizer.workload_cost ~params catalog queries)
          in
          let t_ref =
            time_path (fun () ->
                Optimizer_reference.workload_cost ~params catalog queries)
          in
          let fa, ra =
            Option.value ~default:(0., 0.) (Hashtbl.find_opt gate wname)
          in
          Hashtbl.replace gate wname (fa +. t_fast, ra +. t_ref);
          Printf.printf
            "%-9s %-7s  %3d blocks (<= %d rels)  optimize %8.2f ms  reference \
             %8.2f ms  speedup %5.2fx\n\
             %!"
            cname wname blocks max_rels (1e3 *. t_fast) (1e3 *. t_ref)
            (t_ref /. t_fast);
          if not !first_row then Buffer.add_string buf ",";
          first_row := false;
          Buffer.add_string buf
            (Printf.sprintf
               "\n\
                \  {\"config\": \"%s\", \"workload\": \"%s\", \"queries\": \
                %d, \"blocks\": %d, \"max_rels\": %d,\n\
                \   \"t_mapping_s\": %.5f, \"t_translate_s\": %.5f, \
                \"t_optimize_fast_s\": %.5f, \"t_optimize_ref_s\": %.5f,\n\
                \   \"speedup\": %.2f}"
               cname wname (List.length queries) blocks max_rels t_mapping
               t_translate t_fast t_ref (t_ref /. t_fast)))
        workloads)
    configs;
  Buffer.add_string buf "\n]\n";
  print_newline ();
  print_string (Buffer.contents buf);
  if not smoke then begin
    let oc = open_out "BENCH_optimizer_perf.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "[wrote BENCH_optimizer_perf.json]";
    (* the tentpole claim: the optimize stage on the per-candidate hot
       workloads is at least twice as fast as the frozen reference *)
    List.iter
      (fun wname ->
        match Hashtbl.find_opt gate wname with
        | Some (fast, refr) when refr /. fast < 2. ->
            failwith
              (Printf.sprintf
                 "optimizer_perf: %s optimize speedup %.2fx < 2x vs reference"
                 wname (refr /. fast))
        | _ -> ())
      [ "lookup"; "mixed" ]
  end

(* ------------------------------------------------------------------ *)
(* budget_sweep: anytime search — every budgeted run is a prefix       *)
(* ------------------------------------------------------------------ *)

(* One unbudgeted greedy_si run fixes the reference trace (and, via a
   no-limit Budget, the total ticket count).  Then for each evaluation
   budget, iteration cap, and jobs value, the budgeted run must return
   exactly the best-so-far prefix of the reference trace, with
   [stopped] naming the budget that tripped — the anytime guarantee,
   asserted rather than plotted.  A final section runs the search with
   a deterministic injected fault and records the per-candidate
   failure records the search now surfaces. *)
let budget_sweep ?(jobs = 1) ?(smoke = false) () =
  print_endline
    "\nAnytime search: budgeted runs are prefixes of the full run\n\
     ==========================================================";
  let schema = annotated Imdb.Stats.full in
  let workload = Imdb.Workloads.mixed 0.5 in
  let tickets = Budget.create () in
  let full = Search.greedy_si ~params ~budget:tickets ~workload schema in
  (match full.Search.stopped with
  | `Converged -> ()
  | s ->
      failwith
        ("budget_sweep: unbudgeted run stopped: " ^ Search.stopped_string s));
  let total_evals = Budget.evaluations tickets in
  let total_iters = List.length full.Search.trace - 1 in
  Printf.printf "full run: cost %.1f, %d iterations, %d evaluations\n%!"
    full.Search.cost total_iters total_evals;
  let prefix n l = List.filteri (fun i _ -> i < n) l in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "[";
  let first_row = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun row ->
        if not !first_row then Buffer.add_string buf ",";
        first_row := false;
        Buffer.add_string buf row)
      fmt
  in
  let jobs_sweep =
    List.sort_uniq compare
      (List.filter (fun j -> j >= 1) (if smoke then [ 1; jobs ] else [ 1; 2; jobs ]))
  in
  let check ~label ~budget_of ~expect j =
    let r =
      Search.greedy_si ~params ~jobs:j ~budget:(budget_of ()) ~workload schema
    in
    let n = List.length r.Search.trace in
    if not (same_trace r.Search.trace (prefix n full.Search.trace)) then
      failwith
        (Printf.sprintf "budget_sweep: %s -j %d is not a prefix of the full trace"
           label j);
    (match expect with
    | Some e when r.Search.stopped <> e ->
        failwith
          (Printf.sprintf "budget_sweep: %s -j %d stopped %s, expected %s" label
             j
             (Search.stopped_string r.Search.stopped)
             (Search.stopped_string e))
    | _ -> ());
    Printf.printf "%-16s -j %-3d  %2d iterations  cost %12.1f  (%s)\n%!" label j
      (n - 1) r.Search.cost
      (Search.stopped_string r.Search.stopped);
    emit
      "\n\
       \  {\"kind\": \"budget_sweep\", \"budget\": \"%s\", \"jobs\": %d, \
       \"iterations\": %d, \"cost\": %.1f, \"stopped\": \"%s\", \"failures\": \
       %d}"
      label j (n - 1) r.Search.cost
      (Search.stopped_string r.Search.stopped)
      (List.length r.Search.failures)
  in
  List.iter
    (fun j ->
      List.iter
        (fun frac ->
          let limit = max 1 (int_of_float (frac *. float_of_int total_evals)) in
          let expect =
            if limit >= total_evals then Some `Converged else Some `Cost_budget
          in
          check
            ~label:(Printf.sprintf "evals<=%d" limit)
            ~budget_of:(fun () -> Budget.create ~max_evaluations:limit ())
            ~expect j)
        (if smoke then [ 0.5 ] else [ 0.25; 0.5; 0.75; 1.0 ]);
      List.iter
        (fun iters ->
          (* an [iters = total_iters] cap trips at the barrier before
             the would-be converging pass, so it reports [iterations] *)
          let expect =
            if iters > total_iters then Some `Converged else Some `Iterations
          in
          check
            ~label:(Printf.sprintf "iters<=%d" iters)
            ~budget_of:(fun () -> Budget.create ~max_iterations:iters ())
            ~expect j)
        (if smoke then [ 1 ] else [ 1; 2; total_iters ]);
      (* a zero deadline still returns the (budget-exempt) initial
         configuration *)
      check ~label:"deadline 0ms"
        ~budget_of:(fun () -> Budget.create ~wall_ms:0. ())
        ~expect:(Some `Deadline) j)
    jobs_sweep;

  (* ---- fault accounting under deterministic injection ---- *)
  let init_s = Xschema.to_string (Init.all_inlined schema) in
  let inject s = (not (String.equal s init_s)) && Hashtbl.hash s mod 5 = 0 in
  let eng = Cost_engine.create ~params ~workload ~inject () in
  let faulty = Search.greedy_si ~params ~engine:eng ~workload schema in
  Printf.printf
    "\nwith injected faults (1 in 5): cost %.1f (%s), %d candidates skipped\n%!"
    faulty.Search.cost
    (Search.stopped_string faulty.Search.stopped)
    (List.length faulty.Search.failures);
  List.iter
    (fun (f : Search.failure) ->
      emit
        "\n\
         \  {\"kind\": \"fault\", \"iteration\": %d, \"step\": \"%s\", \
         \"stage\": \"%s\", \"class\": \"%s\", \"message\": \"%s\"}"
        f.Search.f_iteration
        (Format.asprintf "%a" Space.pp_step f.Search.f_step)
        f.Search.f_stage f.Search.f_class f.Search.f_message)
    faulty.Search.failures;
  Buffer.add_string buf "\n]\n";
  print_newline ();
  print_string (Buffer.contents buf);
  if not smoke then begin
    let oc = open_out "BENCH_budget_sweep.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "[wrote BENCH_budget_sweep.json]"
  end

(* ------------------------------------------------------------------ *)
(* checkpoint_resume: kill a search, resume the snapshot, same answer  *)
(* ------------------------------------------------------------------ *)

(* The durable-checkpoint guarantee, asserted rather than plotted: a
   search stopped by a budget while snapshotting to disk, then resumed
   from that file by a *fresh* engine and budget (everything a crash
   would lose), returns the same design bit for bit — cost, schema,
   trace, stop reason — as a run that was never interrupted, at every
   jobs value.  Each row also records how much costing work the warm
   snapshot saved the resumed process. *)
let checkpoint_resume ?(jobs = 1) ?(smoke = false) () =
  print_endline
    "\nDurable checkpoints: kill-and-resume matches the uninterrupted run\n\
     ==================================================================";
  let schema = annotated Imdb.Stats.full in
  let workload = Imdb.Workloads.mixed 0.5 in
  let full = Search.greedy_si ~params ~workload schema in
  let total_iters = List.length full.Search.trace - 1 in
  Printf.printf "uninterrupted: cost %.1f, %d iterations, %d configs costed\n%!"
    full.Search.cost total_iters full.Search.engine.Cost_engine.evaluations;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "[";
  let first_row = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun row ->
        if not !first_row then Buffer.add_string buf ",";
        first_row := false;
        Buffer.add_string buf row)
      fmt
  in
  let jobs_sweep =
    List.sort_uniq compare
      (List.filter (fun j -> j >= 1) (if smoke then [ 1; jobs ] else [ 1; 2; jobs ]))
  in
  let check ~label ~budget_of ~warm j =
    let path = Filename.temp_file "legodb_bench" ".ckpt" in
    let stopped =
      Search.greedy_si ~params ~jobs:j ~budget:(budget_of ())
        ~checkpoint:(path, 1) ~workload schema
    in
    let resumed = Search.resume ~params ~jobs:j ~warm ~workload path in
    Sys.remove path;
    let fail fmt =
      Printf.ksprintf
        (fun m -> failwith (Printf.sprintf "checkpoint_resume: %s: %s" label m))
        fmt
    in
    if not (Float.equal resumed.Search.cost full.Search.cost) then
      fail "resumed cost %.3f <> %.3f" resumed.Search.cost full.Search.cost;
    if
      not
        (String.equal
           (Xschema.to_string resumed.Search.schema)
           (Xschema.to_string full.Search.schema))
    then fail "resumed schema differs";
    if not (same_trace resumed.Search.trace full.Search.trace) then
      fail "resumed trace differs";
    if resumed.Search.stopped <> full.Search.stopped then
      fail "resumed stopped %s <> %s"
        (Search.stopped_string resumed.Search.stopped)
        (Search.stopped_string full.Search.stopped);
    Printf.printf
      "%-12s -j %-3d %s  stopped after %d iters, resumed to cost %12.1f \
       (costed %d of %d configs)\n\
       %!"
      label j
      (if warm then "warm" else "cold")
      (List.length stopped.Search.trace - 1)
      resumed.Search.cost resumed.Search.engine.Cost_engine.evaluations
      full.Search.engine.Cost_engine.evaluations;
    emit
      "\n\
       \  {\"kind\": \"checkpoint_resume\", \"stop\": \"%s\", \"jobs\": %d, \
       \"warm\": %b, \"stopped_iters\": %d, \"resumed_cost\": %.1f, \
       \"resumed_evals\": %d, \"full_evals\": %d}"
      label j warm
      (List.length stopped.Search.trace - 1)
      resumed.Search.cost resumed.Search.engine.Cost_engine.evaluations
      full.Search.engine.Cost_engine.evaluations
  in
  List.iter
    (fun j ->
      (* stop at an iteration barrier, and mid-iteration on a ticket
         budget — the snapshot must hold barrier state only *)
      check ~label:"iters<=1"
        ~budget_of:(fun () -> Budget.create ~max_iterations:1 ())
        ~warm:true j;
      check ~label:"evals<=20"
        ~budget_of:(fun () -> Budget.create ~max_evaluations:20 ())
        ~warm:true j;
      if not smoke then
        check ~label:"evals<=20"
          ~budget_of:(fun () -> Budget.create ~max_evaluations:20 ())
          ~warm:false j)
    jobs_sweep;
  Buffer.add_string buf "\n]\n";
  print_newline ();
  print_string (Buffer.contents buf);
  if not smoke then begin
    let oc = open_out "BENCH_checkpoint_resume.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "[wrote BENCH_checkpoint_resume.json]"
  end

(* ------------------------------------------------------------------ *)
(* serve_perf: the query server over a frozen snapshot                 *)
(* ------------------------------------------------------------------ *)

(* Stand up `Serve` on a scaled synthetic IMDB corpus (>= 100k rows in
   the full run) and replay a parameterized point-lookup workload:

     cold      first batch, the plan cache compiling every distinct
               statement on the way
     warm      the same batch again, all plan-cache hits
     nocache   the same requests with the cache bypassed (translate +
               optimize every time), the baseline the cache must beat
     post-pub  the warm batch after an append + publish, against the
               new snapshot (fresh fingerprints, plans recompiled)

   Requests are point lookups in the paper's "selections can be
   pushed" setting: the workload's equality columns get indexes (the
   same uniform grant the other experiments use), so a request costs
   microseconds to execute and the plan cache's savings are visible
   in end-to-end throughput rather than buried under table scans.

   Answers are cross-checked two ways on a sampled sub-workload: row
   sets must be bit-identical to a one-shot translate/optimize/execute
   pipeline on the same snapshot, and row counts must match the naive
   tree evaluator on the source document. *)
let serve_perf ?(jobs = 1) ?(smoke = false) () =
  print_endline
    "\nServing throughput over frozen snapshots\n\
     ========================================";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let scale = if smoke then 0.002 else 0.12 in
  let doc, t_gen =
    time (fun () ->
        Imdb.Gen.generate { (Imdb.Gen.scaled scale) with Imdb.Gen.seed = 7 })
  in
  let stats = Collector.collect doc in
  let ps = Init.all_inlined (Annotate.schema stats Imdb.Schema.schema) in
  let t_year y =
    Printf.sprintf
      "FOR $v IN document(\"imdb\")/imdb/show WHERE $v/year = %s RETURN \
       $v/title, $v/year, $v/type"
      y
  in
  let t_name n =
    Printf.sprintf
      "FOR $a IN document(\"imdb\")/imdb/actor WHERE $a/name = \"%s\" RETURN \
       $a/name"
      n
  in
  let t_join n =
    Printf.sprintf
      "FOR $i IN document(\"imdb\")/imdb $a in $i/actor, $m1 in $a/played \
       WHERE $a/name = \"%s\" RETURN $a/name, $m1/title, $m1/year"
      n
  in
  let t_title s =
    Printf.sprintf
      "FOR $v IN document(\"imdb\")/imdb/show WHERE $v/title = \"%s\" RETURN \
       $v/title, $v/year"
      s
  in
  let m =
    let base =
      match Mapping.of_pschema ps with
      | Ok m -> m
      | Error es -> failwith (String.concat "; " es)
    in
    let representatives =
      List.map
        (Xq_parse.parse ~name:"rep")
        [ t_year "1900"; t_name "x"; t_join "x"; t_title "x" ]
    in
    let equality =
      Xq_translate.equality_columns
        (List.map (Xq_translate.translate base) representatives)
    in
    { base with Mapping.catalog = Rschema.add_indexes base.Mapping.catalog equality }
  in
  let db, t_shred = time (fun () -> Shred.shred m doc) in
  let total = Storage.total_rows db in
  Printf.printf
    "corpus: scale %.3f, %d rows (generate %.2fs, shred %.2fs), %d jobs\n%!"
    scale total t_gen t_shred jobs;
  if (not smoke) && total < 100_000 then
    failwith
      (Printf.sprintf "serve_perf: corpus too small (%d rows < 100000)" total);
  (* the server executes in memory: with the paper's disk-calibrated
     seek weight (40 per seek) a non-clustered index probe (4 seeks)
     would lose to scanning a 20k-row table, so plans are compiled
     under memory-calibrated weights and the probes actually win *)
  let mem_params =
    { Cost.default_params with Cost.seek_weight = 0.1; read_weight = 0.1 }
  in
  let server = Serve.create ~jobs ~params:mem_params m db in
  (* constant pools, sampled from the document so every generated
     request has a chance of matching rows; large pools keep most
     requests structurally distinct, which is what makes the cold
     batch pay for compilation *)
  let pool ?(limit = 2000) path =
    let seen = Hashtbl.create 64 in
    let vs =
      List.filter
        (fun v ->
          if Hashtbl.mem seen v then false
          else begin
            Hashtbl.replace seen v ();
            true
          end)
        (Xq_eval.path_values doc path)
    in
    let arr = Array.of_list vs in
    if Array.length arr = 0 then failwith "serve_perf: empty constant pool";
    Array.sub arr 0 (min limit (Array.length arr))
  in
  let years = pool [ "show"; "year" ] in
  let names = pool [ "actor"; "name" ] in
  let titles = pool [ "show"; "title" ] in
  let n_req = if smoke then 120 else 2000 in
  let rng = Random.State.make [| 20260808 |] in
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let req_texts =
    Array.init n_req (fun _ ->
        match Random.State.int rng 4 with
        | 0 -> t_year (pick years)
        | 1 -> t_name (pick names)
        | 2 -> t_join (pick names)
        | _ -> t_title (pick titles))
  in
  let reqs =
    Array.mapi
      (fun i text -> Xq_parse.parse ~name:(Printf.sprintf "req%d" i) text)
      req_texts
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "[";
  let first_row = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if not !first_row then Buffer.add_string buf ",";
        first_row := false;
        Buffer.add_string buf ("\n  " ^ s))
      fmt
  in
  let summary_of label wall_s latencies =
    let s = Serve.summarize ~wall_s latencies in
    Printf.printf "%-9s %s\n%!" label
      (Format.asprintf "%a" Serve.pp_summary s);
    emit
      "{\"kind\": \"pass\", \"pass\": \"%s\", \"n\": %d, \"wall_s\": %.4f, \
       \"qps\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f}"
      label s.Serve.n s.Serve.wall_s s.Serve.qps s.Serve.p50_ms s.Serve.p95_ms
      s.Serve.p99_ms;
    s
  in
  let batch ?(rounds = 1) srv label =
    (* a 2000-request batch is ~30ms of wall time, so gated passes run
       a few rounds and keep the fastest — the measurement least
       disturbed by whatever else the machine was doing *)
    let run () =
      let replies, wall_s = time (fun () -> Serve.run_batch srv reqs) in
      let latencies =
        Array.map
          (function
            | Ok (r : Serve.reply) -> r.Serve.latency_s
            | Error e -> failwith ("serve_perf: " ^ e))
          replies
      in
      (wall_s, latencies)
    in
    let best =
      List.fold_left
        (fun (bw, bl) _ ->
          let w, l = run () in
          if w < bw then (w, l) else (bw, bl))
        (run ())
        (List.init (rounds - 1) Fun.id)
    in
    summary_of label (fst best) (snd best)
  in
  let gate_rounds = if smoke then 1 else 3 in
  let cold = batch server "cold" in
  let warm = batch ~rounds:gate_rounds server "warm" in
  let stats_after = Serve.stats server in
  Printf.printf "%s\n%!"
    (Format.asprintf "%a" Serve.pp_stats stats_after);
  if stats_after.Serve.cache_hits <= 0 then
    failwith "serve_perf: no plan-cache hits";
  if warm.Serve.qps <= 0. then failwith "serve_perf: zero warm qps";
  (* cache on vs cache off over the same requests, sequentially, so
     the comparison isolates exactly what the cache saves *)
  let sequential label ~use_cache =
    let replies, wall_s =
      time (fun () -> Array.map (fun q -> Serve.query ~use_cache server q) reqs)
    in
    summary_of label wall_s
      (Array.map (fun (r : Serve.reply) -> r.Serve.latency_s) replies)
  in
  let cached = sequential "cached" ~use_cache:true in
  let nocache = sequential "nocache" ~use_cache:false in
  if not smoke then begin
    if warm.Serve.qps <= cold.Serve.qps then
      failwith
        (Printf.sprintf "serve_perf: warm qps %.0f not above cold %.0f"
           warm.Serve.qps cold.Serve.qps);
    if cached.Serve.qps <= nocache.Serve.qps then
      failwith
        (Printf.sprintf "serve_perf: cached qps %.0f not above nocache %.0f"
           cached.Serve.qps nocache.Serve.qps)
  end;
  (* differential checks on a sampled sub-workload *)
  let snap = Serve.snapshot server in
  let cat = Storage.catalog snap in
  let n_sample = min (if smoke then 30 else 60) n_req in
  Array.iteri
    (fun i q ->
      if i < n_sample then begin
        let served = (Serve.query server q).Serve.rows in
        let lq = Xq_translate.translate m q in
        let plans =
          List.map
            (fun (b : Logical.block) ->
              ( (Optimizer.optimize_block ~params:mem_params cat b)
                  .Optimizer.plan,
                b.Logical.out ))
            lq.Logical.blocks
        in
        let one_shot, _ = Executor.run_query snap plans in
        if served <> one_shot then
          failwith
            (Printf.sprintf "serve_perf: request %d differs from one-shot path"
               i);
        let expected = Xq_eval.count_bindings doc q in
        if List.length served <> expected then
          failwith
            (Printf.sprintf
               "serve_perf: request %d returned %d rows, tree evaluator says %d"
               i (List.length served) expected)
      end)
    reqs;
  Printf.printf
    "differential: %d sampled requests match the one-shot executor and the \
     tree evaluator\n\
     %!"
    n_sample;
  (* append + publish: readers keep the old snapshot until the barrier *)
  let extra = Imdb.Gen.generate { Imdb.Gen.default with Imdb.Gen.seed = 99 } in
  let rows_before = Storage.total_rows (Serve.snapshot server) in
  Serve.append server extra;
  if Storage.total_rows (Serve.snapshot server) <> rows_before then
    failwith "serve_perf: append visible before publish";
  let (), t_publish = time (fun () -> Serve.publish server) in
  let rows_after = Storage.total_rows (Serve.snapshot server) in
  if rows_after <= rows_before then
    failwith "serve_perf: publish did not grow the snapshot";
  Printf.printf "publish: %d -> %d rows in %.3fs\n%!" rows_before rows_after
    t_publish;
  let post = batch server "post-pub" in
  let final = Serve.stats server in
  emit
    "{\"kind\": \"serve\", \"scale\": %.3f, \"rows\": %d, \"rows_after\": %d, \
     \"jobs\": %d, \"requests\": %d, \"cold_qps\": %.1f, \"warm_qps\": %.1f, \
     \"cached_qps\": %.1f, \"nocache_qps\": %.1f, \"post_publish_qps\": %.1f, \
     \"publish_s\": %.4f, \"hits\": %d, \"misses\": %d, \"served\": %d, \
     \"publishes\": %d}"
    scale total rows_after jobs n_req cold.Serve.qps warm.Serve.qps
    cached.Serve.qps nocache.Serve.qps post.Serve.qps t_publish
    final.Serve.cache_hits final.Serve.cache_misses final.Serve.served
    final.Serve.snapshots_published;
  (* ------------------------------------------------------------------
     durability: the same corpus served with a write-ahead log.  Three
     things are measured and recorded: the read path must not regress
     (WAL-on warm throughput gated at >= 0.85x the WAL-off server — a
     read never touches the log, so a bigger gap would mean the
     durability state leaks into the serving path), the write path's
     log+snapshot overhead, and recovery: crash after acked appends,
     recover, and require bit-identical answers. *)
  print_endline "\ndurability (write-ahead log + snapshot):";
  let dur_dir =
    let d = Filename.temp_file "legodb_bench" ".d" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let dur, t_attach =
    time (fun () ->
        Serve.create ~jobs ~params:mem_params ~data_dir:dur_dir m
          (Shred.shred m doc))
  in
  Printf.printf "standing store: %s (initial snapshot %.2fs)\n%!" dur_dir
    t_attach;
  let _wal_cold = batch dur "wal-cold" in
  let wal_warm = batch ~rounds:gate_rounds dur "wal-warm" in
  (* re-measure the WAL-off server adjacent in time: the "warm" pass
     above ran seconds ago under a smaller heap, and comparing across
     that drift fails the gate on days the machine is busy even though
     the read paths are identical *)
  let warm_ref = batch ~rounds:gate_rounds server "warm-ref" in
  if (not smoke) && wal_warm.Serve.qps < 0.85 *. warm_ref.Serve.qps then
    failwith
      (Printf.sprintf
         "serve_perf: WAL-on warm qps %.0f below 0.85x the WAL-off %.0f"
         wal_warm.Serve.qps warm_ref.Serve.qps);
  let extra_docs =
    Array.init 4 (fun i ->
        Imdb.Gen.generate { (Imdb.Gen.scaled 0.002) with Imdb.Gen.seed = 200 + i })
  in
  let (), t_dur_append =
    time (fun () -> Array.iter (Serve.append dur) extra_docs)
  in
  let (), t_dur_publish = time (fun () -> Serve.publish dur) in
  Printf.printf "durable appends: %d in %.3fs (fsync each), publish %.3fs\n%!"
    (Array.length extra_docs) t_dur_append t_dur_publish;
  (* published answers, then two acked-but-unpublished appends, then
     the crash: the handle is abandoned with its log fsynced — exactly
     the disk a kill -9 leaves *)
  let n_sample_dur = min n_sample n_req in
  let pre =
    Array.init n_sample_dur (fun i -> (Serve.query dur reqs.(i)).Serve.rows)
  in
  Serve.append dur extra_docs.(0);
  Serve.append dur extra_docs.(1);
  let (recovered, rinfo), t_recover =
    time (fun () ->
        Serve.recover ~jobs ~params:mem_params ~mapping:m ~dir:dur_dir ())
  in
  Printf.printf "recovery: %s in %.3fs\n%!"
    (Format.asprintf "%a" Serve.pp_recovery rinfo)
    t_recover;
  if (Serve.stats recovered).Serve.pending_appends <> 2 then
    failwith "serve_perf: recovery lost acked appends";
  Array.iteri
    (fun i rows ->
      if (Serve.query recovered reqs.(i)).Serve.rows <> rows then
        failwith
          (Printf.sprintf
             "serve_perf: recovered answer %d differs from the pre-crash \
              server"
             i))
    pre;
  Printf.printf
    "differential: %d recovered answers bit-identical to the pre-crash \
     server\n\
     %!"
    n_sample_dur;
  emit
    "{\"kind\": \"durability\", \"wal_warm_qps\": %.1f, \"wal_off_qps\": \
     %.1f, \"qps_ratio\": %.3f, \"initial_snapshot_s\": %.4f, \
     \"append_fsync_s\": %.4f, \"durable_publish_s\": %.4f, \"recover_s\": \
     %.4f, \"snapshot_rows\": %d, \"snapshot_seq\": %d, \"replayed\": %d, \
     \"skipped\": %d, \"recovered_seq\": %d, \"dropped_bytes\": %d, \
     \"torn\": %s}"
    wal_warm.Serve.qps warm_ref.Serve.qps
    (wal_warm.Serve.qps /. warm_ref.Serve.qps)
    t_attach t_dur_append t_dur_publish t_recover rinfo.Serve.r_snapshot_rows
    rinfo.Serve.r_snapshot_seq rinfo.Serve.r_replayed rinfo.Serve.r_skipped
    rinfo.Serve.r_recovered_seq rinfo.Serve.r_dropped_bytes
    (match rinfo.Serve.r_torn with
    | None -> "null"
    | Some w -> Printf.sprintf "\"%s\"" (String.escaped w));
  (* ------------------------------------------------------------------
     network pass: the warm workload again, but through the TCP front
     door — queries travel as source text, get parsed and batched
     server-side, and the sampled answers must be bit-identical to the
     in-process path (compared after the server thread is joined, so
     the two paths never overlap). *)
  print_endline "\nnetwork (TCP front door):";
  let run_netserver ?group_commit_ms ?(reference = false) srv f =
    let stop = ref false in
    let port_cell = ref None in
    let net_cell = ref Net.net_stats_zero in
    let th =
      Thread.create
        (fun () ->
          if reference then
            Net.serve_reference ?group_commit_ms ~stop
              ~on_listen:(fun p -> port_cell := Some p)
              ~port:0 srv
          else
            net_cell :=
              Net.serve ?group_commit_ms ~stop
                ~on_listen:(fun p -> port_cell := Some p)
                ~port:0 srv)
        ()
    in
    let rec await n =
      match !port_cell with
      | Some p -> p
      | None ->
          if n > 500 then failwith "serve_perf: server never listened"
          else begin
            Thread.delay 0.01;
            await (n + 1)
          end
    in
    let r = f (await 0) in
    stop := true;
    Thread.join th;
    (r, !net_cell)
  in
  (* every pass replays the warm workload [net_rounds] times against a
     fresh server loop and keeps the best round — the best round's
     latencies and sampled rows are the ones reported *)
  let net_rounds = if smoke then 1 else 3 in
  let net_lat = Array.make n_req 0. in
  let loop_line netstats =
    Printf.printf
      "  loop: %d ticks, %d batches (%d shared, max %d), %d replayed, \
       %.3fs select / %.3fs work, %d B in / %d B out\n\
       %!"
      netstats.Net.ticks netstats.Net.batches
      (Net.shared_batches netstats)
      netstats.Net.max_batch netstats.Net.replayed netstats.Net.select_s
      netstats.Net.work_s netstats.Net.bytes_in netstats.Net.bytes_out
  in
  (* the strict-RPC client: one request in flight, every response
     decoded — the methodology every earlier serve_perf reported, run
     against both loops so net-warm vs net-ref compares like for like *)
  let rpc_pass ~reference label =
    let rows_out = Array.make n_sample [] in
    let best = ref infinity in
    let (), netstats =
      run_netserver ~reference server (fun port ->
          let c = Net.connect ~port () in
          let lat_round = Array.make n_req 0. in
          let rows_round = Array.make n_sample [] in
          for _ = 1 to net_rounds do
            let t0 = Unix.gettimeofday () in
            Array.iteri
              (fun i text ->
                let t1 = Unix.gettimeofday () in
                (match Net.rpc c (Net.Query text) with
                | Net.Rows { rows; _ } ->
                    if i < n_sample then rows_round.(i) <- rows
                | Net.Error_reply e -> failwith ("serve_perf: network: " ^ e)
                | _ -> failwith "serve_perf: unexpected network response");
                lat_round.(i) <- Unix.gettimeofday () -. t1)
              req_texts;
            let wall = Unix.gettimeofday () -. t0 in
            if wall < !best then begin
              best := wall;
              Array.blit lat_round 0 net_lat 0 n_req;
              Array.blit rows_round 0 rows_out 0 n_sample
            end
          done;
          Net.close c)
    in
    let s = summary_of label !best net_lat in
    if not reference then loop_line netstats;
    (s, rows_out, netstats)
  in
  (* the load-generator client: [conc] connections, [depth] requests in
     flight per connection (each connection's frames corked into one
     write), responses CRC-validated always but row-decoded only for
     the sampled differential — the redis-benchmark -P discipline.
     Request [base+t] rides connection [t mod conc], so per-connection
     response order is exercised across the whole sweep. *)
  let loadgen_pass ~conc ~depth label =
    let rows_out = Array.make n_sample [] in
    let best = ref infinity in
    let cork = Buffer.create 4096 in
    let (), netstats =
      run_netserver ~reference:false server (fun port ->
          let peers = Array.init conc (fun _ -> Net.connect ~port ()) in
          let lat_round = Array.make n_req 0. in
          let rows_round = Array.make n_sample [] in
          let one_round () =
            let t0 = Unix.gettimeofday () in
            let i = ref 0 in
            while !i < n_req do
              let base = !i in
              let k = min (conc * depth) (n_req - base) in
              let sent = Unix.gettimeofday () in
              for j = 0 to conc - 1 do
                Buffer.clear cork;
                let t = ref j in
                while !t < k do
                  Buffer.add_string cork
                    (Net.encode_request (Net.Query req_texts.(base + !t)));
                  t := !t + conc
                done;
                if Buffer.length cork > 0 then
                  Net.send_raw peers.(j) (Buffer.contents cork)
              done;
              for j = 0 to conc - 1 do
                let t = ref j in
                while !t < k do
                  let idx = base + !t in
                  (if idx < n_sample then
                     match Net.recv peers.(j) with
                     | Net.Rows { rows; _ } -> rows_round.(idx) <- rows
                     | Net.Error_reply e ->
                         failwith ("serve_perf: network: " ^ e)
                     | _ ->
                         failwith "serve_perf: unexpected network response"
                   else
                     let p = Net.recv_raw peers.(j) in
                     if String.length p < 4 || p.[0] <> 'r' || p.[1] <> 'o'
                     then failwith "serve_perf: unexpected network response");
                  lat_round.(idx) <- Unix.gettimeofday () -. sent;
                  t := !t + conc
                done
              done;
              i := base + k
            done;
            Unix.gettimeofday () -. t0
          in
          for _ = 1 to net_rounds do
            let wall = one_round () in
            if wall < !best then begin
              best := wall;
              Array.blit lat_round 0 net_lat 0 n_req;
              Array.blit rows_round 0 rows_out 0 n_sample
            end
          done;
          Array.iter Net.close peers)
    in
    let s = summary_of label !best net_lat in
    loop_line netstats;
    (s, rows_out, netstats)
  in
  (* the old loop, re-measured adjacent on the same machine — the 1.2x
     single-connection gate compares against this, not against a number
     recorded on some other day *)
  let net_ref, _, _ = rpc_pass ~reference:true "net-ref(old)" in
  let net, net_rows, _ = rpc_pass ~reference:false "net-warm" in
  let depth = 16 in
  let concs = [ 1; 4; 16; 64 ] in
  let sweep =
    List.map
      (fun conc ->
        let s, rows, netstats =
          loadgen_pass ~conc ~depth (Printf.sprintf "net x%-2d d%d" conc depth)
        in
        (conc, s, rows, netstats))
      concs
  in
  let _, net16, net16_rows, net16_stats =
    List.find (fun (c, _, _, _) -> c = 16) sweep
  in
  (* sampled answers from the strict-RPC and the 16-connection loadgen
     passes, both checked bit-identical to the in-process path after
     the server threads are joined *)
  let check_sample what rows_out =
    Array.iteri
      (fun i rows ->
        if (Serve.query server reqs.(i)).Serve.rows <> rows then
          failwith
            (Printf.sprintf
               "serve_perf: %s answer %d differs from the in-process path"
               what i))
      rows_out
  in
  check_sample "network" net_rows;
  check_sample "network x16" net16_rows;
  Printf.printf
    "differential: %d network answers (rpc and x16) bit-identical to the \
     in-process path\n\
     %!"
    (2 * n_sample);
  if Net.shared_batches net16_stats = 0 then
    failwith
      "serve_perf: no cross-connection batch formed under the 16-connection \
       pass";
  if not smoke then begin
    if net.Serve.qps < 1.2 *. net_ref.Serve.qps then
      failwith
        (Printf.sprintf
           "serve_perf: single-connection net-warm qps %.0f below 1.2x the \
            old loop's %.0f"
           net.Serve.qps net_ref.Serve.qps);
    if net16.Serve.qps < 2.5 *. net.Serve.qps then
      failwith
        (Printf.sprintf
           "serve_perf: 16-connection aggregate qps %.0f below 2.5x the \
            single-connection net-warm %.0f"
           net16.Serve.qps net.Serve.qps)
  end;
  emit
    "{\"kind\": \"network_ref\", \"requests\": %d, \"rounds\": %d, \"qps\": \
     %.1f, \"p99_ms\": %.4f}"
    n_req net_rounds net_ref.Serve.qps net_ref.Serve.p99_ms;
  emit
    "{\"kind\": \"network\", \"requests\": %d, \"qps\": %.1f, \"p99_ms\": \
     %.4f, \"sampled_identical\": %d, \"qps_vs_old_loop\": %.3f}"
    n_req net.Serve.qps net.Serve.p99_ms (2 * n_sample)
    (net.Serve.qps /. net_ref.Serve.qps);
  List.iter
    (fun (conc, s, _, netstats) ->
      emit
        "{\"kind\": \"network_sweep\", \"conns\": %d, \"depth\": %d, \
         \"requests\": %d, \"qps\": %.1f, \"p99_ms\": %.4f, \
         \"qps_vs_rpc\": %.3f, \"ticks\": %d, \"batches\": %d, \
         \"shared_batches\": %d, \"max_batch\": %d, \"replayed\": %d, \
         \"batch_hist\": [%s], \"bytes_in\": %d, \"bytes_out\": %d, \
         \"select_s\": %.4f, \"work_s\": %.4f}"
        conc depth n_req s.Serve.qps s.Serve.p99_ms
        (s.Serve.qps /. net.Serve.qps)
        netstats.Net.ticks netstats.Net.batches
        (Net.shared_batches netstats)
        netstats.Net.max_batch netstats.Net.replayed
        (String.concat ", "
           (Array.to_list (Array.map string_of_int netstats.Net.batch_hist)))
        netstats.Net.bytes_in netstats.Net.bytes_out netstats.Net.select_s
        netstats.Net.work_s)
    sweep;
  (* ------------------------------------------------------------------
     group commit: append throughput on the recovered WAL-on server.
     The k=1 pass is the PR 8 discipline (one fsync per append); the
     grouped passes stage k appends per flush.  What group commit buys
     is fsyncs/append, so the gate reads exactly that counter. *)
  print_endline "\ngroup commit (append path, WAL on):";
  (* a tiny document (~10 rows, ~1KB of XML): shredding it costs well
     under one fsync, so the sweep measures the commit discipline, not
     the shredder *)
  let tiny =
    Imdb.Gen.generate { (Imdb.Gen.scaled 0.00001) with Imdb.Gen.seed = 1234 }
  in
  let n_app = if smoke then 16 else 128 in
  (* each round is only tens of milliseconds of wall time, so one slow
     fsync (the disk is shared) can swing a single measurement by 30%;
     run a few rounds and report the best, which is the run least
     disturbed by the machine rather than the commit discipline *)
  let rounds = if smoke then 1 else 5 in
  let sweep k =
    let s0 = Serve.stats recovered in
    let commits = ref [] in
    let one_round () =
      let (), wall =
        time (fun () ->
            let rec go left =
              if left > 0 then begin
                let chunk = min k left in
                let (), t_commit =
                  time (fun () ->
                      if chunk = 1 then Serve.append recovered tiny
                      else
                        List.iter
                          (function
                            | Ok () -> ()
                            | Error e -> failwith ("serve_perf: " ^ e))
                          (Serve.append_group recovered
                             (List.init chunk (fun _ -> tiny))))
                in
                commits := t_commit :: !commits;
                go (left - chunk)
              end
            in
            go n_app)
      in
      wall
    in
    let wall =
      List.fold_left
        (fun best _ -> min best (one_round ()))
        (one_round ())
        (List.init (rounds - 1) Fun.id)
    in
    let s1 = Serve.stats recovered in
    let appends = s1.Serve.wal_appends - s0.Serve.wal_appends in
    let fsyncs = s1.Serve.wal_fsyncs - s0.Serve.wal_fsyncs in
    let qps = float_of_int n_app /. wall in
    let ratio = float_of_int fsyncs /. float_of_int appends in
    let p99_commit_ms =
      let a = Array.of_list !commits in
      Array.sort compare a;
      1000. *. a.(Array.length a - 1 - (Array.length a / 100))
    in
    Printf.printf
      "group=%-3d %d appends (best of %d) in %.3fs: %7.0f appends/s, %.3f \
       fsyncs/append, p99 commit %.2fms\n\
       %!"
      k n_app rounds wall qps ratio p99_commit_ms;
    emit
      "{\"kind\": \"group_commit\", \"group\": %d, \"appends\": %d, \
       \"rounds\": %d, \"wall_s\": %.4f, \"append_qps\": %.1f, \
       \"fsyncs_per_append\": %.4f, \"p99_commit_ms\": %.4f}"
      k n_app rounds wall qps ratio p99_commit_ms;
    (qps, ratio)
  in
  let base_qps, base_ratio = sweep 1 in
  let grouped = List.map (fun k -> (k, sweep k)) [ 2; 4; 8; 16 ] in
  if not smoke then begin
    if base_ratio < 0.999 then
      failwith "serve_perf: fsync-per-append baseline ratio below 1.0";
    List.iter
      (fun (k, (qps, ratio)) ->
        if k >= 8 then begin
          if qps < 1.5 *. base_qps then
            failwith
              (Printf.sprintf
                 "serve_perf: group=%d append qps %.0f below 1.5x the \
                  fsync-per-append baseline %.0f"
                 k qps base_qps);
          if ratio >= 0.25 then
            failwith
              (Printf.sprintf
                 "serve_perf: group=%d fsyncs/append %.3f not below 0.25" k
                 ratio)
        end)
      grouped
  end;
  (* the same append path through the network front door: pipelined
     appends share commit groups bounded by --group-commit-ms *)
  List.iter
    (fun gc_ms ->
      let s0 = Serve.stats recovered in
      let sends = Array.make n_app 0. in
      let acks = Array.make n_app 0. in
      let text = Xml.to_string tiny in
      let wall, _net =
        run_netserver ~group_commit_ms:gc_ms recovered (fun port ->
            let c = Net.connect ~port () in
            let t0 = Unix.gettimeofday () in
            for i = 0 to n_app - 1 do
              sends.(i) <- Unix.gettimeofday ();
              Net.send c (Net.Append text)
            done;
            for i = 0 to n_app - 1 do
              (match Net.recv c with
              | Net.Acked -> ()
              | Net.Error_reply e -> failwith ("serve_perf: network: " ^ e)
              | _ -> failwith "serve_perf: unexpected append response");
              acks.(i) <- Unix.gettimeofday ()
            done;
            let wall = Unix.gettimeofday () -. t0 in
            Net.close c;
            wall)
      in
      let s1 = Serve.stats recovered in
      let appends = s1.Serve.wal_appends - s0.Serve.wal_appends in
      let fsyncs = s1.Serve.wal_fsyncs - s0.Serve.wal_fsyncs in
      let ratio = float_of_int fsyncs /. float_of_int appends in
      let qps = float_of_int n_app /. wall in
      let lat = Array.init n_app (fun i -> acks.(i) -. sends.(i)) in
      let s = Serve.summarize ~wall_s:wall lat in
      Printf.printf
        "net gc=%-2dms %d pipelined appends: %7.0f appends/s, %.3f \
         fsyncs/append, ack p99 %.2fms\n\
         %!"
        gc_ms n_app qps ratio s.Serve.p99_ms;
      emit
        "{\"kind\": \"group_commit_net\", \"group_commit_ms\": %d, \
         \"appends\": %d, \"append_qps\": %.1f, \"fsyncs_per_append\": %.4f, \
         \"ack_p99_ms\": %.4f}"
        gc_ms n_app qps ratio s.Serve.p99_ms)
    [ 0; 5; 20 ];
  (* the recovered server is disposable: drop its files *)
  Array.iter
    (fun f -> Sys.remove (Filename.concat dur_dir f))
    (Sys.readdir dur_dir);
  Unix.rmdir dur_dir;
  Buffer.add_string buf "\n]\n";
  print_newline ();
  print_string (Buffer.contents buf);
  if not smoke then begin
    let oc = open_out "BENCH_serve_perf.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "[wrote BENCH_serve_perf.json]"
  end
