(* Benchmark harness: `dune exec bench/main.exe` runs every experiment
   of the paper's evaluation (Figures 6/10/11/13/14, Table 2) and a
   Bechamel micro-benchmark suite.  Pass experiment names to run a
   subset: fig6 fig10 fig11 fig13 fig14 table2 micro. *)

open Legodb

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_endline "\nMicro-benchmarks (Bechamel)\n===========================";
  let doc = Imdb.Gen.generate Imdb.Gen.default in
  let doc_text = Xml.to_string doc in
  let stats = Collector.collect doc in
  let annotated = Annotate.schema stats Imdb.Schema.schema in
  let inlined = Init.all_inlined annotated in
  let m =
    match Mapping.of_pschema inlined with
    | Ok m -> m
    | Error es -> failwith (String.concat "; " es)
  in
  let db = Storage.refresh_stats (Shred.shred m doc) in
  let q16 = Xq_translate.translate m (Imdb.Queries.q 16) in
  let cat = Storage.catalog db in
  let q16_plans =
    List.map
      (fun (b : Logical.block) ->
        ((Optimizer.optimize_block cat b).Optimizer.plan, b.Logical.out))
      q16.Logical.blocks
  in
  let workload = Imdb.Workloads.lookup in
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"legodb"
      [
        Test.make ~name:"xml-parse (5900 elems)"
          (Staged.stage (fun () -> ignore (Xml_parse.parse_string doc_text)));
        Test.make ~name:"validate"
          (Staged.stage (fun () ->
               ignore (Validate.document Imdb.Schema.schema doc)));
        Test.make ~name:"collect-stats"
          (Staged.stage (fun () -> ignore (Collector.collect doc)));
        Test.make ~name:"shred"
          (Staged.stage (fun () -> ignore (Shred.shred m doc)));
        Test.make ~name:"publish-document"
          (Staged.stage (fun () -> ignore (Publish.document db m)));
        Test.make ~name:"translate-q13"
          (Staged.stage (fun () ->
               ignore (Xq_translate.translate m (Imdb.Queries.q 13))));
        Test.make ~name:"optimize-q13"
          (Staged.stage (fun () ->
               let q = Xq_translate.translate m (Imdb.Queries.q 13) in
               ignore (Optimizer.query_cost cat q)));
        Test.make ~name:"execute-q16"
          (Staged.stage (fun () -> ignore (Executor.run_query db q16_plans)));
        Test.make ~name:"pschema-cost(lookup)"
          (Staged.stage (fun () ->
               ignore (Search.pschema_cost ~workload inlined)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
  in
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then Printf.printf "%-42s (no estimate)\n" name
      else if est > 1e6 then Printf.printf "%-42s %10.2f ms/run\n" name (est /. 1e6)
      else if est > 1e3 then Printf.printf "%-42s %10.2f us/run\n" name (est /. 1e3)
      else Printf.printf "%-42s %10.0f ns/run\n" name est)
    (List.sort compare rows)

let experiments ~jobs ~smoke =
  [
    ("fig6", Experiments.fig6);
    ("fig10", Experiments.fig10);
    ("fig11", fun () -> Experiments.fig11 ());
    ("fig13", Experiments.fig13);
    ("fig14", Experiments.fig14);
    ("table2", Experiments.table2);
    ("ablation", Experiments.ablation);
    ("search_perf", fun () -> Experiments.search_perf ~jobs ~smoke ());
    ("optimizer_perf", fun () -> Experiments.optimizer_perf ~smoke ());
    ("budget_sweep", fun () -> Experiments.budget_sweep ~jobs ~smoke ());
    ("checkpoint_resume", fun () -> Experiments.checkpoint_resume ~jobs ~smoke ());
    ("serve_perf", fun () -> Experiments.serve_perf ~jobs ~smoke ());
    ("micro", micro);
  ]

let usage = "usage: main.exe [-j N] [--smoke] [experiment ...]"

let () =
  (* flags: [-j N] sets the parallel jobs for search_perf's sweep,
     [--smoke] trims search_perf to the CI determinism check *)
  let rec parse (names, jobs, smoke) = function
    | [] -> (List.rev names, jobs, smoke)
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j -> parse (names, j, smoke) rest
        | None ->
            Printf.eprintf "-j needs an integer, got %s\n%s\n" n usage;
            exit 2)
    | [ "-j" ] ->
        Printf.eprintf "-j needs an integer\n%s\n" usage;
        exit 2
    | "--smoke" :: rest -> parse (names, jobs, true) rest
    | x :: rest -> parse (x :: names, jobs, smoke) rest
  in
  let names, jobs, smoke =
    parse ([], 1, false) (List.tl (Array.to_list Sys.argv))
  in
  let experiments = experiments ~jobs ~smoke in
  let to_run = match names with [] -> List.map fst experiments | names -> names in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let t0 = Unix.gettimeofday () in
          f ();
          Printf.printf "[%s finished in %.1fs]\n%!" name
            (Unix.gettimeofday () -. t0)
      | None ->
          Printf.eprintf "unknown experiment %s (have: %s)\n" name
            (String.concat ", " (List.map fst experiments)))
    to_run
