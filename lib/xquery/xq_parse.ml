exception Parse_error of { position : int; message : string }

type token =
  | TFor
  | TIn
  | TWhere
  | TReturn
  | TAnd
  | TVar of string
  | TIdent of string
  | TInt of int
  | TString of string
  | TSlash
  | TEq
  | TComma
  | TLparen
  | TRparen
  | TOpen of string
  | TClose of string
  | TEof

(* ---------------- lexer ---------------- *)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let push pos t = tokens := (pos, t) :: !tokens in
  let fail pos message = raise (Parse_error { position = pos; message }) in
  let i = ref 0 in
  let read_ident () =
    let start = !i in
    while !i < n && is_ident_char input.[!i] do
      incr i
    done;
    String.sub input start (!i - start)
  in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' && !i + 1 < n && input.[!i + 1] = ':' then begin
      (* comment *)
      let pos = !i in
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail pos "unterminated comment"
        else if input.[!i] = ':' && input.[!i + 1] = ')' then i := !i + 2
        else begin
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if c = '$' then begin
      let pos = !i in
      incr i;
      if !i < n && is_ident_start input.[!i] then push pos (TVar (read_ident ()))
      else fail pos "expected a variable name after $"
    end
    else if c = '<' then begin
      let pos = !i in
      incr i;
      let closing = !i < n && input.[!i] = '/' in
      if closing then incr i;
      if !i < n && is_ident_start input.[!i] then begin
        let tag = read_ident () in
        if !i < n && input.[!i] = '>' then begin
          incr i;
          push pos (if closing then TClose tag else TOpen tag)
        end
        else fail pos "expected > to end a tag"
      end
      else fail pos "expected a tag name after <"
    end
    else if c = '"' then begin
      let pos = !i in
      incr i;
      let start = !i in
      while !i < n && input.[!i] <> '"' do
        incr i
      done;
      if !i >= n then fail pos "unterminated string literal";
      push pos (TString (String.sub input start (!i - start)));
      incr i
    end
    else if c >= '0' && c <= '9' then begin
      let pos = !i in
      let start = !i in
      while !i < n && ((input.[!i] >= '0' && input.[!i] <= '9') || input.[!i] = ',')
      do
        incr i
      done;
      let raw =
        String.to_seq (String.sub input start (!i - start))
        |> Seq.filter (fun c -> c <> ',')
        |> String.of_seq
      in
      match int_of_string_opt raw with
      | Some v -> push pos (TInt v)
      | None -> fail pos "malformed number"
    end
    else if is_ident_start c then begin
      let pos = !i in
      let id = read_ident () in
      let t =
        match String.lowercase_ascii id with
        | "for" -> TFor
        | "in" -> TIn
        | "where" -> TWhere
        | "return" -> TReturn
        | "and" -> TAnd
        | _ -> TIdent id
      in
      push pos t
    end
    else begin
      let pos = !i in
      (match c with
      | '/' -> push pos TSlash
      | '=' -> push pos TEq
      | ',' -> push pos TComma
      | '(' -> push pos TLparen
      | ')' -> push pos TRparen
      | _ -> fail pos (Printf.sprintf "unexpected character %C" c));
      incr i
    end
  done;
  push n TEof;
  List.rev !tokens

(* ---------------- parser ---------------- *)

type state = { mutable toks : (int * token) list }

let peek st = match st.toks with (_, t) :: _ -> t | [] -> TEof
let peek2 st = match st.toks with _ :: (_, t) :: _ -> t | _ -> TEof
let pos st = match st.toks with (p, _) :: _ -> p | [] -> 0

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st message = raise (Parse_error { position = pos st; message })

let expect st t msg =
  if peek st = t then advance st else fail st ("expected " ^ msg)

let parse_path st =
  (* ident ('/' ident)* *)
  let step () =
    match peek st with
    | TIdent id ->
        advance st;
        id
    | _ -> fail st "expected a path step"
  in
  let first = step () in
  let rec more acc =
    if peek st = TSlash then begin
      advance st;
      more (step () :: acc)
    end
    else List.rev acc
  in
  more [ first ]

let parse_var_path st v =
  (* after $v, an optional /path *)
  if peek st = TSlash then begin
    advance st;
    (v, parse_path st)
  end
  else (v, [])

let parse_source st =
  match peek st with
  | TVar v ->
      advance st;
      let v, path = parse_var_path st v in
      Xq_ast.Var_path (v, path)
  | TIdent "document" ->
      advance st;
      expect st TLparen "( after document";
      (match peek st with
      | TString _ -> advance st
      | _ -> fail st "expected a document name string");
      expect st TRparen ") after document name";
      expect st TSlash "/ after document(...)";
      Xq_ast.Doc (parse_path st)
  | TIdent _ -> Xq_ast.Doc (parse_path st)
  | _ -> fail st "expected a binding source"

let rec parse_flwr st =
  expect st TFor "FOR";
  let bindings = parse_bindings st [] in
  let where =
    if peek st = TWhere then begin
      advance st;
      let rec preds acc =
        let p = parse_pred st in
        if peek st = TAnd then begin
          advance st;
          preds (p :: acc)
        end
        else List.rev (p :: acc)
      in
      preds []
    end
    else []
  in
  expect st TReturn "RETURN";
  let return = parse_rets st [] in
  { Xq_ast.bindings; where; return }

and parse_bindings st acc =
  (* one binding, then continue while a comma or another $var follows *)
  let b = parse_binding st in
  let acc = b :: acc in
  match peek st with
  | TComma ->
      advance st;
      parse_bindings st acc
  | TVar _ when peek2 st <> TEq -> parse_bindings st acc
  | _ -> List.rev acc

and parse_binding st =
  match peek st with
  | TVar v -> (
      advance st;
      match peek st with
      | TIn ->
          advance st;
          (v, parse_source st)
      | TSlash ->
          (* reversed form: FOR $v/episode $e *)
          advance st;
          let path = parse_path st in
          (match peek st with
          | TVar bound ->
              advance st;
              (bound, Xq_ast.Var_path (v, path))
          | _ -> fail st "expected a variable after the binding path")
      | _ -> fail st "expected IN or / in a FOR binding")
  | _ -> fail st "expected a $variable in a FOR binding"

and parse_pred st =
  match peek st with
  | TVar v ->
      advance st;
      let left = parse_var_path st v in
      expect st TEq "=";
      let right =
        match peek st with
        | TVar w ->
            advance st;
            let w, path = parse_var_path st w in
            Xq_ast.O_path (w, path)
        | TInt n ->
            advance st;
            Xq_ast.O_const (Xq_ast.C_int n)
        | TString s ->
            advance st;
            Xq_ast.O_const (Xq_ast.C_string s)
        | TIdent id ->
            advance st;
            Xq_ast.O_const (Xq_ast.C_string id)
        | _ -> fail st "expected a comparison operand"
      in
      { Xq_ast.left; right }
  | _ -> fail st "expected a $variable path in WHERE"

and parse_rets st acc =
  match peek st with
  | TComma ->
      advance st;
      parse_rets st acc
  | TVar v ->
      advance st;
      let v, path = parse_var_path st v in
      let item =
        if path = [] then Xq_ast.R_var v else Xq_ast.R_path (v, path)
      in
      parse_rets st (item :: acc)
  | TOpen tag ->
      advance st;
      let inner = parse_rets st [] in
      (match peek st with
      | TClose tag' when String.equal tag tag' ->
          advance st;
          parse_rets st (Xq_ast.R_elem (tag, inner) :: acc)
      | TClose _ -> fail st ("mismatched closing tag for <" ^ tag ^ ">")
      | _ -> fail st ("missing </" ^ tag ^ ">"))
  | TFor -> parse_rets st (Xq_ast.R_nested (parse_flwr st) :: acc)
  | TLparen ->
      (* parenthesized nested FLWR — the form {!Xq_ast.pp} prints, since
         the parens mark where the inner RETURN list ends and the outer
         one resumes *)
      advance st;
      let f = parse_flwr st in
      expect st TRparen ") after a nested FOR";
      parse_rets st (Xq_ast.R_nested f :: acc)
  | _ -> List.rev acc

let parse ?(name = "query") input =
  let st = { toks = tokenize input } in
  let body = parse_flwr st in
  (match peek st with
  | TEof -> ()
  | _ -> fail st "trailing tokens after the query");
  { Xq_ast.name; body }

(* ---------------- update statements ---------------- *)

let ident_is st kw =
  match peek st with
  | TIdent id -> String.equal (String.lowercase_ascii id) kw
  | _ -> false

let parse_update ?(name = "update") input =
  let st = { toks = tokenize input } in
  let finish u =
    match peek st with
    | TEof -> u
    | _ -> fail st "trailing tokens after the update"
  in
  if ident_is st "insert" then begin
    advance st;
    let target =
      match peek st with
      | TIdent "document" | TIdent _ -> (
          match parse_source st with
          | Xq_ast.Doc path -> path
          | Xq_ast.Var_path _ -> fail st "INSERT takes a document path")
      | _ -> fail st "expected a document path after INSERT"
    in
    finish (Xq_ast.U_insert { name; target })
  end
  else begin
    expect st TFor "FOR or INSERT";
    let bindings = parse_bindings st [] in
    let where =
      if peek st = TWhere then begin
        advance st;
        let rec preds acc =
          let p = parse_pred st in
          if peek st = TAnd then begin
            advance st;
            preds (p :: acc)
          end
          else List.rev (p :: acc)
        in
        preds []
      end
      else []
    in
    let body = { Xq_ast.bindings; where; return = [] } in
    if ident_is st "delete" then begin
      advance st;
      match peek st with
      | TVar v ->
          advance st;
          finish (Xq_ast.U_delete { name; body; target = v })
      | _ -> fail st "expected a $variable after DELETE"
    end
    else if ident_is st "set" then begin
      advance st;
      match peek st with
      | TVar v ->
          advance st;
          let v, path = parse_var_path st v in
          expect st TEq "=";
          let value =
            match peek st with
            | TInt n ->
                advance st;
                Xq_ast.C_int n
            | TString s ->
                advance st;
                Xq_ast.C_string s
            | TIdent id ->
                advance st;
                Xq_ast.C_string id
            | _ -> fail st "expected a constant after ="
          in
          finish (Xq_ast.U_set { name; body; target = (v, path); value })
      | _ -> fail st "expected a $variable path after SET"
    end
    else fail st "expected DELETE or SET after the bindings"
  end
