(* Domain-pool backend, selected on OCaml >= 5 (see par.mli).

   A small global worker pool: domains are spawned lazily the first
   time a fan-out needs them and reused for every later iteration, so
   per-iteration overhead is one queue push/pop per chunk rather than a
   Domain.spawn.  Workers idle on a condition variable; an [at_exit]
   hook wakes and joins them so the runtime's end-of-program domain
   join does not hang on the pool. *)

let backend = "domains"
let available = true
let default_jobs () = Domain.recommended_domain_count ()

(* the runtime caps live domains at 128; leave headroom for the main
   domain and any the application spawns itself *)
let max_workers = 120

let m = Mutex.create ()
let work_available = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let workers : unit Domain.t list ref = ref []
let worker_count = ref 0
let shutting_down = ref false

let rec worker () =
  Mutex.lock m;
  let rec wait () =
    if !shutting_down then None
    else
      match Queue.take_opt queue with
      | Some t -> Some t
      | None ->
          Condition.wait work_available m;
          wait ()
  in
  let task = wait () in
  Mutex.unlock m;
  match task with
  | None -> ()
  | Some t ->
      t ();
      worker ()

let () =
  at_exit (fun () ->
      Mutex.lock m;
      shutting_down := true;
      Condition.broadcast work_available;
      Mutex.unlock m;
      List.iter Domain.join !workers;
      workers := [])

let ensure_workers n =
  let n = min n max_workers in
  Mutex.lock m;
  while !worker_count < n && not !shutting_down do
    incr worker_count;
    workers := Domain.spawn worker :: !workers
  done;
  Mutex.unlock m

let run_list (fs : (unit -> 'a) list) : 'a list =
  match fs with
  | [] -> []
  | [ f ] -> [ f () ]
  | f0 :: rest ->
      let n = List.length rest in
      ensure_workers n;
      (* each task writes its slot and decrements [pending] under the
         completion lock, which is also what publishes the slot write
         to the caller (lock acquire/release orders the accesses) *)
      let results : ('a, exn * Printexc.raw_backtrace) result option array =
        Array.make n None
      in
      let pending = ref n in
      let fin_m = Mutex.create () in
      let fin_c = Condition.create () in
      Mutex.lock m;
      List.iteri
        (fun i f ->
          Queue.add
            (fun () ->
              let r =
                try Ok (f ())
                with e -> Error (e, Printexc.get_raw_backtrace ())
              in
              Mutex.lock fin_m;
              results.(i) <- Some r;
              decr pending;
              if !pending = 0 then Condition.signal fin_c;
              Mutex.unlock fin_m)
            queue)
        rest;
      Condition.broadcast work_available;
      Mutex.unlock m;
      (* the caller is a worker too: it runs the first chunk while the
         pool drains the rest *)
      let r0 =
        try Ok (f0 ()) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock fin_m;
      while !pending > 0 do
        Condition.wait fin_c fin_m
      done;
      Mutex.unlock fin_m;
      let settled =
        r0 :: List.map Option.get (Array.to_list results)
      in
      List.iter
        (function
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt
          | Ok _ -> ())
        settled;
      List.map (function Ok v -> v | Error _ -> assert false) settled
