(* Domain-pool backend, selected on OCaml >= 5 (see par.mli).

   One global, persistent worker pool.  Domains are spawned lazily the
   first time a fan-out requests them, sized by the requested [jobs]
   (never by the width of a task list), and reused for every later
   fan-out: steady-state per-iteration overhead is a few atomic
   operations and [min (jobs-1) (n-1)] condition-variable signals —
   no [Domain.spawn], no fresh mutex/condvar pair, no full-pool
   broadcast.  Workers self-schedule task indices from a shared atomic
   counter, so a skewed task delays only the tasks behind it on that
   worker, not a statically assigned chunk.  Idle workers sleep on a
   condition variable; an [at_exit] hook wakes and joins them so the
   runtime's end-of-program domain join does not hang on the pool. *)

let backend = "domains"
let available = true
let default_jobs () = Domain.recommended_domain_count ()

(* the runtime caps live domains at 128; leave headroom for the main
   domain and any the application spawns itself *)
let max_workers = 120

(* ------------------------------------------------------------------ *)
(* pool state (all [mutable] fields guarded by [m])                     *)
(* ------------------------------------------------------------------ *)

(* One fan-out.  The three atomics are the whole scheduling protocol:
   [next] hands out task indices, [slots] hands out worker slots
   (caller = 0, participating pool workers claim 1, 2, ...; a worker
   drawing a slot >= [jobs] bows out), and [pending] counts tasks not
   yet settled — each participant decrements it once, by its batch of
   completed tasks, and whoever brings it to zero wakes the caller.
   The RMW chain on [pending] is also what publishes every
   participant's non-atomic writes (result slots, per-worker state) to
   the caller. *)
type job = {
  n : int;
  jobs : int;
  body : worker:int -> int -> unit;  (* wrapped: never raises *)
  next : int Atomic.t;
  slots : int Atomic.t;
  pending : int Atomic.t;
}

let m = Mutex.create ()
let start = Condition.create () (* a new fan-out was published *)
let finished = Condition.create () (* some fan-out's last task settled *)
let generation = ref 0
let current : job option ref = ref None
let workers : unit Domain.t list ref = ref []
let worker_count = ref 0
let shutting_down = ref false

let pool_size () =
  Mutex.lock m;
  let n = !worker_count in
  Mutex.unlock m;
  n

(* a domain already inside a fan-out (worker, or caller running its
   own share) must not start a nested one on the same pool: nested
   calls run inline instead of deadlocking *)
let in_fanout = Domain.DLS.new_key (fun () -> ref false)

(* claim task indices until the counter drains; returns the number of
   tasks this participant settled *)
let drain (j : job) ~worker =
  let rec loop completed =
    let i = Atomic.fetch_and_add j.next 1 in
    if i >= j.n then completed
    else begin
      j.body ~worker i;
      loop (completed + 1)
    end
  in
  loop 0

(* batch the completion decrement: one RMW per participant per
   fan-out, and only the last settler takes the lock to wake the
   caller.  [broadcast] (not [signal]) because concurrent top-level
   fan-outs share the condvar: a consumed signal meant for the other
   caller would deadlock it, and there is at most a handful of waiters
   ever. *)
let settle (j : job) completed =
  if
    completed > 0
    && Atomic.fetch_and_add j.pending (-completed) = completed
  then begin
    Mutex.lock m;
    Condition.broadcast finished;
    Mutex.unlock m
  end

let participate (j : job) =
  let slot = Atomic.fetch_and_add j.slots 1 in
  if slot < j.jobs then begin
    let flag = Domain.DLS.get in_fanout in
    flag := true;
    let completed = drain j ~worker:slot in
    flag := false;
    settle j completed
  end

let rec worker last_gen =
  Mutex.lock m;
  while !generation = last_gen && not !shutting_down do
    Condition.wait start m
  done;
  let gen = !generation in
  let job = !current in
  let stop = !shutting_down in
  Mutex.unlock m;
  if not stop then begin
    (match job with Some j -> participate j | None -> ());
    worker gen
  end

let () =
  at_exit (fun () ->
      Mutex.lock m;
      shutting_down := true;
      Condition.broadcast start;
      Mutex.unlock m;
      List.iter Domain.join !workers;
      workers := [])

(* Resident workers the pool may hold: one per core beyond the calling
   domain, never more than requested.  The hardware cap is not an
   optimization nicety: every live domain joins each stop-the-world
   minor-GC rendezvous, and on a machine with fewer cores than domains
   that rendezvous is all context switches — measured 13x on an
   allocating loop with three idle domains on one core.  Spawning only
   what the hardware can run is what makes [-j 4] on a small container
   degrade to the sequential path instead of a 3x GC tax. *)
let target_workers jobs =
  min (min (jobs - 1) (default_jobs () - 1)) max_workers

let ensure_workers ~jobs =
  let target = target_workers jobs in
  if target > !worker_count then begin
    Mutex.lock m;
    while !worker_count < target && not !shutting_down do
      incr worker_count;
      (* read the generation under [m] so the new worker's first wait
         cannot miss a fan-out published before it was spawned *)
      let gen0 = !generation in
      workers := Domain.spawn (fun () -> worker gen0) :: !workers
    done;
    Mutex.unlock m
  end

let run_inline n body =
  for i = 0 to n - 1 do
    body ~worker:0 i
  done;
  0.

let run_tasks ~jobs n body =
  if n <= 0 then 0.
  else
    let flag = Domain.DLS.get in_fanout in
    if n = 1 || jobs <= 1 || !flag then run_inline n body
    else begin
      ensure_workers ~jobs;
      (* deterministic error selection: keep the lowest failing task
         index, raise it after the whole fan-out settles *)
      let err : (int * exn * Printexc.raw_backtrace) option Atomic.t =
        Atomic.make None
      in
      let rec record i e bt =
        let cur = Atomic.get err in
        match cur with
        | Some (i0, _, _) when i0 < i -> ()
        | _ ->
            if not (Atomic.compare_and_set err cur (Some (i, e, bt))) then
              record i e bt
      in
      let wrapped ~worker i =
        try body ~worker i
        with e -> record i e (Printexc.get_raw_backtrace ())
      in
      let j =
        {
          n;
          jobs;
          body = wrapped;
          next = Atomic.make 0;
          slots = Atomic.make 1;
          pending = Atomic.make n;
        }
      in
      Mutex.lock m;
      incr generation;
      current := Some j;
      (* wake proportionally to the work: never more workers than
         there are tasks beyond the caller's first, and never the
         whole pool for a narrow fan-out *)
      let to_wake = min (min (jobs - 1) (n - 1)) !worker_count in
      for _ = 1 to to_wake do
        Condition.signal start
      done;
      Mutex.unlock m;
      (* the caller is always worker 0 *)
      flag := true;
      let completed = drain j ~worker:0 in
      flag := false;
      settle j completed;
      let idle =
        if Atomic.get j.pending = 0 then 0.
        else begin
          let t0 = Unix.gettimeofday () in
          Mutex.lock m;
          while Atomic.get j.pending > 0 do
            Condition.wait finished m
          done;
          Mutex.unlock m;
          Unix.gettimeofday () -. t0
        end
      in
      (* drop the pool's reference so the job's closures and the
         caller's result slots are not retained until the next fan-out *)
      Mutex.lock m;
      (match !current with
      | Some j' when j' == j -> current := None
      | _ -> ());
      Mutex.unlock m;
      (match Atomic.get err with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      idle
    end

let run_list (fs : (unit -> 'a) list) : 'a list =
  match fs with
  | [] -> []
  | [ f ] -> [ f () ]
  | fs ->
      let thunks = Array.of_list fs in
      let n = Array.length thunks in
      let results = Array.make n None in
      ignore
        (run_tasks ~jobs:(min n (default_jobs ())) n (fun ~worker:_ i ->
             results.(i) <- Some (thunks.(i) ())));
      Array.to_list (Array.map Option.get results)
