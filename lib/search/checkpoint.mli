(** Durable snapshots of the anytime search (ROADMAP's checkpoint/resume
    item): the frontier, the best-so-far configuration, the trace, the
    budget's ticket count, and (optionally) the {!Cost_engine} memo
    table, serialized so an interrupted ([stopped <> `Converged]) search
    can continue in a later {e process} instead of restarting from the
    initial configuration.

    {b What a snapshot captures.}  Search state is stored as data, never
    as closures: configurations are p-schema terms (an exact structural
    codec for {!Xschema.t}, statistics annotations included, so a
    decoded configuration costs bit-identically to the original — the
    [%.0f]-rounded {!Xschema.pp_with_stats} notation is deliberately
    {e not} used), steps are {!Space.step} terms, and counters are ints.
    What is {e not} captured: the workload, the cost-model parameters,
    and the budget limits — the caller supplies those again on resume
    (they are inputs of the search, not state of it), and
    {!Search.resume} continues through the same iteration barrier the
    snapshot was taken at.

    {b Wire format.}  A snapshot file is one header line

    {v LEGODB-CKPT <version> <crc32-hex> <payload-bytes> v}

    followed by exactly [<payload-bytes>] of payload.  The payload is a
    portable line/length-prefixed text encoding (floats travel as [%h]
    hex literals, so costs and statistics round-trip bit-exactly); the
    CRC-32 (IEEE) of the payload guards against torn or corrupted
    files.  The encoding contains nothing OCaml-version-specific — no
    [Marshal] — so a snapshot written by a 4.14 build resumes under 5.x
    and vice versa.  {!save} writes atomically (tmp file + rename), so
    a crash mid-write leaves either the old snapshot or none. *)

open Legodb_xtype
open Legodb_transform

exception Corrupt of string
(** The file is not a usable snapshot.  The message is a single line
    naming the defect — bad magic, unsupported version, truncation,
    checksum mismatch, or a malformed payload — and the CLI maps the
    exception to exit code 7.  A corrupt snapshot is never silently
    treated as "start from scratch". *)

type failure = {
  f_iteration : int;
  f_step : Space.step;
  f_stage : string;
  f_class : string;
  f_message : string;
}
(** One candidate the costing pipeline failed on; the canonical type
    behind {!Search.failure} (re-exported there). *)

type trace_entry = {
  iteration : int;
  cost : float;
  step : Space.step option;
  tables : int;
  engine : Cost_engine.snapshot;
  failures : failure list;
}
(** One completed iteration; the canonical type behind
    {!Search.trace_entry} (re-exported there). *)

type point =
  | Greedy of { g_schema : Xschema.t; g_cost : float; g_threshold : float }
      (** greedy descent: the current configuration and its cost *)
  | Beam of {
      b_frontier : (Xschema.t * float) list;  (** kept configs, in order *)
      b_best_schema : Xschema.t;
      b_best_cost : float;
      b_seen : string list;  (** blacklisted catalog fingerprints *)
      b_barren : int;  (** levels since the last improvement *)
      b_width : int;
      b_patience : int;
    }  (** beam search: the whole frontier plus the best-so-far *)

type state = {
  strategy : string;
      (** ["greedy"], ["greedy_so"], ["greedy_si"], or ["beam"] — the
          strategy identity; {!Search.resume} dispatches on it *)
  kinds : Space.kind list;  (** transformation kinds being explored *)
  max_iterations : int;
  iteration : int;  (** completed iterations (beam levels) *)
  evaluations : int;
      (** budget tickets drawn by the completed iterations — the value
          at the snapshot's barrier, {e excluding} any tickets a later
          abandoned iteration drew, so a resumed evaluation budget trips
          at exactly the same candidate as an uninterrupted run's *)
  trace : trace_entry list;  (** iteration 0 first *)
  failures : failure list;  (** iteration then candidate order *)
  point : point;
  cache : (string * float) list;
      (** {!Cost_engine} memo entries for a warm resume; [[]] means a
          cold resume recomputes them (bit-identical either way — the
          cache is pure memoization) *)
}

val save : path:string -> state -> unit
(** Serialize and write atomically and durably
    ({!Legodb_wire.Wire.write_atomic}): the snapshot is written to
    [path ^ ".tmp"], fsynced, renamed over [path], and the parent
    directory is fsynced — so readers never observe a half-written
    file, and a completed save survives power loss, not just process
    death.  @raise Sys_error / [Unix.Unix_error] on I/O failure. *)

val load : string -> state
(** Read and validate a snapshot: magic, version, payload length, and
    CRC are checked before any decoding.  @raise Corrupt (see above)
    and [Sys_error] if the file cannot be read. *)

val encode : state -> string
(** The full file image ({!save} without the I/O): header line plus
    checksummed payload. *)

val decode : string -> state
(** Inverse of {!encode}.  @raise Corrupt *)

val equal : state -> state -> bool
(** Structural equality, statistics annotations and float bit-patterns
    included — the property the codec round-trip tests assert. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of a string; exposed so tests can forge headers
    with valid checksums.  (Alias of {!Legodb_wire.Wire.crc32}.) *)

(** {1 Schema codec}

    The exact structural p-schema codec (statistics annotations
    included), exported so other durable artifacts — the query server's
    storage snapshot — embed configurations with the same
    bit-exactness.  Unlike {!load}/{!decode}, these raise
    {!Legodb_wire.Wire.Corrupt}, which the embedding artifact wraps in
    its own error. *)

val write_schema : Buffer.t -> Xschema.t -> unit
val read_schema : Legodb_wire.Wire.cursor -> Xschema.t

