(** Incremental, per-query cost evaluation for the search loop.

    Every greedy/beam iteration costs every neighbor configuration, yet
    a single inline/outline step perturbs only a handful of tables and
    leaves most queries' plans untouched.  The engine exploits this:
    it memoizes each statement's optimizer cost under the key
    [(statement index, fingerprints of the tables it touches)], where
    the fingerprints come from {!Mapping.table_fingerprints}.  A cached
    cost is reused exactly when every table the statement reads or
    writes is structurally unchanged (columns, statistics, indexes,
    cardinality, and parents) — in which case the optimizer would
    recompute the identical float, so cached and cold costs are
    bit-identical: the cache is a pure memoization, not an
    approximation.

    The fingerprints anonymize type-name-derived identifiers, so
    structurally identical configurations reached by different
    transformation orders (which generate different fresh names) also
    hit. *)

exception Cost_error of string
(** Raised when a configuration cannot be costed (mapping or
    translation failure) — same meaning as {!Search.Cost_error}. *)

type fault = {
  stage : string;
      (** pipeline stage that failed: ["mapping"], ["translate"],
          ["optimize"], or ["inject"] *)
  exn_class : string;
      (** exception class: ["Mapping_error"], ["Untranslatable"],
          ["Cost_timeout"], or ["Injected"] — a stable name for fault
          accounting *)
  message : string;  (** the underlying error message *)
}
(** One candidate configuration the pipeline could not cost.
    {!cost_result} returns these; {!cost} folds them into
    {!Cost_error}.  Every fault is also counted in the snapshot. *)

type snapshot = {
  evaluations : int;  (** configurations costed (engine calls) *)
  hits : int;  (** statement costings answered from the cache *)
  misses : int;  (** statement costings computed by the optimizer *)
  faults : int;  (** configurations the pipeline failed to cost *)
  t_mapping : float;  (** seconds deriving relational catalogs *)
  t_translate : float;  (** seconds translating the workload *)
  t_optimize : float;  (** seconds in the relational optimizer *)
}

val empty_snapshot : snapshot

type t

val create :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  ?memoize:bool ->
  ?oracle:bool ->
  ?inject:(string -> bool) ->
  ?per_query_timeout_ms:float ->
  ?clock:(unit -> float) ->
  workload:Legodb_xquery.Workload.t ->
  unit ->
  t
(** An engine for one fixed workload (and optional update mix).
    [~memoize:false] disables the cache — every statement is costed
    from scratch, which is the reference behaviour benchmarks compare
    against.  [~oracle:true] re-costs every cache hit from scratch and
    raises [Invalid_argument] if the cached float differs — the
    self-checking mode the equivalence tests run in.

    [?inject] is a deterministic fault-injection hook for testing the
    search's fault accounting: it receives
    [Legodb_xtype.Xschema.to_string] of each configuration {e before}
    any pipeline work, and returning [true] makes the costing fail
    with a fault of stage ["inject"].  Because the hook is a pure
    function of the configuration, an injected fault fires identically
    for every [~jobs] value and on every revisit — a search with
    injected faults must select exactly what a search with those
    candidates filtered out would.

    [?per_query_timeout_ms] bounds each {e statement} costing (the
    ROADMAP's per-query cost timeout).  The optimizer is not
    preemptible between [?check] polls, so the bound is enforced
    cooperatively: a statement whose costing overruns it makes the
    whole configuration fail with a fault of stage ["optimize"] and
    class ["Cost_timeout"], abandoning its remaining statements — a
    pathological query charges the budget one overrun, not the rest of
    the wall clock.  Unset (the default) means unbounded, preserving
    the bit-identical determinism guarantees; with a timeout set,
    which candidates fault can depend on machine speed.

    [?clock] (default [Unix.gettimeofday]) is the time source for the
    per-phase timers and the per-query timeout — injectable so tests
    drive the timeout deterministically with a fake clock. *)

(** Every costing entry point takes an optional [?check] hook, called
    once at entry before any work: a cooperative cancellation point.
    The search passes {!Budget.tick}, so an exhausted budget (or a
    tripped interrupt) raises {!Budget.Exhausted} out of the costing —
    including from inside in-flight parallel chunks, which notice at
    their next candidate and stop promptly. *)

val statement_key :
  kind:char ->
  index:int ->
  (string, string) Hashtbl.t ->
  string list ->
  string
(** The engine's cache key for one statement: [kind] (['q'] query /
    ['u'] update, or any caller-chosen discriminator), the statement's
    index, and the sorted fingerprints of the tables it touches, looked
    up in a {!Mapping.fingerprint_index} hashtable (unknown tables
    fingerprint as their name).  Exported so other statement-keyed
    caches — notably the query server's compiled-plan cache — share the
    engine's invalidation semantics: an entry is reusable exactly when
    every touched table is structurally unchanged (columns, statistics,
    indexes, cardinality, parents). *)

val cost : ?check:(unit -> unit) -> t -> Legodb_xtype.Xschema.t -> float
(** Cost one configuration: derive the catalog, translate the
    workload, and sum per-statement costs, serving structurally
    unchanged statements from the cache.  Produces the same float as
    {!Search.pschema_cost} with the same arguments.
    @raise Cost_error when the configuration cannot be costed. *)

val cost_result :
  ?check:(unit -> unit) ->
  t ->
  Legodb_xtype.Xschema.t ->
  (float, fault) result
(** [cost] with failures as structured {!fault} records instead of a
    raised {!Cost_error}; the engine's fault counter is bumped either
    way. *)

val cost_opt :
  ?check:(unit -> unit) -> t -> Legodb_xtype.Xschema.t -> float option
(** [cost] with {!Cost_error} mapped to [None]. *)

(** {1 Worker shards}

    Parallel neighbor costing ({!Search.greedy} and friends with
    [~jobs] > 1) splits the engine into a {e read-mostly frozen view}
    plus per-worker private deltas.  During a fan-out the engine is
    {!freeze}-frozen: its memo table is read-only shared state that
    every worker probes lock-free, and each worker slot costs
    candidates through its own {!shard} — a view that reads the frozen
    cache and records new entries and counters privately.  At the
    iteration barrier {!merge} publishes the deltas back in
    worker-slot order (a deterministic order; first-wins on duplicate
    keys).

    Determinism: because the cache is pure memoization, a probed key's
    value — and therefore every candidate's cost — is bit-identical to
    a sequential run's whatever the scheduling, and the post-merge
    memo {e key set} is exactly the keys the candidate list probes, so
    the merged cache contents are scheduling-independent too.  Only
    the hit/miss {e split} (and the wall-clock timers, as always)
    depends on which worker happened to cost which chunk.

    Shards are cheap but not free; {!worker_shards} keeps a persistent
    pool of them on the engine, reused across iterations, strategies,
    and searches — {!merge} resets a shard instead of consuming it,
    and {!discard_shards} abandons a fan-out without publishing
    anything. *)

type shard

val shard : t -> shard
(** A fresh shard of [t].  Between creating a batch of shards and
    {!merge}-ing them, cost configurations only through the shards (or
    concurrently reading [t] via {!snapshot}); do not call {!cost} on
    [t] itself, which would write the shared cache under the readers.
    (Fan-outs that also {!freeze} the engine get that misuse detected
    instead of relying on discipline.) *)

val worker_shards : t -> int -> shard array
(** [worker_shards t n] — the engine's persistent worker shards,
    [max n 1] of them (slot-indexed, for {!Par.run_tasks}'s [~worker]
    argument).  Grown on demand, never shrunk; the same shard objects
    are returned on every call, so state {e not} yet published must be
    {!merge}d or {!discard_shards}-discarded before the next fan-out
    starts. *)

val freeze : t -> unit
(** Mark a parallel fan-out in flight: until {!merge} or
    {!discard_shards}, the engine is a read-mostly view and {!cost}
    (and friends) on [t] itself raise [Invalid_argument] — costing
    must go through the shards.  @raise Invalid_argument if already
    frozen. *)

val discard_shards : t -> unit
(** Abandon an in-flight fan-out wholesale: reset every pool shard
    (cache deltas {e and} counters are dropped, nothing reaches the
    engine) and un-freeze.  What the budget-exhausted iteration path
    uses so an abandoned iteration leaves the engine bit-identical to
    its barrier state. *)

val shard_cost :
  ?check:(unit -> unit) -> shard -> Legodb_xtype.Xschema.t -> float
(** {!cost} against the shard's view: hits come from the shard's own
    new entries or the shared cache; misses are recorded privately.
    @raise Cost_error when the configuration cannot be costed. *)

val shard_cost_result :
  ?check:(unit -> unit) ->
  shard ->
  Legodb_xtype.Xschema.t ->
  (float, fault) result
(** [shard_cost] with failures as structured {!fault} records. *)

val shard_cost_opt :
  ?check:(unit -> unit) -> shard -> Legodb_xtype.Xschema.t -> float option
(** [shard_cost] with {!Cost_error} mapped to [None]. *)

val shard_snapshot : shard -> snapshot
(** The shard's private counters (zeroed again by {!merge}). *)

val merge : t -> shard list -> unit
(** Publish the shards' new cache entries and counters into the
    engine, in list order: entries already present (seeded by an
    earlier shard in the list) keep their first value — the floats are
    identical anyway — and counters are summed left to right.  The
    search passes the worker shards in slot order, so the publication
    order is deterministic even though each shard's contents depend on
    scheduling (see the section comment: the merged cache is
    scheduling-independent regardless).  Resets each merged shard so a
    double [merge] cannot double-count and pool shards are ready for
    the next fan-out; un-freezes the engine.
    @raise Invalid_argument on a shard of a different engine. *)

val snapshot : t -> snapshot
(** Cumulative counters since [create]. *)

(** {1 Cache persistence}

    A checkpoint can carry the memo table so a resumed search starts
    warm; because the cache is pure memoization, a warm and a cold
    resume return bit-identical results — only the hit/miss counters
    and timers differ. *)

val cache_entries : t -> (string * float) list
(** The memo table as (key, cost) pairs, sorted by key so the same
    engine state always serializes to the same bytes. *)

val seed_cache : t -> (string * float) list -> unit
(** Preload memo entries (e.g. from {!Checkpoint.state.cache}) into a
    fresh engine before resuming. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] — per-phase deltas, e.g. one iteration's. *)

val hit_rate : snapshot -> float
(** Hits over lookups, in [0,1]; [0.] before any lookup. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
