(* Sequential fallback, selected when the compiler has no Domain
   support (OCaml 4.14 — see par.mli).  Must stay 4.14-compatible.
   Tasks run inline in index order, so the first exception to
   propagate is the lowest-index failure by construction. *)

let backend = "sequential"
let available = false
let default_jobs () = 1
let pool_size () = 0
let ensure_workers ~jobs = ignore jobs

let run_tasks ~jobs n body =
  ignore jobs;
  for i = 0 to n - 1 do
    body ~worker:0 i
  done;
  0.

let run_list fs = List.map (fun f -> f ()) fs
