(* Sequential fallback, selected when the compiler has no Domain
   support (OCaml 4.14 — see par.mli).  Must stay 4.14-compatible. *)

let backend = "sequential"
let available = false
let default_jobs () = 1
let run_list fs = List.map (fun f -> f ()) fs
