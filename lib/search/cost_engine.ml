module Mapping = Legodb_mapping.Mapping
module Xq_translate = Legodb_mapping.Xq_translate
module Rschema = Legodb_relational.Rschema
module Optimizer = Legodb_optimizer.Optimizer
module Cost = Legodb_optimizer.Cost

exception Cost_error of string

type fault = { stage : string; exn_class : string; message : string }

(* internal carrier: costing failures travel as [Fault] inside the
   engine so the public entry points can both account them and decide
   whether to surface a [Cost_error] ([cost]) or a value ([cost_result]) *)
exception Fault of fault

type snapshot = {
  evaluations : int;
  hits : int;
  misses : int;
  faults : int;
  t_mapping : float;
  t_translate : float;
  t_optimize : float;
}

let empty_snapshot =
  {
    evaluations = 0;
    hits = 0;
    misses = 0;
    faults = 0;
    t_mapping = 0.;
    t_translate = 0.;
    t_optimize = 0.;
  }

(* the mutable counter block, shared in shape between the engine proper
   and its worker shards so both feed the same costing code *)
type counters = {
  mutable evaluations : int;
  mutable hits : int;
  mutable misses : int;
  mutable faults : int;
  mutable t_mapping : float;
  mutable t_translate : float;
  mutable t_optimize : float;
}

let fresh_counters () =
  {
    evaluations = 0;
    hits = 0;
    misses = 0;
    faults = 0;
    t_mapping = 0.;
    t_translate = 0.;
    t_optimize = 0.;
  }

type t = {
  params : Cost.params option;
  workload_indexes : bool;
  queries : (Legodb_xquery.Xq_ast.t * float) array;
  updates : (Legodb_xquery.Xq_ast.update * float) array;
  memoize : bool;
  oracle : bool;
  inject : (string -> bool) option;
  per_query_timeout_ms : float option;
  clock : unit -> float;
  cache : (string, float) Hashtbl.t;
  c : counters;
  (* [frozen] marks a parallel fan-out in flight: the engine is then a
     read-mostly view (workers probe [cache], nothing writes it) and
     direct costing through the engine is a caller bug.  [pool] is the
     engine's persistent worker shards, one per worker slot, reused
     across iterations, strategies, and searches — [merge] resets a
     shard instead of consuming it. *)
  mutable frozen : bool;
  mutable pool : shard array;
}

and shard = {
  base : t;
  fresh : (string, float) Hashtbl.t;
  sc : counters;
}

let create ?params ?(workload_indexes = false) ?(updates = [])
    ?(memoize = true) ?(oracle = false) ?inject ?per_query_timeout_ms
    ?(clock = Unix.gettimeofday) ~workload () =
  {
    params;
    workload_indexes;
    queries = Array.of_list workload;
    updates = Array.of_list updates;
    memoize;
    oracle;
    inject;
    per_query_timeout_ms;
    clock;
    cache = Hashtbl.create 256;
    c = fresh_counters ();
    frozen = false;
    pool = [||];
  }

(* The cache key of one statement: its position in the workload plus
   the sorted fingerprints of the tables it touches.  Sorting the
   fingerprints (not the table names) keeps the key independent of the
   fresh type names a transformation order happens to generate, so
   structurally identical configurations reached by different step
   orders hit the same entry.  [fps] is the per-pass
   {!Mapping.fingerprint_index} hashtable, so each touched table costs
   one O(1) probe rather than an assoc-list walk over the catalog. *)
let key ~kind ~index fps tables =
  let fp t =
    match Hashtbl.find_opt fps t with Some f -> f | None -> "?" ^ t
  in
  Printf.sprintf "%c%d|%s" kind index
    (String.concat "\x00" (List.sort String.compare (List.map fp tables)))

(* the same keying, exported: the serve plan cache reuses it so a
   compiled physical plan is invalidated exactly when a cached cost
   would be — when a touched table's fingerprint changed *)
let statement_key = key

(* One costing pass, generic over where cache lookups/insertions and
   counter bumps land: the engine itself ([cost]) or a worker shard
   ([shard_cost]).  Keeping a single body is what guarantees the
   sequential and sharded paths price a configuration identically.

   [check] is the cooperative cancellation point (see Budget): it runs
   before any work — and before the evaluation is counted — so an
   exhausted budget abandons the configuration without charging it.
   Failures leave as [Fault] records naming the pipeline stage and the
   exception class, so the search can account each skipped candidate
   instead of silently dropping it. *)
let cost_into ?(check = ignore) ~find ~add (t : t) (c : counters) schema =
  check ();
  c.evaluations <- c.evaluations + 1;
  (match t.inject with
  | Some p when p (Legodb_xtype.Xschema.to_string schema) ->
      raise
        (Fault
           {
             stage = "inject";
             exn_class = "Injected";
             message = "injected fault";
           })
  | _ -> ());
  let now = t.clock in
  let t0 = now () in
  let m =
    match Mapping.of_pschema schema with
    | Error es ->
        raise
          (Fault
             {
               stage = "mapping";
               exn_class = "Mapping_error";
               message = String.concat "; " es;
             })
    | Ok m -> m
  in
  c.t_mapping <- c.t_mapping +. (now () -. t0);
  let t1 = now () in
  let queries, updates =
    match
      ( Array.map
          (fun (q, w) -> (Xq_translate.translate_with_tables m q, w))
          t.queries,
        Array.map
          (fun (u, w) -> (Xq_translate.translate_update_with_tables m u, w))
          t.updates )
    with
    | qs, us -> (qs, us)
    | exception Xq_translate.Untranslatable msg ->
        raise
          (Fault
             {
               stage = "translate";
               exn_class = "Untranslatable";
               message = msg;
             })
  in
  c.t_translate <- c.t_translate +. (now () -. t1);
  let catalog =
    if t.workload_indexes then
      Rschema.add_indexes m.Mapping.catalog
        (Xq_translate.equality_columns
           (Array.to_list (Array.map (fun ((q, _), _) -> q) queries)))
    else m.Mapping.catalog
  in
  (* fingerprints are computed on the catalog the optimizer sees, so
     workload-granted indexes are part of the invalidation key *)
  let fps = lazy (Mapping.fingerprint_index catalog) in
  let costed kind index tables fresh =
    let compute () =
      let t2 = now () in
      let v = fresh () in
      let dt = now () -. t2 in
      c.t_optimize <- c.t_optimize +. dt;
      (* a statement that overran the per-query bound poisons the whole
         configuration: costing it to completion was unavoidable (the
         optimizer is not preemptible between [?check] polls), but the
         remaining statements are abandoned and the candidate is
         accounted as a structured fault instead of eating the budget *)
      (match t.per_query_timeout_ms with
      | Some limit when dt *. 1000. > limit ->
          raise
            (Fault
               {
                 stage = "optimize";
                 exn_class = "Cost_timeout";
                 message =
                   Printf.sprintf
                     "statement %c%d took %.1f ms (per-query timeout %.1f ms)"
                     kind index (dt *. 1000.) limit;
               })
      | _ -> ());
      v
    in
    if not t.memoize then compute ()
    else
      let k = key ~kind ~index (Lazy.force fps) tables in
      match find k with
      | Some v ->
          if t.oracle then begin
            let fresh_v = compute () in
            if not (Float.equal v fresh_v) then
              invalid_arg
                (Printf.sprintf
                   "Cost_engine: cache divergence on statement %c%d (cached \
                    %h, fresh %h)"
                   kind index v fresh_v)
          end;
          c.hits <- c.hits + 1;
          v
      | None ->
          let v = compute () in
          c.misses <- c.misses + 1;
          add k v;
          v
  in
  (* exactly Optimizer.mixed_workload_cost's summation order, so a warm
     engine and a cold cost agree bit for bit *)
  let total = ref 0. in
  Array.iteri
    (fun i ((q, tables), weight) ->
      let v =
        costed 'q' i tables (fun () ->
            Optimizer.query_scalar_cost ?params:t.params catalog q)
      in
      total := !total +. (weight *. v))
    queries;
  let wtotal = ref 0. in
  Array.iteri
    (fun i ((u, tables), weight) ->
      let v =
        costed 'u' i tables (fun () ->
            Optimizer.write_cost ?params:t.params catalog u)
      in
      wtotal := !wtotal +. (weight *. v))
    updates;
  !total +. !wtotal

let engine_cost ?check t schema =
  if t.frozen then
    invalid_arg
      "Cost_engine: engine is frozen (parallel fan-out in flight); cost \
       through its worker shards instead";
  cost_into ?check
    ~find:(fun k -> Hashtbl.find_opt t.cache k)
    ~add:(fun k v -> Hashtbl.replace t.cache k v)
    t t.c schema

let cost_result ?check t schema =
  match engine_cost ?check t schema with
  | v -> Ok v
  | exception Fault f ->
      t.c.faults <- t.c.faults + 1;
      Error f

let cost ?check t schema =
  match cost_result ?check t schema with
  | Ok v -> v
  | Error f -> raise (Cost_error (Printf.sprintf "%s: %s" f.stage f.message))

let cost_opt ?check t schema =
  match cost_result ?check t schema with Ok c -> Some c | Error _ -> None

(* ------------------------------------------------------------------ *)
(* worker shards                                                       *)
(* ------------------------------------------------------------------ *)

let shard t = { base = t; fresh = Hashtbl.create 64; sc = fresh_counters () }

(* persistent per-worker shards: grown on demand, never shrunk, reused
   across fan-outs (merge resets a shard rather than consuming it) *)
let worker_shards t n =
  let n = max n 1 in
  let have = Array.length t.pool in
  if have < n then
    t.pool <-
      Array.init n (fun i -> if i < have then t.pool.(i) else shard t);
  if Array.length t.pool = n then t.pool else Array.sub t.pool 0 n

let freeze t =
  if t.frozen then invalid_arg "Cost_engine: already frozen";
  t.frozen <- true

let reset_shard sh =
  Hashtbl.reset sh.fresh;
  sh.sc.evaluations <- 0;
  sh.sc.hits <- 0;
  sh.sc.misses <- 0;
  sh.sc.faults <- 0;
  sh.sc.t_mapping <- 0.;
  sh.sc.t_translate <- 0.;
  sh.sc.t_optimize <- 0.

(* abandon a fan-out wholesale: nothing a worker computed — cache
   entries or counters — reaches the engine, exactly as if the shards
   had been dropped on the floor (but reusable) *)
let discard_shards t =
  Array.iter reset_shard t.pool;
  t.frozen <- false

let shard_cost_result ?check sh schema =
  match
    cost_into ?check
      ~find:(fun k ->
        match Hashtbl.find_opt sh.fresh k with
        | Some _ as r -> r
        | None -> Hashtbl.find_opt sh.base.cache k)
      ~add:(fun k v -> Hashtbl.replace sh.fresh k v)
      sh.base sh.sc schema
  with
  | v -> Ok v
  | exception Fault f ->
      sh.sc.faults <- sh.sc.faults + 1;
      Error f

let shard_cost ?check sh schema =
  match shard_cost_result ?check sh schema with
  | Ok v -> v
  | Error f -> raise (Cost_error (Printf.sprintf "%s: %s" f.stage f.message))

let shard_cost_opt ?check sh schema =
  match shard_cost_result ?check sh schema with
  | Ok c -> Some c
  | Error _ -> None

let merge t shards =
  t.frozen <- false;
  List.iter
    (fun sh ->
      if sh.base != t then
        invalid_arg "Cost_engine.merge: shard belongs to a different engine";
      Hashtbl.iter
        (fun k v -> if not (Hashtbl.mem t.cache k) then Hashtbl.add t.cache k v)
        sh.fresh;
      t.c.evaluations <- t.c.evaluations + sh.sc.evaluations;
      t.c.hits <- t.c.hits + sh.sc.hits;
      t.c.misses <- t.c.misses + sh.sc.misses;
      t.c.faults <- t.c.faults + sh.sc.faults;
      t.c.t_mapping <- t.c.t_mapping +. sh.sc.t_mapping;
      t.c.t_translate <- t.c.t_translate +. sh.sc.t_translate;
      t.c.t_optimize <- t.c.t_optimize +. sh.sc.t_optimize;
      (* a merged shard must not contribute twice; resetting (not
         consuming) it is what lets the persistent pool shards be
         reused by the next fan-out *)
      reset_shard sh)
    shards

(* sorted so a snapshot of the cache is deterministic: the on-disk
   checkpoint of a given search state is byte-identical regardless of
   hash-table iteration order *)
let cache_entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cache []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let seed_cache t entries =
  List.iter (fun (k, v) -> Hashtbl.replace t.cache k v) entries

let snapshot_of (c : counters) : snapshot =
  {
    evaluations = c.evaluations;
    hits = c.hits;
    misses = c.misses;
    faults = c.faults;
    t_mapping = c.t_mapping;
    t_translate = c.t_translate;
    t_optimize = c.t_optimize;
  }

let snapshot t = snapshot_of t.c
let shard_snapshot sh = snapshot_of sh.sc

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    evaluations = a.evaluations - b.evaluations;
    hits = a.hits - b.hits;
    misses = a.misses - b.misses;
    faults = a.faults - b.faults;
    t_mapping = a.t_mapping -. b.t_mapping;
    t_translate = a.t_translate -. b.t_translate;
    t_optimize = a.t_optimize -. b.t_optimize;
  }

let hit_rate (s : snapshot) =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0. else float_of_int s.hits /. float_of_int lookups

let pp_snapshot fmt (s : snapshot) =
  Format.fprintf fmt
    "%d configurations costed, %d statement costings (%d cached, %.0f%% hit \
     rate); mapping %.3fs, translate %.3fs, optimize %.3fs"
    s.evaluations (s.hits + s.misses) s.hits
    (100. *. hit_rate s)
    s.t_mapping s.t_translate s.t_optimize;
  if s.faults > 0 then
    Format.fprintf fmt "; %d uncostable configuration%s skipped" s.faults
      (if s.faults = 1 then "" else "s")
