module Mapping = Legodb_mapping.Mapping
module Xq_translate = Legodb_mapping.Xq_translate
module Rschema = Legodb_relational.Rschema
module Optimizer = Legodb_optimizer.Optimizer
module Cost = Legodb_optimizer.Cost

exception Cost_error of string

type snapshot = {
  evaluations : int;
  hits : int;
  misses : int;
  t_mapping : float;
  t_translate : float;
  t_optimize : float;
}

let empty_snapshot =
  {
    evaluations = 0;
    hits = 0;
    misses = 0;
    t_mapping = 0.;
    t_translate = 0.;
    t_optimize = 0.;
  }

type t = {
  params : Cost.params option;
  workload_indexes : bool;
  queries : (Legodb_xquery.Xq_ast.t * float) array;
  updates : (Legodb_xquery.Xq_ast.update * float) array;
  memoize : bool;
  oracle : bool;
  cache : (string, float) Hashtbl.t;
  mutable evaluations : int;
  mutable hits : int;
  mutable misses : int;
  mutable t_mapping : float;
  mutable t_translate : float;
  mutable t_optimize : float;
}

let create ?params ?(workload_indexes = false) ?(updates = [])
    ?(memoize = true) ?(oracle = false) ~workload () =
  {
    params;
    workload_indexes;
    queries = Array.of_list workload;
    updates = Array.of_list updates;
    memoize;
    oracle;
    cache = Hashtbl.create 256;
    evaluations = 0;
    hits = 0;
    misses = 0;
    t_mapping = 0.;
    t_translate = 0.;
    t_optimize = 0.;
  }

let now = Unix.gettimeofday

(* The cache key of one statement: its position in the workload plus
   the sorted fingerprints of the tables it touches.  Sorting the
   fingerprints (not the table names) keeps the key independent of the
   fresh type names a transformation order happens to generate, so
   structurally identical configurations reached by different step
   orders hit the same entry. *)
let key ~kind ~index fps tables =
  let fp t =
    match List.assoc_opt t fps with Some f -> f | None -> "?" ^ t
  in
  Printf.sprintf "%c%d|%s" kind index
    (String.concat "\x00" (List.sort String.compare (List.map fp tables)))

let cost t schema =
  t.evaluations <- t.evaluations + 1;
  let t0 = now () in
  let m =
    match Mapping.of_pschema schema with
    | Error es -> raise (Cost_error (String.concat "; " es))
    | Ok m -> m
  in
  t.t_mapping <- t.t_mapping +. (now () -. t0);
  let t1 = now () in
  let queries, updates =
    match
      ( Array.map
          (fun (q, w) -> (Xq_translate.translate_with_tables m q, w))
          t.queries,
        Array.map
          (fun (u, w) -> (Xq_translate.translate_update_with_tables m u, w))
          t.updates )
    with
    | qs, us -> (qs, us)
    | exception Xq_translate.Untranslatable msg -> raise (Cost_error msg)
  in
  t.t_translate <- t.t_translate +. (now () -. t1);
  let catalog =
    if t.workload_indexes then
      Rschema.add_indexes m.Mapping.catalog
        (Xq_translate.equality_columns
           (Array.to_list (Array.map (fun ((q, _), _) -> q) queries)))
    else m.Mapping.catalog
  in
  (* fingerprints are computed on the catalog the optimizer sees, so
     workload-granted indexes are part of the invalidation key *)
  let fps = lazy (Mapping.table_fingerprints catalog) in
  let costed kind index tables fresh =
    let compute () =
      let t2 = now () in
      let c = fresh () in
      t.t_optimize <- t.t_optimize +. (now () -. t2);
      c
    in
    if not t.memoize then compute ()
    else
      let k = key ~kind ~index (Lazy.force fps) tables in
      match Hashtbl.find_opt t.cache k with
      | Some c ->
          if t.oracle then begin
            let fresh_c = compute () in
            if not (Float.equal c fresh_c) then
              invalid_arg
                (Printf.sprintf
                   "Cost_engine: cache divergence on statement %c%d (cached \
                    %h, fresh %h)"
                   kind index c fresh_c)
          end;
          t.hits <- t.hits + 1;
          c
      | None ->
          let c = compute () in
          t.misses <- t.misses + 1;
          Hashtbl.replace t.cache k c;
          c
  in
  (* exactly Optimizer.mixed_workload_cost's summation order, so a warm
     engine and a cold cost agree bit for bit *)
  let total = ref 0. in
  Array.iteri
    (fun i ((q, tables), weight) ->
      let c =
        costed 'q' i tables (fun () ->
            Optimizer.query_scalar_cost ?params:t.params catalog q)
      in
      total := !total +. (weight *. c))
    queries;
  let wtotal = ref 0. in
  Array.iteri
    (fun i ((u, tables), weight) ->
      let c =
        costed 'u' i tables (fun () ->
            Optimizer.write_cost ?params:t.params catalog u)
      in
      wtotal := !wtotal +. (weight *. c))
    updates;
  !total +. !wtotal

let cost_opt t schema =
  match cost t schema with c -> Some c | exception Cost_error _ -> None

let snapshot t =
  {
    evaluations = t.evaluations;
    hits = t.hits;
    misses = t.misses;
    t_mapping = t.t_mapping;
    t_translate = t.t_translate;
    t_optimize = t.t_optimize;
  }

let diff (a : snapshot) (b : snapshot) =
  {
    evaluations = a.evaluations - b.evaluations;
    hits = a.hits - b.hits;
    misses = a.misses - b.misses;
    t_mapping = a.t_mapping -. b.t_mapping;
    t_translate = a.t_translate -. b.t_translate;
    t_optimize = a.t_optimize -. b.t_optimize;
  }

let hit_rate (s : snapshot) =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0. else float_of_int s.hits /. float_of_int lookups

let pp_snapshot fmt (s : snapshot) =
  Format.fprintf fmt
    "%d configurations costed, %d statement costings (%d cached, %.0f%% hit \
     rate); mapping %.3fs, translate %.3fs, optimize %.3fs"
    s.evaluations (s.hits + s.misses) s.hits
    (100. *. hit_rate s)
    s.t_mapping s.t_translate s.t_optimize
