(** Parallel evaluation backend for the search loop.

    The implementation is selected at build time (dune [select]):
    [par_domains.ml] runs tasks on a persistent pool of [Domain]s on
    OCaml >= 5 — the selection is keyed on the [runtime_events]
    library, which ships with the compiler from 5.0 — and [par_seq.ml]
    is the sequential fallback for 4.14.

    The primitive is {!run_tasks}: a fan-out of [n] {e indexed} tasks,
    self-scheduled from a shared counter onto at most [jobs] workers.
    Callers split their work into fine-grained, order-indexed chunks
    (many more chunks than workers, so skewed task costs stop
    serializing behind the slowest static chunk) and write each task's
    result into a slot keyed by its index.  Everything that makes
    parallel search deterministic — index-keyed result slots,
    per-worker {!Cost_engine} shards merged in worker-slot order,
    sequential reductions — lives in the caller, so both backends
    drive the identical reduction code.

    {2 Pool sizing policy}

    The pool is global, persistent, and sized by the {e requested
    parallelism}, never by the width of any one fan-out: a call with
    [~jobs] ensures at most [jobs - 1] resident workers (the calling
    domain is always worker 0).  Two caps apply.  Hardware:
    [default_jobs () - 1] — a live domain joins every stop-the-world
    minor-GC rendezvous whether it has work or not, so domains beyond
    the core count are a pure GC tax (measured 13x on an allocating
    loop with three idle domains on one core); oversubscribed [jobs]
    degrade gracefully toward the sequential path instead of paying
    it.  Runtime: 120 workers, to stay under the runtime's 128-domain
    limit.  The pool only grows, to the largest capped request so far;
    idle workers sleep on a condition variable between fan-outs.
    Workers are spawned lazily on first use, reused for every later
    fan-out (no [Domain.spawn], mutex or condition-variable allocation
    per iteration), and joined by an [at_exit] hook.  Waking is
    proportional to the work enqueued: a fan-out of [n] tasks signals
    at most [min (jobs - 1) (n - 1)] resident workers, not the whole
    pool. *)

val backend : string
(** ["domains"] or ["sequential"] — which implementation was built. *)

val available : bool
(** [true] iff {!run_tasks} can actually overlap task execution. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] on the domains backend, [1]
    on the sequential one.  What a [~jobs:0] request resolves to. *)

val pool_size : unit -> int
(** Resident pool workers (excluding the calling domain): the largest
    capped request ensured so far (see the pool sizing policy).  [0]
    on the sequential backend.  Exposed for tests and diagnostics. *)

val ensure_workers : jobs:int -> unit
(** Grow the pool to [min (jobs - 1) (default_jobs () - 1)] resident
    workers, capped at 120 (never shrinks).  {!run_tasks} calls this
    itself; exposing it lets a caller pre-spawn the pool outside a
    timed region. *)

val run_tasks : jobs:int -> int -> (worker:int -> int -> unit) -> float
(** [run_tasks ~jobs n body] runs [body ~worker i] exactly once for
    every task index [i] in [0 .. n-1] and returns only after all [n]
    tasks have settled.  Tasks are self-scheduled: each participating
    worker repeatedly claims the next unclaimed index from a shared
    atomic counter, so an expensive task delays only the tasks behind
    it on that worker, not a statically assigned chunk.  At most
    [jobs] workers participate; the calling domain always participates
    as [worker = 0], pool workers claim slots [1 .. jobs - 1], and
    every claimed [worker] slot is occupied by exactly one domain for
    the whole fan-out — the slot index is the caller's handle for
    persistent per-worker state (e.g. {!Cost_engine} worker shards).

    The float returned is the seconds the {e caller} spent idle at the
    completion barrier after the task counter drained — stragglers it
    had to wait for ([0.] when it finished last or ran everything
    itself); the search surfaces it as [t_barrier_idle].

    Memory publication: a task's writes (result slots, per-worker
    state) happen-before the caller's return, via the atomic
    completion counter.

    If any task's [body] raises, the fan-out still runs every task to
    settlement (later tasks typically notice a tripped budget at their
    own cooperative poll), then re-raises the exception of the {e
    lowest} failing task index, with its backtrace — so error
    selection is deterministic whatever the scheduling.

    [run_tasks] fan-outs are serialized on the global pool; a
    re-entrant call from inside a task body (or [jobs <= 1], or
    [n <= 1]) runs its tasks inline on the calling domain, which keeps
    the call safe (and correct, just not parallel) instead of
    deadlocking.  On the sequential backend the tasks run inline in
    index order and the first exception propagates immediately — it is
    the lowest-index failure by construction. *)

val run_list : (unit -> 'a) list -> 'a list
(** Convenience one-shot fan-out over {!run_tasks}: run the thunks —
    overlapped on the domains backend, left to right on the sequential
    one — and return their results in submission order.  Parallelism
    and pool growth are capped at {!default_jobs} regardless of the
    list's width (a 50-thunk list on a 4-core machine occupies 4
    workers, not 50 — see the pool sizing policy above).  If any thunk
    raises, the whole call raises the leftmost failing thunk's
    exception (with its backtrace) after every thunk has settled. *)
