(** Parallel evaluation backend for the search loop.

    The implementation is selected at build time (dune [select]):
    [par_domains.ml] runs thunks on a pool of [Domain]s on OCaml >= 5
    — the selection is keyed on the [runtime_events] library, which
    ships with the compiler from 5.0 — and [par_seq.ml] is the
    sequential fallback for 4.14.

    The contract is deliberately small: callers split their work into
    at most [jobs] order-preserving chunks and submit one thunk per
    chunk; {!run_list} only promises the results back in submission
    order.  Everything that makes parallel search deterministic (static
    chunking, per-chunk {!Cost_engine} shards, ordered merges) lives in
    the caller, so both backends drive the identical reduction code. *)

val backend : string
(** ["domains"] or ["sequential"] — which implementation was built. *)

val available : bool
(** [true] iff {!run_list} can actually overlap thunk execution. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] on the domains backend, [1]
    on the sequential one.  What a [~jobs:0] request resolves to. *)

val run_list : (unit -> 'a) list -> 'a list
(** Run the thunks — concurrently on the domains backend, left to
    right on the sequential one — and return their results in
    submission order.  The calling domain executes the first thunk
    itself, so [n] thunks occupy at most [n] cores.  If any thunk
    raises, the whole call raises the leftmost failing thunk's
    exception (with its backtrace) after every thunk has settled. *)
