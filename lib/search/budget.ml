(* Shared mutable budget state.  Everything is an [Atomic] or
   immutable, so parallel chunks (par_domains.ml) and signal handlers
   can read/trip it without locks; see budget.mli for the determinism
   argument behind the ticket counter. *)

type reason = [ `Deadline | `Iterations | `Cost_budget | `Interrupted ]

exception Exhausted of reason

type t = {
  deadline : float option;  (* absolute Unix time *)
  max_iterations : int option;
  max_evaluations : int option;
  evals : int Atomic.t;  (* tickets drawn *)
  intr : bool Atomic.t;
}

let create ?wall_ms ?max_iterations ?max_evaluations () =
  {
    deadline =
      Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.)) wall_ms;
    max_iterations;
    max_evaluations;
    evals = Atomic.make 0;
    intr = Atomic.make false;
  }

let unlimited () = create ()

(* resume accounting: pre-draw the tickets a previous process spent so
   a cumulative evaluation budget trips at the same candidate *)
let charge t n = if n > 0 then ignore (Atomic.fetch_and_add t.evals n)
let interrupt t = Atomic.set t.intr true
let interrupted t = Atomic.get t.intr
let evaluations t = Atomic.get t.evals

(* [>=] so a zero-millisecond budget stops before the first iteration
   even on a coarse clock *)
let over_deadline t =
  match t.deadline with
  | Some d -> Unix.gettimeofday () >= d
  | None -> false

let poll t =
  if Atomic.get t.intr then raise (Exhausted `Interrupted);
  if over_deadline t then raise (Exhausted `Deadline)

let tick t =
  poll t;
  let ticket = Atomic.fetch_and_add t.evals 1 in
  match t.max_evaluations with
  | Some m when ticket >= m -> raise (Exhausted `Cost_budget)
  | _ -> ()

let stop_at_iteration t iterations =
  if Atomic.get t.intr then Some `Interrupted
  else if over_deadline t then Some `Deadline
  else
    match t.max_iterations with
    | Some m when iterations >= m -> Some `Iterations
    | _ -> (
        (* a spent evaluation budget would abort the next iteration's
           first costing anyway; stopping here reports it cleanly *)
        match t.max_evaluations with
        | Some m when Atomic.get t.evals >= m -> Some `Cost_budget
        | _ -> None)
