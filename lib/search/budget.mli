(** Effort budgets and cooperative cancellation for the search loop.

    The paper's greedy search (Algorithm 4.1) runs to convergence; a
    budget turns every strategy into an {e anytime} algorithm: the
    search returns the best configuration found within a wall-clock
    deadline, an iteration cap, or a cap on configurations costed —
    or when the caller (e.g. a [SIGINT] handler) interrupts it.

    A budget is a small piece of shared mutable state, safe to read
    and trip from any domain: the search polls it cooperatively —
    once per configuration inside {!Cost_engine} and once per
    iteration at the barrier — so in-flight parallel chunks notice an
    exhausted budget at their next candidate and stop promptly.

    {b Determinism.}  The evaluation cap is enforced with an atomic
    ticket counter: every costed configuration draws one ticket, and a
    costing whose ticket number is at or past the cap aborts the
    iteration.  Whether an iteration completes therefore depends only
    on (tickets drawn before it, its candidate count) — never on
    scheduling — so a search budgeted by iterations or evaluations
    returns the {e same} best-so-far prefix of the unbudgeted trace
    for every [~jobs] value.  Deadlines and interrupts stop at a
    nondeterministic iteration, but the result is still always a
    best-so-far prefix of the unbudgeted run. *)

type reason = [ `Deadline | `Iterations | `Cost_budget | `Interrupted ]
(** Why a budgeted search stopped short of convergence. *)

exception Exhausted of reason
(** Raised by {!poll} and {!tick} at a cooperative cancellation
    point; the search catches it at the iteration barrier, abandons
    the in-flight iteration, and returns the best-so-far result. *)

type t

val create :
  ?wall_ms:float -> ?max_iterations:int -> ?max_evaluations:int -> unit -> t
(** A budget; omitted limits are unlimited.  [wall_ms] arms an
    absolute deadline [wall_ms] milliseconds from the call;
    [max_iterations] caps completed search iterations (beam levels);
    [max_evaluations] caps candidate configurations costed (the
    initial configuration is always costed and does not draw a
    ticket, so the search always has a result to return). *)

val unlimited : unit -> t
(** [create ()]: no limits; still interruptible. *)

val interrupt : t -> unit
(** Trip the budget from anywhere — a signal handler, another domain.
    Async-signal-safe (a single atomic store). *)

val interrupted : t -> bool

val evaluations : t -> int
(** Tickets drawn so far (candidate configurations costed). *)

val charge : t -> int -> unit
(** Pre-draw [n] tickets without costing anything.  {!Search.resume}
    charges a fresh budget with the snapshot's ticket count, so a
    cumulative [max_evaluations] across stop/resume cycles trips at
    exactly the same candidate as it would in one uninterrupted run. *)

val poll : t -> unit
(** Cooperative cancellation point without a ticket: raises
    {!Exhausted} on a tripped interrupt or a passed deadline. *)

val tick : t -> unit
(** {!poll}, then draw one evaluation ticket; raises [Exhausted
    `Cost_budget] when the ticket is at or past [max_evaluations]. *)

val stop_at_iteration : t -> int -> reason option
(** Barrier check before starting iteration [n + 1], where [n]
    iterations are complete: the reason the search must stop now, if
    any ([`Iterations] when [n] has reached [max_iterations],
    [`Cost_budget] when the evaluation budget is already spent, plus
    the {!poll} conditions). *)
