(** The greedy search of Algorithm 4.1.

    Each iteration evaluates every single-step transformation of the
    current p-schema ([ApplyTransformations]) with the relational
    optimizer ([GetPSchemaCost]) and moves to the cheapest neighbour,
    stopping when no step improves the cost (or when the improvement
    falls below a relative threshold, the optimization suggested in
    Section 5.2).

    All strategies evaluate configurations through {!Cost_engine}, so
    per-query costs are memoized across neighbours and iterations; the
    [engine] fields of {!trace_entry} and {!result} report how much
    work the cache saved.

    Every strategy also accepts [~jobs]: with [jobs > 1] (and an OCaml
    5 build — see {!Par}) the neighbors of an iteration are costed
    concurrently on [jobs] per-chunk engine shards, merged back in
    chunk order at the iteration barrier.  Candidates are always
    reduced sequentially in [Space.neighbors] order with the first-wins
    tie-break, so the selected schema, its cost, and the trace are
    bit-identical for every [jobs] value; only wall-clock time and the
    cache hit/miss counters vary (chunks cannot see each other's
    in-flight entries, so [jobs > 1] may record more misses).
    [~jobs:0] auto-detects one job per core; the default is [1].

    Every strategy also accepts [?budget] (see {!Budget}), making it
    an {e anytime} algorithm: when the budget trips — deadline,
    iteration cap, evaluation cap, or interrupt — the in-flight
    iteration is abandoned wholesale and the search returns the best
    configuration over the {e completed} iterations, with
    [result.stopped] naming the reason.  A search budgeted by
    iterations or evaluations returns exactly the same best-so-far
    prefix of the unbudgeted trace for every [jobs] value (see the
    determinism note in {!Budget}).

    Candidates the costing pipeline cannot price are no longer
    silently dropped: each one yields a {!failure} record (step,
    pipeline stage, exception class, message) in its iteration's
    {!trace_entry} and in [result.failures], and is counted in the
    engine snapshots. *)

open Legodb_xtype
open Legodb_transform

exception Cost_error of string
(** Raised when a configuration cannot be costed (mapping or
    translation failure) — indicates a schema outside the supported
    fragment.  The same exception as {!Cost_engine.Cost_error}. *)

val pschema_cost :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  workload:Legodb_xquery.Workload.t ->
  Xschema.t ->
  float
(** [GetPSchemaCost]: derive the relational catalog and statistics,
    translate the workload, and return its weighted optimizer cost.
    By default only the keys and foreign keys the mapping generates are
    indexed (the paper's setting); [~workload_indexes:true] additionally
    grants an index on every column the workload compares to a constant,
    modelling a tuned installation.  [?updates] adds weighted update
    statements to the objective (Section 7's future-work extension):
    wider tables and deeper outlining both make writes more expensive,
    so update-heavy workloads pull the search toward fewer, narrower
    tables.

    Implemented as a one-shot uncached {!Cost_engine} — the engine is
    the canonical costing pipeline, and an engine created by
    {!Cost_engine.create} with the same arguments produces bit-identical
    floats. *)

(** {1 The parallel costing seam}

    With [jobs > 1] each iteration's candidates are split by
    {!chunk_list} into fine-grained chunks (several per worker,
    decoupled from [jobs]), self-scheduled onto {!Par}'s persistent
    worker pool, and costed on the engine's persistent per-worker
    shards against a frozen read-only memo view (see
    {!Cost_engine.worker_shards}); the shards publish back in
    worker-slot order at the iteration barrier.  The seam is
    instrumented: {!seam_stats} reports where fan-out wall clock went
    since the last {!seam_reset}. *)

val chunk_list : int -> 'a list -> 'a list list
(** [chunk_list n l] splits [l] into at most [n] contiguous chunks of
    near-equal length (sizes differ by at most one, longer chunks
    first), preserving order: concatenating the chunks yields [l].  A
    pure function of [(n, l)] — never of scheduling — which is what
    makes the parallel fan-out's bookkeeping deterministic.  [n <= 1]
    yields one chunk; an empty [l] yields no chunks. *)

type seam_stats = {
  s_fanouts : int;  (** parallel fan-outs (costing + fingerprint passes) *)
  s_t_fanout : float;  (** seconds inside [Par.run_tasks] *)
  s_t_merge : float;  (** seconds publishing shard deltas at barriers *)
  s_t_barrier_idle : float;
      (** seconds the fan-out caller idled at barriers behind
          stragglers — the skew the self-scheduling is there to keep
          small *)
}
(** Cumulative parallel-seam timings.  Process-wide and written by the
    domain driving a search; meaningful when one search runs at a
    time (the bench's situation).  Sequential runs ([jobs <= 1]) never
    touch it. *)

val seam_reset : unit -> unit
val seam_stats : unit -> seam_stats

type stopped =
  [ `Converged  (** no neighbor improves: the algorithm's own stop *)
  | `Deadline  (** wall-clock budget expired *)
  | `Iterations  (** iteration cap reached (budget or [max_iterations]) *)
  | `Cost_budget  (** evaluation budget spent *)
  | `Interrupted  (** {!Budget.interrupt} tripped, e.g. by [SIGINT] *) ]
(** Why the search returned: convergence, or the {!Budget.reason} that
    cut it short. *)

val stopped_string : stopped -> string
(** Stable lowercase name (["converged"], ["deadline"], …) for logs
    and JSON. *)

val pp_stopped : Format.formatter -> stopped -> unit

type failure = Checkpoint.failure = {
  f_iteration : int;  (** iteration (or beam level) that costed it *)
  f_step : Space.step;  (** the transformation that built the candidate *)
  f_stage : string;  (** pipeline stage, as {!Cost_engine.fault} *)
  f_class : string;  (** exception class, as {!Cost_engine.fault} *)
  f_message : string;
}
(** One candidate configuration the costing pipeline failed on.  The
    search skips the candidate (it cannot win the iteration) but
    records the failure instead of dropping it silently. *)

val pp_failure : Format.formatter -> failure -> unit

type trace_entry = Checkpoint.trace_entry = {
  iteration : int;
  cost : float;
  step : Space.step option;  (** [None] for the initial configuration *)
  tables : int;  (** size of the configuration's catalog *)
  engine : Cost_engine.snapshot;
      (** this iteration's engine work: configurations costed, cache
          hits/misses, faults, per-layer wall time (iteration 0 carries
          the initial configuration's evaluation) *)
  failures : failure list;
      (** candidates this iteration could not cost, in candidate
          order *)
}

type result = {
  schema : Xschema.t;  (** the selected configuration *)
  cost : float;
  trace : trace_entry list;  (** iteration 0 first *)
  engine : Cost_engine.snapshot;  (** whole-search engine totals *)
  stopped : stopped;  (** why the search returned *)
  failures : failure list;
      (** every uncostable candidate over the whole search, in
          iteration then candidate order (includes iterations whose
          trace entry was not kept) *)
}

val greedy :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  ?kinds:Space.kind list ->
  ?threshold:float ->
  ?max_iterations:int ->
  ?jobs:int ->
  ?memoize:bool ->
  ?engine:Cost_engine.t ->
  ?budget:Budget.t ->
  ?checkpoint:string * int ->
  workload:Legodb_xquery.Workload.t ->
  Xschema.t ->
  result
(** Greedy descent from the given p-schema.  [kinds] defaults to
    {!Space.default_kinds} (inline/outline); [threshold] (default [0.])
    stops early when the relative improvement drops below it;
    [max_iterations] defaults to 200.  [~memoize:false] disables the
    cost cache (reference mode for benchmarks; results are identical
    either way).

    [?engine] reuses an existing {!Cost_engine.t} instead of creating a
    fresh one, so successive searches (a re-run after a workload tweak,
    a beam pass after a greedy pass) share one cache and hit on every
    configuration already costed.  The engine's own workload, updates
    and parameters apply; [?params], [?workload_indexes], [?updates]
    and [?memoize] are then ignored, and the caller must pass a
    [~workload] consistent with the engine's.  The [engine] fields of
    the result and trace report the {e delta} incurred by this search,
    so they compose with a shared engine.

    [?checkpoint:(path, every)] makes the search durable: a
    {!Checkpoint} snapshot of the barrier state is written atomically
    to [path] every [every] completed iterations and on {e every} stop
    — converged, budget exhausted, or interrupted — so a process
    killed mid-search (or stopped by [SIGINT], which the CLI turns
    into {!Budget.interrupt}) leaves a snapshot {!resume} can continue
    from. *)

val greedy_so :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  ?kinds:Space.kind list ->
  ?threshold:float ->
  ?max_iterations:int ->
  ?jobs:int ->
  ?memoize:bool ->
  ?engine:Cost_engine.t ->
  ?budget:Budget.t ->
  ?checkpoint:string * int ->
  workload:Legodb_xquery.Workload.t ->
  Xschema.t ->
  result
(** The paper's [greedy-so]: start from the all-outlined configuration
    and explore inlining steps ([kinds] defaults to [[K_inline]]).
    All optional arguments are forwarded to {!greedy}. *)

val greedy_si :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  ?kinds:Space.kind list ->
  ?threshold:float ->
  ?max_iterations:int ->
  ?jobs:int ->
  ?memoize:bool ->
  ?engine:Cost_engine.t ->
  ?budget:Budget.t ->
  ?checkpoint:string * int ->
  workload:Legodb_xquery.Workload.t ->
  Xschema.t ->
  result
(** The paper's [greedy-si]: start from the all-inlined configuration
    and explore outlining steps ([kinds] defaults to [[K_outline]]).
    All optional arguments are forwarded to {!greedy}. *)

val pp_trace : Format.formatter -> trace_entry list -> unit

val beam :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  ?kinds:Space.kind list ->
  ?width:int ->
  ?patience:int ->
  ?max_iterations:int ->
  ?jobs:int ->
  ?memoize:bool ->
  ?engine:Cost_engine.t ->
  ?budget:Budget.t ->
  ?checkpoint:string * int ->
  workload:Legodb_xquery.Workload.t ->
  Xschema.t ->
  result
(** Beam search over transformation sequences (the "dynamic programming
    search strategies" of Section 7's future work): keeps the [width]
    (default 4) cheapest {e distinct} configurations per level —
    distinctness judged by {!Mapping.catalog_fingerprint}, which is
    independent of the fresh type names a step order generates — and
    can therefore cross small cost hills the greedy descent cannot (it
    stops after [patience] levels without improvement, default 3).
    Returns the best configuration seen. *)

val resume :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  ?jobs:int ->
  ?memoize:bool ->
  ?engine:Cost_engine.t ->
  ?budget:Budget.t ->
  ?checkpoint:string * int ->
  ?max_iterations:int ->
  ?warm:bool ->
  workload:Legodb_xquery.Workload.t ->
  string ->
  result
(** Continue an interrupted search from a {!Checkpoint} snapshot file.
    The snapshot supplies the state and the search identity — strategy,
    transformation kinds, threshold / width / patience, iteration and
    trace so far, and the budget ticket count ({!Budget.charge}d into
    the fresh budget so a cumulative evaluation cap trips at the same
    candidate) — while the caller re-supplies the {e inputs}: the
    workload, updates, cost-model parameters, and fresh budget, which
    must match the original run's for the bit-identity guarantee to
    hold.  Because a snapshot always captures an iteration barrier and
    abandoned iterations record nothing, stopping at any point and
    resuming yields bit-identical cost, schema, trace, and failures to
    the uninterrupted run, for every strategy and every [~jobs] value.

    [~warm] (default [true]) seeds the engine's memo table from the
    snapshot; [~warm:false] starts cold — results are bit-identical
    either way, only the hit/miss counters and wall time differ.
    [?max_iterations] overrides the snapshot's cap (e.g. to let a run
    stopped by [`Iterations] continue); [?checkpoint] keeps the resumed
    run checkpointing, typically to the same path.

    @raise Checkpoint.Corrupt if the file fails validation (bad magic,
    version, length, checksum, or payload) — a corrupt snapshot is an
    error, never a silent restart. *)
