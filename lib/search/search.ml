open Legodb_xtype
open Legodb_transform
module Mapping = Legodb_mapping.Mapping

exception Cost_error = Cost_engine.Cost_error

(* GetPSchemaCost delegates to a one-shot engine: Cost_engine is the
   canonical mapping → translate → optimize pipeline, and keeping a
   second copy here was a drift hazard (the engine's docs promise the
   two agree bit for bit). *)
let pschema_cost ?params ?workload_indexes ?updates ~workload schema =
  let eng =
    Cost_engine.create ?params ?workload_indexes ?updates ~memoize:false
      ~workload ()
  in
  Cost_engine.cost eng schema

(* ------------------------------------------------------------------ *)
(* parallel neighbor costing                                           *)
(* ------------------------------------------------------------------ *)

(* [~jobs:0] means "one per core" *)
let resolve_jobs jobs = if jobs <= 0 then Par.default_jobs () else jobs

(* split [l] into at most [n] contiguous chunks of near-equal length,
   preserving order — the chunking is a pure function of (n, l), which
   is what makes the parallel counters scheduling-independent *)
let chunk_list n l =
  let len = List.length l in
  if len = 0 then []
  else begin
    let n = max 1 (min n len) in
    let base = len / n and extra = len mod n in
    let rec take k l =
      if k = 0 then ([], l)
      else
        match l with
        | [] -> ([], [])
        | x :: tl ->
            let h, rest = take (k - 1) tl in
            (x :: h, rest)
    in
    let rec go i l =
      if l = [] then []
      else begin
        let sz = base + if i < extra then 1 else 0 in
        let h, rest = take sz l in
        h :: go (i + 1) rest
      end
    in
    go 0 l
  end

(* ------------------------------------------------------------------ *)
(* seam instrumentation                                                 *)
(* ------------------------------------------------------------------ *)

(* Wall-clock accounting for the parallel costing seam itself, so the
   bench can report where a fan-out's time goes instead of asserting:
   [t_fanout] is total time inside Par.run_tasks (workers costing),
   [t_barrier_idle] the part of it the calling domain spent waiting on
   stragglers after the task counter drained (skew), and [t_merge] the
   sequential shard publication at the barrier.  Process-wide state,
   written only by the domain driving a search (the fan-out caller);
   concurrent searches would interleave their timings, which the bench
   — one search at a time — never does. *)
type seam_stats = {
  s_fanouts : int;  (** parallel fan-outs (costing + fingerprint passes) *)
  s_t_fanout : float;  (** seconds inside [Par.run_tasks] *)
  s_t_merge : float;  (** seconds publishing shard deltas at barriers *)
  s_t_barrier_idle : float;
      (** seconds the caller idled at barriers behind stragglers *)
}

let seam_zero =
  { s_fanouts = 0; s_t_fanout = 0.; s_t_merge = 0.; s_t_barrier_idle = 0. }

let seam_cur = ref seam_zero
let seam_reset () = seam_cur := seam_zero
let seam_stats () = !seam_cur

let seam_add ~fanout ~merge ~idle =
  let c = !seam_cur in
  seam_cur :=
    {
      s_fanouts = c.s_fanouts + 1;
      s_t_fanout = c.s_t_fanout +. fanout;
      s_t_merge = c.s_t_merge +. merge;
      s_t_barrier_idle = c.s_t_barrier_idle +. idle;
    }

(* Logical chunk granularity: the candidate list is split into up to
   [chunk_factor] chunks per worker — decoupled from [jobs] — and the
   chunks are self-scheduled onto the workers by {!Par.run_tasks}, so
   a skewed candidate cost delays at most one chunk's tail instead of
   serializing a static 1/jobs-th of the iteration behind it.  Still a
   pure function of [(jobs, list)]. *)
let chunk_factor = 8

(* order-preserving map, fanned out as self-scheduled chunks *)
let par_map ~jobs f l =
  if jobs <= 1 || not Par.available then List.map f l
  else begin
    let chunks = Array.of_list (chunk_list (jobs * chunk_factor) l) in
    let nchunks = Array.length chunks in
    if nchunks = 0 then []
    else begin
      let out = Array.make nchunks [] in
      let t0 = Unix.gettimeofday () in
      let idle =
        Par.run_tasks ~jobs nchunks (fun ~worker:_ i ->
            out.(i) <- List.map f chunks.(i))
      in
      seam_add ~fanout:(Unix.gettimeofday () -. t0) ~merge:0. ~idle;
      List.concat (Array.to_list out)
    end
  end

(* Cost every candidate, returning [(candidate, cost-or-fault)] in
   input order.  With [jobs > 1] the engine is frozen into a read-only
   memo view, the candidates are split into fine-grained chunks
   (chunk_factor per worker) self-scheduled onto the persistent worker
   pool, and every worker slot costs its chunks on the engine's
   persistent shard for that slot — probing the frozen cache, recording
   new entries privately.  At the barrier the shards publish back in
   worker-slot order.  Costs are pure memoization, results are keyed
   by chunk index, and the merged cache contents depend only on the
   candidate list, so cost/schema/trace stay bit-identical to a
   sequential run whatever the scheduling; only the hit/miss split
   (and wall clock) varies.

   [check] (Budget.tick) runs before each candidate on every path; if
   it raises, the fan-out lets every in-flight chunk settle (they hit
   the same exhausted budget at their next candidate, so work stops
   promptly), discards the shards wholesale, and re-raises the
   lowest-index failure — the iteration is abandoned all-or-nothing
   and the engine is left bit-identical to its barrier state. *)
let par_cost eng ~check ~jobs ~schema_of candidates =
  if jobs <= 1 || not Par.available then
    List.map
      (fun c -> (c, Cost_engine.cost_result ~check eng (schema_of c)))
      candidates
  else begin
    let chunks = Array.of_list (chunk_list (jobs * chunk_factor) candidates) in
    let nchunks = Array.length chunks in
    if nchunks = 0 then []
    else begin
      let results = Array.make nchunks [] in
      let shards = Cost_engine.worker_shards eng jobs in
      Cost_engine.freeze eng;
      let t0 = Unix.gettimeofday () in
      let idle =
        try
          Par.run_tasks ~jobs nchunks (fun ~worker ci ->
              let sh = shards.(worker) in
              results.(ci) <-
                List.map
                  (fun c ->
                    (c, Cost_engine.shard_cost_result ~check sh (schema_of c)))
                  chunks.(ci))
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Cost_engine.discard_shards eng;
          Printexc.raise_with_backtrace e bt
      in
      let t1 = Unix.gettimeofday () in
      Cost_engine.merge eng (Array.to_list shards);
      seam_add ~fanout:(t1 -. t0) ~merge:(Unix.gettimeofday () -. t1) ~idle;
      List.concat (Array.to_list results)
    end
  end

type stopped =
  [ `Converged | `Deadline | `Iterations | `Cost_budget | `Interrupted ]

let stopped_string = function
  | `Converged -> "converged"
  | `Deadline -> "deadline"
  | `Iterations -> "iterations"
  | `Cost_budget -> "cost_budget"
  | `Interrupted -> "interrupted"

let pp_stopped fmt s = Format.pp_print_string fmt (stopped_string s)

(* the canonical definitions live in Checkpoint (which serializes
   them); re-exported here so the public API is unchanged *)
type failure = Checkpoint.failure = {
  f_iteration : int;
  f_step : Space.step;
  f_stage : string;
  f_class : string;
  f_message : string;
}

let pp_failure fmt f =
  Format.fprintf fmt "iteration %d: %a: %s (%s: %s)" f.f_iteration
    Space.pp_step f.f_step f.f_class f.f_stage f.f_message

type trace_entry = Checkpoint.trace_entry = {
  iteration : int;
  cost : float;
  step : Space.step option;
  tables : int;
  engine : Cost_engine.snapshot;
  failures : failure list;
}

type result = {
  schema : Xschema.t;
  cost : float;
  trace : trace_entry list;
  engine : Cost_engine.snapshot;
  stopped : stopped;
  failures : failure list;
}

(* the failure records of one costing pass, in candidate order (which
   par_cost preserves for every [jobs] value) *)
let failures_of ~iteration ~step_of costed =
  List.filter_map
    (fun (c, r) ->
      match r with
      | Ok _ -> None
      | Error (f : Cost_engine.fault) ->
          Some
            {
              f_iteration = iteration;
              f_step = step_of c;
              f_stage = f.Cost_engine.stage;
              f_class = f.Cost_engine.exn_class;
              f_message = f.Cost_engine.message;
            })
    costed

let table_count schema =
  List.length
    (List.filter
       (fun ty -> not (Mapping.is_transparent schema ty))
       (Xschema.reachable schema))

(* ------------------------------------------------------------------ *)
(* checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

(* Both strategies snapshot only {e barrier} state: the position after
   the last completed iteration, with the ticket count read at that
   barrier (in-flight iterations draw tickets nondeterministically and
   record nothing else, so excluding them is what makes resume
   bit-identical).  [trace] arrives newest-first and [failures] as
   reversed per-iteration chunks — the loops' internal accumulators —
   and is flattened here into the wire order. *)
let save_checkpoint ~checkpoint ~strategy ~kinds ~max_iterations ~eng
    ~iteration ~evaluations ~trace ~failures point =
  match checkpoint with
  | None -> ()
  | Some (path, _) ->
      Checkpoint.save ~path
        {
          Checkpoint.strategy;
          kinds;
          max_iterations;
          iteration;
          evaluations;
          trace = List.rev trace;
          failures = List.concat (List.rev failures);
          point;
          cache = Cost_engine.cache_entries eng;
        }

(* periodic snapshots fire at the barrier entering iteration
   [iteration + 1], every [every] completed iterations *)
let due ~checkpoint ~iteration =
  match checkpoint with
  | Some (_, every) when every > 0 && iteration > 0 && iteration mod every = 0
    ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* greedy descent (Algorithm 4.1)                                      *)
(* ------------------------------------------------------------------ *)

(* The loop proper, shared by a fresh search and a resumed one: a
   resumed search enters with the snapshot's barrier state and runs
   the very same code, which is the bit-identity argument in one line.
   [trace0] is newest-first; [failures0] is reversed chunks. *)
let greedy_core ~strategy ~kinds ~threshold ~max_iterations ~jobs ~ctl ~eng
    ~checkpoint ~start ~iteration0 ~schema0 ~cost0 ~trace0 ~failures0 =
  let jobs = resolve_jobs jobs in
  (* pre-spawn the worker pool outside the costing loop; it is global
     and persistent, so iterations and later searches reuse it *)
  if jobs > 1 && Par.available then Par.ensure_workers ~jobs;
  let check () = Budget.tick ctl in
  let rec descend iteration schema cost trace failures =
    (* barrier: no costing in flight, so the ticket counter is the
       deterministic per-completed-iteration value *)
    let bar_evals = Budget.evaluations ctl in
    let snap () =
      save_checkpoint ~checkpoint ~strategy ~kinds ~max_iterations ~eng
        ~iteration ~evaluations:bar_evals ~trace ~failures
        (Checkpoint.Greedy
           { g_schema = schema; g_cost = cost; g_threshold = threshold })
    in
    if due ~checkpoint ~iteration then snap ();
    match Budget.stop_at_iteration ctl iteration with
    | Some r ->
        snap ();
        (schema, cost, trace, failures, (r :> stopped))
    | None -> (
        if iteration >= max_iterations then begin
          snap ();
          (schema, cost, trace, failures, `Iterations)
        end
        else
          let before = Cost_engine.snapshot eng in
          match
            par_cost eng ~check ~jobs ~schema_of:snd
              (Space.neighbors ~kinds schema)
          with
          | exception Budget.Exhausted r ->
              (* the iteration is abandoned wholesale: the result is
                 the best-so-far over *completed* iterations, i.e. a
                 prefix of the unbudgeted trace — and the snapshot is
                 that same barrier state, so resume re-runs the
                 abandoned iteration from scratch *)
              snap ();
              (schema, cost, trace, failures, (r :> stopped))
          | costed -> (
              let iter_failures =
                failures_of ~iteration:(iteration + 1) ~step_of:fst costed
              in
              let failures' =
                match iter_failures with [] -> failures | l -> l :: failures
              in
              (* candidates are reduced sequentially in Space.neighbors
                 order with the first-wins tie-break, whatever [jobs]
                 costed them *)
              let best =
                List.fold_left
                  (fun best ((step, schema'), costed) ->
                    match costed with
                    | Error _ -> best
                    | Ok cost' -> (
                        match best with
                        | Some (_, _, bc) when bc <= cost' -> best
                        | _ -> Some (step, schema', cost')))
                  None costed
              in
              match best with
              | Some (step, schema', cost') when cost' < cost *. (1. -. threshold)
                ->
                  let entry =
                    {
                      iteration = iteration + 1;
                      cost = cost';
                      step = Some step;
                      tables = table_count schema';
                      engine = Cost_engine.diff (Cost_engine.snapshot eng) before;
                      failures = iter_failures;
                    }
                  in
                  descend (iteration + 1) schema' cost' (entry :: trace)
                    failures'
              | Some _ | None ->
                  (* converged; the snapshot is still the barrier state
                     (without this iteration's failures) — resuming it
                     re-runs the final iteration and re-converges with
                     the identical failure records *)
                  snap ();
                  (schema, cost, trace, failures', `Converged)))
  in
  let schema, cost, trace, failures, stopped =
    descend iteration0 schema0 cost0 trace0 failures0
  in
  {
    schema;
    cost;
    trace = List.rev trace;
    engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
    stopped;
    failures = List.concat (List.rev failures);
  }

let greedy_from ~strategy ?params ?workload_indexes ?updates
    ?(kinds = Space.default_kinds) ?(threshold = 0.) ?(max_iterations = 200)
    ?(jobs = 1) ?memoize ?engine ?budget ?checkpoint ~workload schema =
  let ctl = match budget with Some b -> b | None -> Budget.unlimited () in
  let eng =
    match engine with
    | Some e -> e
    | None ->
        Cost_engine.create ?params ?workload_indexes ?updates ?memoize
          ~workload ()
  in
  let start = Cost_engine.snapshot eng in
  (* the initial configuration is exempt from the budget (no ticket,
     no cancellation): anytime search always has a result to return *)
  let initial_cost =
    match Cost_engine.cost_opt eng schema with
    | Some c -> c
    | None -> raise (Cost_error "initial configuration cannot be costed")
  in
  let trace0 =
    [
      {
        iteration = 0;
        cost = initial_cost;
        step = None;
        tables = table_count schema;
        engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
        failures = [];
      };
    ]
  in
  greedy_core ~strategy ~kinds ~threshold ~max_iterations ~jobs ~ctl ~eng
    ~checkpoint ~start ~iteration0:0 ~schema0:schema ~cost0:initial_cost
    ~trace0 ~failures0:[]

let greedy ?params ?workload_indexes ?updates ?kinds ?threshold ?max_iterations
    ?jobs ?memoize ?engine ?budget ?checkpoint ~workload schema =
  greedy_from ~strategy:"greedy" ?params ?workload_indexes ?updates ?kinds
    ?threshold ?max_iterations ?jobs ?memoize ?engine ?budget ?checkpoint
    ~workload schema

let greedy_so ?params ?workload_indexes ?updates ?(kinds = [ Space.K_inline ])
    ?threshold ?max_iterations ?jobs ?memoize ?engine ?budget ?checkpoint
    ~workload schema =
  greedy_from ~strategy:"greedy_so" ?params ?workload_indexes ?updates ~kinds
    ?threshold ?max_iterations ?jobs ?memoize ?engine ?budget ?checkpoint
    ~workload (Init.all_outlined schema)

let greedy_si ?params ?workload_indexes ?updates ?(kinds = [ Space.K_outline ])
    ?threshold ?max_iterations ?jobs ?memoize ?engine ?budget ?checkpoint
    ~workload schema =
  greedy_from ~strategy:"greedy_si" ?params ?workload_indexes ?updates ~kinds
    ?threshold ?max_iterations ?jobs ?memoize ?engine ?budget ?checkpoint
    ~workload (Init.all_inlined schema)

let pp_trace fmt trace =
  List.iter
    (fun e ->
      Format.fprintf fmt "%3d  cost %12.1f  tables %3d  %a@." e.iteration e.cost
        e.tables
        (fun fmt -> function
          | Some s -> Space.pp_step fmt s
          | None -> Format.pp_print_string fmt "(initial)")
        e.step)
    trace

(* ------------------------------------------------------------------ *)
(* beam search (the "dynamic programming search strategies" of §7)     *)
(* ------------------------------------------------------------------ *)

(* A name-independent fingerprint of the relational configuration a
   schema maps to, used to prune transformation sequences that reach the
   same design through different step orders.  Fresh type names differ
   between paths, so the fingerprint uses column shapes (with their full
   statistics), not names — see Mapping.catalog_fingerprint. *)
let fingerprint schema =
  match Mapping.of_pschema schema with
  | Error _ -> Xschema.to_string schema
  | Ok m -> Mapping.catalog_fingerprint m.Mapping.catalog

(* the beam loop, shared by fresh and resumed searches just like
   [greedy_core] *)
let beam_core ~strategy ~kinds ~width ~patience ~max_iterations ~jobs ~ctl
    ~eng ~checkpoint ~start ~iteration0 ~barren0 ~frontier0 ~best0 ~seen0
    ~trace0 ~failures0 =
  let jobs = resolve_jobs jobs in
  if jobs > 1 && Par.available then Par.ensure_workers ~jobs;
  let check () = Budget.tick ctl in
  let seen = Hashtbl.create 64 in
  List.iter (fun fp -> Hashtbl.replace seen fp ()) seen0;
  let best = ref best0 in
  let trace = ref trace0 in
  let all_failures = ref failures0 in
  let rec level i barren frontier =
    (* barrier state, captured before this level mutates anything: a
       level that exits without recursing (converged, exhausted) must
       snapshot the position *entering* it, or resume would double-run
       whatever the exiting level recorded *)
    let bar_evals = Budget.evaluations ctl in
    let bar_trace = !trace in
    let bar_failures = !all_failures in
    let bar_best = !best in
    let snap () =
      let b_seen =
        List.sort String.compare
          (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
      in
      save_checkpoint ~checkpoint ~strategy ~kinds ~max_iterations ~eng
        ~iteration:i ~evaluations:bar_evals ~trace:bar_trace
        ~failures:bar_failures
        (Checkpoint.Beam
           {
             b_frontier = frontier;
             b_best_schema = fst bar_best;
             b_best_cost = snd bar_best;
             b_seen;
             b_barren = barren;
             b_width = width;
             b_patience = patience;
           })
    in
    if due ~checkpoint ~iteration:i then snap ();
    match Budget.stop_at_iteration ctl i with
    | Some r ->
        snap ();
        (r :> stopped)
    | None ->
        if i >= max_iterations then begin
          snap ();
          `Iterations
        end
        else if barren >= patience || frontier = [] then begin
          snap ();
          `Converged
        end
        else begin
          let before = Cost_engine.snapshot eng in
          (* configurations reached by commuting step orders collide:
             dedupe within the level, but blacklist globally only what
             the beam actually keeps — otherwise a discarded sibling
             blocks the path that needs the same configuration one
             level later *)
          let level_seen = Hashtbl.create 32 in
          (* fingerprinting and costing are the two expensive
             per-candidate passes; both fan out over [jobs] chunks,
             with the sequential dedupe (first occurrence wins, in
             discovery order) in between so the level is bit-identical
             to a sequential one.  Both passes poll the budget, so an
             exhausted budget abandons the level wholesale and the
             result is the best-so-far over completed levels. *)
          let raw =
            List.concat_map (fun (s, _) -> Space.neighbors ~kinds s) frontier
          in
          match
            let fingerprinted =
              par_map ~jobs
                (fun (step, s') ->
                  Budget.poll ctl;
                  (step, s', fingerprint s'))
                raw
            in
            let deduped =
              List.filter
                (fun (_, _, fp) ->
                  if Hashtbl.mem seen fp || Hashtbl.mem level_seen fp then false
                  else begin
                    Hashtbl.replace level_seen fp ();
                    true
                  end)
                fingerprinted
            in
            par_cost eng ~check ~jobs ~schema_of:(fun (_, s', _) -> s') deduped
          with
          | exception Budget.Exhausted r ->
              snap ();
              (r :> stopped)
          | costed -> (
              let level_failures =
                failures_of ~iteration:(i + 1)
                  ~step_of:(fun (step, _, _) -> step)
                  costed
              in
              if level_failures <> [] then
                all_failures := level_failures :: !all_failures;
              let candidates =
                List.filter_map
                  (fun ((step, s', fp), costed) ->
                    match costed with
                    | Ok c -> Some (step, s', c, fp)
                    | Error _ -> None)
                  costed
              in
              let sorted =
                List.sort
                  (fun (_, _, a, _) (_, _, b, _) -> Float.compare a b)
                  candidates
              in
              let keep =
                List.filteri (fun j _ -> j < width) sorted
                |> List.map (fun (step, s, c, fp) ->
                       Hashtbl.replace seen fp ();
                       (step, s, c))
              in

              match keep with
              | [] ->
                  snap ();
                  `Converged
              | (step, s0, c0) :: _ ->
                  let improved = c0 < snd !best in
                  if improved then begin
                    best := (s0, c0);
                    trace :=
                      {
                        iteration = i + 1;
                        cost = c0;
                        step = Some step;
                        tables = table_count s0;
                        engine =
                          Cost_engine.diff (Cost_engine.snapshot eng) before;
                        failures = level_failures;
                      }
                      :: !trace
                  end;
                  (* continue from every kept candidate, improving or
                     not: the beam can cross small cost hills, but gives
                     up after [patience] barren levels *)
                  level (i + 1)
                    (if improved then 0 else barren + 1)
                    (List.map (fun (_, s, c) -> (s, c)) keep))
        end
  in
  let stopped = level iteration0 barren0 frontier0 in
  let schema, cost = !best in
  {
    schema;
    cost;
    trace = List.rev !trace;
    engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
    stopped;
    failures = List.concat (List.rev !all_failures);
  }

let beam ?params ?workload_indexes ?updates ?(kinds = Space.default_kinds)
    ?(width = 4) ?(patience = 3) ?(max_iterations = 200) ?(jobs = 1) ?memoize
    ?engine ?budget ?checkpoint ~workload schema =
  let ctl = match budget with Some b -> b | None -> Budget.unlimited () in
  let eng =
    match engine with
    | Some e -> e
    | None ->
        Cost_engine.create ?params ?workload_indexes ?updates ?memoize
          ~workload ()
  in
  let start = Cost_engine.snapshot eng in
  (* the initial configuration is exempt from the budget (no ticket,
     no cancellation): anytime search always has a result to return *)
  let initial_cost =
    match Cost_engine.cost_opt eng schema with
    | Some c -> c
    | None -> raise (Cost_error "initial configuration cannot be costed")
  in
  let trace0 =
    [
      {
        iteration = 0;
        cost = initial_cost;
        step = None;
        tables = table_count schema;
        engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
        failures = [];
      };
    ]
  in
  beam_core ~strategy:"beam" ~kinds ~width ~patience ~max_iterations ~jobs
    ~ctl ~eng ~checkpoint ~start ~iteration0:0 ~barren0:0
    ~frontier0:[ (schema, initial_cost) ]
    ~best0:(schema, initial_cost)
    ~seen0:[ fingerprint schema ]
    ~trace0 ~failures0:[]

(* ------------------------------------------------------------------ *)
(* resume                                                              *)
(* ------------------------------------------------------------------ *)

let resume ?params ?workload_indexes ?updates ?(jobs = 1) ?memoize ?engine
    ?budget ?checkpoint ?max_iterations ?(warm = true) ~workload path =
  let st = Checkpoint.load path in
  let ctl = match budget with Some b -> b | None -> Budget.unlimited () in
  (* restore the cumulative ticket numbering: the tickets the previous
     process drew count against this budget's evaluation cap *)
  Budget.charge ctl st.Checkpoint.evaluations;
  let eng =
    match engine with
    | Some e -> e
    | None ->
        Cost_engine.create ?params ?workload_indexes ?updates ?memoize
          ~workload ()
  in
  (* warm resume seeds the memo table from the snapshot; a cold resume
     recomputes — bit-identical either way, the cache being pure
     memoization, so [warm] only trades disk bytes for optimizer time *)
  if warm then Cost_engine.seed_cache eng st.Checkpoint.cache;
  let start = Cost_engine.snapshot eng in
  let max_iterations =
    match max_iterations with
    | Some m -> m
    | None -> st.Checkpoint.max_iterations
  in
  let trace0 = List.rev st.Checkpoint.trace in
  let failures0 =
    match st.Checkpoint.failures with [] -> [] | l -> [ l ]
  in
  match st.Checkpoint.point with
  | Checkpoint.Greedy { g_schema; g_cost; g_threshold } ->
      greedy_core ~strategy:st.Checkpoint.strategy ~kinds:st.Checkpoint.kinds
        ~threshold:g_threshold ~max_iterations ~jobs ~ctl ~eng ~checkpoint
        ~start ~iteration0:st.Checkpoint.iteration ~schema0:g_schema
        ~cost0:g_cost ~trace0 ~failures0
  | Checkpoint.Beam
      {
        b_frontier;
        b_best_schema;
        b_best_cost;
        b_seen;
        b_barren;
        b_width;
        b_patience;
      } ->
      beam_core ~strategy:st.Checkpoint.strategy ~kinds:st.Checkpoint.kinds
        ~width:b_width ~patience:b_patience ~max_iterations ~jobs ~ctl ~eng
        ~checkpoint ~start ~iteration0:st.Checkpoint.iteration
        ~barren0:b_barren ~frontier0:b_frontier
        ~best0:(b_best_schema, b_best_cost) ~seen0:b_seen ~trace0 ~failures0
