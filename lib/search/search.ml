open Legodb_xtype
open Legodb_transform
module Mapping = Legodb_mapping.Mapping

exception Cost_error = Cost_engine.Cost_error

(* GetPSchemaCost delegates to a one-shot engine: Cost_engine is the
   canonical mapping → translate → optimize pipeline, and keeping a
   second copy here was a drift hazard (the engine's docs promise the
   two agree bit for bit). *)
let pschema_cost ?params ?workload_indexes ?updates ~workload schema =
  let eng =
    Cost_engine.create ?params ?workload_indexes ?updates ~memoize:false
      ~workload ()
  in
  Cost_engine.cost eng schema

(* ------------------------------------------------------------------ *)
(* parallel neighbor costing                                           *)
(* ------------------------------------------------------------------ *)

(* [~jobs:0] means "one per core" *)
let resolve_jobs jobs = if jobs <= 0 then Par.default_jobs () else jobs

(* split [l] into at most [n] contiguous chunks of near-equal length,
   preserving order — the chunking is a pure function of (n, l), which
   is what makes the parallel counters scheduling-independent *)
let chunk_list n l =
  let len = List.length l in
  if len = 0 then []
  else begin
    let n = max 1 (min n len) in
    let base = len / n and extra = len mod n in
    let rec take k l =
      if k = 0 then ([], l)
      else
        match l with
        | [] -> ([], [])
        | x :: tl ->
            let h, rest = take (k - 1) tl in
            (x :: h, rest)
    in
    let rec go i l =
      if l = [] then []
      else begin
        let sz = base + if i < extra then 1 else 0 in
        let h, rest = take sz l in
        h :: go (i + 1) rest
      end
    in
    go 0 l
  end

(* order-preserving map, fanned out over at most [jobs] chunks *)
let par_map ~jobs f l =
  if jobs <= 1 || not Par.available then List.map f l
  else
    chunk_list jobs l
    |> List.map (fun ch () -> List.map f ch)
    |> Par.run_list
    |> List.concat

(* cost every candidate, returning [(candidate, cost option)] in input
   order.  With [jobs > 1] each chunk costs on its own Cost_engine
   shard — reading the shared cache, recording new entries privately —
   and the shards merge back in chunk order at the barrier, so the
   costs (pure memoization) and the final cache state are identical to
   a sequential run's answers whatever the scheduling. *)
let par_cost eng ~jobs ~schema_of candidates =
  if jobs <= 1 || not Par.available then
    List.map (fun c -> (c, Cost_engine.cost_opt eng (schema_of c))) candidates
  else begin
    let tasks =
      List.map
        (fun ch ->
          let sh = Cost_engine.shard eng in
          fun () ->
            ( sh,
              List.map
                (fun c -> (c, Cost_engine.shard_cost_opt sh (schema_of c)))
                ch ))
        (chunk_list jobs candidates)
    in
    let per_chunk = Par.run_list tasks in
    Cost_engine.merge eng (List.map fst per_chunk);
    List.concat_map snd per_chunk
  end

type trace_entry = {
  iteration : int;
  cost : float;
  step : Space.step option;
  tables : int;
  engine : Cost_engine.snapshot;
}

type result = {
  schema : Xschema.t;
  cost : float;
  trace : trace_entry list;
  engine : Cost_engine.snapshot;
}

let table_count schema =
  List.length
    (List.filter
       (fun ty -> not (Mapping.is_transparent schema ty))
       (Xschema.reachable schema))

let greedy ?params ?workload_indexes ?updates ?(kinds = Space.default_kinds)
    ?(threshold = 0.) ?(max_iterations = 200) ?(jobs = 1) ?memoize ?engine
    ~workload schema =
  let jobs = resolve_jobs jobs in
  let eng =
    match engine with
    | Some e -> e
    | None ->
        Cost_engine.create ?params ?workload_indexes ?updates ?memoize
          ~workload ()
  in
  let start = Cost_engine.snapshot eng in
  let cost_of s = Cost_engine.cost_opt eng s in
  let initial_cost =
    match cost_of schema with
    | Some c -> c
    | None -> raise (Cost_error "initial configuration cannot be costed")
  in
  let rec descend iteration schema cost trace =
    if iteration >= max_iterations then (schema, cost, trace)
    else
      let before = Cost_engine.snapshot eng in
      (* candidates are reduced sequentially in Space.neighbors order
         with the first-wins tie-break, whatever [jobs] costed them *)
      let best =
        List.fold_left
          (fun best ((step, schema'), costed) ->
            match costed with
            | None -> best
            | Some cost' -> (
                match best with
                | Some (_, _, bc) when bc <= cost' -> best
                | _ -> Some (step, schema', cost')))
          None
          (par_cost eng ~jobs ~schema_of:snd (Space.neighbors ~kinds schema))
      in
      match best with
      | Some (step, schema', cost') when cost' < cost *. (1. -. threshold) ->
          let entry =
            {
              iteration = iteration + 1;
              cost = cost';
              step = Some step;
              tables = table_count schema';
              engine = Cost_engine.diff (Cost_engine.snapshot eng) before;
            }
          in
          descend (iteration + 1) schema' cost' (entry :: trace)
      | Some _ | None -> (schema, cost, trace)
  in
  let trace0 =
    [
      {
        iteration = 0;
        cost = initial_cost;
        step = None;
        tables = table_count schema;
        engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
      };
    ]
  in
  let schema, cost, trace = descend 0 schema initial_cost trace0 in
  {
    schema;
    cost;
    trace = List.rev trace;
    engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
  }

let greedy_so ?params ?workload_indexes ?updates ?(kinds = [ Space.K_inline ])
    ?threshold ?max_iterations ?jobs ?memoize ?engine ~workload schema =
  greedy ?params ?workload_indexes ?updates ~kinds ?threshold ?max_iterations
    ?jobs ?memoize ?engine ~workload (Init.all_outlined schema)

let greedy_si ?params ?workload_indexes ?updates ?(kinds = [ Space.K_outline ])
    ?threshold ?max_iterations ?jobs ?memoize ?engine ~workload schema =
  greedy ?params ?workload_indexes ?updates ~kinds ?threshold ?max_iterations
    ?jobs ?memoize ?engine ~workload (Init.all_inlined schema)

let pp_trace fmt trace =
  List.iter
    (fun e ->
      Format.fprintf fmt "%3d  cost %12.1f  tables %3d  %a@." e.iteration e.cost
        e.tables
        (fun fmt -> function
          | Some s -> Space.pp_step fmt s
          | None -> Format.pp_print_string fmt "(initial)")
        e.step)
    trace

(* ------------------------------------------------------------------ *)
(* beam search (the "dynamic programming search strategies" of §7)     *)
(* ------------------------------------------------------------------ *)

(* A name-independent fingerprint of the relational configuration a
   schema maps to, used to prune transformation sequences that reach the
   same design through different step orders.  Fresh type names differ
   between paths, so the fingerprint uses column shapes (with their full
   statistics), not names — see Mapping.catalog_fingerprint. *)
let fingerprint schema =
  match Mapping.of_pschema schema with
  | Error _ -> Xschema.to_string schema
  | Ok m -> Mapping.catalog_fingerprint m.Mapping.catalog

let beam ?params ?workload_indexes ?updates ?(kinds = Space.default_kinds)
    ?(width = 4) ?(patience = 3) ?(max_iterations = 200) ?(jobs = 1) ?memoize
    ?engine ~workload schema =
  let jobs = resolve_jobs jobs in
  let eng =
    match engine with
    | Some e -> e
    | None ->
        Cost_engine.create ?params ?workload_indexes ?updates ?memoize
          ~workload ()
  in
  let start = Cost_engine.snapshot eng in
  let cost_of s = Cost_engine.cost_opt eng s in
  let initial_cost =
    match cost_of schema with
    | Some c -> c
    | None -> raise (Cost_error "initial configuration cannot be costed")
  in
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen (fingerprint schema) ();
  let best = ref (schema, initial_cost) in
  let trace =
    ref
      [
        {
          iteration = 0;
          cost = initial_cost;
          step = None;
          tables = table_count schema;
          engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
        };
      ]
  in
  let rec level i barren frontier =
    if i >= max_iterations || barren >= patience || frontier = [] then ()
    else begin
      let before = Cost_engine.snapshot eng in
      (* configurations reached by commuting step orders collide: dedupe
         within the level, but blacklist globally only what the beam
         actually keeps — otherwise a discarded sibling blocks the path
         that needs the same configuration one level later *)
      let level_seen = Hashtbl.create 32 in
      (* fingerprinting and costing are the two expensive per-candidate
         passes; both fan out over [jobs] chunks, with the sequential
         dedupe (first occurrence wins, in discovery order) in between
         so the level is bit-identical to a sequential one *)
      let raw =
        List.concat_map (fun (s, _) -> Space.neighbors ~kinds s) frontier
      in
      let fingerprinted =
        par_map ~jobs (fun (step, s') -> (step, s', fingerprint s')) raw
      in
      let deduped =
        List.filter
          (fun (_, _, fp) ->
            if Hashtbl.mem seen fp || Hashtbl.mem level_seen fp then false
            else begin
              Hashtbl.replace level_seen fp ();
              true
            end)
          fingerprinted
      in
      let candidates =
        List.filter_map
          (fun ((step, s', fp), costed) ->
            match costed with Some c -> Some (step, s', c, fp) | None -> None)
          (par_cost eng ~jobs ~schema_of:(fun (_, s', _) -> s') deduped)
      in
      let sorted =
        List.sort (fun (_, _, a, _) (_, _, b, _) -> Float.compare a b) candidates
      in
      let keep =
        List.filteri (fun j _ -> j < width) sorted
        |> List.map (fun (step, s, c, fp) ->
               Hashtbl.replace seen fp ();
               (step, s, c))
      in

      match keep with
      | [] -> ()
      | (step, s0, c0) :: _ ->
          let improved = c0 < snd !best in
          if improved then begin
            best := (s0, c0);
            trace :=
              {
                iteration = i + 1;
                cost = c0;
                step = Some step;
                tables = table_count s0;
                engine = Cost_engine.diff (Cost_engine.snapshot eng) before;
              }
              :: !trace
          end;
          (* continue from every kept candidate, improving or not: the
             beam can cross small cost hills, but gives up after
             [patience] barren levels *)
          level (i + 1)
            (if improved then 0 else barren + 1)
            (List.map (fun (_, s, c) -> (s, c)) keep)
    end
  in
  level 0 0 [ (schema, initial_cost) ];
  let schema, cost = !best in
  {
    schema;
    cost;
    trace = List.rev !trace;
    engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
  }
