open Legodb_xtype
open Legodb_transform
module Mapping = Legodb_mapping.Mapping

exception Cost_error = Cost_engine.Cost_error

(* GetPSchemaCost delegates to a one-shot engine: Cost_engine is the
   canonical mapping → translate → optimize pipeline, and keeping a
   second copy here was a drift hazard (the engine's docs promise the
   two agree bit for bit). *)
let pschema_cost ?params ?workload_indexes ?updates ~workload schema =
  let eng =
    Cost_engine.create ?params ?workload_indexes ?updates ~memoize:false
      ~workload ()
  in
  Cost_engine.cost eng schema

(* ------------------------------------------------------------------ *)
(* parallel neighbor costing                                           *)
(* ------------------------------------------------------------------ *)

(* [~jobs:0] means "one per core" *)
let resolve_jobs jobs = if jobs <= 0 then Par.default_jobs () else jobs

(* split [l] into at most [n] contiguous chunks of near-equal length,
   preserving order — the chunking is a pure function of (n, l), which
   is what makes the parallel counters scheduling-independent *)
let chunk_list n l =
  let len = List.length l in
  if len = 0 then []
  else begin
    let n = max 1 (min n len) in
    let base = len / n and extra = len mod n in
    let rec take k l =
      if k = 0 then ([], l)
      else
        match l with
        | [] -> ([], [])
        | x :: tl ->
            let h, rest = take (k - 1) tl in
            (x :: h, rest)
    in
    let rec go i l =
      if l = [] then []
      else begin
        let sz = base + if i < extra then 1 else 0 in
        let h, rest = take sz l in
        h :: go (i + 1) rest
      end
    in
    go 0 l
  end

(* order-preserving map, fanned out over at most [jobs] chunks *)
let par_map ~jobs f l =
  if jobs <= 1 || not Par.available then List.map f l
  else
    chunk_list jobs l
    |> List.map (fun ch () -> List.map f ch)
    |> Par.run_list
    |> List.concat

(* cost every candidate, returning [(candidate, cost-or-fault)] in
   input order.  With [jobs > 1] each chunk costs on its own
   Cost_engine shard — reading the shared cache, recording new entries
   privately — and the shards merge back in chunk order at the
   barrier, so the costs (pure memoization) and the final cache state
   are identical to a sequential run's answers whatever the
   scheduling.  [check] (Budget.tick) runs before each candidate on
   every path; if it raises, Par.run_list re-raises after the other
   chunks settle — they hit the same exhausted budget at their next
   candidate, so in-flight work stops promptly and the iteration is
   abandoned wholesale (no shard is merged, keeping the barrier
   all-or-nothing). *)
let par_cost eng ~check ~jobs ~schema_of candidates =
  if jobs <= 1 || not Par.available then
    List.map
      (fun c -> (c, Cost_engine.cost_result ~check eng (schema_of c)))
      candidates
  else begin
    let tasks =
      List.map
        (fun ch ->
          let sh = Cost_engine.shard eng in
          fun () ->
            ( sh,
              List.map
                (fun c ->
                  (c, Cost_engine.shard_cost_result ~check sh (schema_of c)))
                ch ))
        (chunk_list jobs candidates)
    in
    let per_chunk = Par.run_list tasks in
    Cost_engine.merge eng (List.map fst per_chunk);
    List.concat_map snd per_chunk
  end

type stopped =
  [ `Converged | `Deadline | `Iterations | `Cost_budget | `Interrupted ]

let stopped_string = function
  | `Converged -> "converged"
  | `Deadline -> "deadline"
  | `Iterations -> "iterations"
  | `Cost_budget -> "cost_budget"
  | `Interrupted -> "interrupted"

let pp_stopped fmt s = Format.pp_print_string fmt (stopped_string s)

type failure = {
  f_iteration : int;
  f_step : Space.step;
  f_stage : string;
  f_class : string;
  f_message : string;
}

let pp_failure fmt f =
  Format.fprintf fmt "iteration %d: %a: %s (%s: %s)" f.f_iteration
    Space.pp_step f.f_step f.f_class f.f_stage f.f_message

type trace_entry = {
  iteration : int;
  cost : float;
  step : Space.step option;
  tables : int;
  engine : Cost_engine.snapshot;
  failures : failure list;
}

type result = {
  schema : Xschema.t;
  cost : float;
  trace : trace_entry list;
  engine : Cost_engine.snapshot;
  stopped : stopped;
  failures : failure list;
}

(* the failure records of one costing pass, in candidate order (which
   par_cost preserves for every [jobs] value) *)
let failures_of ~iteration ~step_of costed =
  List.filter_map
    (fun (c, r) ->
      match r with
      | Ok _ -> None
      | Error (f : Cost_engine.fault) ->
          Some
            {
              f_iteration = iteration;
              f_step = step_of c;
              f_stage = f.Cost_engine.stage;
              f_class = f.Cost_engine.exn_class;
              f_message = f.Cost_engine.message;
            })
    costed

let table_count schema =
  List.length
    (List.filter
       (fun ty -> not (Mapping.is_transparent schema ty))
       (Xschema.reachable schema))

let greedy ?params ?workload_indexes ?updates ?(kinds = Space.default_kinds)
    ?(threshold = 0.) ?(max_iterations = 200) ?(jobs = 1) ?memoize ?engine
    ?budget ~workload schema =
  let jobs = resolve_jobs jobs in
  let ctl = match budget with Some b -> b | None -> Budget.unlimited () in
  let check () = Budget.tick ctl in
  let eng =
    match engine with
    | Some e -> e
    | None ->
        Cost_engine.create ?params ?workload_indexes ?updates ?memoize
          ~workload ()
  in
  let start = Cost_engine.snapshot eng in
  (* the initial configuration is exempt from the budget (no ticket,
     no cancellation): anytime search always has a result to return *)
  let initial_cost =
    match Cost_engine.cost_opt eng schema with
    | Some c -> c
    | None -> raise (Cost_error "initial configuration cannot be costed")
  in
  let rec descend iteration schema cost trace failures =
    match Budget.stop_at_iteration ctl iteration with
    | Some r -> (schema, cost, trace, failures, (r :> stopped))
    | None -> (
        if iteration >= max_iterations then
          (schema, cost, trace, failures, `Iterations)
        else
          let before = Cost_engine.snapshot eng in
          match
            par_cost eng ~check ~jobs ~schema_of:snd
              (Space.neighbors ~kinds schema)
          with
          | exception Budget.Exhausted r ->
              (* the iteration is abandoned wholesale: the result is
                 the best-so-far over *completed* iterations, i.e. a
                 prefix of the unbudgeted trace *)
              (schema, cost, trace, failures, (r :> stopped))
          | costed -> (
              let iter_failures =
                failures_of ~iteration:(iteration + 1) ~step_of:fst costed
              in
              let failures =
                match iter_failures with [] -> failures | l -> l :: failures
              in
              (* candidates are reduced sequentially in Space.neighbors
                 order with the first-wins tie-break, whatever [jobs]
                 costed them *)
              let best =
                List.fold_left
                  (fun best ((step, schema'), costed) ->
                    match costed with
                    | Error _ -> best
                    | Ok cost' -> (
                        match best with
                        | Some (_, _, bc) when bc <= cost' -> best
                        | _ -> Some (step, schema', cost')))
                  None costed
              in
              match best with
              | Some (step, schema', cost') when cost' < cost *. (1. -. threshold)
                ->
                  let entry =
                    {
                      iteration = iteration + 1;
                      cost = cost';
                      step = Some step;
                      tables = table_count schema';
                      engine = Cost_engine.diff (Cost_engine.snapshot eng) before;
                      failures = iter_failures;
                    }
                  in
                  descend (iteration + 1) schema' cost' (entry :: trace) failures
              | Some _ | None -> (schema, cost, trace, failures, `Converged)))
  in
  let trace0 =
    [
      {
        iteration = 0;
        cost = initial_cost;
        step = None;
        tables = table_count schema;
        engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
        failures = [];
      };
    ]
  in
  let schema, cost, trace, failures, stopped =
    descend 0 schema initial_cost trace0 []
  in
  {
    schema;
    cost;
    trace = List.rev trace;
    engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
    stopped;
    failures = List.concat (List.rev failures);
  }

let greedy_so ?params ?workload_indexes ?updates ?(kinds = [ Space.K_inline ])
    ?threshold ?max_iterations ?jobs ?memoize ?engine ?budget ~workload schema =
  greedy ?params ?workload_indexes ?updates ~kinds ?threshold ?max_iterations
    ?jobs ?memoize ?engine ?budget ~workload (Init.all_outlined schema)

let greedy_si ?params ?workload_indexes ?updates ?(kinds = [ Space.K_outline ])
    ?threshold ?max_iterations ?jobs ?memoize ?engine ?budget ~workload schema =
  greedy ?params ?workload_indexes ?updates ~kinds ?threshold ?max_iterations
    ?jobs ?memoize ?engine ?budget ~workload (Init.all_inlined schema)

let pp_trace fmt trace =
  List.iter
    (fun e ->
      Format.fprintf fmt "%3d  cost %12.1f  tables %3d  %a@." e.iteration e.cost
        e.tables
        (fun fmt -> function
          | Some s -> Space.pp_step fmt s
          | None -> Format.pp_print_string fmt "(initial)")
        e.step)
    trace

(* ------------------------------------------------------------------ *)
(* beam search (the "dynamic programming search strategies" of §7)     *)
(* ------------------------------------------------------------------ *)

(* A name-independent fingerprint of the relational configuration a
   schema maps to, used to prune transformation sequences that reach the
   same design through different step orders.  Fresh type names differ
   between paths, so the fingerprint uses column shapes (with their full
   statistics), not names — see Mapping.catalog_fingerprint. *)
let fingerprint schema =
  match Mapping.of_pschema schema with
  | Error _ -> Xschema.to_string schema
  | Ok m -> Mapping.catalog_fingerprint m.Mapping.catalog

let beam ?params ?workload_indexes ?updates ?(kinds = Space.default_kinds)
    ?(width = 4) ?(patience = 3) ?(max_iterations = 200) ?(jobs = 1) ?memoize
    ?engine ?budget ~workload schema =
  let jobs = resolve_jobs jobs in
  let ctl = match budget with Some b -> b | None -> Budget.unlimited () in
  let check () = Budget.tick ctl in
  let eng =
    match engine with
    | Some e -> e
    | None ->
        Cost_engine.create ?params ?workload_indexes ?updates ?memoize
          ~workload ()
  in
  let start = Cost_engine.snapshot eng in
  (* the initial configuration is exempt from the budget (no ticket,
     no cancellation): anytime search always has a result to return *)
  let initial_cost =
    match Cost_engine.cost_opt eng schema with
    | Some c -> c
    | None -> raise (Cost_error "initial configuration cannot be costed")
  in
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen (fingerprint schema) ();
  let best = ref (schema, initial_cost) in
  let trace =
    ref
      [
        {
          iteration = 0;
          cost = initial_cost;
          step = None;
          tables = table_count schema;
          engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
          failures = [];
        };
      ]
  in
  let all_failures = ref [] in
  let rec level i barren frontier =
    match Budget.stop_at_iteration ctl i with
    | Some r -> (r :> stopped)
    | None ->
        if i >= max_iterations then `Iterations
        else if barren >= patience || frontier = [] then `Converged
        else begin
          let before = Cost_engine.snapshot eng in
          (* configurations reached by commuting step orders collide:
             dedupe within the level, but blacklist globally only what
             the beam actually keeps — otherwise a discarded sibling
             blocks the path that needs the same configuration one
             level later *)
          let level_seen = Hashtbl.create 32 in
          (* fingerprinting and costing are the two expensive
             per-candidate passes; both fan out over [jobs] chunks,
             with the sequential dedupe (first occurrence wins, in
             discovery order) in between so the level is bit-identical
             to a sequential one.  Both passes poll the budget, so an
             exhausted budget abandons the level wholesale and the
             result is the best-so-far over completed levels. *)
          let raw =
            List.concat_map (fun (s, _) -> Space.neighbors ~kinds s) frontier
          in
          match
            let fingerprinted =
              par_map ~jobs
                (fun (step, s') ->
                  Budget.poll ctl;
                  (step, s', fingerprint s'))
                raw
            in
            let deduped =
              List.filter
                (fun (_, _, fp) ->
                  if Hashtbl.mem seen fp || Hashtbl.mem level_seen fp then false
                  else begin
                    Hashtbl.replace level_seen fp ();
                    true
                  end)
                fingerprinted
            in
            par_cost eng ~check ~jobs ~schema_of:(fun (_, s', _) -> s') deduped
          with
          | exception Budget.Exhausted r -> (r :> stopped)
          | costed -> (
              let level_failures =
                failures_of ~iteration:(i + 1)
                  ~step_of:(fun (step, _, _) -> step)
                  costed
              in
              if level_failures <> [] then
                all_failures := level_failures :: !all_failures;
              let candidates =
                List.filter_map
                  (fun ((step, s', fp), costed) ->
                    match costed with
                    | Ok c -> Some (step, s', c, fp)
                    | Error _ -> None)
                  costed
              in
              let sorted =
                List.sort
                  (fun (_, _, a, _) (_, _, b, _) -> Float.compare a b)
                  candidates
              in
              let keep =
                List.filteri (fun j _ -> j < width) sorted
                |> List.map (fun (step, s, c, fp) ->
                       Hashtbl.replace seen fp ();
                       (step, s, c))
              in

              match keep with
              | [] -> `Converged
              | (step, s0, c0) :: _ ->
                  let improved = c0 < snd !best in
                  if improved then begin
                    best := (s0, c0);
                    trace :=
                      {
                        iteration = i + 1;
                        cost = c0;
                        step = Some step;
                        tables = table_count s0;
                        engine =
                          Cost_engine.diff (Cost_engine.snapshot eng) before;
                        failures = level_failures;
                      }
                      :: !trace
                  end;
                  (* continue from every kept candidate, improving or
                     not: the beam can cross small cost hills, but gives
                     up after [patience] barren levels *)
                  level (i + 1)
                    (if improved then 0 else barren + 1)
                    (List.map (fun (_, s, c) -> (s, c)) keep))
        end
  in
  let stopped = level 0 0 [ (schema, initial_cost) ] in
  let schema, cost = !best in
  {
    schema;
    cost;
    trace = List.rev !trace;
    engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
    stopped;
    failures = List.concat (List.rev !all_failures);
  }
