open Legodb_xtype
open Legodb_transform
open Legodb_relational
module Mapping = Legodb_mapping.Mapping
module Xq_translate = Legodb_mapping.Xq_translate

exception Cost_error = Cost_engine.Cost_error

let pschema_cost ?params ?(workload_indexes = false)
    ?(updates = ([] : (Legodb_xquery.Xq_ast.update * float) list)) ~workload
    schema =
  match Mapping.of_pschema schema with
  | Error es -> raise (Cost_error (String.concat "; " es))
  | Ok m -> (
      match
        ( Xq_translate.translate_workload m workload,
          Xq_translate.translate_updates m updates )
      with
      | exception Xq_translate.Untranslatable msg -> raise (Cost_error msg)
      | queries, writes ->
          let catalog =
            if workload_indexes then
              Rschema.add_indexes m.Mapping.catalog
                (Xq_translate.equality_columns (List.map fst queries))
            else m.Mapping.catalog
          in
          Legodb_optimizer.Optimizer.mixed_workload_cost ?params catalog
            ~queries ~updates:writes)

type trace_entry = {
  iteration : int;
  cost : float;
  step : Space.step option;
  tables : int;
  engine : Cost_engine.snapshot;
}

type result = {
  schema : Xschema.t;
  cost : float;
  trace : trace_entry list;
  engine : Cost_engine.snapshot;
}

let table_count schema =
  List.length
    (List.filter
       (fun ty -> not (Mapping.is_transparent schema ty))
       (Xschema.reachable schema))

let greedy ?params ?workload_indexes ?updates ?(kinds = Space.default_kinds)
    ?(threshold = 0.) ?(max_iterations = 200) ?memoize ?engine ~workload schema
    =
  let eng =
    match engine with
    | Some e -> e
    | None ->
        Cost_engine.create ?params ?workload_indexes ?updates ?memoize
          ~workload ()
  in
  let start = Cost_engine.snapshot eng in
  let cost_of s = Cost_engine.cost_opt eng s in
  let initial_cost =
    match cost_of schema with
    | Some c -> c
    | None -> raise (Cost_error "initial configuration cannot be costed")
  in
  let rec descend iteration schema cost trace =
    if iteration >= max_iterations then (schema, cost, trace)
    else
      let before = Cost_engine.snapshot eng in
      let best =
        List.fold_left
          (fun best (step, schema') ->
            match cost_of schema' with
            | None -> best
            | Some cost' -> (
                match best with
                | Some (_, _, bc) when bc <= cost' -> best
                | _ -> Some (step, schema', cost')))
          None
          (Space.neighbors ~kinds schema)
      in
      match best with
      | Some (step, schema', cost') when cost' < cost *. (1. -. threshold) ->
          let entry =
            {
              iteration = iteration + 1;
              cost = cost';
              step = Some step;
              tables = table_count schema';
              engine = Cost_engine.diff (Cost_engine.snapshot eng) before;
            }
          in
          descend (iteration + 1) schema' cost' (entry :: trace)
      | Some _ | None -> (schema, cost, trace)
  in
  let trace0 =
    [
      {
        iteration = 0;
        cost = initial_cost;
        step = None;
        tables = table_count schema;
        engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
      };
    ]
  in
  let schema, cost, trace = descend 0 schema initial_cost trace0 in
  {
    schema;
    cost;
    trace = List.rev trace;
    engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
  }

let greedy_so ?params ?workload_indexes ?updates ?(kinds = [ Space.K_inline ])
    ?threshold ?max_iterations ?memoize ?engine ~workload schema =
  greedy ?params ?workload_indexes ?updates ~kinds ?threshold ?max_iterations
    ?memoize ?engine ~workload (Init.all_outlined schema)

let greedy_si ?params ?workload_indexes ?updates ?(kinds = [ Space.K_outline ])
    ?threshold ?max_iterations ?memoize ?engine ~workload schema =
  greedy ?params ?workload_indexes ?updates ~kinds ?threshold ?max_iterations
    ?memoize ?engine ~workload (Init.all_inlined schema)

let pp_trace fmt trace =
  List.iter
    (fun e ->
      Format.fprintf fmt "%3d  cost %12.1f  tables %3d  %a@." e.iteration e.cost
        e.tables
        (fun fmt -> function
          | Some s -> Space.pp_step fmt s
          | None -> Format.pp_print_string fmt "(initial)")
        e.step)
    trace

(* ------------------------------------------------------------------ *)
(* beam search (the "dynamic programming search strategies" of §7)     *)
(* ------------------------------------------------------------------ *)

(* A name-independent fingerprint of the relational configuration a
   schema maps to, used to prune transformation sequences that reach the
   same design through different step orders.  Fresh type names differ
   between paths, so the fingerprint uses column shapes (with their full
   statistics), not names — see Mapping.catalog_fingerprint. *)
let fingerprint schema =
  match Mapping.of_pschema schema with
  | Error _ -> Xschema.to_string schema
  | Ok m -> Mapping.catalog_fingerprint m.Mapping.catalog

let beam ?params ?workload_indexes ?updates ?(kinds = Space.default_kinds)
    ?(width = 4) ?(patience = 3) ?(max_iterations = 200) ?memoize ?engine
    ~workload schema =
  let eng =
    match engine with
    | Some e -> e
    | None ->
        Cost_engine.create ?params ?workload_indexes ?updates ?memoize
          ~workload ()
  in
  let start = Cost_engine.snapshot eng in
  let cost_of s = Cost_engine.cost_opt eng s in
  let initial_cost =
    match cost_of schema with
    | Some c -> c
    | None -> raise (Cost_error "initial configuration cannot be costed")
  in
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen (fingerprint schema) ();
  let best = ref (schema, initial_cost) in
  let trace =
    ref
      [
        {
          iteration = 0;
          cost = initial_cost;
          step = None;
          tables = table_count schema;
          engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
        };
      ]
  in
  let rec level i barren frontier =
    if i >= max_iterations || barren >= patience || frontier = [] then ()
    else begin
      let before = Cost_engine.snapshot eng in
      (* configurations reached by commuting step orders collide: dedupe
         within the level, but blacklist globally only what the beam
         actually keeps — otherwise a discarded sibling blocks the path
         that needs the same configuration one level later *)
      let level_seen = Hashtbl.create 32 in
      let candidates =
        List.concat_map
          (fun (s, _) ->
            List.filter_map
              (fun (step, s') ->
                let fp = fingerprint s' in
                if Hashtbl.mem seen fp || Hashtbl.mem level_seen fp then None
                else begin
                  Hashtbl.replace level_seen fp ();
                  match cost_of s' with
                  | Some c -> Some (step, s', c, fp)
                  | None -> None
                end)
              (Space.neighbors ~kinds s))
          frontier
      in
      let sorted =
        List.sort (fun (_, _, a, _) (_, _, b, _) -> Float.compare a b) candidates
      in
      let keep =
        List.filteri (fun j _ -> j < width) sorted
        |> List.map (fun (step, s, c, fp) ->
               Hashtbl.replace seen fp ();
               (step, s, c))
      in

      match keep with
      | [] -> ()
      | (step, s0, c0) :: _ ->
          let improved = c0 < snd !best in
          if improved then begin
            best := (s0, c0);
            trace :=
              {
                iteration = i + 1;
                cost = c0;
                step = Some step;
                tables = table_count s0;
                engine = Cost_engine.diff (Cost_engine.snapshot eng) before;
              }
              :: !trace
          end;
          (* continue from every kept candidate, improving or not: the
             beam can cross small cost hills, but gives up after
             [patience] barren levels *)
          level (i + 1)
            (if improved then 0 else barren + 1)
            (List.map (fun (_, s, c) -> (s, c)) keep)
    end
  in
  level 0 0 [ (schema, initial_cost) ];
  let schema, cost = !best in
  {
    schema;
    cost;
    trace = List.rev !trace;
    engine = Cost_engine.diff (Cost_engine.snapshot eng) start;
  }
