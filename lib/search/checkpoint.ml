(* Snapshot codec for the anytime search.  Everything is stored as
   data (terms, strings, numbers) in a portable line/length-prefixed
   text format — no Marshal, no closures — so a snapshot written under
   one OCaml version resumes under another, and a flipped bit anywhere
   in the payload is caught by the CRC before decoding begins.  Floats
   travel as %h hex literals: costs, statistics annotations, and timer
   totals round-trip bit-exactly, which is what lets a resumed search
   agree bit for bit with an uninterrupted one.

   The generic layer — CRC-32, token writers/readers, header framing,
   atomic writes — lives in the shared Wire module (lib/core), which
   the storage snapshot and the query server's WAL reuse; this file
   keeps only the search-specific term codec.  Internally everything
   raises Wire.Corrupt; the decode/load boundary wraps it into this
   module's Corrupt so callers (and the CLI's exit-7 path) are
   unchanged. *)

open Legodb_xtype
open Legodb_transform
module Wire = Legodb_wire.Wire

exception Corrupt of string

let corrupt fmt = Wire.corrupt fmt

type failure = {
  f_iteration : int;
  f_step : Space.step;
  f_stage : string;
  f_class : string;
  f_message : string;
}

type trace_entry = {
  iteration : int;
  cost : float;
  step : Space.step option;
  tables : int;
  engine : Cost_engine.snapshot;
  failures : failure list;
}

type point =
  | Greedy of { g_schema : Xschema.t; g_cost : float; g_threshold : float }
  | Beam of {
      b_frontier : (Xschema.t * float) list;
      b_best_schema : Xschema.t;
      b_best_cost : float;
      b_seen : string list;
      b_barren : int;
      b_width : int;
      b_patience : int;
    }

type state = {
  strategy : string;
  kinds : Space.kind list;
  max_iterations : int;
  iteration : int;
  evaluations : int;
  trace : trace_entry list;
  failures : failure list;
  point : point;
  cache : (string * float) list;
}

let crc32 = Wire.crc32

(* ------------------------------------------------------------------ *)
(* payload writers (generic layer from Wire)                           *)
(* ------------------------------------------------------------------ *)

let w_line = Wire.w_line
let w_int = Wire.w_int
let w_float = Wire.w_float
let w_str = Wire.w_str
let w_list = Wire.w_list
let w_opt = Wire.w_opt

let w_bound b = function
  | Xtype.Unbounded -> w_line b "*"
  | Xtype.Bounded n -> w_int b n

let w_label b = function
  | Label.Name s ->
      w_line b "n";
      w_str b s
  | Label.Any -> w_line b "a"
  | Label.Any_except l ->
      w_line b "x";
      w_list b w_str l

let w_scalar_stats b (st : Xtype.scalar_stats) =
  w_int b st.Xtype.width;
  w_opt b w_int st.Xtype.s_min;
  w_opt b w_int st.Xtype.s_max;
  w_opt b w_int st.Xtype.distinct

let w_ann b (ann : Xtype.ann) =
  w_opt b w_float ann.Xtype.count;
  w_list b
    (fun b (l, c) ->
      w_str b l;
      w_float b c)
    ann.Xtype.labels

let rec w_type b = function
  | Xtype.Empty -> w_line b "e"
  | Xtype.Scalar (k, st) ->
      w_line b "s";
      w_line b (match k with Xtype.String_t -> "str" | Xtype.Integer_t -> "int");
      w_opt b w_scalar_stats st
  | Xtype.Attr (n, t) ->
      w_line b "a";
      w_str b n;
      w_type b t
  | Xtype.Elem e ->
      w_line b "l";
      w_label b e.Xtype.label;
      w_ann b e.Xtype.ann;
      w_type b e.Xtype.content
  | Xtype.Seq ts ->
      w_line b "q";
      w_list b w_type ts
  | Xtype.Choice ts ->
      w_line b "c";
      w_list b w_type ts
  | Xtype.Rep (t, o) ->
      w_line b "r";
      w_int b o.Xtype.lo;
      w_bound b o.Xtype.hi;
      w_type b t
  | Xtype.Ref n ->
      w_line b "f";
      w_str b n

let w_schema b s =
  w_str b (Xschema.root s);
  w_list b
    (fun b (d : Xschema.defn) ->
      w_str b d.Xschema.name;
      w_type b d.Xschema.body)
    (Xschema.defs s)

let kind_name = function
  | Space.K_inline -> "inline"
  | Space.K_outline -> "outline"
  | Space.K_union_dist -> "union_dist"
  | Space.K_union_factor -> "union_factor"
  | Space.K_rep_split -> "rep_split"
  | Space.K_rep_merge -> "rep_merge"
  | Space.K_wildcard -> "wildcard"
  | Space.K_union_opts -> "union_opts"

let kind_of_name = function
  | "inline" -> Space.K_inline
  | "outline" -> Space.K_outline
  | "union_dist" -> Space.K_union_dist
  | "union_factor" -> Space.K_union_factor
  | "rep_split" -> Space.K_rep_split
  | "rep_merge" -> Space.K_rep_merge
  | "wildcard" -> Space.K_wildcard
  | "union_opts" -> Space.K_union_opts
  | k -> corrupt "unknown transformation kind %S" k

let w_loc b (loc : Xtype.loc) = w_list b w_int loc

let w_step b = function
  | Space.Inline { tname; loc; target } ->
      w_line b "inline";
      w_str b tname;
      w_loc b loc;
      w_str b target
  | Space.Outline { tname; loc; tag } ->
      w_line b "outline";
      w_str b tname;
      w_loc b loc;
      w_str b tag
  | Space.Union_dist { tname; loc } ->
      w_line b "union_dist";
      w_str b tname;
      w_loc b loc
  | Space.Union_factor { tname; loc } ->
      w_line b "union_factor";
      w_str b tname;
      w_loc b loc
  | Space.Rep_split { tname; loc; target } ->
      w_line b "rep_split";
      w_str b tname;
      w_loc b loc;
      w_str b target
  | Space.Rep_merge { tname; loc } ->
      w_line b "rep_merge";
      w_str b tname;
      w_loc b loc
  | Space.Wildcard { tname; loc; tag } ->
      w_line b "wildcard";
      w_str b tname;
      w_loc b loc;
      w_str b tag
  | Space.Union_opts { tname; loc } ->
      w_line b "union_opts";
      w_str b tname;
      w_loc b loc

let w_snapshot b (s : Cost_engine.snapshot) =
  w_int b s.Cost_engine.evaluations;
  w_int b s.Cost_engine.hits;
  w_int b s.Cost_engine.misses;
  w_int b s.Cost_engine.faults;
  w_float b s.Cost_engine.t_mapping;
  w_float b s.Cost_engine.t_translate;
  w_float b s.Cost_engine.t_optimize

let w_failure b (f : failure) =
  w_int b f.f_iteration;
  w_step b f.f_step;
  w_str b f.f_stage;
  w_str b f.f_class;
  w_str b f.f_message

let w_entry b (e : trace_entry) =
  w_int b e.iteration;
  w_float b e.cost;
  w_opt b w_step e.step;
  w_int b e.tables;
  w_snapshot b e.engine;
  w_list b w_failure e.failures

let w_point b = function
  | Greedy g ->
      w_line b "greedy";
      w_schema b g.g_schema;
      w_float b g.g_cost;
      w_float b g.g_threshold
  | Beam bm ->
      w_line b "beam";
      w_list b
        (fun b (s, c) ->
          w_schema b s;
          w_float b c)
        bm.b_frontier;
      w_schema b bm.b_best_schema;
      w_float b bm.b_best_cost;
      w_list b w_str bm.b_seen;
      w_int b bm.b_barren;
      w_int b bm.b_width;
      w_int b bm.b_patience

let w_state b st =
  w_str b st.strategy;
  w_list b (fun b k -> w_line b (kind_name k)) st.kinds;
  w_int b st.max_iterations;
  w_int b st.iteration;
  w_int b st.evaluations;
  w_list b w_entry st.trace;
  w_list b w_failure st.failures;
  w_point b st.point;
  w_list b
    (fun b (k, v) ->
      w_str b k;
      w_float b v)
    st.cache

(* ------------------------------------------------------------------ *)
(* payload readers (generic layer from Wire)                           *)
(* ------------------------------------------------------------------ *)

let r_line = Wire.r_line
let r_int = Wire.r_int
let r_float = Wire.r_float
let r_str = Wire.r_str
let r_list = Wire.r_list
let r_opt = Wire.r_opt

let r_bound cur =
  match r_line cur with
  | "*" -> Xtype.Unbounded
  | s -> (
      match int_of_string_opt s with
      | Some n -> Xtype.Bounded n
      | None -> corrupt "malformed payload: expected a bound, got %S" s)

let r_label cur =
  match r_line cur with
  | "n" -> Label.Name (r_str cur)
  | "a" -> Label.Any
  | "x" -> Label.Any_except (r_list cur r_str)
  | s -> corrupt "malformed payload: unknown label tag %S" s

let r_scalar_stats cur =
  let width = r_int cur in
  let s_min = r_opt cur r_int in
  let s_max = r_opt cur r_int in
  let distinct = r_opt cur r_int in
  { Xtype.width; s_min; s_max; distinct }

let r_ann cur =
  let count = r_opt cur r_float in
  let labels =
    r_list cur (fun cur ->
        let l = r_str cur in
        let c = r_float cur in
        (l, c))
  in
  { Xtype.count; labels }

(* raw constructors, not the smart ones: the encoded value already
   satisfies the AST invariants, and re-normalizing could perturb the
   exact term the search was holding *)
let rec r_type cur =
  match r_line cur with
  | "e" -> Xtype.Empty
  | "s" ->
      let kind =
        match r_line cur with
        | "str" -> Xtype.String_t
        | "int" -> Xtype.Integer_t
        | s -> corrupt "malformed payload: unknown scalar kind %S" s
      in
      Xtype.Scalar (kind, r_opt cur r_scalar_stats)
  | "a" ->
      let n = r_str cur in
      Xtype.Attr (n, r_type cur)
  | "l" ->
      let label = r_label cur in
      let ann = r_ann cur in
      let content = r_type cur in
      Xtype.Elem { Xtype.label; content; ann }
  | "q" -> Xtype.Seq (r_list cur r_type)
  | "c" -> Xtype.Choice (r_list cur r_type)
  | "r" ->
      let lo = r_int cur in
      let hi = r_bound cur in
      Xtype.Rep (r_type cur, { Xtype.lo; hi })
  | "f" -> Xtype.Ref (r_str cur)
  | s -> corrupt "malformed payload: unknown type tag %S" s

let r_schema cur =
  let root = r_str cur in
  let defs =
    r_list cur (fun cur ->
        let name = r_str cur in
        let body = r_type cur in
        { Xschema.name; body })
  in
  match Xschema.make ~root defs with
  | s -> s
  | exception Invalid_argument m -> corrupt "malformed payload: %s" m

let r_loc cur : Xtype.loc = r_list cur r_int

let r_step cur =
  let tag = r_line cur in
  let tname = r_str cur in
  let loc = r_loc cur in
  match tag with
  | "inline" -> Space.Inline { tname; loc; target = r_str cur }
  | "outline" -> Space.Outline { tname; loc; tag = r_str cur }
  | "union_dist" -> Space.Union_dist { tname; loc }
  | "union_factor" -> Space.Union_factor { tname; loc }
  | "rep_split" -> Space.Rep_split { tname; loc; target = r_str cur }
  | "rep_merge" -> Space.Rep_merge { tname; loc }
  | "wildcard" -> Space.Wildcard { tname; loc; tag = r_str cur }
  | "union_opts" -> Space.Union_opts { tname; loc }
  | s -> corrupt "malformed payload: unknown step tag %S" s

let r_snapshot cur : Cost_engine.snapshot =
  let evaluations = r_int cur in
  let hits = r_int cur in
  let misses = r_int cur in
  let faults = r_int cur in
  let t_mapping = r_float cur in
  let t_translate = r_float cur in
  let t_optimize = r_float cur in
  {
    Cost_engine.evaluations;
    hits;
    misses;
    faults;
    t_mapping;
    t_translate;
    t_optimize;
  }

let r_failure cur =
  let f_iteration = r_int cur in
  let f_step = r_step cur in
  let f_stage = r_str cur in
  let f_class = r_str cur in
  let f_message = r_str cur in
  { f_iteration; f_step; f_stage; f_class; f_message }

let r_entry cur =
  let iteration = r_int cur in
  let cost = r_float cur in
  let step = r_opt cur r_step in
  let tables = r_int cur in
  let engine = r_snapshot cur in
  let failures = r_list cur r_failure in
  { iteration; cost; step; tables; engine; failures }

let r_point cur =
  match r_line cur with
  | "greedy" ->
      let g_schema = r_schema cur in
      let g_cost = r_float cur in
      let g_threshold = r_float cur in
      Greedy { g_schema; g_cost; g_threshold }
  | "beam" ->
      let b_frontier =
        r_list cur (fun cur ->
            let s = r_schema cur in
            let c = r_float cur in
            (s, c))
      in
      let b_best_schema = r_schema cur in
      let b_best_cost = r_float cur in
      let b_seen = r_list cur r_str in
      let b_barren = r_int cur in
      let b_width = r_int cur in
      let b_patience = r_int cur in
      Beam
        {
          b_frontier;
          b_best_schema;
          b_best_cost;
          b_seen;
          b_barren;
          b_width;
          b_patience;
        }
  | s -> corrupt "malformed payload: unknown continuation point %S" s

let r_state cur =
  let strategy = r_str cur in
  let kinds = r_list cur (fun cur -> kind_of_name (r_line cur)) in
  let max_iterations = r_int cur in
  let iteration = r_int cur in
  let evaluations = r_int cur in
  let trace = r_list cur r_entry in
  let failures = r_list cur r_failure in
  let point = r_point cur in
  let cache =
    r_list cur (fun cur ->
        let k = r_str cur in
        let v = r_float cur in
        (k, v))
  in
  if cur.Wire.pos <> String.length cur.Wire.buf then
    corrupt "malformed payload: %d trailing bytes"
      (String.length cur.Wire.buf - cur.Wire.pos);
  {
    strategy;
    kinds;
    max_iterations;
    iteration;
    evaluations;
    trace;
    failures;
    point;
    cache;
  }

(* ------------------------------------------------------------------ *)
(* file image: header + checksummed payload                            *)
(* ------------------------------------------------------------------ *)

let magic = "LEGODB-CKPT"
let version = 1

(* the search-term writers/readers above raise Wire.Corrupt; the public
   boundary rewraps it so callers keep matching Checkpoint.Corrupt *)
let wrap_corrupt f x =
  try f x with Wire.Corrupt m -> raise (Corrupt m)

let encode st =
  let b = Buffer.create 4096 in
  w_state b st;
  Wire.frame ~magic ~version (Buffer.contents b)

let decode image =
  wrap_corrupt
    (fun image ->
      let body = Wire.unframe ~magic ~version ~kind:"checkpoint" image in
      r_state (Wire.cursor body))
    image

(* schema codec, exported for the storage snapshot (lib/serve/wal.ml):
   raises Wire.Corrupt like the rest of the Wire layer *)
let write_schema = w_schema
let read_schema = r_schema

let save ~path st = Wire.write_atomic ~path (encode st)
let load path = decode (Wire.read_file path)

(* ------------------------------------------------------------------ *)
(* equality (for the round-trip property tests)                        *)
(* ------------------------------------------------------------------ *)

let schema_equal a b =
  String.equal (Xschema.root a) (Xschema.root b)
  && List.length (Xschema.defs a) = List.length (Xschema.defs b)
  && List.for_all2
       (fun (da : Xschema.defn) (db : Xschema.defn) ->
         String.equal da.Xschema.name db.Xschema.name
         && Xtype.equal_strict da.Xschema.body db.Xschema.body)
       (Xschema.defs a) (Xschema.defs b)

let snapshot_equal (a : Cost_engine.snapshot) (b : Cost_engine.snapshot) =
  a.Cost_engine.evaluations = b.Cost_engine.evaluations
  && a.Cost_engine.hits = b.Cost_engine.hits
  && a.Cost_engine.misses = b.Cost_engine.misses
  && a.Cost_engine.faults = b.Cost_engine.faults
  && Float.equal a.Cost_engine.t_mapping b.Cost_engine.t_mapping
  && Float.equal a.Cost_engine.t_translate b.Cost_engine.t_translate
  && Float.equal a.Cost_engine.t_optimize b.Cost_engine.t_optimize

let failure_equal (a : failure) (b : failure) =
  a.f_iteration = b.f_iteration
  && a.f_step = b.f_step
  && String.equal a.f_stage b.f_stage
  && String.equal a.f_class b.f_class
  && String.equal a.f_message b.f_message

let entry_equal (a : trace_entry) (b : trace_entry) =
  a.iteration = b.iteration
  && Float.equal a.cost b.cost
  && Option.equal ( = ) a.step b.step
  && a.tables = b.tables
  && snapshot_equal a.engine b.engine
  && List.equal failure_equal a.failures b.failures

let point_equal a b =
  match (a, b) with
  | Greedy x, Greedy y ->
      schema_equal x.g_schema y.g_schema
      && Float.equal x.g_cost y.g_cost
      && Float.equal x.g_threshold y.g_threshold
  | Beam x, Beam y ->
      List.equal
        (fun (s, c) (s', c') -> schema_equal s s' && Float.equal c c')
        x.b_frontier y.b_frontier
      && schema_equal x.b_best_schema y.b_best_schema
      && Float.equal x.b_best_cost y.b_best_cost
      && List.equal String.equal x.b_seen y.b_seen
      && x.b_barren = y.b_barren
      && x.b_width = y.b_width
      && x.b_patience = y.b_patience
  | _ -> false

let equal a b =
  String.equal a.strategy b.strategy
  && a.kinds = b.kinds
  && a.max_iterations = b.max_iterations
  && a.iteration = b.iteration
  && a.evaluations = b.evaluations
  && List.equal entry_equal a.trace b.trace
  && List.equal failure_equal a.failures b.failures
  && point_equal a.point b.point
  && List.equal
       (fun (k, v) (k', v') -> String.equal k k' && Float.equal v v')
       a.cache b.cache
