(* The public facade: one module to open, re-exporting every component
   library under a short name, plus the one-call design API. *)

module Wire = Legodb_wire.Wire
module Xml = Legodb_xml.Xml
module Xml_parse = Legodb_xml.Xml_parse
module Label = Legodb_xtype.Label
module Xtype = Legodb_xtype.Xtype
module Xschema = Legodb_xtype.Xschema
module Xtype_parse = Legodb_xtype.Xtype_parse
module Xsd_import = Legodb_xtype.Xsd_import
module Validate = Legodb_xtype.Validate
module Pathstat = Legodb_stats.Pathstat
module Collector = Legodb_stats.Collector
module Annotate = Legodb_stats.Annotate
module Pschema = Legodb_pschema.Pschema
module Rewrite = Legodb_transform.Rewrite
module Init = Legodb_transform.Init
module Space = Legodb_transform.Space
module Rtype = Legodb_relational.Rtype
module Rschema = Legodb_relational.Rschema
module Sql = Legodb_relational.Sql
module Storage = Legodb_relational.Storage
module Cost = Legodb_optimizer.Cost
module Logical = Legodb_optimizer.Logical
module Physical = Legodb_optimizer.Physical
module Estimate = Legodb_optimizer.Estimate
module Optimizer = Legodb_optimizer.Optimizer
module Optimizer_reference = Legodb_optimizer.Reference
module Executor = Legodb_optimizer.Executor
module Xq_ast = Legodb_xquery.Xq_ast
module Xq_parse = Legodb_xquery.Xq_parse
module Workload = Legodb_xquery.Workload
module Xq_eval = Legodb_xquery.Xq_eval
module Naming = Legodb_mapping.Naming
module Mapping = Legodb_mapping.Mapping
module Navigate = Legodb_mapping.Navigate
module Xq_translate = Legodb_mapping.Xq_translate
module Shred = Legodb_mapping.Shred
module Publish = Legodb_mapping.Publish
module Search = Legodb_search.Search
module Cost_engine = Legodb_search.Cost_engine
module Budget = Legodb_search.Budget
module Checkpoint = Legodb_search.Checkpoint
module Par = Legodb_search.Par
module Serve = Legodb_serve.Serve
module Wal = Legodb_serve.Wal
module Net = Legodb_serve.Net
module Iobuf = Legodb_serve.Iobuf

module Imdb = struct
  module Schema = Legodb_imdb.Imdb_schema
  module Stats = Legodb_imdb.Imdb_stats
  module Queries = Legodb_imdb.Imdb_queries
  module Workloads = Legodb_imdb.Imdb_workloads
  module Gen = Legodb_imdb.Imdb_gen
end

type design = {
  schema : Xschema.t;  (** the selected p-schema *)
  mapping : Mapping.t;  (** its relational configuration *)
  cost : float;  (** estimated workload cost *)
  trace : Search.trace_entry list;  (** greedy iterations *)
  engine : Cost_engine.snapshot;  (** cost-engine work & cache totals *)
  stopped : Search.stopped;  (** convergence or the budget that tripped *)
  failures : Search.failure list;  (** candidates the pipeline couldn't cost *)
}

type strategy = Greedy_si | Greedy_so

let design ?(strategy = Greedy_si) ?params ?threshold ?jobs ?budget ~schema
    ~stats ~workload () =
  let annotated = Annotate.schema stats schema in
  let result =
    match strategy with
    | Greedy_si ->
        Search.greedy_si ?params ?threshold ?jobs ?budget ~workload annotated
    | Greedy_so ->
        Search.greedy_so ?params ?threshold ?jobs ?budget ~workload annotated
  in
  match Mapping.of_pschema result.Search.schema with
  | Ok mapping ->
      {
        schema = result.Search.schema;
        mapping;
        cost = result.Search.cost;
        trace = result.Search.trace;
        engine = result.Search.engine;
        stopped = result.Search.stopped;
        failures = result.Search.failures;
      }
  | Error es ->
      invalid_arg
        ("Legodb.design: selected schema failed to map: "
        ^ String.concat "; " es)

let design_of_xml ?strategy ?params ?threshold ?jobs ?budget ~schema ~document
    ~workload () =
  let stats = Collector.collect document in
  design ?strategy ?params ?threshold ?jobs ?budget ~schema ~stats ~workload ()

let report fmt d =
  Format.fprintf fmt "-- LegoDB storage design --@.";
  Format.fprintf fmt "estimated workload cost: %.1f@." d.cost;
  Format.fprintf fmt "greedy iterations: %d (%a)@."
    (List.length d.trace - 1)
    Search.pp_stopped d.stopped;
  (match d.failures with
  | [] -> ()
  | fs ->
      Format.fprintf fmt "uncostable candidates: %d@." (List.length fs);
      List.iter (Format.fprintf fmt "  %a@." Search.pp_failure) fs);
  Format.fprintf fmt "cost engine: %a@.@." Cost_engine.pp_snapshot d.engine;
  Format.fprintf fmt "%a@." Search.pp_trace d.trace;
  Format.fprintf fmt "selected p-schema:@.%a@." Xschema.pp d.schema;
  Format.fprintf fmt "relational configuration:@.@[<v>%a@]@." Rschema.pp
    d.mapping.Mapping.catalog
