(** Shared on-disk wire primitives for every durable artifact —
    checkpoint snapshots ({!Legodb_search.Checkpoint}), storage
    snapshots and the query server's write-ahead log
    ({!Legodb_serve.Wal}).

    The format family is the one PR 4's checkpoint codec introduced:
    everything is data (no [Marshal], no closures), newline-terminated
    tokens for tags and numbers, length-prefixed strings that may
    contain anything, floats as [%h] hex literals so they round-trip
    bit-exactly, and a whole-payload CRC-32 checked {e before} any
    decoding begins.  This module is that codec's substrate, extracted
    so the checkpoint, the storage snapshot, and the WAL share one
    implementation of the primitives and of the header framing.

    {2 Durability}

    {!write_atomic} is the hardened atomic file write every snapshot
    goes through: payload to a temp file, [fsync] the temp file {e
    before} the rename (so the rename never publishes a name whose
    bytes are still in the page cache), rename over the destination,
    then [fsync] the parent directory (so the rename itself survives
    power loss, not just process death).

    All file I/O goes through an injectable {!fs} record — the
    fault-injection seam the crash–recover tests drive with short
    writes, failing fsyncs, and crash points, mirroring the
    [?inject] hook of {!Legodb_search.Cost_engine}. *)

exception Corrupt of string
(** An image failed validation: bad magic, unsupported version,
    truncation, checksum mismatch, or a malformed payload.  The message
    is one line naming the defect.  Consumers wrap it in their own
    exception ({!Legodb_search.Checkpoint.Corrupt} → exit 7,
    {!Legodb_serve.Wal.Corrupt} → exit 8). *)

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Corrupt} with the formatted message. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of a string; table-driven. *)

(** {1 Payload writers}

    Tokens (tags, ints, floats) are newline-terminated; strings are
    length-prefixed so they may contain anything, newlines included. *)

val w_line : Buffer.t -> string -> unit
val w_int : Buffer.t -> int -> unit
val w_float : Buffer.t -> float -> unit
(** Written as a [%h] hex literal: reading it back yields the identical
    bit pattern. *)

val w_str : Buffer.t -> string -> unit
val w_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val w_opt : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit

(** {1 Payload readers}

    All readers raise {!Corrupt} on malformed input; none read past the
    cursor's buffer. *)

type cursor = { buf : string; mutable pos : int }

val cursor : string -> cursor
val at_end : cursor -> bool
val r_line : cursor -> string
val r_int : cursor -> int
val r_float : cursor -> float
val r_str : cursor -> string
val r_list : cursor -> (cursor -> 'a) -> 'a list
val r_opt : cursor -> (cursor -> 'a) -> 'a option

(** {1 Image framing}

    A framed image is one header line

    {v <magic> <version> <crc32-hex> <payload-bytes> v}

    followed by exactly [<payload-bytes>] of payload. *)

val frame : magic:string -> version:int -> string -> string
(** [frame ~magic ~version payload] — the full file image. *)

val unframe : magic:string -> version:int -> kind:string -> string -> string
(** Validate a header (magic, version, length, CRC) and return the
    payload.  [kind] names the artifact in error messages ("checkpoint",
    "storage snapshot", "WAL"), so truncated / bit-flipped /
    wrong-version / wrong-magic images are each reported distinctly.
    @raise Corrupt *)

(** {1 File I/O with an injectable fault seam} *)

type fs = {
  write : Unix.file_descr -> string -> unit;
      (** write the whole string (or raise) *)
  fsync : Unix.file_descr -> unit;
  rename : string -> string -> unit;
}
(** The three primitives every durable write decomposes into.  Tests
    substitute implementations that write short, fail fsync, or raise a
    crash exception after the k-th operation; production code uses
    {!real_fs}. *)

val real_fs : fs

val write_atomic : ?fs:fs -> path:string -> string -> unit
(** Durable atomic replace of [path]: write to [path ^ ".tmp"], fsync
    it, rename over [path], fsync the parent directory.  A crash at any
    point leaves either the old file or the new one, never a mix, and a
    completed call survives power loss.  @raise Sys_error / [Unix_error]
    on I/O failure. *)

val read_file : string -> string
(** The whole file as a string.  @raise Sys_error *)
