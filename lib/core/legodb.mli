(** LegoDB: cost-based XML-to-relational storage design.

    This is the public facade.  Components are re-exported under short
    names; the one-call API is {!design}:

    {[
      let d =
        Legodb.design
          ~schema:Legodb.Imdb.Schema.schema
          ~stats:Legodb.Imdb.Stats.full
          ~workload:Legodb.Imdb.Workloads.lookup ()
      in
      Format.printf "%a" Legodb.report d
    ]} *)

(** {1 Components} *)

module Wire = Legodb_wire.Wire
module Xml = Legodb_xml.Xml
module Xml_parse = Legodb_xml.Xml_parse
module Label = Legodb_xtype.Label
module Xtype = Legodb_xtype.Xtype
module Xschema = Legodb_xtype.Xschema
module Xtype_parse = Legodb_xtype.Xtype_parse
module Xsd_import = Legodb_xtype.Xsd_import
module Validate = Legodb_xtype.Validate
module Pathstat = Legodb_stats.Pathstat
module Collector = Legodb_stats.Collector
module Annotate = Legodb_stats.Annotate
module Pschema = Legodb_pschema.Pschema
module Rewrite = Legodb_transform.Rewrite
module Init = Legodb_transform.Init
module Space = Legodb_transform.Space
module Rtype = Legodb_relational.Rtype
module Rschema = Legodb_relational.Rschema
module Sql = Legodb_relational.Sql
module Storage = Legodb_relational.Storage
module Cost = Legodb_optimizer.Cost
module Logical = Legodb_optimizer.Logical
module Physical = Legodb_optimizer.Physical
module Estimate = Legodb_optimizer.Estimate
module Optimizer = Legodb_optimizer.Optimizer
module Optimizer_reference = Legodb_optimizer.Reference
module Executor = Legodb_optimizer.Executor
module Xq_ast = Legodb_xquery.Xq_ast
module Xq_parse = Legodb_xquery.Xq_parse
module Workload = Legodb_xquery.Workload
module Xq_eval = Legodb_xquery.Xq_eval
module Naming = Legodb_mapping.Naming
module Mapping = Legodb_mapping.Mapping
module Navigate = Legodb_mapping.Navigate
module Xq_translate = Legodb_mapping.Xq_translate
module Shred = Legodb_mapping.Shred
module Publish = Legodb_mapping.Publish
module Search = Legodb_search.Search
module Cost_engine = Legodb_search.Cost_engine
module Budget = Legodb_search.Budget
module Checkpoint = Legodb_search.Checkpoint
module Par = Legodb_search.Par
module Serve = Legodb_serve.Serve
module Wal = Legodb_serve.Wal
module Net = Legodb_serve.Net
module Iobuf = Legodb_serve.Iobuf

(** The IMDB application of the paper's evaluation. *)
module Imdb : sig
  module Schema = Legodb_imdb.Imdb_schema
  module Stats = Legodb_imdb.Imdb_stats
  module Queries = Legodb_imdb.Imdb_queries
  module Workloads = Legodb_imdb.Imdb_workloads
  module Gen = Legodb_imdb.Imdb_gen
end

(** {1 One-call design} *)

type design = {
  schema : Xschema.t;  (** the selected p-schema *)
  mapping : Mapping.t;  (** its relational configuration *)
  cost : float;  (** estimated workload cost *)
  trace : Search.trace_entry list;  (** greedy iterations, first = initial *)
  engine : Cost_engine.snapshot;
      (** the search's cost-engine totals: configurations costed, cache
          hit rate, faults, per-layer wall time *)
  stopped : Search.stopped;
      (** why the search returned: [`Converged], or the budget/interrupt
          that cut it short (the design is then the best found so far) *)
  failures : Search.failure list;
      (** candidate configurations the costing pipeline failed on,
          skipped with a structured record instead of silently *)
}

type strategy =
  | Greedy_si  (** start all-inlined, explore outlining (default) *)
  | Greedy_so  (** start all-outlined, explore inlining *)

val design :
  ?strategy:strategy ->
  ?params:Cost.params ->
  ?threshold:float ->
  ?jobs:int ->
  ?budget:Budget.t ->
  schema:Xschema.t ->
  stats:Pathstat.t ->
  workload:Workload.t ->
  unit ->
  design
(** Annotate the schema with the statistics, run the greedy search, and
    return the chosen configuration.  [?jobs] costs the neighbor
    configurations of each search iteration on that many cores
    ([0] = one per core; see {!Search.greedy}) — the selected design is
    bit-identical for every value.  [?budget] makes the search anytime:
    when it trips, the best design found so far is returned and
    [design.stopped] names the reason (see {!Budget}).
    @raise Search.Cost_error if no configuration can be costed.
    @raise Invalid_argument on internal mapping failure. *)

val design_of_xml :
  ?strategy:strategy ->
  ?params:Cost.params ->
  ?threshold:float ->
  ?jobs:int ->
  ?budget:Budget.t ->
  schema:Xschema.t ->
  document:Xml.t ->
  workload:Workload.t ->
  unit ->
  design
(** Like {!design} but collecting statistics from a sample document. *)

val report : Format.formatter -> design -> unit
(** Human-readable summary: cost, greedy trace, selected p-schema, and
    the relational configuration. *)
