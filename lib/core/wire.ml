(* Shared wire primitives: the line/length-prefixed text codec, CRC-32,
   header framing, and fsync-hardened atomic file replacement.  Factored
   out of the PR 4 checkpoint codec so storage snapshots and the query
   server's write-ahead log speak the same format (and share the same
   corruption detection) instead of growing three codecs. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven                                   *)
(* ------------------------------------------------------------------ *)

(* computed in native ints (CRC-32 fits in OCaml's 63-bit int with room
   to spare): the boxed-Int32 version allocated three boxes per input
   byte, which made checksumming the dominant cost of the network
   serving path.  Only the final result is boxed, so the public
   signature keeps its Int32. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to String.length s - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  Int32.of_int (!c lxor 0xFFFFFFFF)

(* ------------------------------------------------------------------ *)
(* payload writers                                                     *)
(* ------------------------------------------------------------------ *)

(* tokens (tags, ints, floats) are newline-terminated; strings are
   length-prefixed so they may contain anything, newlines included *)

let w_line b s =
  Buffer.add_string b s;
  Buffer.add_char b '\n'

let w_int b n = w_line b (string_of_int n)
let w_float b f = w_line b (Printf.sprintf "%h" f)

let w_str b s =
  w_int b (String.length s);
  Buffer.add_string b s;
  Buffer.add_char b '\n'

let w_list b f l =
  w_int b (List.length l);
  List.iter (f b) l

let w_opt b f = function
  | None -> w_line b "-"
  | Some v ->
      w_line b "+";
      f b v

(* ------------------------------------------------------------------ *)
(* payload readers                                                     *)
(* ------------------------------------------------------------------ *)

type cursor = { buf : string; mutable pos : int }

let cursor buf = { buf; pos = 0 }
let at_end cur = cur.pos >= String.length cur.buf

let r_line cur =
  match String.index_from_opt cur.buf cur.pos '\n' with
  | None -> corrupt "malformed payload: unterminated token at byte %d" cur.pos
  | Some nl ->
      let s = String.sub cur.buf cur.pos (nl - cur.pos) in
      cur.pos <- nl + 1;
      s

let r_int cur =
  let s = r_line cur in
  match int_of_string_opt s with
  | Some n -> n
  | None -> corrupt "malformed payload: expected an integer, got %S" s

let r_float cur =
  let s = r_line cur in
  match float_of_string_opt s with
  | Some f -> f
  | None -> corrupt "malformed payload: expected a float, got %S" s

let r_str cur =
  let n = r_int cur in
  if n < 0 || cur.pos + n + 1 > String.length cur.buf then
    corrupt "malformed payload: string of %d bytes overruns the payload" n
  else begin
    let s = String.sub cur.buf cur.pos n in
    if cur.buf.[cur.pos + n] <> '\n' then
      corrupt "malformed payload: unterminated string at byte %d" cur.pos;
    cur.pos <- cur.pos + n + 1;
    s
  end

let r_list cur f =
  let n = r_int cur in
  if n < 0 then corrupt "malformed payload: negative list length %d" n;
  List.init n (fun _ -> f cur)

let r_opt cur f =
  match r_line cur with
  | "-" -> None
  | "+" -> Some (f cur)
  | s -> corrupt "malformed payload: expected an option marker, got %S" s

(* ------------------------------------------------------------------ *)
(* file image: header + checksummed payload                            *)
(* ------------------------------------------------------------------ *)

let frame ~magic ~version payload =
  Printf.sprintf "%s %d %08lx %d\n%s" magic version (crc32 payload)
    (String.length payload)
    payload

let unframe ~magic ~version ~kind image =
  let header, body =
    match String.index_opt image '\n' with
    | None -> corrupt "truncated %s: no header line" kind
    | Some nl ->
        ( String.sub image 0 nl,
          String.sub image (nl + 1) (String.length image - nl - 1) )
  in
  let m, v, crc, len =
    match String.split_on_char ' ' header with
    | [ m; v; crc; len ] -> (m, v, crc, len)
    | _ -> corrupt "bad magic: not a LegoDB %s" kind
  in
  if not (String.equal m magic) then corrupt "bad magic: not a LegoDB %s" kind;
  (match int_of_string_opt v with
  | Some v when v = version -> ()
  | Some v ->
      corrupt "unsupported %s version %d (this build reads %d)" kind v version
  | None -> corrupt "malformed header: version %S is not a number" v);
  let len =
    (* canonical decimal only: [int_of_string] also accepts "0x..",
       "+5", "1_0" — leaving those re-parseable would let a damaged
       header alias an undamaged one *)
    match int_of_string_opt len with
    | Some n when n >= 0 && String.equal len (string_of_int n) -> n
    | _ -> corrupt "malformed header: payload length %S" len
  in
  if String.length body < len then
    corrupt "truncated %s: header promises %d payload bytes, found %d" kind len
      (String.length body);
  if String.length body > len then
    corrupt "malformed %s: %d bytes beyond the declared payload" kind
      (String.length body - len);
  let expected =
    (* canonical lowercase %08lx only: hex parsing is case-insensitive,
       so without this a flipped case bit in a hex digit would still be
       accepted — and "any single bit flip is rejected" is a contract
       the protocol fuzz tests hold us to *)
    match Int32.of_string_opt ("0x" ^ crc) with
    | Some c when String.equal crc (Printf.sprintf "%08lx" c) -> c
    | _ -> corrupt "malformed header: checksum %S is not canonical hex" crc
  in
  let actual = crc32 body in
  if not (Int32.equal expected actual) then
    corrupt "checksum mismatch: header says %08lx, payload hashes to %08lx"
      expected actual;
  body

(* ------------------------------------------------------------------ *)
(* file I/O through the injectable fault seam                          *)
(* ------------------------------------------------------------------ *)

type fs = {
  write : Unix.file_descr -> string -> unit;
  fsync : Unix.file_descr -> unit;
  rename : string -> string -> unit;
}

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let real_fs = { write = write_all; fsync = Unix.fsync; rename = Sys.rename }

(* tmp + fsync + rename + parent-directory fsync: the rename is what
   publishes the new bytes, so they must be on disk before it, and the
   rename itself lives in the directory, so the directory must be
   synced after it — otherwise a power cut can roll either back *)
let write_atomic ?(fs = real_fs) ~path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  (match
     fs.write fd data;
     fs.fsync fd
   with
  | () -> Unix.close fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  fs.rename tmp path;
  let dir = Filename.dirname path in
  let dfd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
  (match fs.fsync dfd with
  | () -> Unix.close dfd
  | exception e ->
      (try Unix.close dfd with Unix.Unix_error _ -> ());
      raise e)

let read_file path =
  let ic = open_in_bin path in
  match really_input_string ic (in_channel_length ic) with
  | s ->
      close_in ic;
      s
  | exception e ->
      close_in_noerr ic;
      raise e
