(** The server's one lock, build-selected like {!Legodb_search.Par}:
    a real [Mutex] on OCaml >= 5 (where batch requests overlap on
    domains), a no-op on 4.14 (where {!Legodb_search.Par} runs every
    batch sequentially, so there is nothing to exclude). *)

type t

val create : unit -> t

val with_lock : t -> (unit -> 'a) -> 'a
(** Run the thunk holding the lock; always releases, even on raise.
    Not re-entrant. *)
