module Storage = Legodb_relational.Storage
module Rschema = Legodb_relational.Rschema
module Rtype = Legodb_relational.Rtype
module Wire = Legodb_wire.Wire
module Mapping = Legodb_mapping.Mapping
module Xq_translate = Legodb_mapping.Xq_translate
module Shred = Legodb_mapping.Shred
module Logical = Legodb_optimizer.Logical
module Physical = Legodb_optimizer.Physical
module Optimizer = Legodb_optimizer.Optimizer
module Cost = Legodb_optimizer.Cost
module Executor = Legodb_optimizer.Executor
module Xq_ast = Legodb_xquery.Xq_ast
module Cost_engine = Legodb_search.Cost_engine
module Par = Legodb_search.Par

(* One serving snapshot: the frozen store plus the fingerprint index
   of its catalog, computed once per publish so every request's
   plan-cache key costs O(touched tables) hashtable probes. *)
type snap = {
  db : Storage.t;
  fps : (string, string) Hashtbl.t;
}

(* per-statement translation, done once ever (it depends only on the
   mapping, which never changes); plans are per (statement, snapshot
   fingerprints) *)
type translation = {
  id : int;  (* statement index for the cache key *)
  lq : Logical.query;
  tables : string list;  (* the statement's read set *)
}

type compiled = (Physical.plan * (string * string) list) list

type reply = {
  rows : Rtype.value list list;
  cached : bool;
  latency_s : float;
}

type stats = {
  served : int;
  cache_hits : int;
  cache_misses : int;
  snapshot_rows : int;
  snapshots_published : int;
  pending_appends : int;
  wal_appends : int;
  wal_fsyncs : int;
  wal_groups : int;
  wal_max_group : int;
  batches : int;
  max_batch : int;
}

(* durability state: the WAL every acknowledged append is fsynced to,
   and the directory whose snapshot each publish rewrites.  After a WAL
   I/O failure the server is fail-stop for writes ([broken]): the
   failed append was never acknowledged, and acknowledging anything
   after it would leave a hole for replay. *)
type durable = {
  dir : string;
  dfs : Wire.fs;
  wal : Wal.t;
  mutable broken : string option;
}

type t = {
  mapping : Mapping.t;
  working : Storage.t;
  snap : snap Atomic.t;
  lock : Serve_lock.t;
  (* guarded by [lock]: *)
  translations : (string, translation) Hashtbl.t;  (* structural text -> t *)
  plans : (string, compiled) Hashtbl.t;  (* statement_key -> plans *)
  mutable next_id : int;
  mutable served : int;
  mutable hits : int;
  mutable misses : int;
  mutable published : int;
  mutable pending : int;
  mutable batches : int;
  mutable max_batch : int;
  jobs : int;
  params : Cost.params;
  clock : unit -> float;
  mutable dur : durable option;
}

(* compiled plans for dropped snapshots accumulate under their
   unreachable keys; a long-lived server publishing many snapshots
   would otherwise leak, so the cache is simply emptied when it
   exceeds this many entries (recompiling is cheap and rare) *)
let max_cached_plans = 4096

let make ?(jobs = 0) ?(params = Cost.default_params)
    ?(clock = Unix.gettimeofday) mapping db =
  if Storage.is_frozen db then
    invalid_arg "Serve.create: the working store must not be frozen";
  let jobs = if jobs <= 0 then Par.default_jobs () else jobs in
  Par.ensure_workers ~jobs;
  let frozen = Storage.freeze db in
  {
    mapping;
    working = db;
    snap =
      Atomic.make
        { db = frozen; fps = Mapping.fingerprint_index (Storage.catalog frozen) };
    lock = Serve_lock.create ();
    translations = Hashtbl.create 64;
    plans = Hashtbl.create 256;
    next_id = 0;
    served = 0;
    hits = 0;
    misses = 0;
    published = 0;
    pending = 0;
    batches = 0;
    max_batch = 0;
    jobs;
    params;
    clock;
    dur = None;
  }

let write_snapshot_of t ~fs ~dir ~last_seq frozen =
  Wal.write_snapshot ~fs ~path:(Wal.snapshot_file dir)
    ~schema:t.mapping.Mapping.schema ~ordered:t.mapping.Mapping.ordered
    ~last_seq frozen

let create ?jobs ?params ?clock ?data_dir ?(fs = Wire.real_fs) mapping db =
  let t = make ?jobs ?params ?clock mapping db in
  (match data_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      if Sys.file_exists (Wal.snapshot_file dir) then
        invalid_arg
          (Printf.sprintf
             "Serve.create: %s already holds a snapshot (recover it instead)"
             dir);
      (* the initial freeze is published state: snapshot it before the
         first append so recovery never has less than a create saw *)
      write_snapshot_of t ~fs ~dir ~last_seq:0 (Atomic.get t.snap).db;
      let wal = Wal.create ~fs ~next_seq:1 (Wal.wal_file dir) in
      t.dur <- Some { dir; dfs = fs; wal; broken = None });
  t

let jobs t = t.jobs
let snapshot t = (Atomic.get t.snap).db

(* structural statement identity: the FLWR body, not the query name,
   so identically-shaped requests share one cache line whatever their
   callers named them *)
let statement_text (q : Xq_ast.t) =
  Format.asprintf "%a" Xq_ast.pp_flwr q.Xq_ast.body

let compile_blocks ~params cat (lq : Logical.query) : compiled =
  List.map
    (fun (b : Logical.block) ->
      ((Optimizer.optimize_block ~params cat b).Optimizer.plan, b.Logical.out))
    lq.Logical.blocks

(* translate once per distinct statement; Untranslatable escapes to
   the caller before anything is cached *)
let translation t q =
  let text = statement_text q in
  match
    Serve_lock.with_lock t.lock (fun () -> Hashtbl.find_opt t.translations text)
  with
  | Some tr -> tr
  | None ->
      let lq, tables = Xq_translate.translate_with_tables t.mapping q in
      Serve_lock.with_lock t.lock (fun () ->
          match Hashtbl.find_opt t.translations text with
          | Some tr -> tr  (* another worker won the race *)
          | None ->
              let tr = { id = t.next_id; lq; tables } in
              t.next_id <- t.next_id + 1;
              Hashtbl.replace t.translations text tr;
              tr)

let plans_for t (snap : snap) (tr : translation) =
  let key =
    Cost_engine.statement_key ~kind:'q' ~index:tr.id snap.fps tr.tables
  in
  match
    Serve_lock.with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.plans key with
        | Some p ->
            t.hits <- t.hits + 1;
            Some p
        | None -> None)
  with
  | Some p -> (p, true)
  | None ->
      (* compile outside the lock: join ordering is the expensive part
         and must not serialize the whole batch; first writer wins *)
      let compiled = compile_blocks ~params:t.params (Storage.catalog snap.db) tr.lq in
      let p =
        Serve_lock.with_lock t.lock (fun () ->
            match Hashtbl.find_opt t.plans key with
            | Some p -> p
            | None ->
                if Hashtbl.length t.plans >= max_cached_plans then
                  Hashtbl.reset t.plans;
                Hashtbl.replace t.plans key compiled;
                t.misses <- t.misses + 1;
                compiled)
      in
      (p, false)

exception Timed_out

(* cooperative per-request deadline: the clock is consulted before
   every block of the plan, so a request that blows its budget degrades
   to a structured [Error] slot at the next block boundary instead of
   wedging its worker forever (a block itself is never interrupted —
   granularity is one block's execution) *)
let run_blocks t db ~deadline plans =
  List.concat_map
    (fun (plan, out) ->
      (match deadline with
      | Some d when t.clock () >= d -> raise Timed_out
      | _ -> ());
      fst (Executor.run_block db plan out))
    plans

let query_on t (snap : snap) ?(use_cache = true) ?deadline q =
  let t0 = t.clock () in
  let plans, cached =
    if use_cache then plans_for t snap (translation t q)
    else
      let lq = Xq_translate.translate t.mapping q in
      (compile_blocks ~params:t.params (Storage.catalog snap.db) lq, false)
  in
  let rows = run_blocks t snap.db ~deadline plans in
  Serve_lock.with_lock t.lock (fun () -> t.served <- t.served + 1);
  { rows; cached; latency_s = t.clock () -. t0 }

let query ?use_cache t q = query_on t (Atomic.get t.snap) ?use_cache q

let run_batch ?timeout_ms t qs =
  let n = Array.length qs in
  (* the whole batch reads one snapshot: a publish racing the batch
     swaps the snapshot for *later* batches, it never tears this one *)
  let snap = Atomic.get t.snap in
  Serve_lock.with_lock t.lock (fun () ->
      t.batches <- t.batches + 1;
      t.max_batch <- max t.max_batch n);
  let out = Array.make n (Error "unanswered") in
  ignore
    (Par.run_tasks ~jobs:t.jobs n (fun ~worker:_ i ->
         (* each request gets its own budget, from its own start *)
         let deadline =
           Option.map (fun ms -> t.clock () +. (float_of_int ms /. 1000.)) timeout_ms
         in
         out.(i) <-
           (match query_on t snap ?deadline qs.(i) with
           | reply -> Ok reply
           | exception Xq_translate.Untranslatable m ->
               Error (Printf.sprintf "untranslatable: %s" m)
           | exception Timed_out ->
               Error
                 (Printf.sprintf "timeout: request exceeded %dms"
                    (Option.value ~default:0 timeout_ms)))));
  out

(* run [f] (which inserts into the working store) and stage exactly
   the rows it added in the WAL's open group, so the durable log
   mirrors the in-memory store even when shredding fails partway (the
   partial rows are staged too, and [f]'s failure is returned rather
   than raised so the caller can flush the group first).  Nothing
   touches the disk here: the caller must {!wal_flush} — the ack
   barrier — before acknowledging anything staged.  Caller holds the
   lock. *)
let wal_stage t f =
  match t.dur with
  | None -> ( match f () with () -> Ok () | exception e -> Error e)
  | Some d ->
      (match d.broken with
      | Some m ->
          failwith
            (Printf.sprintf
               "Serve.append: fail-stop after a WAL write failure (%s)" m)
      | None -> ());
      let cat = Storage.catalog t.working in
      let before =
        List.map
          (fun (tbl : Rschema.table) ->
            (tbl.Rschema.tname, Storage.row_count t.working tbl.Rschema.tname))
          cat.Rschema.tables
      in
      let res = match f () with () -> Ok () | exception e -> Error e in
      let added =
        List.filter_map
          (fun (tname, n0) ->
            let n1 = Storage.row_count t.working tname in
            if n1 > n0 then
              Some
                ( tname,
                  List.init (n1 - n0) (fun i -> Storage.get t.working tname (n0 + i))
                )
            else None)
          before
      in
      ignore (Wal.stage d.wal added);
      res

(* commit the open group: one write + one fsync covering everything
   staged since the last flush.  Caller holds the lock. *)
let wal_flush t =
  match t.dur with
  | None -> ()
  | Some d -> (
      try Wal.flush d.wal
      with e ->
        (* the commit unit may be torn on disk; none of the group was
           acknowledged.  Refuse further writes — replay must never
           see a hole. *)
        d.broken <- Some (Printexc.to_string e);
        raise e)

let shred_error = function
  | Shred.Shred_error { path; message } ->
      Printf.sprintf "shredding failed at %s: %s" (String.concat "/" path)
        message
  | e -> Printexc.to_string e

let append t doc =
  Serve_lock.with_lock t.lock (fun () ->
      let res = wal_stage t (fun () -> Shred.shred_into t.working t.mapping doc) in
      wal_flush t;
      match res with
      | Ok () -> t.pending <- t.pending + 1
      | Error e -> raise e)

let append_group t docs =
  Serve_lock.with_lock t.lock (fun () ->
      (* stage every document, then flush once: the whole group rides
         one commit unit — one write, one fsync — and nothing is
         acknowledged until that fsync returns.  A document that fails
         to shred poisons only its own slot (its partial rows are
         staged, mirroring the store, exactly as {!append} logs them)
         — never its neighbors. *)
      let results =
        List.map
          (fun doc ->
            wal_stage t (fun () -> Shred.shred_into t.working t.mapping doc))
          docs
      in
      wal_flush t;
      List.map
        (function
          | Ok () ->
              t.pending <- t.pending + 1;
              Ok ()
          | Error e -> Error (shred_error e))
        results)

let publish t =
  Serve_lock.with_lock t.lock (fun () ->
      (* by construction nothing is staged between appends (both append
         paths flush before returning), but the snapshot must never
         outrun the log — flush defensively before freezing *)
      wal_flush t;
      let frozen = Storage.freeze t.working in
      (* snapshot first, then truncate the log: a crash between the two
         leaves already-snapshotted records in the log, which replay
         skips by sequence number — never a window with neither *)
      (match t.dur with
      | None -> ()
      | Some d ->
          write_snapshot_of t ~fs:d.dfs ~dir:d.dir
            ~last_seq:(Wal.next_seq d.wal - 1) frozen;
          Wal.reset d.wal);
      Atomic.set t.snap
        { db = frozen; fps = Mapping.fingerprint_index (Storage.catalog frozen) };
      t.published <- t.published + 1;
      t.pending <- 0)

(* ------------------------------------------------------------------ *)
(* recovery                                                            *)
(* ------------------------------------------------------------------ *)

type recovery = {
  r_snapshot_rows : int;
  r_snapshot_seq : int;
  r_replayed : int;
  r_skipped : int;
  r_recovered_seq : int;
  r_torn : string option;
  r_dropped_bytes : int;
}

let recover ?jobs ?params ?clock ?(fs = Wire.real_fs) ?mapping ~dir () =
  let snap = Wal.load_snapshot (Wal.snapshot_file dir) in
  let mapping =
    match mapping with
    | Some m -> m
    | None -> (
        match
          Mapping.of_pschema ~order_columns:snap.Wal.s_ordered snap.Wal.s_schema
        with
        | Ok m -> m
        | Error errs ->
            raise
              (Wal.Corrupt
                 (Printf.sprintf "snapshot schema does not map: %s"
                    (String.concat "; " errs))))
  in
  let db = Storage.create mapping.Mapping.catalog in
  snap.Wal.s_fill db;
  let snapshot_rows = Storage.total_rows db in
  let rep = Wal.replay_file (Wal.wal_file dir) in
  let last = snap.Wal.s_last_seq in
  (* records the snapshot already covers (a crash landed between the
     snapshot rename and the log truncation) are skipped; the rest must
     continue exactly where the snapshot ends *)
  let skipped, applied =
    List.partition (fun (r : Wal.record) -> r.Wal.seq <= last) rep.Wal.records
  in
  (match applied with
  | first :: _ when first.Wal.seq <> last + 1 ->
      raise
        (Wal.Corrupt
           (Printf.sprintf
              "WAL gap: snapshot covers up to record %d but replay continues \
               at %d"
              last first.Wal.seq))
  | _ -> ());
  let recovered_seq =
    List.fold_left (fun _ (r : Wal.record) -> r.Wal.seq) last applied
  in
  (* the snapshot is the published state: freeze it for serving before
     replay, so replayed appends are pending (unpublished) — exactly
     what a never-crashed server shows, where unacked publishes don't
     exist and unpublished appends are invisible to readers *)
  let t = make ?jobs ?params ?clock mapping db in
  List.iter
    (fun (r : Wal.record) ->
      List.iter
        (fun (tname, rows) -> List.iter (Storage.insert t.working tname) rows)
        r.Wal.rows)
    applied;
  t.pending <- List.length applied;
  let wal_path = Wal.wal_file dir in
  let wal =
    if Sys.file_exists wal_path then
      let size = (Unix.stat wal_path).Unix.st_size in
      Wal.reopen ~fs
        ~valid_bytes:(size - rep.Wal.dropped_bytes)
        ~next_seq:(recovered_seq + 1) wal_path
    else
      (* the crash predated the log's creation: the snapshot alone is
         the state *)
      Wal.create ~fs ~next_seq:(recovered_seq + 1) wal_path
  in
  t.dur <- Some { dir; dfs = fs; wal; broken = None };
  ( t,
    {
      r_snapshot_rows = snapshot_rows;
      r_snapshot_seq = last;
      r_replayed = List.length applied;
      r_skipped = List.length skipped;
      r_recovered_seq = recovered_seq;
      r_torn = rep.Wal.torn;
      r_dropped_bytes = rep.Wal.dropped_bytes;
    } )

let data_dir t = Option.map (fun d -> d.dir) t.dur

let pp_recovery fmt r =
  Format.fprintf fmt
    "snapshot: %d rows through record %d; wal: %d replayed as pending, %d \
     already snapshotted, recovered through record %d%s"
    r.r_snapshot_rows r.r_snapshot_seq r.r_replayed r.r_skipped
    r.r_recovered_seq
    (match r.r_torn with
    | None -> ""
    | Some why ->
        Printf.sprintf "; dropped %d-byte torn tail (%s)" r.r_dropped_bytes why)

let stats t =
  Serve_lock.with_lock t.lock (fun () ->
      let w =
        match t.dur with
        | None -> { Wal.appends = 0; fsyncs = 0; groups = 0; max_group = 0 }
        | Some d -> Wal.stats d.wal
      in
      {
        served = t.served;
        cache_hits = t.hits;
        cache_misses = t.misses;
        snapshot_rows = Storage.total_rows (Atomic.get t.snap).db;
        snapshots_published = t.published;
        pending_appends = t.pending;
        wal_appends = w.Wal.appends;
        wal_fsyncs = w.Wal.fsyncs;
        wal_groups = w.Wal.groups;
        wal_max_group = w.Wal.max_group;
        batches = t.batches;
        max_batch = t.max_batch;
      })

(* ------------------------------------------------------------------ *)
(* latency accounting                                                  *)
(* ------------------------------------------------------------------ *)

type summary = {
  n : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let summarize ~wall_s latencies =
  let n = Array.length latencies in
  if n = 0 then
    { n; wall_s; qps = 0.; p50_ms = 0.; p95_ms = 0.; p99_ms = 0. }
  else begin
    let sorted = Array.copy latencies in
    Array.sort compare sorted;
    (* nearest-rank percentile *)
    let pct q =
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      1000. *. sorted.(max 0 (min (n - 1) (rank - 1)))
    in
    {
      n;
      wall_s;
      qps = (if wall_s > 0. then float_of_int n /. wall_s else 0.);
      p50_ms = pct 0.50;
      p95_ms = pct 0.95;
      p99_ms = pct 0.99;
    }
  end

let pp_summary fmt s =
  Format.fprintf fmt
    "%d requests in %.3fs: %.0f qps, latency p50 %.3fms p95 %.3fms p99 %.3fms"
    s.n s.wall_s s.qps s.p50_ms s.p95_ms s.p99_ms

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "served %d (plan cache: %d hits, %d misses), snapshot %d rows, %d \
     publishes, %d pending appends"
    s.served s.cache_hits s.cache_misses s.snapshot_rows s.snapshots_published
    s.pending_appends;
  if s.batches > 0 then
    Format.fprintf fmt "; %d batches (max %d)" s.batches s.max_batch;
  if s.wal_appends > 0 then
    Format.fprintf fmt
      "; wal: %d appends in %d groups (max %d), %.2f fsyncs/append"
      s.wal_appends s.wal_groups s.wal_max_group
      (float_of_int s.wal_fsyncs /. float_of_int s.wal_appends)
