module Storage = Legodb_relational.Storage
module Rtype = Legodb_relational.Rtype
module Mapping = Legodb_mapping.Mapping
module Xq_translate = Legodb_mapping.Xq_translate
module Shred = Legodb_mapping.Shred
module Logical = Legodb_optimizer.Logical
module Physical = Legodb_optimizer.Physical
module Optimizer = Legodb_optimizer.Optimizer
module Cost = Legodb_optimizer.Cost
module Executor = Legodb_optimizer.Executor
module Xq_ast = Legodb_xquery.Xq_ast
module Cost_engine = Legodb_search.Cost_engine
module Par = Legodb_search.Par

(* One serving snapshot: the frozen store plus the fingerprint index
   of its catalog, computed once per publish so every request's
   plan-cache key costs O(touched tables) hashtable probes. *)
type snap = {
  db : Storage.t;
  fps : (string, string) Hashtbl.t;
}

(* per-statement translation, done once ever (it depends only on the
   mapping, which never changes); plans are per (statement, snapshot
   fingerprints) *)
type translation = {
  id : int;  (* statement index for the cache key *)
  lq : Logical.query;
  tables : string list;  (* the statement's read set *)
}

type compiled = (Physical.plan * (string * string) list) list

type reply = {
  rows : Rtype.value list list;
  cached : bool;
  latency_s : float;
}

type stats = {
  served : int;
  cache_hits : int;
  cache_misses : int;
  snapshot_rows : int;
  snapshots_published : int;
  pending_appends : int;
}

type t = {
  mapping : Mapping.t;
  working : Storage.t;
  snap : snap Atomic.t;
  lock : Serve_lock.t;
  (* guarded by [lock]: *)
  translations : (string, translation) Hashtbl.t;  (* structural text -> t *)
  plans : (string, compiled) Hashtbl.t;  (* statement_key -> plans *)
  mutable next_id : int;
  mutable served : int;
  mutable hits : int;
  mutable misses : int;
  mutable published : int;
  mutable pending : int;
  jobs : int;
  params : Cost.params;
}

(* compiled plans for dropped snapshots accumulate under their
   unreachable keys; a long-lived server publishing many snapshots
   would otherwise leak, so the cache is simply emptied when it
   exceeds this many entries (recompiling is cheap and rare) *)
let max_cached_plans = 4096

let create ?(jobs = 0) ?(params = Cost.default_params) mapping db =
  if Storage.is_frozen db then
    invalid_arg "Serve.create: the working store must not be frozen";
  let jobs = if jobs <= 0 then Par.default_jobs () else jobs in
  Par.ensure_workers ~jobs;
  let frozen = Storage.freeze db in
  {
    mapping;
    working = db;
    snap =
      Atomic.make
        { db = frozen; fps = Mapping.fingerprint_index (Storage.catalog frozen) };
    lock = Serve_lock.create ();
    translations = Hashtbl.create 64;
    plans = Hashtbl.create 256;
    next_id = 0;
    served = 0;
    hits = 0;
    misses = 0;
    published = 0;
    pending = 0;
    jobs;
    params;
  }

let jobs t = t.jobs
let snapshot t = (Atomic.get t.snap).db

(* structural statement identity: the FLWR body, not the query name,
   so identically-shaped requests share one cache line whatever their
   callers named them *)
let statement_text (q : Xq_ast.t) =
  Format.asprintf "%a" Xq_ast.pp_flwr q.Xq_ast.body

let compile_blocks ~params cat (lq : Logical.query) : compiled =
  List.map
    (fun (b : Logical.block) ->
      ((Optimizer.optimize_block ~params cat b).Optimizer.plan, b.Logical.out))
    lq.Logical.blocks

(* translate once per distinct statement; Untranslatable escapes to
   the caller before anything is cached *)
let translation t q =
  let text = statement_text q in
  match
    Serve_lock.with_lock t.lock (fun () -> Hashtbl.find_opt t.translations text)
  with
  | Some tr -> tr
  | None ->
      let lq, tables = Xq_translate.translate_with_tables t.mapping q in
      Serve_lock.with_lock t.lock (fun () ->
          match Hashtbl.find_opt t.translations text with
          | Some tr -> tr  (* another worker won the race *)
          | None ->
              let tr = { id = t.next_id; lq; tables } in
              t.next_id <- t.next_id + 1;
              Hashtbl.replace t.translations text tr;
              tr)

let plans_for t (snap : snap) (tr : translation) =
  let key =
    Cost_engine.statement_key ~kind:'q' ~index:tr.id snap.fps tr.tables
  in
  match
    Serve_lock.with_lock t.lock (fun () ->
        match Hashtbl.find_opt t.plans key with
        | Some p ->
            t.hits <- t.hits + 1;
            Some p
        | None -> None)
  with
  | Some p -> (p, true)
  | None ->
      (* compile outside the lock: join ordering is the expensive part
         and must not serialize the whole batch; first writer wins *)
      let compiled = compile_blocks ~params:t.params (Storage.catalog snap.db) tr.lq in
      let p =
        Serve_lock.with_lock t.lock (fun () ->
            match Hashtbl.find_opt t.plans key with
            | Some p -> p
            | None ->
                if Hashtbl.length t.plans >= max_cached_plans then
                  Hashtbl.reset t.plans;
                Hashtbl.replace t.plans key compiled;
                t.misses <- t.misses + 1;
                compiled)
      in
      (p, false)

let query_on t (snap : snap) ?(use_cache = true) q =
  let t0 = Unix.gettimeofday () in
  let plans, cached =
    if use_cache then plans_for t snap (translation t q)
    else
      let lq = Xq_translate.translate t.mapping q in
      (compile_blocks ~params:t.params (Storage.catalog snap.db) lq, false)
  in
  let rows, _measures = Executor.run_query snap.db plans in
  Serve_lock.with_lock t.lock (fun () -> t.served <- t.served + 1);
  { rows; cached; latency_s = Unix.gettimeofday () -. t0 }

let query ?use_cache t q = query_on t (Atomic.get t.snap) ?use_cache q

let run_batch t qs =
  let n = Array.length qs in
  (* the whole batch reads one snapshot: a publish racing the batch
     swaps the snapshot for *later* batches, it never tears this one *)
  let snap = Atomic.get t.snap in
  let out = Array.make n (Error "unanswered") in
  ignore
    (Par.run_tasks ~jobs:t.jobs n (fun ~worker:_ i ->
         out.(i) <-
           (match query_on t snap qs.(i) with
           | reply -> Ok reply
           | exception Xq_translate.Untranslatable m ->
               Error (Printf.sprintf "untranslatable: %s" m))));
  out

let append t doc =
  Serve_lock.with_lock t.lock (fun () ->
      Shred.shred_into t.working t.mapping doc;
      t.pending <- t.pending + 1)

let publish t =
  Serve_lock.with_lock t.lock (fun () ->
      let frozen = Storage.freeze t.working in
      Atomic.set t.snap
        { db = frozen; fps = Mapping.fingerprint_index (Storage.catalog frozen) };
      t.published <- t.published + 1;
      t.pending <- 0)

let stats t =
  Serve_lock.with_lock t.lock (fun () ->
      {
        served = t.served;
        cache_hits = t.hits;
        cache_misses = t.misses;
        snapshot_rows = Storage.total_rows (Atomic.get t.snap).db;
        snapshots_published = t.published;
        pending_appends = t.pending;
      })

(* ------------------------------------------------------------------ *)
(* latency accounting                                                  *)
(* ------------------------------------------------------------------ *)

type summary = {
  n : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let summarize ~wall_s latencies =
  let n = Array.length latencies in
  if n = 0 then
    { n; wall_s; qps = 0.; p50_ms = 0.; p95_ms = 0.; p99_ms = 0. }
  else begin
    let sorted = Array.copy latencies in
    Array.sort compare sorted;
    (* nearest-rank percentile *)
    let pct q =
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      1000. *. sorted.(max 0 (min (n - 1) (rank - 1)))
    in
    {
      n;
      wall_s;
      qps = (if wall_s > 0. then float_of_int n /. wall_s else 0.);
      p50_ms = pct 0.50;
      p95_ms = pct 0.95;
      p99_ms = pct 0.99;
    }
  end

let pp_summary fmt s =
  Format.fprintf fmt
    "%d requests in %.3fs: %.0f qps, latency p50 %.3fms p95 %.3fms p99 %.3fms"
    s.n s.wall_s s.qps s.p50_ms s.p95_ms s.p99_ms

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "served %d (plan cache: %d hits, %d misses), snapshot %d rows, %d \
     publishes, %d pending appends"
    s.served s.cache_hits s.cache_misses s.snapshot_rows s.snapshots_published
    s.pending_appends
