(* Mutex-backed lock, selected on OCaml >= 5 (see serve_lock.mli). *)

type t = Mutex.t

let create = Mutex.create

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
