(** Offset-carrying byte buffers for the network front door.

    One [Iobuf.t] is a growable byte array with a window of live bytes
    and a scan watermark.  It exists to kill the two quadratic string
    rebuilds the first front door shipped with:

    - input: [pend <- pend ^ chunk] re-copied every already-buffered
      byte on every read, and frame extraction re-scanned them all for
      the header newline — a large frame arriving in 64 KiB reads cost
      O(frames²).  Here {!read_from} reads straight into the buffer's
      tail, {!consume} advances an offset without moving a byte, and
      {!find_newline} remembers how far it has scanned so no byte is
      ever examined twice.
    - output: [out <- unsent_tail ^ fresh] re-copied the unsent tail on
      every partial write.  Here {!write_to} advances the same offset
      and {!add_buffer}/{!add_string} append encoded frames in place.

    Buffers compact (blit live bytes to the front) only when a reserve
    would otherwise grow the array, and shrink back to a bounded
    capacity once drained, so one giant frame does not pin its peak
    footprint for the life of the connection.  Not thread-safe. *)

type t

val create : int -> t
(** [create cap] — an empty buffer with [cap] bytes pre-allocated. *)

val of_string : string -> t
(** A buffer holding exactly [s] — the string-oriented
    {!Legodb_serve.Net.extract} wrapper's entry point. *)

val length : t -> int
(** Live (unconsumed) bytes. *)

val is_empty : t -> bool

val capacity : t -> int
(** Allocated bytes — what the shrink policy bounds. *)

val contents : t -> string
(** Copy of the live bytes (tests and the [extract] wrapper only). *)

val sub : t -> pos:int -> len:int -> string
(** [sub t ~pos ~len] — a copy of live bytes [pos..pos+len-1], [pos]
    relative to the first live byte.
    @raise Invalid_argument when the range leaves the live window. *)

val add_string : t -> string -> unit
val add_substring : t -> string -> pos:int -> len:int -> unit

val add_buffer : t -> Buffer.t -> unit
(** Append a [Buffer]'s contents with one blit — no intermediate
    string. *)

val consume : t -> int -> unit
(** Drop [n] bytes off the front (offset arithmetic, no copying).  A
    drained buffer resets its offsets and, past a capacity bound,
    shrinks its storage.
    @raise Invalid_argument when [n] exceeds {!length}. *)

val clear : t -> unit

val find_newline : t -> int option
(** Position of the first ['\n'] among the live bytes, relative to the
    first live byte — or [None].  Scanning resumes from the previous
    call's watermark, so repeated calls over a growing buffer examine
    each byte exactly once. *)

val read_from : ?chunk:int -> t -> Unix.file_descr -> int
(** Read up to [chunk] (default 64 KiB) bytes from [fd] directly into
    the buffer's tail and return the count ([0] = EOF).  Raises
    whatever [Unix.read] raises — [EAGAIN]/[EINTR] handling is the
    caller's. *)

val write_to : ?max:int -> t -> Unix.file_descr -> int
(** Write the live bytes (at most [max], if given — the short-write
    injection seam) to [fd], consume what was accepted, and return the
    count.  Raises whatever [Unix.write] raises. *)
