(** [legodb serve]: a concurrent query server over frozen storage
    snapshots — the front door the ROADMAP's "serve the winning
    design" item asks for.

    {2 Snapshot lifecycle}

    The server owns two stores derived from one {!Legodb_mapping}
    configuration:

    - a mutable {e working} store that {!append}-ed documents are
      shredded into, and
    - an immutable {e serving snapshot} ({!Legodb_relational.Storage.freeze}
      of the working store): alias-free, statistics matching its
      contents, and rejecting writes — which is what makes it safe to
      read from any number of domains with no locking at all.

    Reads never block writes and vice versa: requests execute against
    the snapshot that was current when they (or their batch) started,
    while appends mutate only the working store.  {!publish} is the
    batched-append barrier: it freezes the working store into a fresh
    snapshot and atomically swaps it in; in-flight requests keep their
    old snapshot (it stays valid forever — nothing can mutate it),
    later requests see the new one.

    {2 Compiled-plan cache}

    Translating a request and join-ordering its blocks costs orders of
    magnitude more than executing a selective plan, so compiled
    physical plans are cached.  The key is
    {!Legodb_search.Cost_engine.statement_key} — statement identity
    (structural, name-independent) x the fingerprints of the tables the
    statement touches under the {e current snapshot's} catalog — so the
    cache has exactly the cost engine's invalidation semantics: a
    publish that leaves a statement's tables structurally unchanged
    keeps its plan warm, and one that changes their statistics makes
    the old key unreachable (the plan is recompiled under the new
    statistics, never reused stale).

    {2 Concurrency}

    {!run_batch} fans a batch out on {!Legodb_search.Par.run_tasks}'s
    persistent domain pool (sequential on an OCaml 4.14 build — same
    answers, no overlap).  Shared mutable state (plan cache, counters,
    working store) is guarded by one lock; execution — the bulk of a
    request — runs lock-free against the immutable snapshot.

    {2 Durability}

    With a [?data_dir], the server is crash-safe ({!Wal}): every
    {!append} is captured — the exact rows it shredded — in a
    checksummed write-ahead log record and fsynced before the append
    returns, and every {!publish} atomically rewrites the directory's
    storage snapshot and truncates the log.  {!recover} rebuilds a
    server from the directory: latest valid snapshot, plus the log
    suffix replayed as {e pending} appends — pending, because they were
    never published, so the recovered server answers queries
    bit-identically to one that never crashed.  A torn log tail (the
    only artifact a crash can leave, since each record is one [write])
    is truncated and reported; real corruption raises {!Wal.Corrupt}
    and the CLI exits with code 8. *)

open Legodb_relational
open Legodb_xquery

type t

type reply = {
  rows : Rtype.value list list;
      (** the request's answer rows: every block's projected tuples, in
          block then row order (what {!Legodb_optimizer.Executor.run_query}
          returns) *)
  cached : bool;  (** the physical plans came from the plan cache *)
  latency_s : float;  (** compile (or cache probe) + execute seconds *)
}

type stats = {
  served : int;  (** requests answered (cache-bypassing ones included) *)
  cache_hits : int;
  cache_misses : int;  (** compilations performed *)
  snapshot_rows : int;  (** total rows of the current serving snapshot *)
  snapshots_published : int;  (** {!publish} barriers, initial freeze excluded *)
  pending_appends : int;  (** documents appended since the last publish *)
  wal_appends : int;  (** appends acknowledged durably ({!Wal.stats}) *)
  wal_fsyncs : int;  (** append-path fsyncs — [wal_fsyncs /. wal_appends]
                         is what group commit drives below 1.0 *)
  wal_groups : int;  (** commit units written *)
  wal_max_group : int;  (** largest group one fsync acknowledged *)
  batches : int;  (** {!run_batch} calls *)
  max_batch : int;  (** largest batch one call fanned out *)
}
(** The four [wal_*] counters are all zero when durability is off. *)

val create :
  ?jobs:int ->
  ?params:Legodb_optimizer.Cost.params ->
  ?clock:(unit -> float) ->
  ?data_dir:string ->
  ?fs:Legodb_wire.Wire.fs ->
  Legodb_mapping.Mapping.t ->
  Storage.t ->
  t
(** Stand a server up over a loaded store (typically
    {!Legodb_mapping.Shred.shred}'s result).  The store becomes the
    server's working store — the caller must stop using it — and its
    frozen copy becomes the first serving snapshot.  [?jobs] sizes
    {!run_batch}'s parallelism ([0] or unset = one per core); the
    worker pool is pre-spawned here, outside any timed region.
    [?params] are the cost-model weights plans are compiled under
    (default {!Legodb_optimizer.Cost.default_params}, the paper's
    disk-resident calibration); a purely in-memory server should pass
    weights with cheap seeks so selective requests compile to index
    probes rather than scans.  [?clock] (default [Unix.gettimeofday])
    times requests and drives {!run_batch}'s deadlines — injectable so
    timeout tests are deterministic.  [?data_dir] turns durability on:
    the directory is created if missing, seeded with an initial
    snapshot of the store, and a fresh write-ahead log is opened
    ([?fs] is the injectable I/O layer the fault tests crash).
    @raise Invalid_argument if the store is itself a frozen snapshot,
    or if [data_dir] already holds a snapshot (that store wants
    {!recover}, not a fresh server clobbering it). *)

val jobs : t -> int

val snapshot : t -> Storage.t
(** The current serving snapshot (frozen; safe to hold and read
    concurrently — it never changes, later {!publish}es swap in fresh
    ones). *)

val query : ?use_cache:bool -> t -> Xq_ast.t -> reply
(** Answer one request against the current snapshot: translate (or hit
    the plan cache), execute, reply.  [~use_cache:false] compiles
    fresh without reading or writing the cache or its counters — the
    reference path benchmarks and differential tests compare against.
    @raise Legodb_mapping.Xq_translate.Untranslatable on a request
    outside the supported fragment. *)

val run_batch :
  ?timeout_ms:int -> t -> Xq_ast.t array -> (reply, string) result array
(** Answer a batch of requests, overlapped on the domain pool (at most
    {!jobs} at a time), all against the {e same} snapshot — the one
    current when the batch started; a concurrent {!publish} does not
    tear a batch.  Result [i] answers request [i].  A request the
    translator rejects yields [Error message] for its slot — a bad
    request never takes the server (or its batch) down.  [?timeout_ms]
    gives each request its own wall-clock budget (measured by the
    server's clock from that request's start): a request over budget
    degrades to an [Error "timeout: ..."] slot at the next plan-block
    boundary — cooperative, so a block in progress finishes first —
    while the rest of the batch answers normally. *)

val append : t -> Legodb_xml.Xml.t -> unit
(** Shred one document into the working store.  Invisible to readers
    until the next {!publish}.  With durability on, the append is
    staged and flushed as its own commit unit — one fsync — before
    returning (the PR 8 fsync-per-append discipline).
    @raise Legodb_mapping.Shred.Shred_error when the document does not
    fit the configuration's schema (the working store may then hold a
    partial document — as with {!Legodb_mapping.Shred.shred_into}). *)

val append_group : t -> Legodb_xml.Xml.t list -> (unit, string) result list
(** Shred a batch of documents as one {e group commit}: every
    document's rows are staged in the WAL's open group, then a single
    flush — one [write], one [fsync] — acknowledges them all, so the
    device's sync latency is paid once per group instead of once per
    document.  None of the group is durable (and nothing is reported
    [Ok]) until that fsync returns; a crash mid-group loses the whole
    group, which is exactly what the callers were told.  Slot [i]
    answers document [i]: a document the shredder rejects yields
    [Error message] (its partial rows are logged, same as {!append})
    and never poisons its neighbors' slots.  [append_group t [d]] is
    {!append} with the error reified; [append_group t []] is a no-op
    ([[]], no fsync). *)

val publish : t -> unit
(** The batched-append barrier: freeze the working store (statistics
    refreshed) into a fresh snapshot and swap it in for subsequent
    requests.  Plans whose tables' statistics changed are recompiled
    on next use; plans over untouched tables stay warm. *)

val stats : t -> stats

(** {1 Recovery} *)

type recovery = {
  r_snapshot_rows : int;  (** rows the snapshot alone restored *)
  r_snapshot_seq : int;  (** last append the snapshot covers *)
  r_replayed : int;  (** log records re-applied, as pending appends *)
  r_skipped : int;
      (** log records the snapshot already covered (a crash between the
          snapshot rename and the log truncation leaves them behind;
          sequence numbers make the skip exact — nothing is ever
          applied twice) *)
  r_recovered_seq : int;  (** last append now recovered, durably *)
  r_torn : string option;
      (** why the log's tail was dropped, if it was: the signature of a
          crash mid-record (that append was never acknowledged) *)
  r_dropped_bytes : int;  (** size of the torn tail, 0 if none *)
}

val recover :
  ?jobs:int ->
  ?params:Legodb_optimizer.Cost.params ->
  ?clock:(unit -> float) ->
  ?fs:Legodb_wire.Wire.fs ->
  ?mapping:Legodb_mapping.Mapping.t ->
  dir:string ->
  unit ->
  t * recovery
(** Rebuild a server from a data directory: load the snapshot (the
    p-schema it carries rebuilds the mapping and catalog; pass
    [?mapping] to override when the original catalog had extras — e.g.
    secondary indexes {!Legodb_mapping.Mapping.of_pschema} does not
    derive), replay the log's suffix as pending appends, truncate any
    torn tail, and reopen the log for appending.  The serving snapshot
    is the {e published} state — replayed appends stay pending until
    the next {!publish} — so recovered answers are bit-identical to a
    never-crashed server's.
    @raise Wal.Corrupt on a corrupted snapshot or log (CLI exit 8)
    @raise Sys_error when the directory or snapshot is missing. *)

val data_dir : t -> string option
(** The directory this server persists to, if durability is on. *)

val pp_recovery : Format.formatter -> recovery -> unit

(** {1 Latency accounting} *)

type summary = {
  n : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

val summarize : wall_s:float -> float array -> summary
(** Percentiles (nearest-rank, in milliseconds) of a batch's
    per-request latencies plus throughput over the batch wall clock.
    Zero requests yield zero percentiles and QPS. *)

val pp_summary : Format.formatter -> summary -> unit
val pp_stats : Format.formatter -> stats -> unit
