(* A growable byte window: [data.[off .. off+len-1]] are the live
   bytes, [scanned] of them are known to hold no '\n'.  All front-door
   I/O goes through one of these so consuming bytes is offset
   arithmetic and partial reads/writes never re-copy what is already
   buffered. *)

type t = {
  mutable data : Bytes.t;
  mutable off : int;
  mutable len : int;
  mutable scanned : int;
}

let min_capacity = 64

(* a drained buffer larger than this gives its storage back: one giant
   frame must not pin megabytes for the life of its connection *)
let shrink_capacity = 1 lsl 20

let create cap =
  { data = Bytes.create (max min_capacity cap); off = 0; len = 0; scanned = 0 }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Bytes.length t.data
let contents t = Bytes.sub_string t.data t.off t.len

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Iobuf.sub: range outside the live window";
  Bytes.sub_string t.data (t.off + pos) len

(* make room for [n] more bytes at the tail: compact first (free the
   consumed prefix), grow only when the live bytes genuinely do not
   fit *)
let reserve t n =
  let cap = Bytes.length t.data in
  if t.off + t.len + n > cap then
    if t.len + n <= cap then begin
      Bytes.blit t.data t.off t.data 0 t.len;
      t.off <- 0
    end
    else begin
      let target = ref (max min_capacity (cap * 2)) in
      while t.len + n > !target do
        target := !target * 2
      done;
      let grown = Bytes.create !target in
      Bytes.blit t.data t.off grown 0 t.len;
      t.data <- grown;
      t.off <- 0
    end

let add_substring t s ~pos ~len =
  reserve t len;
  Bytes.blit_string s pos t.data (t.off + t.len) len;
  t.len <- t.len + len

let add_string t s = add_substring t s ~pos:0 ~len:(String.length s)

let add_buffer t b =
  let n = Buffer.length b in
  reserve t n;
  Buffer.blit b 0 t.data (t.off + t.len) n;
  t.len <- t.len + n

let reset_storage t =
  if Bytes.length t.data > shrink_capacity then t.data <- Bytes.create min_capacity

let clear t =
  t.off <- 0;
  t.len <- 0;
  t.scanned <- 0;
  reset_storage t

let consume t n =
  if n < 0 || n > t.len then invalid_arg "Iobuf.consume: beyond the live window";
  t.off <- t.off + n;
  t.len <- t.len - n;
  t.scanned <- max 0 (t.scanned - n);
  if t.len = 0 then begin
    t.off <- 0;
    t.scanned <- 0;
    reset_storage t
  end

let of_string s =
  let t = create (String.length s) in
  add_string t s;
  t

let find_newline t =
  if t.scanned >= t.len then None
  else
    match Bytes.index_from_opt t.data (t.off + t.scanned) '\n' with
    | Some abs when abs < t.off + t.len ->
        let pos = abs - t.off in
        (* park the watermark on the newline: re-finding it while the
           frame's payload trickles in is O(1) *)
        t.scanned <- pos;
        Some pos
    | _ ->
        t.scanned <- t.len;
        None

let read_from ?(chunk = 65536) t fd =
  reserve t chunk;
  let n = Unix.read fd t.data (t.off + t.len) chunk in
  t.len <- t.len + n;
  n

let write_to ?max t fd =
  let n =
    Unix.write fd t.data t.off
      (match max with Some m -> min m t.len | None -> t.len)
  in
  consume t n;
  n
