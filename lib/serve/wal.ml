module Wire = Legodb_wire.Wire
module Storage = Legodb_relational.Storage
module Rtype = Legodb_relational.Rtype
module Checkpoint = Legodb_search.Checkpoint

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
let wrap_corrupt f x = try f x with Wire.Corrupt m -> raise (Corrupt m)
let snapshot_file dir = Filename.concat dir "snapshot.legodb"
let wal_file dir = Filename.concat dir "wal.legodb"

(* ------------------------------------------------------------------ *)
(* records                                                             *)
(* ------------------------------------------------------------------ *)

type record = { seq : int; rows : (string * Storage.row list) list }

(* The payload carries the sequence number, so any bit flip in it —
   seq included — is a checksum mismatch, never a silently re-sequenced
   record.  Per table: name, arity (so the reader needs no catalog),
   rows. *)
let w_table b ((tname : string), (rows : Storage.row list)) =
  Wire.w_str b tname;
  Wire.w_int b (match rows with [] -> 0 | r :: _ -> Array.length r);
  Wire.w_list b Storage.write_row rows

let r_table cur =
  let tname = Wire.r_str cur in
  let arity = Wire.r_int cur in
  if arity < 0 then Wire.corrupt "malformed payload: negative arity %d" arity;
  let rows = Wire.r_list cur (fun cur -> Storage.read_row cur ~arity) in
  (tname, rows)

let encode_payload r =
  let b = Buffer.create 256 in
  Wire.w_int b r.seq;
  Wire.w_list b w_table r.rows;
  Buffer.contents b

let decode_payload payload =
  wrap_corrupt
    (fun payload ->
      let cur = Wire.cursor payload in
      let seq = Wire.r_int cur in
      let rows = Wire.r_list cur r_table in
      if not (Wire.at_end cur) then
        Wire.corrupt "malformed payload: %d trailing bytes in WAL record"
          (String.length payload - cur.Wire.pos);
      { seq; rows })
    payload

(* One record on disk: a [R <crc32> <len>] line, [<len>] payload bytes,
   a ['\n'] terminator.  The whole thing goes to the kernel in a single
   [write], so the only artifact a crash (or short write) can leave is
   a strict prefix — exactly what replay classifies as a torn tail. *)
let encode_record r =
  let payload = encode_payload r in
  Printf.sprintf "R %08lx %d\n%s\n" (Wire.crc32 payload)
    (String.length payload) payload

(* A group commit unit: [G <crc32> <len>], then a payload carrying the
   first member's sequence number, the member count, and each member's
   tables — all under one CRC.  The members share the unit, so a torn
   write truncates the *whole* group: no prefix of an unacknowledged
   group can ever replay as if it had committed.  Singleton groups
   encode as plain [R] records, byte-identical to the
   fsync-per-append format. *)
let encode_group_payload = function
  | [] -> invalid_arg "Wal.encode_group: empty group"
  | first :: _ as members ->
      let b = Buffer.create 512 in
      Wire.w_int b first.seq;
      Wire.w_int b (List.length members);
      List.iteri
        (fun i r ->
          if r.seq <> first.seq + i then
            invalid_arg "Wal.encode_group: non-contiguous sequence numbers";
          Wire.w_list b w_table r.rows)
        members;
      Buffer.contents b

let encode_group = function
  | [ r ] -> encode_record r
  | members ->
      let payload = encode_group_payload members in
      Printf.sprintf "G %08lx %d\n%s\n" (Wire.crc32 payload)
        (String.length payload) payload

let decode_group_payload payload =
  wrap_corrupt
    (fun payload ->
      let cur = Wire.cursor payload in
      let first = Wire.r_int cur in
      let count = Wire.r_int cur in
      if count < 2 then
        Wire.corrupt "malformed payload: WAL group of %d records" count;
      let members =
        List.init count (fun i ->
            { seq = first + i; rows = Wire.r_list cur r_table })
      in
      if not (Wire.at_end cur) then
        Wire.corrupt "malformed payload: %d trailing bytes in WAL group"
          (String.length payload - cur.Wire.pos);
      members)
    payload

let record_equal a b =
  a.seq = b.seq
  && List.length a.rows = List.length b.rows
  && List.for_all2
       (fun (ta, ra) (tb, rb) ->
         String.equal ta tb
         && List.length ra = List.length rb
         && List.for_all2
              (fun (x : Storage.row) (y : Storage.row) ->
                Array.length x = Array.length y
                && Array.for_all2
                     (fun u v ->
                       match (u, v) with
                       | Rtype.V_null, Rtype.V_null -> true
                       | Rtype.V_int m, Rtype.V_int n -> m = n
                       | Rtype.V_string s, Rtype.V_string t -> String.equal s t
                       | _ -> false)
                     x y)
              ra rb)
       a.rows b.rows

(* ------------------------------------------------------------------ *)
(* replay                                                              *)
(* ------------------------------------------------------------------ *)

let wal_magic = "LEGODB-WAL"
let wal_version = 1
let wal_header = Printf.sprintf "%s %d\n" wal_magic wal_version
let header_bytes = String.length wal_header

type replay = {
  records : record list;
  dropped_bytes : int;
  torn : string option;
}

(* A header shorter than expected is only legal as a crash artifact: a
   strict prefix of the true header (create fsyncs the header before
   any append is acknowledged, so nothing is lost).  Anything else that
   differs is corruption. *)
let check_header s =
  let n = String.length s in
  if n >= header_bytes then begin
    let got = String.sub s 0 header_bytes in
    if String.equal got wal_header then `Ok
    else
      (* distinguish wrong magic from wrong version for the report *)
      let magic_len = String.length wal_magic in
      if n >= magic_len && String.equal (String.sub s 0 magic_len) wal_magic
      then
        corrupt "unsupported WAL version (this build reads %s)"
          (String.trim wal_header)
      else corrupt "bad magic: not a LegoDB WAL"
  end
  else if String.equal s (String.sub wal_header 0 n) then `Torn
  else corrupt "bad magic: not a LegoDB WAL"

let replay_string s =
  let len = String.length s in
  match check_header s with
  | `Torn ->
      { records = []; dropped_bytes = len; torn = Some "torn WAL header" }
  | `Ok ->
      let records = ref [] in
      let pos = ref header_bytes in
      let torn = ref None in
      let dropped = ref 0 in
      let stop why =
        torn := Some why;
        dropped := len - !pos
      in
      (try
         while !pos < len && !torn = None do
           match String.index_from_opt s !pos '\n' with
           | None -> stop "torn record header"
           | Some nl -> (
               let line = String.sub s !pos (nl - !pos) in
               (* the line is complete (it has its newline), so a shape
                  failure is corruption, not a torn write.  Fields are
                  validated textually — canonical length, exact CRC hex
                  — so no bit flip survives by parsing to the same
                  values (hex case, leading zeros) *)
               match String.split_on_char ' ' line with
               | [ (("R" | "G") as tag); crc_hex; len_s ] ->
                   let plen =
                     match int_of_string_opt len_s with
                     | Some n when n >= 0 && String.equal len_s (string_of_int n)
                       ->
                         n
                     | _ -> corrupt "malformed WAL record header %S" line
                   in
                   if nl + 1 + plen + 1 > len then stop "torn record payload"
                   else begin
                     let payload = String.sub s (nl + 1) plen in
                     if s.[nl + 1 + plen] <> '\n' then
                       corrupt
                         "malformed WAL record: missing terminator after \
                          payload";
                     let actual = Printf.sprintf "%08lx" (Wire.crc32 payload) in
                     if not (String.equal actual crc_hex) then
                       corrupt
                         "checksum mismatch: WAL record header says %s, \
                          payload hashes to %s"
                         crc_hex actual;
                     let members =
                       if String.equal tag "R" then [ decode_payload payload ]
                       else decode_group_payload payload
                     in
                     (* the first member of a commit unit must extend the
                        log contiguously; members within a unit are
                        contiguous by construction (decode derives their
                        seqs from the first) *)
                     (match (members, !records) with
                     | r :: _, prev :: _ when r.seq <> prev.seq + 1 ->
                         corrupt
                           "non-contiguous WAL: record %d follows record %d"
                           r.seq prev.seq
                     | _ -> ());
                     List.iter (fun r -> records := r :: !records) members;
                     pos := nl + 1 + plen + 1
                   end
               | _ -> corrupt "malformed WAL record header %S" line)
         done
       with Wire.Corrupt m -> raise (Corrupt m));
      { records = List.rev !records; dropped_bytes = !dropped; torn = !torn }

let replay_file path =
  if Sys.file_exists path then replay_string (Wire.read_file path)
  else { records = []; dropped_bytes = 0; torn = None }

(* ------------------------------------------------------------------ *)
(* the log handle                                                      *)
(* ------------------------------------------------------------------ *)

type t = {
  fd : Unix.file_descr;
  fs : Wire.fs;
  mutable next : int;  (* sequence number of the next append *)
  mutable staged : record list;  (* the open group, newest first *)
  mutable s_appends : int;
  mutable s_fsyncs : int;
  mutable s_groups : int;
  mutable s_max_group : int;
}

let create ?(fs = Wire.real_fs) ~next_seq path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  fs.Wire.write fd wal_header;
  fs.Wire.fsync fd;
  {
    fd;
    fs;
    next = next_seq;
    staged = [];
    s_appends = 0;
    s_fsyncs = 0;
    s_groups = 0;
    s_max_group = 0;
  }

let reopen ?(fs = Wire.real_fs) ~valid_bytes ~next_seq path =
  (* a tail so torn even the header is incomplete is rewritten whole *)
  if valid_bytes < header_bytes then create ~fs ~next_seq path
  else begin
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd valid_bytes;
    fs.Wire.fsync fd;
    ignore (Unix.lseek fd 0 Unix.SEEK_END);
    {
      fd;
      fs;
      next = next_seq;
      staged = [];
      s_appends = 0;
      s_fsyncs = 0;
      s_groups = 0;
      s_max_group = 0;
    }
  end

let stage t rows =
  let seq = t.next in
  t.staged <- { seq; rows } :: t.staged;
  t.next <- seq + 1;
  seq

let flush t =
  match t.staged with
  | [] -> ()
  | staged ->
      let group = List.rev staged in
      let image = encode_group group in
      (* one write, one fsync for the whole group; the staged buffer is
         cleared only after the fsync returns — a raise leaves it in
         place for the caller's fail-stop *)
      t.fs.Wire.write t.fd image;
      t.fs.Wire.fsync t.fd;
      let n = List.length group in
      t.staged <- [];
      t.s_appends <- t.s_appends + n;
      t.s_fsyncs <- t.s_fsyncs + 1;
      t.s_groups <- t.s_groups + 1;
      if n > t.s_max_group then t.s_max_group <- n

let staged t = List.length t.staged

let append t rows =
  let seq = stage t rows in
  flush t;
  seq

type stats = { appends : int; fsyncs : int; groups : int; max_group : int }

let stats t =
  {
    appends = t.s_appends;
    fsyncs = t.s_fsyncs;
    groups = t.s_groups;
    max_group = t.s_max_group;
  }

let reset t =
  Unix.ftruncate t.fd header_bytes;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
  t.fs.Wire.fsync t.fd

let next_seq t = t.next
let close t = Unix.close t.fd

(* ------------------------------------------------------------------ *)
(* snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let snap_magic = "LEGODB-SNAP"
let snap_version = 1

let write_snapshot ?fs ~path ~schema ~ordered ~last_seq db =
  let b = Buffer.create 4096 in
  Wire.w_int b last_seq;
  Wire.w_line b (if ordered then "o" else "-");
  Checkpoint.write_schema b schema;
  Storage.write_rows b db;
  Wire.write_atomic ?fs ~path
    (Wire.frame ~magic:snap_magic ~version:snap_version (Buffer.contents b))

type snapshot = {
  s_schema : Legodb_xtype.Xschema.t;
  s_ordered : bool;
  s_last_seq : int;
  s_fill : Storage.t -> unit;
}

let load_snapshot path =
  wrap_corrupt
    (fun path ->
      let body =
        Wire.unframe ~magic:snap_magic ~version:snap_version
          ~kind:"storage snapshot" (Wire.read_file path)
      in
      let cur = Wire.cursor body in
      let s_last_seq = Wire.r_int cur in
      let s_ordered =
        match Wire.r_line cur with
        | "o" -> true
        | "-" -> false
        | s -> Wire.corrupt "malformed payload: unknown order flag %S" s
      in
      let s_schema = Checkpoint.read_schema cur in
      let s_fill db =
        wrap_corrupt
          (fun db ->
            Storage.read_rows cur db;
            if not (Wire.at_end cur) then
              Wire.corrupt
                "malformed payload: %d trailing bytes in storage snapshot"
                (String.length cur.Wire.buf - cur.Wire.pos))
          db
      in
      { s_schema; s_ordered; s_last_seq; s_fill })
    path
