module Wire = Legodb_wire.Wire
module Rtype = Legodb_relational.Rtype
module Storage = Legodb_relational.Storage
module Xml_parse = Legodb_xml.Xml_parse
module Xq_parse = Legodb_xquery.Xq_parse

(* ------------------------------------------------------------------ *)
(* messages                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Query of string
  | Append of string
  | Publish
  | Stats
  | Ping

type response =
  | Rows of { rows : Rtype.value list list; cached : bool }
  | Acked
  | Published
  | Stats_reply of Serve.stats
  | Pong
  | Error_reply of string

let net_magic = "LEGODB-NET"
let net_version = 1

(* a frame header is four short tokens; anything longer without a
   newline is garbage, not a slow sender *)
let max_header = 128

(* requests carry whole XML documents, so the cap is generous — but it
   exists: a flipped length byte must not make the server try to
   buffer gigabytes before the CRC can call it out *)
let max_payload = 64 * 1024 * 1024

let encode_request r =
  let b = Buffer.create 256 in
  (match r with
  | Query q ->
      Wire.w_line b "query";
      Wire.w_str b q
  | Append x ->
      Wire.w_line b "append";
      Wire.w_str b x
  | Publish -> Wire.w_line b "publish"
  | Stats -> Wire.w_line b "stats"
  | Ping -> Wire.w_line b "ping");
  Wire.frame ~magic:net_magic ~version:net_version (Buffer.contents b)

let decode_request payload =
  let cur = Wire.cursor payload in
  let req =
    match Wire.r_line cur with
    | "query" -> Query (Wire.r_str cur)
    | "append" -> Append (Wire.r_str cur)
    | "publish" -> Publish
    | "stats" -> Stats
    | "ping" -> Ping
    | s -> Wire.corrupt "unknown request tag %S" s
  in
  if not (Wire.at_end cur) then
    Wire.corrupt "malformed payload: %d trailing bytes in request"
      (String.length payload - cur.Wire.pos);
  req

let w_row b row = Wire.w_list b Storage.write_value row
let r_row cur = Wire.r_list cur Storage.read_value

let encode_response r =
  let b = Buffer.create 256 in
  (match r with
  | Rows { rows; cached } ->
      Wire.w_line b "rows";
      Wire.w_int b (if cached then 1 else 0);
      Wire.w_list b w_row rows
  | Acked -> Wire.w_line b "acked"
  | Published -> Wire.w_line b "published"
  | Stats_reply s ->
      Wire.w_line b "stats";
      List.iter (Wire.w_int b)
        [
          s.Serve.served;
          s.Serve.cache_hits;
          s.Serve.cache_misses;
          s.Serve.snapshot_rows;
          s.Serve.snapshots_published;
          s.Serve.pending_appends;
          s.Serve.wal_appends;
          s.Serve.wal_fsyncs;
          s.Serve.wal_groups;
          s.Serve.wal_max_group;
        ]
  | Pong -> Wire.w_line b "pong"
  | Error_reply m ->
      Wire.w_line b "error";
      Wire.w_str b m);
  Wire.frame ~magic:net_magic ~version:net_version (Buffer.contents b)

let decode_response payload =
  let cur = Wire.cursor payload in
  let resp =
    match Wire.r_line cur with
    | "rows" ->
        let cached = Wire.r_int cur <> 0 in
        let rows = Wire.r_list cur r_row in
        Rows { rows; cached }
    | "acked" -> Acked
    | "published" -> Published
    | "stats" ->
        let i () = Wire.r_int cur in
        let served = i () in
        let cache_hits = i () in
        let cache_misses = i () in
        let snapshot_rows = i () in
        let snapshots_published = i () in
        let pending_appends = i () in
        let wal_appends = i () in
        let wal_fsyncs = i () in
        let wal_groups = i () in
        let wal_max_group = i () in
        Stats_reply
          {
            Serve.served;
            cache_hits;
            cache_misses;
            snapshot_rows;
            snapshots_published;
            pending_appends;
            wal_appends;
            wal_fsyncs;
            wal_groups;
            wal_max_group;
          }
    | "pong" -> Pong
    | "error" -> Error_reply (Wire.r_str cur)
    | s -> Wire.corrupt "unknown response tag %S" s
  in
  if not (Wire.at_end cur) then
    Wire.corrupt "malformed payload: %d trailing bytes in response"
      (String.length payload - cur.Wire.pos);
  resp

(* ------------------------------------------------------------------ *)
(* stream framing                                                      *)
(* ------------------------------------------------------------------ *)

(* Pull one frame off the front of a byte stream.  The length field is
   validated textually (canonical decimal, bounded) before any payload
   is awaited, so a flipped length digit is caught by the CRC (the
   frame slice it delimits hashes wrong) or by the bound — never by an
   unbounded buffer.  [`Partial] means the bytes so far are a legal
   prefix: keep reading. *)
let extract data =
  match String.index_opt data '\n' with
  | None ->
      if String.length data > max_header then
        `Broken "malformed frame: no header line"
      else `Partial
  | Some nl -> (
      let line = String.sub data 0 nl in
      let broken () =
        let shown =
          if String.length line <= 64 then line else String.sub line 0 64
        in
        `Broken (Printf.sprintf "malformed frame header %S" shown)
      in
      match String.split_on_char ' ' line with
      | [ m; _v; _crc; len_s ] when String.equal m net_magic -> (
          match int_of_string_opt len_s with
          | Some n
            when n >= 0 && n <= max_payload
                 && String.equal len_s (string_of_int n) -> (
              let total = nl + 1 + n in
              if String.length data < total then `Partial
              else
                let image = String.sub data 0 total in
                match
                  Wire.unframe ~magic:net_magic ~version:net_version
                    ~kind:"network frame" image
                with
                | payload ->
                    `Frame
                      (payload, String.sub data total (String.length data - total))
                | exception Wire.Corrupt m -> `Broken m)
          | _ -> broken ())
      | _ -> broken ())

(* ------------------------------------------------------------------ *)
(* shared plumbing                                                     *)
(* ------------------------------------------------------------------ *)

(* OCaml's Unix has no MSG_NOSIGNAL: a write to a connection the peer
   already closed raises SIGPIPE, which would kill the process instead
   of surfacing EPIPE.  Ignore it once, idempotently. *)
let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> (
      try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
      with Invalid_argument _ -> ())
  | _ -> ()

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))

let parse_endpoint s =
  let malformed () =
    Error (Printf.sprintf "malformed endpoint %S (expected HOST:PORT)" s)
  in
  match String.rindex_opt s ':' with
  | None -> malformed ()
  | Some i -> (
      let host = String.sub s 0 i in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      if String.equal host "" then malformed ()
      else
        match int_of_string_opt port_s with
        | Some p when p >= 1 && p <= 65535 -> Ok (host, p)
        | _ -> malformed ())

(* ------------------------------------------------------------------ *)
(* server                                                              *)
(* ------------------------------------------------------------------ *)

(* Per-connection state.  [q] holds one cell per request, in arrival
   order; a cell is filled when its request's answer exists (queries at
   the end of the round's batch, appends at their group's fsync) and
   responses are encoded strictly from the front of the queue, so a
   pipelined client can match responses to requests positionally. *)
type conn = {
  fd : Unix.file_descr;
  mutable pend : string;  (* unconsumed request bytes *)
  mutable out : string;  (* encoded responses awaiting write *)
  mutable outpos : int;
  q : response option ref Queue.t;
  mutable closing : bool;  (* no more input: EOF or framing error *)
}

let serve ?(host = "127.0.0.1") ?(group_commit_ms = 5) ?(max_group = 64)
    ?timeout_ms ?stop ?on_listen ~port t =
  if group_commit_ms < 0 then
    invalid_arg "Net.serve: group_commit_ms must be >= 0";
  if max_group < 1 then invalid_arg "Net.serve: max_group must be >= 1";
  ignore_sigpipe ();
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt lfd Unix.SO_REUSEADDR true;
      Unix.bind lfd (Unix.ADDR_INET (resolve host, port));
      Unix.listen lfd 64;
      Unix.set_nonblock lfd;
      let bound =
        match Unix.getsockname lfd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      Option.iter (fun f -> f bound) on_listen;
      let conns = ref [] in
      let dead = ref [] in
      let drop c =
        if not (List.memq c !dead) then begin
          dead := c :: !dead;
          (try Unix.close c.fd with Unix.Unix_error _ -> ())
        end
      in
      (* queries collected this loop round, answered by one run_batch *)
      let queries = ref [] in
      (* the open append group: parsed documents waiting for their
         shared fsync, oldest first, with the time the group opened *)
      let appends = Queue.create () in
      let group_opened = ref None in
      let flush_appends () =
        if not (Queue.is_empty appends) then begin
          let items = List.of_seq (Queue.to_seq appends) in
          Queue.clear appends;
          group_opened := None;
          match Serve.append_group t (List.map snd items) with
          | results ->
              List.iter2
                (fun (cell, _) res ->
                  cell :=
                    Some
                      (match res with
                      | Ok () -> Acked
                      | Error m -> Error_reply m))
                items results
          | exception e ->
              (* WAL write failure: nothing in the group was
                 acknowledged and the server is fail-stop for writes,
                 but it keeps answering queries *)
              let m = Printexc.to_string e in
              List.iter (fun (cell, _) -> cell := Some (Error_reply m)) items
        end
      in
      let enqueue_cell c =
        let cell = ref None in
        Queue.push cell c.q;
        cell
      in
      let handle c req =
        let cell = enqueue_cell c in
        match req with
        | Ping -> cell := Some Pong
        | Stats -> cell := Some (Stats_reply (Serve.stats t))
        | Publish -> (
            (* the publish barrier covers every append acknowledged
               before it on this connection: commit the open group
               first so its documents make the snapshot *)
            flush_appends ();
            match Serve.publish t with
            | () -> cell := Some Published
            | exception e -> cell := Some (Error_reply (Printexc.to_string e)))
        | Query text -> (
            match Xq_parse.parse ~name:"net" text with
            | ast -> queries := (cell, ast) :: !queries
            | exception Xq_parse.Parse_error { position; message } ->
                cell :=
                  Some
                    (Error_reply
                       (Printf.sprintf "query parse error at offset %d: %s"
                          position message)))
        | Append text -> (
            match Xml_parse.parse_string text with
            | doc ->
                if Queue.is_empty appends then
                  group_opened := Some (Unix.gettimeofday ());
                Queue.push (cell, doc) appends;
                if Queue.length appends >= max_group then flush_appends ()
            | exception Xml_parse.Parse_error { position; message } ->
                cell :=
                  Some
                    (Error_reply
                       (Printf.sprintf "XML parse error at offset %d: %s"
                          position message)))
      in
      let protocol_error c m =
        (* one structured error frame, then the connection is done:
           after a framing error there is no resynchronization point *)
        enqueue_cell c := Some (Error_reply m);
        c.closing <- true
      in
      let read_conn c =
        let buf = Bytes.create 65536 in
        match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> c.closing <- true
        | n ->
            c.pend <- c.pend ^ Bytes.sub_string buf 0 n;
            let continue = ref true in
            while !continue && not c.closing do
              match extract c.pend with
              | `Partial -> continue := false
              | `Broken m ->
                  protocol_error c m;
                  continue := false
              | `Frame (payload, rest) -> (
                  c.pend <- rest;
                  match decode_request payload with
                  | req -> handle c req
                  | exception Wire.Corrupt m -> protocol_error c m)
            done
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> drop c
      in
      (* move the queue's filled prefix into the connection's write
         buffer — strictly in order, stopping at the first answer
         still pending *)
      let drain c =
        let b = Buffer.create 256 in
        let continue = ref true in
        while !continue && not (Queue.is_empty c.q) do
          match !(Queue.peek c.q) with
          | Some resp ->
              ignore (Queue.pop c.q);
              Buffer.add_string b (encode_response resp)
          | None -> continue := false
        done;
        if Buffer.length b > 0 then begin
          let rest =
            String.sub c.out c.outpos (String.length c.out - c.outpos)
          in
          c.out <- rest ^ Buffer.contents b;
          c.outpos <- 0
        end
      in
      let write_conn c =
        match
          Unix.write_substring c.fd c.out c.outpos
            (String.length c.out - c.outpos)
        with
        | n ->
            c.outpos <- c.outpos + n;
            if c.outpos >= String.length c.out then begin
              c.out <- "";
              c.outpos <- 0
            end
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> drop c
      in
      let stopped () = match stop with Some r -> !r | None -> false in
      while not (stopped ()) do
        (* deadline-aware poll: wake for the open group's fsync, and at
           least every 250ms for the stop flag *)
        let timeout =
          match !group_opened with
          | None -> 0.25
          | Some t0 ->
              let d =
                t0 +. (float_of_int group_commit_ms /. 1000.)
                -. Unix.gettimeofday ()
              in
              Float.max 0. (Float.min 0.25 d)
        in
        let readable = List.filter (fun c -> not c.closing) !conns in
        let writable =
          List.filter (fun c -> String.length c.out > c.outpos) !conns
        in
        let rs, ws, _ =
          try
            Unix.select
              (lfd :: List.map (fun c -> c.fd) readable)
              (List.map (fun c -> c.fd) writable)
              [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if List.memq lfd rs then begin
          let accepting = ref true in
          while !accepting do
            match Unix.accept lfd with
            | fd, _ ->
                Unix.set_nonblock fd;
                (try Unix.setsockopt fd Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ());
                conns :=
                  {
                    fd;
                    pend = "";
                    out = "";
                    outpos = 0;
                    q = Queue.create ();
                    closing = false;
                  }
                  :: !conns
            | exception
                Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
                accepting := false
            | exception Unix.Unix_error _ -> accepting := false
          done
        end;
        List.iter (fun c -> if List.memq c.fd rs then read_conn c) readable;
        (* answer this round's queries as one batch on the pool *)
        (match List.rev !queries with
        | [] -> ()
        | qs ->
            queries := [];
            let arr = Array.of_list (List.map snd qs) in
            let res = Serve.run_batch ?timeout_ms t arr in
            List.iteri
              (fun i (cell, _) ->
                cell :=
                  Some
                    (match res.(i) with
                    | Ok (r : Serve.reply) ->
                        Rows { rows = r.Serve.rows; cached = r.Serve.cached }
                    | Error m -> Error_reply m))
              qs);
        (* commit the open group once its oldest member has waited out
           the window *)
        (match !group_opened with
        | Some t0
          when Unix.gettimeofday ()
               >= t0 +. (float_of_int group_commit_ms /. 1000.) ->
            flush_appends ()
        | _ -> ());
        List.iter
          (fun c ->
            drain c;
            if String.length c.out > c.outpos && List.memq c.fd ws then
              write_conn c;
            (* a closing connection lingers only until its queued
               responses are answered and written *)
            if
              c.closing && Queue.is_empty c.q
              && String.length c.out <= c.outpos
            then drop c)
          !conns;
        if !dead <> [] then begin
          conns := List.filter (fun c -> not (List.memq c !dead)) !conns;
          dead := []
        end
      done;
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        !conns)

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

type client = { cfd : Unix.file_descr; mutable cpend : string }

exception Protocol_error of string
exception Closed

let connect ?(host = "127.0.0.1") ~port () =
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (resolve host, port));
     try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ()
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { cfd = fd; cpend = "" }

let rec write_all fd s pos =
  if pos < String.length s then
    match Unix.write_substring fd s pos (String.length s - pos) with
    | n -> write_all fd s (pos + n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos

let send c req = write_all c.cfd (encode_request req) 0
let send_raw c bytes = write_all c.cfd bytes 0

let rec recv c =
  match extract c.cpend with
  | `Frame (payload, rest) -> (
      c.cpend <- rest;
      match decode_response payload with
      | resp -> resp
      | exception Wire.Corrupt m -> raise (Protocol_error m))
  | `Broken m -> raise (Protocol_error m)
  | `Partial -> (
      let buf = Bytes.create 65536 in
      match Unix.read c.cfd buf 0 (Bytes.length buf) with
      | 0 ->
          if String.equal c.cpend "" then raise Closed
          else raise (Protocol_error "connection closed mid-frame")
      | n ->
          c.cpend <- c.cpend ^ Bytes.sub_string buf 0 n;
          recv c
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv c)

let rpc c req =
  send c req;
  recv c

let close c = try Unix.close c.cfd with Unix.Unix_error _ -> ()
