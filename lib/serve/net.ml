module Wire = Legodb_wire.Wire
module Rtype = Legodb_relational.Rtype
module Storage = Legodb_relational.Storage
module Xml_parse = Legodb_xml.Xml_parse
module Xq_parse = Legodb_xquery.Xq_parse

(* ------------------------------------------------------------------ *)
(* messages                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Query of string
  | Append of string
  | Publish
  | Stats
  | Ping

(* What the event loop did, as opposed to what the engine behind it
   did ([Serve.stats]).  [batch_hist.(k)] counts select ticks whose
   shared query batch held [k] queries (the last bucket absorbs
   everything at or above it) — mass above index 1 is the proof that
   cross-connection batching actually formed. *)
type net_stats = {
  ticks : int;
  batches : int;
  batched_queries : int;
  batch_hist : int array;
  max_batch : int;
  replayed : int;
  bytes_in : int;
  bytes_out : int;
  select_s : float;
  work_s : float;
  accepted : int;
  idle_reaped : int;
  at_capacity : int;
}

let hist_buckets = 17
let hist_slot k = if k >= hist_buckets then hist_buckets - 1 else k

let net_stats_zero =
  {
    ticks = 0;
    batches = 0;
    batched_queries = 0;
    batch_hist = Array.make hist_buckets 0;
    max_batch = 0;
    replayed = 0;
    bytes_in = 0;
    bytes_out = 0;
    select_s = 0.;
    work_s = 0.;
    accepted = 0;
    idle_reaped = 0;
    at_capacity = 0;
  }

let shared_batches s =
  let n = ref 0 in
  Array.iteri (fun k c -> if k >= 2 then n := !n + c) s.batch_hist;
  !n

let pp_net_stats fmt s =
  let hist = Buffer.create 64 in
  Array.iteri
    (fun k c ->
      if c > 0 then
        Buffer.add_string hist
          (Printf.sprintf "%s%s:%d"
             (if Buffer.length hist = 0 then "" else " ")
             (if k = hist_buckets - 1 then string_of_int k ^ "+"
              else string_of_int k)
             c))
    s.batch_hist;
  Format.fprintf fmt
    "@[<v>net: %d ticks (%.3fs in select, %.3fs working), %d B in, %d B out@,\
     net: %d batches (%d with size>1, max %d) covering %d queries, %d \
     replayed, hist [%s]@,\
     net: %d conns accepted, %d idle-reaped, %d at-capacity ticks@]"
    s.ticks s.select_s s.work_s s.bytes_in s.bytes_out s.batches
    (shared_batches s) s.max_batch s.batched_queries s.replayed
    (Buffer.contents hist) s.accepted s.idle_reaped s.at_capacity

type response =
  | Rows of { rows : Rtype.value list list; cached : bool }
  | Acked
  | Published
  | Stats_reply of { serve : Serve.stats; net : net_stats }
  | Pong
  | Error_reply of string

let net_magic = "LEGODB-NET"
let net_version = 1

(* a frame header is four short tokens; anything longer without a
   newline is garbage, not a slow sender *)
let max_header = 128

(* requests carry whole XML documents, so the cap is generous — but it
   exists: a flipped length byte must not make the server try to
   buffer gigabytes before the CRC can call it out *)
let max_payload = 64 * 1024 * 1024

let encode_request r =
  let b = Buffer.create 256 in
  (match r with
  | Query q ->
      Wire.w_line b "query";
      Wire.w_str b q
  | Append x ->
      Wire.w_line b "append";
      Wire.w_str b x
  | Publish -> Wire.w_line b "publish"
  | Stats -> Wire.w_line b "stats"
  | Ping -> Wire.w_line b "ping");
  Wire.frame ~magic:net_magic ~version:net_version (Buffer.contents b)

let decode_request payload =
  let cur = Wire.cursor payload in
  let req =
    match Wire.r_line cur with
    | "query" -> Query (Wire.r_str cur)
    | "append" -> Append (Wire.r_str cur)
    | "publish" -> Publish
    | "stats" -> Stats
    | "ping" -> Ping
    | s -> Wire.corrupt "unknown request tag %S" s
  in
  if not (Wire.at_end cur) then
    Wire.corrupt "malformed payload: %d trailing bytes in request"
      (String.length payload - cur.Wire.pos);
  req

let w_row b row = Wire.w_list b Storage.write_value row
let r_row cur = Wire.r_list cur Storage.read_value

(* The payload writer is separate from the framer so the server can
   encode straight into a connection's output buffer without ever
   materializing the full frame as one string. *)
let write_response_payload b r =
  match r with
  | Rows { rows; cached } ->
      Wire.w_line b "rows";
      Wire.w_int b (if cached then 1 else 0);
      Wire.w_list b w_row rows
  | Acked -> Wire.w_line b "acked"
  | Published -> Wire.w_line b "published"
  | Stats_reply { serve = s; net = n } ->
      Wire.w_line b "stats";
      List.iter (Wire.w_int b)
        [
          s.Serve.served;
          s.Serve.cache_hits;
          s.Serve.cache_misses;
          s.Serve.snapshot_rows;
          s.Serve.snapshots_published;
          s.Serve.pending_appends;
          s.Serve.wal_appends;
          s.Serve.wal_fsyncs;
          s.Serve.wal_groups;
          s.Serve.wal_max_group;
          s.Serve.batches;
          s.Serve.max_batch;
        ];
      List.iter (Wire.w_int b)
        [ n.ticks; n.batches; n.batched_queries; n.max_batch; n.replayed ];
      Wire.w_list b Wire.w_int (Array.to_list n.batch_hist);
      Wire.w_int b n.bytes_in;
      Wire.w_int b n.bytes_out;
      Wire.w_float b n.select_s;
      Wire.w_float b n.work_s;
      List.iter (Wire.w_int b) [ n.accepted; n.idle_reaped; n.at_capacity ]
  | Pong -> Wire.w_line b "pong"
  | Error_reply m ->
      Wire.w_line b "error";
      Wire.w_str b m

let encode_response r =
  let b = Buffer.create 256 in
  write_response_payload b r;
  Wire.frame ~magic:net_magic ~version:net_version (Buffer.contents b)

let decode_response payload =
  let cur = Wire.cursor payload in
  let resp =
    match Wire.r_line cur with
    | "rows" ->
        let cached = Wire.r_int cur <> 0 in
        let rows = Wire.r_list cur r_row in
        Rows { rows; cached }
    | "acked" -> Acked
    | "published" -> Published
    | "stats" ->
        let i () = Wire.r_int cur in
        let served = i () in
        let cache_hits = i () in
        let cache_misses = i () in
        let snapshot_rows = i () in
        let snapshots_published = i () in
        let pending_appends = i () in
        let wal_appends = i () in
        let wal_fsyncs = i () in
        let wal_groups = i () in
        let wal_max_group = i () in
        let batches = i () in
        let max_batch = i () in
        let serve =
          {
            Serve.served;
            cache_hits;
            cache_misses;
            snapshot_rows;
            snapshots_published;
            pending_appends;
            wal_appends;
            wal_fsyncs;
            wal_groups;
            wal_max_group;
            batches;
            max_batch;
          }
        in
        let ticks = i () in
        let nbatches = i () in
        let batched_queries = i () in
        let nmax_batch = i () in
        let replayed = i () in
        let batch_hist = Array.of_list (Wire.r_list cur Wire.r_int) in
        let bytes_in = i () in
        let bytes_out = i () in
        let select_s = Wire.r_float cur in
        let work_s = Wire.r_float cur in
        let accepted = i () in
        let idle_reaped = i () in
        let at_capacity = i () in
        Stats_reply
          {
            serve;
            net =
              {
                ticks;
                batches = nbatches;
                batched_queries;
                batch_hist;
                max_batch = nmax_batch;
                replayed;
                bytes_in;
                bytes_out;
                select_s;
                work_s;
                accepted;
                idle_reaped;
                at_capacity;
              };
          }
    | "pong" -> Pong
    | "error" -> Error_reply (Wire.r_str cur)
    | s -> Wire.corrupt "unknown response tag %S" s
  in
  if not (Wire.at_end cur) then
    Wire.corrupt "malformed payload: %d trailing bytes in response"
      (String.length payload - cur.Wire.pos);
  resp

(* ------------------------------------------------------------------ *)
(* stream framing                                                      *)
(* ------------------------------------------------------------------ *)

(* Pull one frame off the front of [buf], consuming its bytes on
   success.  The length field is validated textually (canonical
   decimal, bounded) before any payload is awaited, so a flipped
   length digit is caught by the CRC (the frame slice it delimits
   hashes wrong) or by the bound — never by an unbounded buffer.  The
   checksum is compared against its canonical lowercase rendering
   only, same as {!Wire.unframe}: hex parsing is case-insensitive, so
   anything laxer would let a flipped case bit alias the same
   checksum.  [`Partial] means the bytes so far are a legal prefix:
   keep reading (and [Iobuf.find_newline]'s watermark makes the
   re-poll O(1), not a rescan). *)
let extract_frame buf =
  match Iobuf.find_newline buf with
  | None ->
      if Iobuf.length buf > max_header then
        `Broken "malformed frame: no header line"
      else `Partial
  | Some nl -> (
      let line = Iobuf.sub buf ~pos:0 ~len:nl in
      let broken () =
        let shown =
          if String.length line <= 64 then line else String.sub line 0 64
        in
        `Broken (Printf.sprintf "malformed frame header %S" shown)
      in
      match String.split_on_char ' ' line with
      | [ m; v; crc_s; len_s ] when String.equal m net_magic -> (
          match int_of_string_opt len_s with
          | Some n
            when n >= 0 && n <= max_payload
                 && String.equal len_s (string_of_int n) -> (
              let total = nl + 1 + n in
              if Iobuf.length buf < total then `Partial
              else
                match int_of_string_opt v with
                | None ->
                    `Broken
                      (Printf.sprintf
                         "malformed header: version %S is not a number" v)
                | Some ver when ver <> net_version ->
                    `Broken
                      (Printf.sprintf
                         "unsupported network frame version %d (this build \
                          reads %d)"
                         ver net_version)
                | Some _ -> (
                    let expected =
                      match Int32.of_string_opt ("0x" ^ crc_s) with
                      | Some c
                        when String.equal crc_s (Printf.sprintf "%08lx" c) ->
                          Some c
                      | _ -> None
                    in
                    match expected with
                    | None ->
                        `Broken
                          (Printf.sprintf
                             "malformed header: checksum %S is not canonical \
                              hex"
                             crc_s)
                    | Some expected ->
                        let payload = Iobuf.sub buf ~pos:(nl + 1) ~len:n in
                        let actual = Wire.crc32 payload in
                        if Int32.equal expected actual then begin
                          Iobuf.consume buf total;
                          `Frame payload
                        end
                        else
                          `Broken
                            (Printf.sprintf
                               "checksum mismatch: header says %08lx, \
                                payload hashes to %08lx"
                               expected actual)))
          | _ -> broken ())
      | _ -> broken ())

(* string-oriented wrapper over the same parser, kept so the
   protocol-fuzz tests exercise exactly the production path *)
let extract data =
  let buf = Iobuf.of_string data in
  match extract_frame buf with
  | `Frame payload -> `Frame (payload, Iobuf.contents buf)
  | (`Partial | `Broken _) as r -> r

(* ------------------------------------------------------------------ *)
(* shared plumbing                                                     *)
(* ------------------------------------------------------------------ *)

(* OCaml's Unix has no MSG_NOSIGNAL: a write to a connection the peer
   already closed raises SIGPIPE, which would kill the process instead
   of surfacing EPIPE.  Ignore it once, idempotently. *)
let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> (
      try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
      with Invalid_argument _ -> ())
  | _ -> ()

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))

let parse_endpoint s =
  let malformed () =
    Error (Printf.sprintf "malformed endpoint %S (expected HOST:PORT)" s)
  in
  match String.rindex_opt s ':' with
  | None -> malformed ()
  | Some i -> (
      let host = String.sub s 0 i in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      if String.equal host "" then malformed ()
      else
        match int_of_string_opt port_s with
        | Some p when p >= 1 && p <= 65535 -> Ok (host, p)
        | _ -> malformed ())

let listen_socket ~host ~port ?on_listen () =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     Unix.bind lfd (Unix.ADDR_INET (resolve host, port));
     Unix.listen lfd 64;
     Unix.set_nonblock lfd
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  let bound =
    match Unix.getsockname lfd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  Option.iter (fun f -> f bound) on_listen;
  lfd

(* ------------------------------------------------------------------ *)
(* server                                                              *)
(* ------------------------------------------------------------------ *)

(* Per-connection state.  [q] holds one cell per request, in arrival
   order; a cell is filled when its request's answer exists (queries at
   the end of the tick's shared batch, appends at their group's fsync)
   and responses are encoded strictly from the front of the queue, so a
   pipelined client can match responses to requests positionally.
   [inbuf]/[outbuf] persist across ticks: reads land at [inbuf]'s tail,
   frame extraction consumes its front by offset arithmetic, encoded
   responses append to [outbuf] and partial writes consume its front —
   no byte is ever re-copied or re-scanned. *)
(* a filled cell holds either a response still to encode, or — for a
   query replayed from the front-door cache — the finished frame,
   appended to the output buffer as one blit *)
type answer = Resp of response | Replay of string

type conn = {
  fd : Unix.file_descr;
  inbuf : Iobuf.t;
  outbuf : Iobuf.t;
  q : answer option ref Queue.t;
  mutable closing : bool;  (* no more input: EOF or framing error *)
  mutable last_active : float;  (* last byte read or written *)
}

(* the loop's own counters, materialized into an immutable [net_stats]
   on request and at exit *)
type loop_stats = {
  mutable l_ticks : int;
  mutable l_batches : int;
  mutable l_batched_queries : int;
  l_hist : int array;
  mutable l_max_batch : int;
  mutable l_replayed : int;
  mutable l_bytes_in : int;
  mutable l_bytes_out : int;
  mutable l_select_s : float;
  mutable l_work_s : float;
  mutable l_accepted : int;
  mutable l_idle_reaped : int;
  mutable l_at_capacity : int;
}

let snapshot_stats st =
  {
    ticks = st.l_ticks;
    batches = st.l_batches;
    batched_queries = st.l_batched_queries;
    batch_hist = Array.copy st.l_hist;
    max_batch = st.l_max_batch;
    replayed = st.l_replayed;
    bytes_in = st.l_bytes_in;
    bytes_out = st.l_bytes_out;
    select_s = st.l_select_s;
    work_s = st.l_work_s;
    accepted = st.l_accepted;
    idle_reaped = st.l_idle_reaped;
    at_capacity = st.l_at_capacity;
  }

let serve ?(host = "127.0.0.1") ?(group_commit_ms = 5) ?(max_group = 64)
    ?idle_timeout_ms ?max_conns ?timeout_ms ?max_write ?stop ?on_listen ~port
    t =
  if group_commit_ms < 0 then
    invalid_arg "Net.serve: group_commit_ms must be >= 0";
  if max_group < 1 then invalid_arg "Net.serve: max_group must be >= 1";
  (match idle_timeout_ms with
  | Some ms when ms < 1 -> invalid_arg "Net.serve: idle_timeout_ms must be >= 1"
  | _ -> ());
  (match max_conns with
  | Some m when m < 1 -> invalid_arg "Net.serve: max_conns must be >= 1"
  | _ -> ());
  (match max_write with
  | Some m when m < 1 -> invalid_arg "Net.serve: max_write must be >= 1"
  | _ -> ());
  ignore_sigpipe ();
  let lfd = listen_socket ~host ~port ?on_listen () in
  Fun.protect
    ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
    (fun () ->
      let st =
        {
          l_ticks = 0;
          l_batches = 0;
          l_batched_queries = 0;
          l_hist = Array.make hist_buckets 0;
          l_max_batch = 0;
          l_replayed = 0;
          l_bytes_in = 0;
          l_bytes_out = 0;
          l_select_s = 0.;
          l_work_s = 0.;
          l_accepted = 0;
          l_idle_reaped = 0;
          l_at_capacity = 0;
        }
      in
      let idle_s =
        Option.map (fun ms -> float_of_int ms /. 1000.) idle_timeout_ms
      in
      let gc_s = float_of_int group_commit_ms /. 1000. in
      let conns = ref [] in
      let dead = ref [] in
      let drop c =
        if not (List.memq c !dead) then begin
          dead := c :: !dead;
          (try Unix.close c.fd with Unix.Unix_error _ -> ())
        end
      in
      (* queries collected this tick across every ready connection,
         answered by one shared run_batch *)
      let queries = ref [] in
      (* front-door replay cache: query text -> the finished response
         frame, valid for one published-snapshot generation.  Queries
         run against the frozen snapshot, so pending appends invalidate
         nothing — only a publish does.  The stored frame says
         cached=true, which is exactly what the plan cache would report
         on the repeat execution the replay stands in for, so replayed
         bytes are identical to what the slow path would send. *)
      let replay_cap = 4096 in
      let replay = Hashtbl.create 256 in
      let replay_gen = ref (Serve.stats t).Serve.snapshots_published in
      let check_generation () =
        let gen = (Serve.stats t).Serve.snapshots_published in
        if gen <> !replay_gen then begin
          replay_gen := gen;
          Hashtbl.reset replay
        end
      in
      (* the open append group: parsed documents waiting for their
         shared fsync, oldest first, with the time the group opened *)
      let appends = Queue.create () in
      let group_opened = ref None in
      let flush_appends () =
        if not (Queue.is_empty appends) then begin
          let items = List.of_seq (Queue.to_seq appends) in
          Queue.clear appends;
          group_opened := None;
          match Serve.append_group t (List.map snd items) with
          | results ->
              List.iter2
                (fun (cell, _) res ->
                  cell :=
                    Some
                      (Resp
                         (match res with
                         | Ok () -> Acked
                         | Error m -> Error_reply m)))
                items results
          | exception e ->
              (* WAL write failure: nothing in the group was
                 acknowledged and the server is fail-stop for writes,
                 but it keeps answering queries *)
              let m = Printexc.to_string e in
              List.iter
                (fun (cell, _) -> cell := Some (Resp (Error_reply m)))
                items
        end
      in
      let enqueue_cell c =
        let cell = ref None in
        Queue.push cell c.q;
        cell
      in
      let handle c req =
        let cell = enqueue_cell c in
        match req with
        | Ping -> cell := Some (Resp Pong)
        | Stats ->
            cell :=
              Some
                (Resp
                   (Stats_reply
                      { serve = Serve.stats t; net = snapshot_stats st }))
        | Publish -> (
            (* the publish barrier covers every append acknowledged
               before it on this connection: commit the open group
               first so its documents make the snapshot *)
            flush_appends ();
            match Serve.publish t with
            | () ->
                check_generation ();
                cell := Some (Resp Published)
            | exception e ->
                cell := Some (Resp (Error_reply (Printexc.to_string e))))
        | Query text -> (
            match Hashtbl.find_opt replay text with
            | Some frame ->
                st.l_replayed <- st.l_replayed + 1;
                cell := Some (Replay frame)
            | None -> (
                match Xq_parse.parse ~name:"net" text with
                | ast -> queries := (cell, text, ast) :: !queries
                | exception Xq_parse.Parse_error { position; message } ->
                    cell :=
                      Some
                        (Resp
                           (Error_reply
                              (Printf.sprintf
                                 "query parse error at offset %d: %s" position
                                 message)))))
        | Append text -> (
            match Xml_parse.parse_string text with
            | doc ->
                if Queue.is_empty appends then
                  group_opened := Some (Unix.gettimeofday ());
                Queue.push (cell, doc) appends;
                if Queue.length appends >= max_group then flush_appends ()
            | exception Xml_parse.Parse_error { position; message } ->
                cell :=
                  Some
                    (Resp
                       (Error_reply
                          (Printf.sprintf "XML parse error at offset %d: %s"
                             position message))))
      in
      let protocol_error c m =
        (* one structured error frame, then the connection is done:
           after a framing error there is no resynchronization point *)
        enqueue_cell c := Some (Resp (Error_reply m));
        c.closing <- true
      in
      let read_conn ~now c =
        match Iobuf.read_from c.inbuf c.fd with
        | 0 -> c.closing <- true
        | n ->
            st.l_bytes_in <- st.l_bytes_in + n;
            c.last_active <- now;
            let continue = ref true in
            while !continue && not c.closing do
              match extract_frame c.inbuf with
              | `Partial -> continue := false
              | `Broken m ->
                  protocol_error c m;
                  continue := false
              | `Frame payload -> (
                  match decode_request payload with
                  | req -> handle c req
                  | exception Wire.Corrupt m -> protocol_error c m)
            done
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> drop c
      in
      (* move the queue's filled prefix into the connection's output
         buffer — strictly in order, stopping at the first answer
         still pending.  One scratch Buffer is shared across every
         connection and tick: the payload is built there, then framed
         straight into [outbuf] (the only per-response string is the
         payload itself, which the CRC needs anyway). *)
      let scratch = Buffer.create 1024 in
      let add_response_frame out resp =
        Buffer.clear scratch;
        write_response_payload scratch resp;
        let payload = Buffer.contents scratch in
        Iobuf.add_string out
          (Printf.sprintf "%s %d %08lx %d\n" net_magic net_version
             (Wire.crc32 payload) (String.length payload));
        Iobuf.add_string out payload
      in
      let drain c =
        let continue = ref true in
        while !continue && not (Queue.is_empty c.q) do
          match !(Queue.peek c.q) with
          | Some (Resp resp) ->
              ignore (Queue.pop c.q);
              add_response_frame c.outbuf resp
          | Some (Replay frame) ->
              ignore (Queue.pop c.q);
              Iobuf.add_string c.outbuf frame
          | None -> continue := false
        done
      in
      let write_conn ~now c =
        match Iobuf.write_to ?max:max_write c.outbuf c.fd with
        | n ->
            st.l_bytes_out <- st.l_bytes_out + n;
            if n > 0 then c.last_active <- now
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> drop c
      in
      let stopped () = match stop with Some r -> !r | None -> false in
      while not (stopped ()) do
        let t0 = Unix.gettimeofday () in
        (* deadline-aware poll: wake for the open group's fsync, the
           earliest idle deadline, and at least every 250ms for the
           stop flag *)
        let timeout =
          let cap = 0.25 in
          let d =
            match !group_opened with
            | None -> cap
            | Some opened -> opened +. gc_s -. t0
          in
          let d =
            match idle_s with
            | None -> d
            | Some idle ->
                List.fold_left
                  (fun acc c -> Float.min acc (c.last_active +. idle -. t0))
                  d !conns
          in
          Float.max 0. (Float.min cap d)
        in
        let at_cap =
          match max_conns with
          | Some m -> List.length !conns >= m
          | None -> false
        in
        let readable = List.filter (fun c -> not c.closing) !conns in
        let writable =
          List.filter (fun c -> not (Iobuf.is_empty c.outbuf)) !conns
        in
        let rs, _, _ =
          try
            Unix.select
              (* a full house parks the listener: pending peers wait in
                 the backlog instead of growing the connection list *)
              ((if at_cap then [] else [ lfd ])
              @ List.map (fun c -> c.fd) readable)
              (List.map (fun c -> c.fd) writable)
              [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        let t1 = Unix.gettimeofday () in
        st.l_select_s <- st.l_select_s +. (t1 -. t0);
        st.l_ticks <- st.l_ticks + 1;
        if at_cap then st.l_at_capacity <- st.l_at_capacity + 1;
        if List.memq lfd rs then begin
          let accepting = ref true in
          while !accepting do
            if
              match max_conns with
              | Some m -> List.length !conns >= m
              | None -> false
            then accepting := false
            else
              match Unix.accept lfd with
              | fd, _ ->
                  Unix.set_nonblock fd;
                  (try Unix.setsockopt fd Unix.TCP_NODELAY true
                   with Unix.Unix_error _ -> ());
                  st.l_accepted <- st.l_accepted + 1;
                  conns :=
                    {
                      fd;
                      inbuf = Iobuf.create 4096;
                      outbuf = Iobuf.create 4096;
                      q = Queue.create ();
                      closing = false;
                      last_active = t1;
                    }
                    :: !conns
              | exception
                  Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
                  accepting := false
              | exception Unix.Unix_error _ -> accepting := false
          done
        end;
        (* an out-of-band publish (another thread sharing [t]) must not
           leave stale frames replayable *)
        check_generation ();
        List.iter
          (fun c -> if List.memq c.fd rs then read_conn ~now:t1 c)
          readable;
        (* answer this tick's queries — across every connection — as
           one shared batch on the pool *)
        (match List.rev !queries with
        | [] -> ()
        | qs ->
            queries := [];
            let arr = Array.of_list (List.map (fun (_, _, ast) -> ast) qs) in
            let k = Array.length arr in
            st.l_batches <- st.l_batches + 1;
            st.l_batched_queries <- st.l_batched_queries + k;
            st.l_max_batch <- max st.l_max_batch k;
            st.l_hist.(hist_slot k) <- st.l_hist.(hist_slot k) + 1;
            let res = Serve.run_batch ?timeout_ms t arr in
            List.iteri
              (fun i (cell, text, _) ->
                match res.(i) with
                | Ok (r : Serve.reply) ->
                    cell :=
                      Some
                        (Resp
                           (Rows
                              { rows = r.Serve.rows; cached = r.Serve.cached }));
                    if Hashtbl.length replay < replay_cap then
                      Hashtbl.replace replay text
                        (encode_response
                           (Rows { rows = r.Serve.rows; cached = true }))
                | Error m -> cell := Some (Resp (Error_reply m)))
              qs);
        (* commit the open group once its oldest member has waited out
           the window *)
        (match !group_opened with
        | Some opened when Unix.gettimeofday () >= opened +. gc_s ->
            flush_appends ()
        | _ -> ());
        (* drain and write optimistically in the same tick: the socket
           is nonblocking, so a full send buffer costs one EAGAIN and
           the remainder waits for select's writable set — but in the
           common case the response leaves this tick instead of the
           next one *)
        List.iter
          (fun c ->
            drain c;
            if not (Iobuf.is_empty c.outbuf) then write_conn ~now:t1 c;
            (* a closing connection lingers only until its queued
               responses are answered and written *)
            if c.closing && Queue.is_empty c.q && Iobuf.is_empty c.outbuf
            then drop c)
          !conns;
        (match idle_s with
        | None -> ()
        | Some idle ->
            let now = Unix.gettimeofday () in
            List.iter
              (fun c ->
                (* reap only a connection that is owed nothing: queued
                   responses and unflushed output always win *)
                if
                  (not (List.memq c !dead))
                  && Queue.is_empty c.q
                  && Iobuf.is_empty c.outbuf
                  && now -. c.last_active >= idle
                then begin
                  drop c;
                  st.l_idle_reaped <- st.l_idle_reaped + 1
                end)
              !conns);
        if !dead <> [] then begin
          conns := List.filter (fun c -> not (List.memq c !dead)) !conns;
          dead := []
        end;
        st.l_work_s <- st.l_work_s +. (Unix.gettimeofday () -. t1)
      done;
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        !conns;
      snapshot_stats st)

(* ------------------------------------------------------------------ *)
(* reference server: the pre-batching-rework loop                      *)
(* ------------------------------------------------------------------ *)

(* The front door as PR 9 shipped it, kept verbatim (modulo the shared
   message codec) as the measurement baseline the serve_perf bench
   compares the reworked loop against on the same machine in the same
   run — the same role [Optimizer_reference] plays for the optimizer.
   Known costs, by design: a fresh 64 KiB read buffer per read call,
   quadratic [pend]/[out] string rebuilds, a full-frame copy per
   extract, and responses written only when the fd showed up in the
   {e previous} tick's writable set (one extra select round per
   response).  Do not "fix" it. *)
type rconn = {
  rfd : Unix.file_descr;
  mutable rpend : string;
  mutable rout : string;
  mutable routpos : int;
  rq : response option ref Queue.t;
  mutable rclosing : bool;
}

let serve_reference ?(host = "127.0.0.1") ?(group_commit_ms = 5)
    ?(max_group = 64) ?timeout_ms ?stop ?on_listen ~port t =
  if group_commit_ms < 0 then
    invalid_arg "Net.serve_reference: group_commit_ms must be >= 0";
  if max_group < 1 then invalid_arg "Net.serve_reference: max_group must be >= 1";
  ignore_sigpipe ();
  let lfd = listen_socket ~host ~port ?on_listen () in
  Fun.protect
    ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
    (fun () ->
      let conns = ref [] in
      let dead = ref [] in
      let drop c =
        if not (List.memq c !dead) then begin
          dead := c :: !dead;
          (try Unix.close c.rfd with Unix.Unix_error _ -> ())
        end
      in
      let queries = ref [] in
      let appends = Queue.create () in
      let group_opened = ref None in
      let flush_appends () =
        if not (Queue.is_empty appends) then begin
          let items = List.of_seq (Queue.to_seq appends) in
          Queue.clear appends;
          group_opened := None;
          match Serve.append_group t (List.map snd items) with
          | results ->
              List.iter2
                (fun (cell, _) res ->
                  cell :=
                    Some
                      (match res with
                      | Ok () -> Acked
                      | Error m -> Error_reply m))
                items results
          | exception e ->
              let m = Printexc.to_string e in
              List.iter (fun (cell, _) -> cell := Some (Error_reply m)) items
        end
      in
      let enqueue_cell c =
        let cell = ref None in
        Queue.push cell c.rq;
        cell
      in
      let handle c req =
        let cell = enqueue_cell c in
        match req with
        | Ping -> cell := Some Pong
        | Stats ->
            cell :=
              Some (Stats_reply { serve = Serve.stats t; net = net_stats_zero })
        | Publish -> (
            flush_appends ();
            match Serve.publish t with
            | () -> cell := Some Published
            | exception e -> cell := Some (Error_reply (Printexc.to_string e)))
        | Query text -> (
            match Xq_parse.parse ~name:"net" text with
            | ast -> queries := (cell, ast) :: !queries
            | exception Xq_parse.Parse_error { position; message } ->
                cell :=
                  Some
                    (Error_reply
                       (Printf.sprintf "query parse error at offset %d: %s"
                          position message)))
        | Append text -> (
            match Xml_parse.parse_string text with
            | doc ->
                if Queue.is_empty appends then
                  group_opened := Some (Unix.gettimeofday ());
                Queue.push (cell, doc) appends;
                if Queue.length appends >= max_group then flush_appends ()
            | exception Xml_parse.Parse_error { position; message } ->
                cell :=
                  Some
                    (Error_reply
                       (Printf.sprintf "XML parse error at offset %d: %s"
                          position message)))
      in
      let protocol_error c m =
        enqueue_cell c := Some (Error_reply m);
        c.rclosing <- true
      in
      let read_conn c =
        let buf = Bytes.create 65536 in
        match Unix.read c.rfd buf 0 (Bytes.length buf) with
        | 0 -> c.rclosing <- true
        | n ->
            c.rpend <- c.rpend ^ Bytes.sub_string buf 0 n;
            let continue = ref true in
            while !continue && not c.rclosing do
              match extract c.rpend with
              | `Partial -> continue := false
              | `Broken m ->
                  protocol_error c m;
                  continue := false
              | `Frame (payload, rest) -> (
                  c.rpend <- rest;
                  match decode_request payload with
                  | req -> handle c req
                  | exception Wire.Corrupt m -> protocol_error c m)
            done
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> drop c
      in
      let drain c =
        let b = Buffer.create 256 in
        let continue = ref true in
        while !continue && not (Queue.is_empty c.rq) do
          match !(Queue.peek c.rq) with
          | Some resp ->
              ignore (Queue.pop c.rq);
              Buffer.add_string b (encode_response resp)
          | None -> continue := false
        done;
        if Buffer.length b > 0 then begin
          let rest =
            String.sub c.rout c.routpos (String.length c.rout - c.routpos)
          in
          c.rout <- rest ^ Buffer.contents b;
          c.routpos <- 0
        end
      in
      let write_conn c =
        match
          Unix.write_substring c.rfd c.rout c.routpos
            (String.length c.rout - c.routpos)
        with
        | n ->
            c.routpos <- c.routpos + n;
            if c.routpos >= String.length c.rout then begin
              c.rout <- "";
              c.routpos <- 0
            end
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> drop c
      in
      let stopped () = match stop with Some r -> !r | None -> false in
      while not (stopped ()) do
        let timeout =
          match !group_opened with
          | None -> 0.25
          | Some t0 ->
              let d =
                t0 +. (float_of_int group_commit_ms /. 1000.)
                -. Unix.gettimeofday ()
              in
              Float.max 0. (Float.min 0.25 d)
        in
        let readable = List.filter (fun c -> not c.rclosing) !conns in
        let writable =
          List.filter (fun c -> String.length c.rout > c.routpos) !conns
        in
        let rs, ws, _ =
          try
            Unix.select
              (lfd :: List.map (fun c -> c.rfd) readable)
              (List.map (fun c -> c.rfd) writable)
              [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if List.memq lfd rs then begin
          let accepting = ref true in
          while !accepting do
            match Unix.accept lfd with
            | fd, _ ->
                Unix.set_nonblock fd;
                (try Unix.setsockopt fd Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ());
                conns :=
                  {
                    rfd = fd;
                    rpend = "";
                    rout = "";
                    routpos = 0;
                    rq = Queue.create ();
                    rclosing = false;
                  }
                  :: !conns
            | exception
                Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
                accepting := false
            | exception Unix.Unix_error _ -> accepting := false
          done
        end;
        List.iter (fun c -> if List.memq c.rfd rs then read_conn c) readable;
        (match List.rev !queries with
        | [] -> ()
        | qs ->
            queries := [];
            let arr = Array.of_list (List.map snd qs) in
            let res = Serve.run_batch ?timeout_ms t arr in
            List.iteri
              (fun i (cell, _) ->
                cell :=
                  Some
                    (match res.(i) with
                    | Ok (r : Serve.reply) ->
                        Rows { rows = r.Serve.rows; cached = r.Serve.cached }
                    | Error m -> Error_reply m))
              qs);
        (match !group_opened with
        | Some t0
          when Unix.gettimeofday ()
               >= t0 +. (float_of_int group_commit_ms /. 1000.) ->
            flush_appends ()
        | _ -> ());
        List.iter
          (fun c ->
            drain c;
            if String.length c.rout > c.routpos && List.memq c.rfd ws then
              write_conn c;
            if
              c.rclosing && Queue.is_empty c.rq
              && String.length c.rout <= c.routpos
            then drop c)
          !conns;
        if !dead <> [] then begin
          conns := List.filter (fun c -> not (List.memq c !dead)) !conns;
          dead := []
        end
      done;
      List.iter
        (fun c -> try Unix.close c.rfd with Unix.Unix_error _ -> ())
        !conns)

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

type client = { cfd : Unix.file_descr; cbuf : Iobuf.t }

exception Protocol_error of string
exception Closed

let connect ?(host = "127.0.0.1") ~port () =
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (resolve host, port));
     try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ()
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { cfd = fd; cbuf = Iobuf.create 4096 }

let rec write_all fd s pos =
  if pos < String.length s then
    match Unix.write_substring fd s pos (String.length s - pos) with
    | n -> write_all fd s (pos + n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos

let send c req = write_all c.cfd (encode_request req) 0
let send_raw c bytes = write_all c.cfd bytes 0

(* the receive buffer persists across frames: reads land at its tail,
   [extract_frame] consumes its front — a response spanning many 64 KiB
   reads costs one pass over its bytes, not one per read *)
let rec recv_raw c =
  match extract_frame c.cbuf with
  | `Frame payload -> payload
  | `Broken m -> raise (Protocol_error m)
  | `Partial -> (
      match Iobuf.read_from c.cbuf c.cfd with
      | 0 ->
          if Iobuf.is_empty c.cbuf then raise Closed
          else raise (Protocol_error "connection closed mid-frame")
      | _ -> recv_raw c
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv_raw c)

let recv c =
  match decode_response (recv_raw c) with
  | resp -> resp
  | exception Wire.Corrupt m -> raise (Protocol_error m)

let rpc c req =
  send c req;
  recv c

let close c = try Unix.close c.cfd with Unix.Unix_error _ -> ()
