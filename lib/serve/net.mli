(** The query server's network front door: a TCP request/response
    protocol in the {!Legodb_wire.Wire} frame format, a single-threaded
    [select] server that batches concurrently-arriving work into
    {!Serve.run_batch} calls and group-commits appends, and the small
    blocking client the CLI's [legodb query --connect] uses.

    {2 The protocol}

    Every message — either direction — is one {!Legodb_wire.Wire.frame}
    with magic [LEGODB-NET], version 1: a header line

    {v LEGODB-NET 1 <crc32-hex> <payload-bytes> v}

    followed by exactly [<payload-bytes>] of payload, CRC-checked
    before any decoding — the same frame shape as the WAL's records
    and the snapshot files, so a bit flip anywhere in a frame is a
    checksum mismatch, never a mis-parsed request.  Payloads use the
    shared token/length-prefix codec; queries travel as XQuery source
    text and appends as XML source text (both parsed server-side, so a
    malformed body is a structured {!Error_reply}, not a dead server).

    A peer that sends garbage — bad magic, impossible length, checksum
    mismatch — gets one {!Error_reply} frame and then a clean
    disconnect: after a framing error the byte stream has no reliable
    resynchronization point, so the connection is the unit of failure.
    Other connections are unaffected.

    {2 Batching and group commit}

    The server is one [select] loop: requests that arrive concurrently
    (across connections, or pipelined on one) are collected and
    answered together — queries fan out on one {!Serve.run_batch}
    call per loop round, appends accumulate into a group that is
    committed by one {!Serve.append_group} (one WAL write + one fsync
    for the whole group) when the group reaches [max_group] appends or
    its oldest member has waited [group_commit_ms].  An append is
    acknowledged ({!Acked}) only after its group's fsync returns, so
    the PR 8 invariant survives the network: an acked append is never
    lost, an unacked one is cleanly absent after a crash.

    Responses are delivered per connection in request order (a
    pipelined client can match them positionally). *)

(** {1 Messages} *)

type request =
  | Query of string  (** XQuery source text, parsed server-side *)
  | Append of string  (** XML document text, parsed server-side *)
  | Publish  (** the {!Serve.publish} barrier *)
  | Stats
  | Ping

type response =
  | Rows of {
      rows : Legodb_relational.Rtype.value list list;
      cached : bool;
    }  (** a query's answer — same payload as {!Serve.reply} *)
  | Acked  (** the append's group fsync returned; it is durable *)
  | Published
  | Stats_reply of Serve.stats
  | Pong
  | Error_reply of string
      (** a structured failure: parse error, untranslatable query,
          timeout, shred rejection, or a framing error (after which
          the server closes this connection) *)

val encode_request : request -> string
(** The full frame bytes (header line + payload) — what travels. *)

val encode_response : response -> string

val decode_request : string -> request
(** Decode a frame's {e payload} (the frame itself already validated).
    @raise Legodb_wire.Wire.Corrupt on a malformed payload. *)

val decode_response : string -> response
(** @raise Legodb_wire.Wire.Corrupt *)

val extract : string -> [ `Frame of string * string | `Partial | `Broken of string ]
(** The streaming frame extractor both ends parse the byte stream
    with: [`Frame (payload, rest)] is one validated frame's payload
    plus the bytes after it, [`Partial] means the data so far is a
    legal prefix (keep reading), [`Broken] is a framing defect — bad
    magic, impossible length, checksum mismatch — with a one-line
    diagnosis.  Exposed so the protocol-fuzz tests exercise exactly
    the production parser. *)

(** {1 Server} *)

val serve :
  ?host:string ->
  ?group_commit_ms:int ->
  ?max_group:int ->
  ?timeout_ms:int ->
  ?stop:bool ref ->
  ?on_listen:(int -> unit) ->
  port:int ->
  Serve.t ->
  unit
(** Run the accept loop until [!stop] (checked at least every 250ms)
    becomes true, then close every connection and return.  [?host]
    (default ["127.0.0.1"]) is the bind address; [~port] [0] binds an
    ephemeral port.  [?on_listen] is called once with the actually
    bound port, after [listen] succeeds and before the first accept —
    the tests' startup handshake.  [?group_commit_ms] (default [5])
    bounds how long the oldest staged append waits for its group's
    fsync; [0] still groups appends that arrived in the same loop
    round.  [?max_group] (default [64]) caps a group's size.
    [?timeout_ms] is handed to {!Serve.run_batch} as each query's
    budget.  Appends still waiting for a group at stop time were never
    acknowledged, and are dropped with their connections.
    @raise Invalid_argument on [group_commit_ms < 0] or [max_group < 1]
    @raise Unix.Unix_error e.g. when the port is already bound
    ([EADDRINUSE] — the CLI maps this family to exit code 9). *)

(** {1 Client} *)

type client
(** A blocking connection to a server.  Not thread-safe; one request
    pipeline per client. *)

exception Protocol_error of string
(** The peer broke the framing protocol (bad magic, checksum mismatch,
    connection closed mid-frame).  The connection is unusable. *)

exception Closed
(** Orderly EOF: the server closed the connection between frames. *)

val connect : ?host:string -> port:int -> unit -> client
(** @raise Unix.Unix_error e.g. [ECONNREFUSED] (CLI exit code 9). *)

val send : client -> request -> unit
(** Write one request frame.  [send] without an intervening {!recv}
    pipelines: the server answers in order, so [k] sends followed by
    [k] recvs match positionally — and pipelined appends land in the
    same commit group. *)

val send_raw : client -> string -> unit
(** Write arbitrary bytes — the protocol tests' and the CLI
    corrupt-probe's way of sending deliberately damaged frames. *)

val recv : client -> response
(** Block for the next response frame.
    @raise Protocol_error @raise Closed *)

val rpc : client -> request -> response
(** [send] then [recv]. *)

val close : client -> unit

val parse_endpoint : string -> (string * int, string) result
(** Split a [HOST:PORT] endpoint; [Error] is a one-line diagnosis
    (the CLI's [--connect] validation). *)
