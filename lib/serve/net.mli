(** The query server's network front door: a TCP request/response
    protocol in the {!Legodb_wire.Wire} frame format, a single-threaded
    [select] tick loop that batches concurrently-arriving work into
    shared {!Serve.run_batch} calls and group-commits appends, and the
    small blocking client the CLI's [legodb query --connect] uses.

    {2 The protocol}

    Every message — either direction — is one {!Legodb_wire.Wire.frame}
    with magic [LEGODB-NET], version 1: a header line

    {v LEGODB-NET 1 <crc32-hex> <payload-bytes> v}

    followed by exactly [<payload-bytes>] of payload, CRC-checked
    before any decoding — the same frame shape as the WAL's records
    and the snapshot files, so a bit flip anywhere in a frame is a
    checksum mismatch, never a mis-parsed request.  Payloads use the
    shared token/length-prefix codec; queries travel as XQuery source
    text and appends as XML source text (both parsed server-side, so a
    malformed body is a structured {!Error_reply}, not a dead server).

    A peer that sends garbage — bad magic, impossible length, checksum
    mismatch — gets one {!Error_reply} frame and then a clean
    disconnect: after a framing error the byte stream has no reliable
    resynchronization point, so the connection is the unit of failure.
    Other connections are unaffected.

    {2 The tick loop}

    The server is one [select] loop.  Each tick: accept (unless at the
    [max_conns] cap), one read per ready connection into its
    persistent input buffer, frame extraction by offset arithmetic
    (never re-scanning or re-copying buffered bytes — see {!Iobuf}),
    then {e all} decodable queries from {e all} connections this tick
    are answered by one shared {!Serve.run_batch} (one pinned
    snapshot, one pool fan-out per tick instead of one per
    connection).  Appends accumulate into a group committed by one
    {!Serve.append_group} (one WAL write + one fsync for the whole
    group) when the group reaches [max_group] appends or its oldest
    member has waited [group_commit_ms]; an append is acknowledged
    ({!Acked}) only after its group's fsync returns, so the PR 8
    invariant survives the network.  Responses are encoded straight
    into each connection's persistent output buffer and written
    optimistically in the same tick; a partial write just advances an
    offset.  Responses are delivered per connection in request order
    (a pipelined client can match them positionally), and the loop
    publishes its own observability counters as {!net_stats}. *)

(** {1 Messages} *)

type request =
  | Query of string  (** XQuery source text, parsed server-side *)
  | Append of string  (** XML document text, parsed server-side *)
  | Publish  (** the {!Serve.publish} barrier *)
  | Stats
  | Ping

(** What the event loop itself did — engine-side counters live in
    {!Serve.stats}.  [batch_hist.(k)] counts select ticks whose shared
    query batch held [k] queries, the last bucket absorbing everything
    at or above it; mass at index ≥ 2 proves cross-connection (or
    pipelined) batching actually formed.  [select_s]/[work_s] split
    wall time into waiting-for-readiness vs processing. *)
type net_stats = {
  ticks : int;
  batches : int;
  batched_queries : int;
  batch_hist : int array;
  max_batch : int;
  replayed : int;
      (** queries answered from the front-door replay cache — the
          finished frame of an identical earlier query against the same
          published snapshot, blitted straight into the output buffer *)
  bytes_in : int;
  bytes_out : int;
  select_s : float;
  work_s : float;
  accepted : int;
  idle_reaped : int;  (** connections reaped by [idle_timeout_ms] *)
  at_capacity : int;  (** ticks the listener was parked by [max_conns] *)
}

val net_stats_zero : net_stats
val hist_buckets : int

val shared_batches : net_stats -> int
(** Batches of size ≥ 2 — the cross-connection-batching evidence the
    bench and CI smoke assert on. *)

val pp_net_stats : Format.formatter -> net_stats -> unit

type response =
  | Rows of {
      rows : Legodb_relational.Rtype.value list list;
      cached : bool;
    }  (** a query's answer — same payload as {!Serve.reply} *)
  | Acked  (** the append's group fsync returned; it is durable *)
  | Published
  | Stats_reply of { serve : Serve.stats; net : net_stats }
      (** engine counters plus the serving loop's own ({!net_stats} is
          all zeros when the answering loop predates the counters,
          e.g. {!serve_reference}) *)
  | Pong
  | Error_reply of string
      (** a structured failure: parse error, untranslatable query,
          timeout, shred rejection, or a framing error (after which
          the server closes this connection) *)

val encode_request : request -> string
(** The full frame bytes (header line + payload) — what travels. *)

val encode_response : response -> string

val decode_request : string -> request
(** Decode a frame's {e payload} (the frame itself already validated).
    @raise Legodb_wire.Wire.Corrupt on a malformed payload. *)

val decode_response : string -> response
(** @raise Legodb_wire.Wire.Corrupt *)

val extract_frame : Iobuf.t -> [ `Frame of string | `Partial | `Broken of string ]
(** The streaming frame extractor both ends parse the byte stream
    with: [`Frame payload] is one validated frame's payload, whose
    bytes have been consumed from the buffer; [`Partial] means the
    bytes so far are a legal prefix (keep reading — the buffer's scan
    watermark makes the re-poll O(1)); [`Broken] is a framing defect —
    bad magic, impossible length, checksum mismatch — with a one-line
    diagnosis. *)

val extract : string -> [ `Frame of string * string | `Partial | `Broken of string ]
(** String-oriented wrapper over {!extract_frame} ([`Frame (payload,
    rest)] carries the bytes after the frame), kept so the
    protocol-fuzz tests exercise exactly the production parser. *)

(** {1 Server} *)

val serve :
  ?host:string ->
  ?group_commit_ms:int ->
  ?max_group:int ->
  ?idle_timeout_ms:int ->
  ?max_conns:int ->
  ?timeout_ms:int ->
  ?max_write:int ->
  ?stop:bool ref ->
  ?on_listen:(int -> unit) ->
  port:int ->
  Serve.t ->
  net_stats
(** Run the tick loop until [!stop] (checked at least every 250ms)
    becomes true, then close every connection and return the loop's
    final {!net_stats}.  [?host] (default ["127.0.0.1"]) is the bind
    address; [~port] [0] binds an ephemeral port.  [?on_listen] is
    called once with the actually bound port, after [listen] succeeds
    and before the first accept — the tests' startup handshake.
    [?group_commit_ms] (default [5]) bounds how long the oldest staged
    append waits for its group's fsync; [0] still groups appends that
    arrived in the same tick.  [?max_group] (default [64]) caps a
    group's size.  [?idle_timeout_ms] reaps connections that have
    neither transferred a byte nor been owed a response for that long
    (default: never).  [?max_conns] parks the listener while that many
    connections are open — pending peers wait in the kernel backlog
    and are accepted as slots free up (default: unbounded).
    [?timeout_ms] is handed to {!Serve.run_batch} as each query's
    budget.  [?max_write] caps the bytes any single [write] may move —
    the tests' short-write injection seam, not for production use.
    Appends still waiting for a group at stop time were never
    acknowledged, and are dropped with their connections.
    @raise Invalid_argument on [group_commit_ms < 0], [max_group < 1],
    [idle_timeout_ms < 1], [max_conns < 1], or [max_write < 1]
    @raise Unix.Unix_error e.g. when the port is already bound
    ([EADDRINUSE] — the CLI maps this family to exit code 9). *)

val serve_reference :
  ?host:string ->
  ?group_commit_ms:int ->
  ?max_group:int ->
  ?timeout_ms:int ->
  ?stop:bool ref ->
  ?on_listen:(int -> unit) ->
  port:int ->
  Serve.t ->
  unit
(** The front door as PR 9 shipped it — fresh 64 KiB read buffer per
    read, quadratic string rebuilds, responses written one select
    round late — kept as the adjacent same-machine baseline the
    serve_perf bench measures the reworked loop against (the role
    [Optimizer_reference] plays for the optimizer).  Same protocol,
    same answers; its [Stats_reply] carries {!net_stats_zero}.  Not
    for production use. *)

(** {1 Client} *)

type client
(** A blocking connection to a server.  Not thread-safe; one request
    pipeline per client.  Received bytes accumulate in a persistent
    offset-carrying buffer, so multi-frame and multi-read responses
    cost one pass over their bytes. *)

exception Protocol_error of string
(** The peer broke the framing protocol (bad magic, checksum mismatch,
    connection closed mid-frame).  The connection is unusable. *)

exception Closed
(** Orderly EOF: the server closed the connection between frames. *)

val connect : ?host:string -> port:int -> unit -> client
(** @raise Unix.Unix_error e.g. [ECONNREFUSED] (CLI exit code 9). *)

val send : client -> request -> unit
(** Write one request frame.  [send] without an intervening {!recv}
    pipelines: the server answers in order, so [k] sends followed by
    [k] recvs match positionally — and pipelined appends land in the
    same commit group. *)

val send_raw : client -> string -> unit
(** Write arbitrary bytes — the protocol tests' and the CLI
    corrupt-probe's way of sending deliberately damaged frames. *)

val recv : client -> response
(** Block for the next response frame.
    @raise Protocol_error @raise Closed *)

val recv_raw : client -> string
(** Like {!recv} but return the CRC-validated payload without decoding
    it — for replay tools and throughput clients that only sample-decode.
    @raise Protocol_error @raise Closed *)

val rpc : client -> request -> response
(** [send] then [recv]. *)

val close : client -> unit

val parse_endpoint : string -> (string * int, string) result
(** Split a [HOST:PORT] endpoint; [Error] is a one-line diagnosis
    (the CLI's [--connect] validation). *)
