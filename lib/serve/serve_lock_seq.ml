(* No-op lock, selected on OCaml 4.14 (see serve_lock.mli): the Par
   backend is sequential there, so requests never overlap.  Must stay
   4.14-compatible (no stdlib Mutex). *)

type t = unit

let create () = ()
let with_lock () f = f ()
