(** The query server's durability substrate: a write-ahead log of
    appends plus atomic storage snapshots, in the shared
    {!Legodb_wire.Wire} format (PR 4's checkpoint codec primitives).

    {2 On-disk layout}

    A server's data directory holds two files:

    - [snapshot.legodb] — a framed image ([LEGODB-SNAP] header with
      version, CRC-32, and payload length) of the {e published} store:
      the p-schema the mapping derives from, the sequence number of the
      last append it covers, and every table's rows
      ({!Legodb_relational.Storage.write_rows}).  Written atomically
      and durably ({!Legodb_wire.Wire.write_atomic}) at every
      {!Serve.publish} barrier, so the file is always a complete,
      checksummed image of some published state.
    - [wal.legodb] — a header line [LEGODB-WAL 1] followed by one
      {e commit unit} per {!flush}: a single append commits as a
      [R <crc32> <len>] record (the record's sequence number and the
      shredded rows per table, inside the checksum), and a {e group}
      of [k >= 2] staged appends commits as one [G <crc32> <len>]
      record whose payload carries the first sequence number, the
      member count, and every member's rows under a single CRC.
      Either way a commit unit is written with one [write] and one
      [fsync] before any of its appends is acknowledged — group
      commit amortizes the device's sync latency over the whole
      group.  The log is truncated back to its header after each
      successful snapshot.

    {2 Failure semantics}

    Sequence numbers tie the two files together: replay applies
    exactly the records newer than the snapshot, so a crash {e
    between} the snapshot rename and the log truncation (when the log
    still holds already-snapshotted records) never double-applies.

    A commit unit that simply stops early — torn header line, payload
    shorter than its declared length, missing terminator — is the
    signature of a crash mid-write: {!replay_string} drops it (and
    everything after it, though by construction a torn unit is the
    tail) and reports the truncation, because none of the appends it
    carried was ever acknowledged.  A group commits or truncates {e as
    a unit}: its members share one record and one checksum, so a crash
    mid-group can never surface a prefix of the group as if it had
    committed — exactly the ack invariant, every acked append survives
    and every unacked one is cleanly absent.  Everything else — bad
    magic, wrong version, a checksum mismatch on a structurally
    complete record, non-contiguous sequence numbers — is real
    corruption: {!Corrupt} is raised, the CLI maps it to exit code 8,
    and recovery refuses to serve rather than guess. *)

open Legodb_xtype
open Legodb_relational

exception Corrupt of string
(** The snapshot or WAL is not usable: truncated (where truncation is
    not a legal crash artifact), bit-flipped (checksum mismatch), wrong
    version, or wrong magic — each reported distinctly, one line.  The
    CLI maps this to exit code 8 (the checkpoint's exit-7 convention,
    one code later). *)

val snapshot_file : string -> string
(** [snapshot_file dir] — the snapshot's path under a data directory. *)

val wal_file : string -> string
(** [wal_file dir] — the log's path under a data directory. *)

(** {1 Records} *)

type record = {
  seq : int;  (** 1-based, contiguous, monotone across publishes *)
  rows : (string * Storage.row list) list;
      (** the shredded rows one append added, per table (tables the
          append left untouched are absent), in insertion order *)
}

val encode_record : record -> string
(** The record's full on-disk bytes: header line + checksummed
    payload + terminator. *)

val encode_group : record list -> string
(** The on-disk bytes of one commit unit: a singleton encodes as a
    plain [R] record (byte-identical to the fsync-per-append format),
    two or more as one [G] record under a single CRC.  Sequence
    numbers must be contiguous.
    @raise Invalid_argument on an empty or non-contiguous group. *)

val record_equal : record -> record -> bool
(** Structural equality, value bit-patterns included (the codec
    round-trip property). *)

type replay = {
  records : record list;  (** complete, checksummed records, in order *)
  dropped_bytes : int;  (** bytes of torn tail discarded, 0 if none *)
  torn : string option;
      (** why the tail was dropped ([None] when the log ended cleanly) *)
}

val replay_string : string -> replay
(** Parse a whole WAL image (header included).  Torn tails are
    reported, not raised; everything else raises {!Corrupt}. *)

val replay_file : string -> replay
(** {!replay_string} of the file's bytes.  A missing file replays as
    empty (a crash can predate the first append). *)

(** {1 The log handle} *)

type t

val create : ?fs:Legodb_wire.Wire.fs -> next_seq:int -> string -> t
(** Create (or truncate) the log at a path: write the header, fsync.
    The next {!append} gets sequence number [next_seq]. *)

val reopen :
  ?fs:Legodb_wire.Wire.fs -> valid_bytes:int -> next_seq:int -> string -> t
(** Open an existing log for appending after recovery, first truncating
    it to [valid_bytes] (cutting a torn tail off), so the log on disk
    is exactly its replayable prefix again. *)

val stage : t -> (string * Storage.row list) list -> int
(** Assign the next sequence number to one append and buffer it in the
    {e open group}; nothing touches the disk.  The append is {e not}
    durable (and must not be acknowledged) until the next {!flush}
    returns. *)

val flush : t -> unit
(** Commit the open group: encode every staged append into one commit
    unit ({!encode_group}), write it with a single [write], and fsync
    once.  Only after [flush] returns are the staged appends durable —
    this is the ack barrier.  A no-op (no write, no fsync) when
    nothing is staged.  If the write or fsync raises, the unit may be
    torn on disk and {e none} of the group was acknowledged; the torn
    tail is exactly what replay truncates, and the staged buffer is
    left in place so the caller can go fail-stop. *)

val staged : t -> int
(** Appends in the open group (staged since the last {!flush}). *)

val append : t -> (string * Storage.row list) list -> int
(** [stage] + [flush] — the PR 8 fsync-per-append discipline, one
    record and one fsync per append; returns the record's sequence
    number.  If the write or fsync raises, the record may be torn on
    disk — the caller must treat the append as failed (it is exactly
    what replay truncates). *)

val reset : t -> unit
(** Truncate back to the header and fsync — the post-snapshot log
    reset.  Sequence numbers are {e not} reset; they stay monotone so
    replay can tell pre- from post-snapshot records. *)

val next_seq : t -> int
val close : t -> unit

(** {1 Commit accounting} *)

type stats = {
  appends : int;  (** appends acknowledged (staged and then flushed) *)
  fsyncs : int;  (** append-path fsyncs: one per non-empty {!flush} *)
  groups : int;  (** non-empty flushes — commit units written *)
  max_group : int;  (** largest group committed by one flush *)
}
(** What group commit saves is fsyncs per append:
    [fsyncs /. appends] is 1.0 under fsync-per-append and [1/k] for
    steady groups of [k].  {!reset}'s truncation fsync is not counted
    — the ratio is strictly about the append path. *)

val stats : t -> stats

(** {1 Snapshots} *)

val write_snapshot :
  ?fs:Legodb_wire.Wire.fs ->
  path:string ->
  schema:Xschema.t ->
  ordered:bool ->
  last_seq:int ->
  Storage.t ->
  unit
(** Dump a (frozen) store durably and atomically: schema, mapping
    order-columns flag, the last append sequence the dump covers, and
    every table's rows. *)

type snapshot = {
  s_schema : Xschema.t;  (** the p-schema the catalog derives from *)
  s_ordered : bool;  (** the mapping's [order_columns] flag *)
  s_last_seq : int;  (** WAL records [<= s_last_seq] are already in *)
  s_fill : Storage.t -> unit;
      (** insert the dump's rows into a fresh store for the same
          catalog; raises {!Corrupt} on any mismatch *)
}

val load_snapshot : string -> snapshot
(** Validate (magic, version, length, CRC — before any decoding) and
    decode the header fields; rows are decoded lazily by [s_fill].
    @raise Corrupt *)
