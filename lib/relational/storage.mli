(** In-memory row storage with hash indexes.

    This is the execution substrate behind the cost model: integration
    tests shred documents into it, run translated queries with
    {!Legodb_optimizer.Executor}, and check that the optimizer's
    estimate {e orderings} agree with actual work done — and the query
    server ({!Legodb_serve.Serve}) answers requests over {!freeze}-d
    snapshots of it.

    Equality semantics are SQL's: a [V_null] key matches nothing.
    {!insert} never indexes NULL values and {!lookup} returns [[]] for
    a NULL probe on both the indexed and the scan path, mirroring the
    executor's join methods (which reject NULL keys through
    [eval_cmp]). *)

type row = Rtype.value array
(** One value per column, in catalog column order. *)

(** The growable array backing each table.  Exposed (transparently) so
    tests can check the growth policy: on reallocation the spare slots
    beyond [len] are filled with the already-live [data.(0)], never
    with the element being pushed — filling with the pushed element
    would keep otherwise-dead rows reachable from the spare capacity
    (a space leak). *)
module Vec : sig
  type 'a t = { mutable data : 'a array; mutable len : int }

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit

  val get : 'a t -> int -> 'a
  (** @raise Invalid_argument out of bounds (spare slots included). *)

  val length : 'a t -> int

  val capacity : 'a t -> int
  (** [Array.length] of the backing store, >= {!length}. *)

  val copy : 'a t -> 'a t
  (** Independent exact-size copy ([capacity = length]: no spare
      slots), sharing only the elements. *)

  val to_seq : 'a t -> 'a Seq.t
end

type t

val create : Rschema.t -> t
(** An empty database for the catalog.  Indexes declared in the catalog
    are maintained incrementally on insert. *)

val catalog : t -> Rschema.t

val insert : t -> string -> row -> unit
(** Append a row.  NULL values are not entered into indexes (a NULL key
    can never be matched by {!lookup}).  @raise Invalid_argument if the
    table is unknown, the row has the wrong arity, or the database is a
    frozen snapshot. *)

val row_count : t -> string -> int
val scan : t -> string -> row Seq.t

val get : t -> string -> int -> row
(** Row by position (0-based). *)

val lookup : t -> table:string -> column:string -> Rtype.value -> row list
(** Index lookup; falls back to a scan when the column has no index.
    A [V_null] probe returns [[]] on either path — SQL equality, the
    same semantics the executor's join methods enforce.
    @raise Invalid_argument on an unknown column. *)

val column_position : t -> table:string -> column:string -> int
(** @raise Not_found *)

val refresh_stats : t -> t
(** Recompute catalog statistics (cardinalities, distinct counts, null
    fractions, widths, min/max) from the stored data.  Returns a fully
    {e independent} database: row vectors and index hashtables are
    copied (rows themselves are shared, but Storage never mutates a
    row), so inserts through either handle are invisible to the
    other. *)

val freeze : t -> t
(** {!refresh_stats} plus immutability: the returned database is an
    independent, alias-free snapshot whose catalog statistics match its
    contents exactly, and on which {!insert} raises
    [Invalid_argument].  Because nothing can mutate it, a frozen
    snapshot is safe to read from any number of domains concurrently —
    the read substrate of the query server. *)

val is_frozen : t -> bool

val total_rows : t -> int
val pp_summary : Format.formatter -> t -> unit

(** {1 Durable row dump}

    The row-level codec behind the query server's storage snapshots and
    write-ahead log ({!Legodb_serve.Wal}), in the shared
    {!Legodb_wire.Wire} format.  A dump stores data only — the catalog
    travels separately (as the p-schema it derives from) and statistics
    are recomputed by {!freeze} — and reloading a dump into a fresh
    store for the same catalog reproduces it row for row: positions,
    ids, and index contents included.  Readers raise
    {!Legodb_wire.Wire.Corrupt} on malformed input (wrong table set,
    arity mismatch, bad value tags). *)

val write_value : Buffer.t -> Rtype.value -> unit
val read_value : Legodb_wire.Wire.cursor -> Rtype.value

val write_row : Buffer.t -> row -> unit
val read_row : Legodb_wire.Wire.cursor -> arity:int -> row

val write_rows : Buffer.t -> t -> unit
(** Every table of the catalog, in catalog order. *)

val read_rows : Legodb_wire.Wire.cursor -> t -> unit
(** Insert a dump's rows into [t] (normally fresh-created from the same
    catalog); indexes are maintained by the inserts.  @raise
    Legodb_wire.Wire.Corrupt if the dump's tables or arities do not
    match the catalog. *)
