type row = Rtype.value array

(* a minimal growable array *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let cap = max 16 (2 * Array.length v.data) in
      (* fill the spare slots with an element that is live anyway
         (data.(0), or x itself when it is about to become data.(0)):
         filling with [x] would keep every pushed row reachable from
         the [cap - len - 1] spare slots until they are overwritten — a
         space leak pinning dead rows for the lifetime of the vector *)
      let fill = if v.len = 0 then x else v.data.(0) in
      let data = Array.make cap fill in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i =
    if i < 0 || i >= v.len then invalid_arg "Vec.get" else v.data.(i)

  let length v = v.len
  let capacity v = Array.length v.data

  (* exact-size copy: independent of the original and with no spare
     slots at all, which is what frozen snapshots want *)
  let copy v = { data = Array.sub v.data 0 v.len; len = v.len }

  let to_seq v =
    let rec go i () =
      if i >= v.len then Seq.Nil else Seq.Cons (v.data.(i), go (i + 1))
    in
    go 0
end

type table_data = {
  schema : Rschema.table;
  rows : row Vec.t;
  indexes : (string, (Rtype.value, int list) Hashtbl.t) Hashtbl.t;
  (* column name -> value -> row positions (most recent first);
     NULLs are never indexed: a NULL key matches nothing (SQL
     semantics), so indexing them would only let [lookup] find them *)
  positions : (string * int) list;  (* column name -> array position *)
}

type t = {
  cat : Rschema.t;
  tables : (string, table_data) Hashtbl.t;
  frozen : bool;
}

let catalog db = db.cat
let is_frozen db = db.frozen

let create (cat : Rschema.t) =
  let tables = Hashtbl.create 16 in
  List.iter
    (fun (tbl : Rschema.table) ->
      let indexes = Hashtbl.create 4 in
      List.iter
        (fun cname -> Hashtbl.replace indexes cname (Hashtbl.create 64))
        tbl.indexed;
      Hashtbl.replace tables tbl.tname
        {
          schema = tbl;
          rows = Vec.create ();
          indexes;
          positions =
            List.mapi (fun i (c : Rschema.column) -> (c.cname, i)) tbl.columns;
        })
    cat.tables;
  { cat; tables; frozen = false }

let table_data db name =
  match Hashtbl.find_opt db.tables name with
  | Some td -> td
  | None -> invalid_arg (Printf.sprintf "Storage: unknown table %s" name)

let column_position db ~table ~column =
  match List.assoc_opt column (table_data db table).positions with
  | Some i -> i
  | None -> raise Not_found

let insert db name row =
  if db.frozen then
    invalid_arg
      (Printf.sprintf "Storage.insert: %s is a frozen snapshot" name);
  let td = table_data db name in
  if Array.length row <> List.length td.schema.columns then
    invalid_arg
      (Printf.sprintf "Storage.insert: arity mismatch for table %s" name);
  let pos = Vec.length td.rows in
  Vec.push td.rows row;
  Hashtbl.iter
    (fun cname idx ->
      match List.assoc_opt cname td.positions with
      | Some i ->
          let v = row.(i) in
          if not (Rtype.is_null v) then begin
            let existing = Option.value ~default:[] (Hashtbl.find_opt idx v) in
            Hashtbl.replace idx v (pos :: existing)
          end
      | None -> ())
    td.indexes

let row_count db name = Vec.length (table_data db name).rows
let scan db name = Vec.to_seq (table_data db name).rows
let get db name i = Vec.get (table_data db name).rows i

let lookup db ~table ~column value =
  let td = table_data db table in
  (* SQL equality: NULL matches nothing.  The index compares keys
     structurally (V_null = V_null) and the scan fallback used
     value_equal, so both paths would otherwise return NULL-keyed rows
     the executor's joins reject through eval_cmp. *)
  if Rtype.is_null value then
    if
      Hashtbl.mem td.indexes column
      || List.mem_assoc column td.positions
    then []
    else invalid_arg "Storage.lookup: unknown column"
  else
    match Hashtbl.find_opt td.indexes column with
    | Some idx ->
        let positions = Option.value ~default:[] (Hashtbl.find_opt idx value) in
        List.rev_map (Vec.get td.rows) positions
    | None -> (
        match List.assoc_opt column td.positions with
        | Some i ->
            Seq.fold_left
              (fun acc row ->
                if Rtype.value_equal row.(i) value then row :: acc else acc)
              [] (Vec.to_seq td.rows)
            |> List.rev
        | None -> invalid_arg "Storage.lookup: unknown column")

let total_rows db =
  Hashtbl.fold (fun _ td n -> n + Vec.length td.rows) db.tables 0

let refresh_table_stats db (tbl : Rschema.table) =
  let td = table_data db tbl.tname in
  let card = float_of_int (Vec.length td.rows) in
  let columns =
    List.mapi
      (fun i (c : Rschema.column) ->
        let distinct_tbl = Hashtbl.create 64 in
        let nulls = ref 0 in
        let widths = ref 0. in
        let vmin = ref None and vmax = ref None in
        Seq.iter
          (fun (row : row) ->
            let v = row.(i) in
            widths := !widths +. float_of_int (Rtype.value_width v);
            match v with
            | Rtype.V_null -> incr nulls
            | Rtype.V_int n ->
                Hashtbl.replace distinct_tbl v ();
                vmin := Some (match !vmin with None -> n | Some m -> min m n);
                vmax := Some (match !vmax with None -> n | Some m -> max m n)
            | Rtype.V_string _ -> Hashtbl.replace distinct_tbl v ())
          (Vec.to_seq td.rows);
        let n = Vec.length td.rows in
        let stats =
          {
            Rschema.distinct = float_of_int (Hashtbl.length distinct_tbl);
            null_frac = (if n = 0 then 0. else float_of_int !nulls /. float_of_int n);
            v_min = !vmin;
            v_max = !vmax;
            avg_width =
              (if n = 0 then float_of_int (Rtype.width c.ctype)
               else !widths /. float_of_int n);
          }
        in
        { c with Rschema.stats })
      tbl.columns
  in
  { tbl with Rschema.columns; card }

(* an independent copy of one table's data: fresh row vector (trimmed,
   so a snapshot pins no spare slots), fresh outer and inner index
   hashtables.  The int lists and the rows themselves are immutable
   from Storage's point of view and are shared. *)
let copy_table_data td schema =
  let indexes = Hashtbl.create (max 4 (Hashtbl.length td.indexes)) in
  Hashtbl.iter
    (fun cname idx -> Hashtbl.replace indexes cname (Hashtbl.copy idx))
    td.indexes;
  { schema; rows = Vec.copy td.rows; indexes; positions = td.positions }

let with_refreshed_catalog db ~frozen =
  let cat =
    { Rschema.tables = List.map (refresh_table_stats db) db.cat.tables }
  in
  let tables = Hashtbl.create (Hashtbl.length db.tables) in
  List.iter
    (fun (tbl : Rschema.table) ->
      match Hashtbl.find_opt db.tables tbl.tname with
      | Some td -> Hashtbl.replace tables tbl.tname (copy_table_data td tbl)
      | None -> ())
    cat.tables;
  { cat; tables; frozen }

let refresh_stats db = with_refreshed_catalog db ~frozen:db.frozen
let freeze db = with_refreshed_catalog db ~frozen:true

(* ------------------------------------------------------------------ *)
(* durable row dump (the payload layer of snapshots and WAL records)   *)
(* ------------------------------------------------------------------ *)

module Wire = Legodb_wire.Wire

let write_value b = function
  | Rtype.V_null -> Wire.w_line b "n"
  | Rtype.V_int n ->
      Wire.w_line b "i";
      Wire.w_int b n
  | Rtype.V_string s ->
      Wire.w_line b "s";
      Wire.w_str b s

let read_value cur =
  match Wire.r_line cur with
  | "n" -> Rtype.V_null
  | "i" -> Rtype.V_int (Wire.r_int cur)
  | "s" -> Rtype.V_string (Wire.r_str cur)
  | s -> Wire.corrupt "malformed payload: unknown value tag %S" s

let write_row b (row : row) =
  Array.iter (write_value b) row

let read_row cur ~arity : row = Array.init arity (fun _ -> read_value cur)

(* tables in catalog order, each as name / arity / row count / rows, so
   a dump of a store is deterministic and a reload into a fresh store
   for the same catalog reproduces it row for row (ids, order, and
   index contents included — insert rebuilds the indexes) *)
let write_rows b db =
  Wire.w_int b (List.length db.cat.tables);
  List.iter
    (fun (tbl : Rschema.table) ->
      let td = table_data db tbl.tname in
      let arity = List.length tbl.columns in
      Wire.w_str b tbl.tname;
      Wire.w_int b arity;
      Wire.w_int b (Vec.length td.rows);
      Seq.iter (write_row b) (Vec.to_seq td.rows))
    db.cat.tables

let read_rows cur db =
  let n = Wire.r_int cur in
  if n <> List.length db.cat.tables then
    Wire.corrupt
      "malformed payload: dump has %d tables, the catalog declares %d" n
      (List.length db.cat.tables);
  List.iter
    (fun (tbl : Rschema.table) ->
      let tname = Wire.r_str cur in
      if not (String.equal tname tbl.tname) then
        Wire.corrupt "malformed payload: dump table %S where catalog expects %S"
          tname tbl.tname;
      let arity = Wire.r_int cur in
      if arity <> List.length tbl.columns then
        Wire.corrupt
          "malformed payload: table %s has arity %d in the dump, %d in the \
           catalog"
          tname arity
          (List.length tbl.columns);
      let rows = Wire.r_int cur in
      if rows < 0 then
        Wire.corrupt "malformed payload: negative row count %d" rows;
      for _ = 1 to rows do
        insert db tname (read_row cur ~arity)
      done)
    db.cat.tables

let pp_summary fmt db =
  List.iter
    (fun (tbl : Rschema.table) ->
      Format.fprintf fmt "%-24s %8d rows@." tbl.tname (row_count db tbl.tname))
    db.cat.tables
