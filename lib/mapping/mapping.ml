open Legodb_xtype
module Pschema = Legodb_pschema.Pschema
module Rewrite = Legodb_transform.Rewrite
open Legodb_relational

type t = {
  schema : Xschema.t;
  catalog : Rschema.t;
  transparent : string list;
  ordered : bool;
}

let default_card = 1000.

let rec has_content t =
  match t with
  | Xtype.Scalar _ | Xtype.Attr _ | Xtype.Elem _ -> true
  | Xtype.Empty | Xtype.Ref _ -> false
  | Xtype.Seq ts | Xtype.Choice ts -> List.exists has_content ts
  | Xtype.Rep (u, _) -> has_content u

let is_transparent schema ty =
  match Xschema.find_opt schema ty with
  | Some body -> not (has_content body)
  | None -> false

module SSet = Set.Make (String)

let real_parents schema ty =
  let rec up seen d acc =
    if SSet.mem d seen then acc
    else
      let seen = SSet.add d seen in
      List.fold_left
        (fun acc referrer ->
          if is_transparent schema referrer then up seen referrer acc
          else SSet.add referrer acc)
        acc (Xschema.parents schema d)
  in
  SSet.elements (up SSet.empty ty SSet.empty)

let root_tag schema ty =
  match Xschema.find_opt schema ty with
  | Some (Xtype.Elem e) -> Some (Label.column_name e.label)
  | Some _ | None -> None

(* A Choice of literal scalars maps to one string column (references to
   scalar-bodied types are NOT followed: those are stored in their own
   tables, matching the paper's AnyScalar example). *)
let scalar_choice_width ts =
  List.fold_left
    (fun w t ->
      match t with
      | Xtype.Scalar (k, st) ->
          let width =
            match st with
            | Some s -> s.Xtype.width
            | None -> Xtype.default_width k
          in
          max w width
      | _ -> w)
    0 ts

let all_scalars ts =
  List.for_all (function Xtype.Scalar _ -> true | _ -> false) ts

(* pre-aggregated info about one data column *)
type col_spec = {
  s_name : string;
  s_type : Rtype.t;
  s_nullable : bool;
  s_count : float;  (* occurrences of the value *)
  s_distinct : float option;
  s_vmin : int option;
  s_vmax : int option;
  s_width : float;  (* width of the value when present *)
}

let scalar_spec ~name ~nullable ~count kind (st : Xtype.scalar_stats option) =
  let width =
    match st with Some s -> s.Xtype.width | None -> Xtype.default_width kind
  in
  let ctype =
    match kind with
    | Xtype.String_t -> Rtype.R_string (Some width)
    | Xtype.Integer_t -> Rtype.R_int
  in
  {
    s_name = name;
    s_type = ctype;
    s_nullable = nullable;
    s_count = count;
    s_distinct =
      Option.bind st (fun s -> Option.map float_of_int s.Xtype.distinct);
    s_vmin = Option.bind st (fun s -> s.Xtype.s_min);
    s_vmax = Option.bind st (fun s -> s.Xtype.s_max);
    s_width = float_of_int width;
  }

(* Walk the physical layer of a type body collecting column specs. *)
let columns_of_body ~root_tag ~card body =
  let out = ref [] in
  let emit spec = out := spec :: !out in
  let rec walk ~nullable ~prefix ~count t =
    match t with
    | Xtype.Empty | Xtype.Ref _ -> ()
    | Xtype.Scalar (kind, st) ->
        emit
          (scalar_spec
             ~name:(Naming.data_col prefix ~root_tag)
             ~nullable ~count kind st)
    | Xtype.Choice ts when all_scalars ts ->
        let width = max 1 (scalar_choice_width ts) in
        emit
          (scalar_spec
             ~name:(Naming.data_col prefix ~root_tag)
             ~nullable ~count Xtype.String_t
             (Some { Xtype.width; s_min = None; s_max = None; distinct = None }))
    | Xtype.Attr (n, content) -> walk ~nullable ~prefix:(prefix @ [ n ]) ~count content
    | Xtype.Elem e -> (
        let count = Option.value ~default:count e.ann.count in
        match e.label with
        | Label.Name n ->
            walk ~nullable ~prefix:(prefix @ [ n ]) ~count e.content
        | Label.Any | Label.Any_except _ ->
            let n_labels = List.length e.ann.labels in
            emit
              {
                s_name = Naming.tilde_col prefix ~root_tag;
                s_type = Rtype.R_string (Some 24);
                s_nullable = nullable;
                s_count = count;
                s_distinct =
                  (if n_labels > 0 then Some (float_of_int n_labels) else None);
                s_vmin = None;
                s_vmax = None;
                s_width = 16.;
              };
            let value_prefix = prefix @ [ "tilde" ] in
            (match e.content with
            | Xtype.Scalar (kind, st) ->
                emit
                  (scalar_spec
                     ~name:(Naming.tilde_data_col prefix ~root_tag)
                     ~nullable ~count kind st)
            | content -> walk ~nullable ~prefix:value_prefix ~count content))
    | Xtype.Seq ts -> List.iter (walk ~nullable ~prefix ~count) ts
    | Xtype.Choice _ ->
        (* a union of type names: contributes no columns *)
        ()
    | Xtype.Rep (u, o) ->
        if o.Xtype.lo = 0 && o.Xtype.hi = Xtype.Bounded 1 then
          walk ~nullable:true ~prefix ~count u
        else (* multi-occurrence: type names only, no columns *) ()
  in
  (match body with
  | Xtype.Elem e ->
      let count = Option.value ~default:card e.ann.count in
      (match e.label with
      | Label.Name _ -> walk ~nullable:false ~prefix:[] ~count e.content
      | Label.Any | Label.Any_except _ ->
          (* wildcard root element: tag column plus content *)
          emit
            {
              s_name = Naming.tilde_col [] ~root_tag;
              s_type = Rtype.R_string (Some 24);
              s_nullable = false;
              s_count = count;
              s_distinct =
                (match e.ann.labels with
                | [] -> None
                | ls -> Some (float_of_int (List.length ls)));
              s_vmin = None;
              s_vmax = None;
              s_width = 16.;
            };
          (match e.content with
          | Xtype.Scalar (kind, st) ->
              emit
                (scalar_spec
                   ~name:(Naming.tilde_data_col [] ~root_tag)
                   ~nullable:false ~count kind st)
          | content -> walk ~nullable:false ~prefix:[ "tilde" ] ~count content))
  | body -> walk ~nullable:false ~prefix:[] ~count:card body);
  List.rev !out

let clamp01 x = Float.max 0. (Float.min 1. x)

let column_of_spec ~card spec =
  let present = clamp01 (spec.s_count /. Float.max 1. card) in
  let null_frac = if spec.s_nullable then clamp01 (1. -. present) else 0. in
  let distinct =
    let d =
      match spec.s_distinct with
      | Some d -> d
      | None -> Float.max 1. spec.s_count
    in
    Float.max 1. (Float.min d (Float.max 1. spec.s_count))
  in
  {
    Rschema.cname = spec.s_name;
    ctype = spec.s_type;
    nullable = spec.s_nullable;
    stats =
      {
        Rschema.distinct;
        null_frac;
        v_min = spec.s_vmin;
        v_max = spec.s_vmax;
        (* fixed-width storage, as in the paper's era: a CHAR(n) column
           occupies n bytes whether or not the row has a value — this is
           exactly why inlining a union "makes the Show relation wider
           than necessary" (Section 2) *)
        avg_width = Float.max 1. spec.s_width;
      };
  }

let dedupe_names specs =
  let seen = Hashtbl.create 16 in
  List.map
    (fun spec ->
      match Hashtbl.find_opt seen spec.s_name with
      | None ->
          Hashtbl.replace seen spec.s_name 1;
          spec
      | Some n ->
          Hashtbl.replace seen spec.s_name (n + 1);
          { spec with s_name = Printf.sprintf "%s_%d" spec.s_name (n + 1) })
    specs

let table_of_type ?(order_columns = false) schema ty =
  let body = Xschema.find schema ty in
  let card =
    Option.value ~default:default_card (Rewrite.card_of_def schema ty)
  in
  let card = Float.max 1. card in
  let root_tag =
    match body with
    | Xtype.Elem e -> Label.column_name e.Xtype.label
    | _ -> ""
  in
  let key = Naming.key_col ty in
  let key_column =
    {
      Rschema.cname = key;
      ctype = Rtype.R_int;
      nullable = false;
      stats =
        {
          Rschema.distinct = card;
          null_frac = 0.;
          v_min = Some 0;
          v_max = Some (int_of_float card);
          avg_width = 4.;
        };
    }
  in
  let order_column =
    if order_columns then
      [
        {
          Rschema.cname = Naming.order_col;
          ctype = Rtype.R_int;
          nullable = false;
          stats =
            {
              Rschema.distinct = card;
              null_frac = 0.;
              v_min = None;
              v_max = None;
              avg_width = 4.;
            };
        };
      ]
    else []
  in
  let data_columns =
    columns_of_body ~root_tag ~card body
    |> dedupe_names
    |> List.map (column_of_spec ~card)
  in
  let parents = real_parents schema ty in
  let multi = List.length parents > 1 in
  let fk_columns =
    List.map
      (fun parent ->
        let parent_card =
          Option.value ~default:default_card (Rewrite.card_of_def schema parent)
        in
        {
          Rschema.cname = Naming.fk_col parent;
          ctype = Rtype.R_int;
          nullable = multi;
          stats =
            {
              Rschema.distinct = Float.max 1. (Float.min parent_card card);
              null_frac =
                (if multi then
                   1. -. (1. /. float_of_int (List.length parents))
                 else 0.);
              v_min = None;
              v_max = None;
              avg_width = 4.;
            };
        })
      parents
  in
  {
    Rschema.tname = ty;
    key;
    columns = (key_column :: order_column) @ data_columns @ fk_columns;
    fks = List.map (fun p -> (Naming.fk_col p, p)) parents;
    indexed = key :: List.map Naming.fk_col parents;
    card;
  }

let of_pschema ?(order_columns = false) schema =
  match Pschema.check schema with
  | Error vs ->
      Error (List.map (Format.asprintf "%a" Pschema.pp_violation) vs)
  | Ok () ->
      let live = Xschema.reachable schema in
      let concrete =
        List.filter (fun ty -> not (is_transparent schema ty)) live
      in
      let tables = List.map (table_of_type ~order_columns schema) concrete in
      let catalog = { Rschema.tables } in
      (match Rschema.validate catalog with
      | Ok () ->
          Ok
            {
              schema;
              catalog;
              transparent =
                List.filter (fun ty -> is_transparent schema ty) live;
              ordered = order_columns;
            }
      | Error es -> Error es)

(* ------------------------------------------------------------------ *)
(* structural fingerprints                                             *)
(* ------------------------------------------------------------------ *)

(* Name-independent serialization of one table, complete enough that
   two tables with equal shapes are costed identically by the
   optimizer: every column with its full statistics (hex-printed floats
   so the serialization is exact), nullability, index membership and
   the table cardinality.  Key and foreign-key columns are anonymized
   ([#key]/[#fk]) because their names embed type names, and fresh type
   names differ between transformation orders that reach the same
   configuration. *)
let table_shape (t : Rschema.table) =
  let stats_sig (s : Rschema.col_stats) =
    Printf.sprintf "%h,%h,%s,%s,%h" s.Rschema.distinct s.Rschema.null_frac
      (match s.Rschema.v_min with Some v -> string_of_int v | None -> "")
      (match s.Rschema.v_max with Some v -> string_of_int v | None -> "")
      s.Rschema.avg_width
  in
  let col_sig (c : Rschema.column) =
    let name =
      if String.equal c.Rschema.cname t.Rschema.key then "#key"
      else if List.mem_assoc c.Rschema.cname t.Rschema.fks then "#fk"
      else c.Rschema.cname
    in
    Printf.sprintf "%s:%s%s{%s}%s" name
      (Rtype.to_sql c.Rschema.ctype)
      (if c.Rschema.nullable then "?" else "")
      (stats_sig c.Rschema.stats)
      (if Rschema.has_index t c.Rschema.cname then "!" else "")
  in
  Printf.sprintf "[%s|%h]"
    (String.concat ";" (List.sort String.compare (List.map col_sig t.Rschema.columns)))
    t.Rschema.card

let table_fingerprints (cat : Rschema.t) =
  let shapes = Hashtbl.create (2 * List.length cat.Rschema.tables) in
  List.iter
    (fun (t : Rschema.table) ->
      Hashtbl.replace shapes t.Rschema.tname (table_shape t))
    cat.Rschema.tables;
  (* one Weisfeiler–Leman round: a table's fingerprint includes its
     parents' shapes, so the join topology between tables is part of
     the fingerprint and structurally symmetric tables hanging off
     different parents stay distinct *)
  List.map
    (fun (t : Rschema.table) ->
      let parents =
        List.filter_map (fun (_, p) -> Hashtbl.find_opt shapes p) t.Rschema.fks
      in
      ( t.Rschema.tname,
        Hashtbl.find shapes t.Rschema.tname
        ^ "<"
        ^ String.concat "," (List.sort String.compare parents)
        ^ ">" ))
    cat.Rschema.tables

let fingerprint_index cat =
  let index = Hashtbl.create 64 in
  List.iter (fun (name, fp) -> Hashtbl.replace index name fp) (table_fingerprints cat);
  index

let catalog_fingerprint cat =
  String.concat ";"
    (List.sort String.compare (List.map snd (table_fingerprints cat)))

let provenance m =
  List.map
    (fun ty ->
      if is_transparent m.schema ty then (ty, real_parents m.schema ty)
      else (ty, [ ty ]))
    (Xschema.reachable m.schema)

let card m ty = (Rschema.table m.catalog ty).Rschema.card

let table_columns m ty =
  List.map
    (fun (c : Rschema.column) -> c.Rschema.cname)
    (Rschema.table m.catalog ty).Rschema.columns
