(** Translation of XQuery FLWR queries to relational SPJ blocks under a
    mapping (the Query translation half of Figure 7's Query/Schema
    translation module).

    A query becomes a set of blocks whose costs add up:

    - the {b main block} joins the tables reached by the FOR bindings
      (each binding's foreign-key chain from its anchor), applies the
      WHERE predicates, and projects the scalar return paths;
    - every {b published subtree} ([RETURN $v], or a return path landing
      on a non-scalar element) contributes its own table's columns to
      the main block plus one block per descendant table (outer-union
      decomposition, as relational XML publishers do);
    - every {b nested FLWR} in the return clause becomes its own block
      carrying the outer context's joins and predicates;
    - a binding or path that resolves to several storage alternatives
      (horizontally partitioned types, choices) multiplies the blocks —
      the union of per-partition queries of Section 5.4;
    - a path step matched by a {b wildcard} element turns into an
      equality predicate on the tag column plus a use of the value
      column ([Π_data σ_tilde='nyt' reviews]).

    A predicate path that does not exist in a partition kills that
    partition's blocks (the selection is unsatisfiable there); a return
    path that does not exist is simply omitted. *)

open Legodb_optimizer

exception Untranslatable of string
(** Raised when a query step cannot be resolved at all (e.g. a path
    through no known element, or a comparison of whole subtrees). *)

val translate : Mapping.t -> Legodb_xquery.Xq_ast.t -> Logical.query
(** @raise Untranslatable *)

val translate_workload :
  Mapping.t -> Legodb_xquery.Workload.t -> (Logical.query * float) list

val query_tables : Logical.query -> string list
(** The distinct tables the query's SPJ blocks reference, sorted.  This
    is the query's read set: its optimizer cost depends only on these
    tables (their statistics and indexes), which is what lets the
    incremental cost engine reuse a cached cost when none of them
    changed. *)

val translate_with_tables :
  Mapping.t -> Legodb_xquery.Xq_ast.t -> Logical.query * string list
(** {!translate} paired with {!query_tables} of the result.
    @raise Untranslatable *)

val equality_columns : Logical.query list -> (string * string) list
(** The (table, column) pairs compared to constants anywhere in the
    queries — the columns a tuned installation would index (the paper's
    "in the presence of appropriate indexes"). *)

val max_alternatives : int
(** Bound on the cross-product of storage alternatives explored per
    query (safety valve; far above anything the workloads need). *)

val translate_update :
  Mapping.t -> Legodb_xquery.Xq_ast.update -> Logical.update
(** Translate an update statement: an INSERT becomes one insert per
    table of the target element's subtree (averaged over storage
    alternatives, since a new element lands in exactly one partition),
    weighted by the average instances-per-parent from the statistics;
    DELETE and SET pair each write with the SPJ block locating the
    affected rows, deletes cascading over the subtree's tables.
    @raise Untranslatable *)

val translate_updates :
  Mapping.t ->
  (Legodb_xquery.Xq_ast.update * float) list ->
  (Logical.update * float) list

val update_tables : Logical.update -> string list
(** The distinct tables the update writes or reads (written tables plus
    the relations of every locating block), sorted — the invalidation
    set for cached write costs. *)

val translate_update_with_tables :
  Mapping.t -> Legodb_xquery.Xq_ast.update -> Logical.update * string list
(** {!translate_update} paired with {!update_tables} of the result.
    @raise Untranslatable *)
