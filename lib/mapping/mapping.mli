(** The fixed mapping [rel(ps)] from p-schemas to relational catalogs
    (Section 3.2, Table 1), including statistics translation.

    One table per reachable, {e non-transparent} type name; a
    transparent type (one whose body mentions only other type names,
    e.g. [type Show = (Show_Part1 | Show_Part2)] after union
    distribution) stores no data and is collapsed: its children attach
    directly to its nearest data-bearing ancestors, which is exactly
    the flat table set shown in Figure 4(c).

    Every table gets a key column [T_id]; a foreign key [parent_P] per
    (nearest non-transparent) parent type [P]; one column per scalar in
    the physical layer of the type's body (nullable when it sits under
    an optional); and for each wildcard element a tag column plus a
    value column.  Keys and foreign keys are indexed. *)

open Legodb_xtype
open Legodb_relational

type t = {
  schema : Xschema.t;  (** the p-schema this catalog was derived from *)
  catalog : Rschema.t;
  transparent : string list;  (** collapsed type names *)
  ordered : bool;  (** tables carry a {!Naming.order_col} column *)
}

val default_card : float
(** Table cardinality assumed when no statistics are annotated. *)

val of_pschema : ?order_columns:bool -> Xschema.t -> (t, string list) result
(** Fails with the stratification violations if the schema is not a
    p-schema, or with catalog-consistency errors (which indicate a bug
    rather than a user error).

    With [~order_columns:true] (default false, matching the paper)
    every table additionally stores the element's global document
    order, which lets {!Publish} reconstruct documents exactly even
    when a type is horizontally partitioned — at the cost of 4 bytes
    per row and slightly wider scans. *)

val is_transparent : Xschema.t -> string -> bool
val real_parents : Xschema.t -> string -> string list

val table_shape : Rschema.table -> string
(** Name-independent structural serialization of one table: every
    column with its complete statistics (floats hex-printed, so the
    serialization is exact), nullability, index membership, and the
    table cardinality.  Key and foreign-key columns are anonymized
    because their names embed (possibly fresh) type names.  Two tables
    with equal shapes produce identical optimizer estimates. *)

val table_fingerprints : Rschema.t -> (string * string) list
(** [(type name, fingerprint)] for every table of the catalog.  A
    fingerprint is the table's {!table_shape} extended with one
    Weisfeiler–Leman round over its parents' shapes, so the join
    topology is part of the fingerprint.  This is the invalidation key
    of the incremental cost engine: a query's cached cost is reusable
    exactly when the fingerprints of the tables it touches are
    unchanged. *)

val fingerprint_index : Rschema.t -> (string, string) Hashtbl.t
(** {!table_fingerprints} as a hashtable keyed by type name — built
    once per costing pass so per-statement key construction does O(1)
    lookups per touched table instead of an assoc-list walk. *)

val catalog_fingerprint : Rschema.t -> string
(** Order-independent fingerprint of the whole catalog (the sorted
    table fingerprints joined); configurations reached by different
    transformation orders compare equal.  Used by {!Search.beam} to
    deduplicate configurations. *)

val provenance : t -> (string * string list) list
(** For every reachable type name, the tables where its content lives:
    a concrete type maps to its own table; a transparent (collapsed)
    type maps to the nearest data-bearing ancestors its children
    attached to. *)

val card : t -> string -> float
(** Cardinality of a type's table.  @raise Not_found for unknown or
    transparent types. *)

val root_tag : Xschema.t -> string -> string option
(** The tag of a definition's root element, when its body is a single
    element ([Label.column_name] for wildcard roots). *)

val table_columns : t -> string -> string list
(** Column names of a type's table, in order. *)
