open Legodb_xquery
open Legodb_optimizer
open Legodb_relational

exception Untranslatable of string

let max_alternatives = 256

(* ------------------------------------------------------------------ *)
(* block-building context                                              *)
(* ------------------------------------------------------------------ *)

type bctx = {
  rels : Logical.relation list;  (* reverse order *)
  preds : Logical.pred list;  (* reverse order *)
  cache : ((string * string list) * (string * string)) list;
      (* (anchor alias, hops) -> (alias, type) of the chain's end *)
  counter : int;
}

let empty_bctx = { rels = []; preds = []; cache = []; counter = 0 }

let add_rel bctx alias table =
  { bctx with rels = { Logical.alias; table } :: bctx.rels }

let add_pred bctx p =
  if List.exists (fun q -> q = p) bctx.preds then bctx
  else { bctx with preds = p :: bctx.preds }

(* Realize a chain of type hops starting from an optional anchor
   (alias, type); returns the (alias, type) of the chain's end.  Chains
   are cached per (anchor, hops-prefix) so the same path is joined only
   once per block. *)
let realize_chain bctx ~anchor ~hint hops =
  let anchor_alias = match anchor with Some (a, _) -> a | None -> "" in
  let rec go bctx parent done_hops remaining =
    match remaining with
    | [] -> (
        match parent with
        | Some at -> (bctx, at)
        | None -> invalid_arg "realize_chain: empty chain with no anchor")
    | ty :: rest -> (
        let key = (anchor_alias, done_hops @ [ ty ]) in
        match List.assoc_opt key bctx.cache with
        | Some at -> go bctx (Some at) (done_hops @ [ ty ]) rest
        | None ->
            let taken a =
              List.exists
                (fun (r : Logical.relation) -> String.equal r.alias a)
                bctx.rels
            in
            let alias =
              if rest = [] && hint <> "" && not (taken hint) then hint
              else
                Printf.sprintf "%s_%s%d"
                  (if hint = "" then "t" else hint)
                  ty bctx.counter
            in
            let bctx = { bctx with counter = bctx.counter + 1 } in
            let bctx = add_rel bctx alias ty in
            let bctx =
              match parent with
              | None -> bctx
              | Some (palias, pty) ->
                  add_pred bctx
                    (Logical.eq_col
                       (alias, Naming.fk_col pty)
                       (palias, Naming.key_col pty))
            in
            let bctx =
              { bctx with cache = (key, (alias, ty)) :: bctx.cache }
            in
            go bctx (Some (alias, ty)) (done_hops @ [ ty ]) rest)
  in
  go bctx anchor [] hops

(* ------------------------------------------------------------------ *)
(* variable resolution                                                 *)
(* ------------------------------------------------------------------ *)

type vkind =
  | V_elem of Navigate.place
  | V_scalar of string  (* column name; table is the alias's *)

type vres = { v_alias : string; v_ty : string; v_kind : vkind }


let lookup_var env v =
  match List.assoc_opt v env with
  | Some r -> r
  | None -> raise (Untranslatable (Printf.sprintf "unbound variable $%s" v))

(* Resolve a document-rooted path to storage targets. *)
let resolve_doc m path =
  match path with
  | [] -> raise (Untranslatable "empty document path")
  | first :: rest ->
      List.concat_map
        (function
          | Navigate.F_elem { hops; place } ->
              List.map
                (function
                  | Navigate.F_elem f ->
                      Navigate.F_elem { f with hops = hops @ f.hops }
                  | Navigate.F_column f ->
                      Navigate.F_column { f with hops = hops @ f.hops }
                  | Navigate.F_wild f ->
                      Navigate.F_wild { f with hops = hops @ f.hops })
                (Navigate.navigate_path m place rest)
          | found -> if rest = [] then [ found ] else [])
        (Navigate.enter_root m first)

let resolve_from m env (v, path) =
  let r = lookup_var env v in
  match r.v_kind with
  | V_elem place -> (r, Navigate.navigate_path m place path)
  | V_scalar _ ->
      if path = [] then (r, [])
      else
        raise
          (Untranslatable
             (Printf.sprintf "path below scalar variable $%s" v))

(* Turn one [found] into context additions and a var resolution. *)
let realize_found bctx ~anchor ~hint found =
  match found with
  | Navigate.F_elem { hops; place } ->
      let bctx, (alias, ty) = realize_chain bctx ~anchor ~hint hops in
      ( bctx,
        { v_alias = alias; v_ty = ty; v_kind = V_elem place } )
  | Navigate.F_column { hops; ty = _; column } ->
      let bctx, (alias, ty) = realize_chain bctx ~anchor ~hint hops in
      (bctx, { v_alias = alias; v_ty = ty; v_kind = V_scalar column })
  | Navigate.F_wild { hops; ty = _; tilde; data; tag } ->
      let bctx, (alias, ty) = realize_chain bctx ~anchor ~hint hops in
      (* the wildcard step constrains the tag column *)
      let bctx =
        add_pred bctx
          (Logical.eq_const (alias, tilde) (Rtype.V_string tag))
      in
      (bctx, { v_alias = alias; v_ty = ty; v_kind = V_scalar data })

let cap_alternatives what l =
  if List.length l > max_alternatives then
    raise
      (Untranslatable
         (Printf.sprintf "too many storage alternatives for %s" what))
  else l

(* All (env, bctx) alternatives after resolving the bindings. *)
let resolve_bindings m (env, bctx) bindings =
  List.fold_left
    (fun alts (v, source) ->
      cap_alternatives ("binding $" ^ v)
        (List.concat_map
           (fun (env, bctx) ->
             let anchor, founds =
               match source with
               | Xq_ast.Doc path -> (None, resolve_doc m path)
               | Xq_ast.Var_path (w, path) ->
                   let r, founds = resolve_from m env (w, path) in
                   (Some (r.v_alias, r.v_ty), founds)
             in
             List.map
               (fun found ->
                 let bctx, res = realize_found bctx ~anchor ~hint:v found in
                 ((v, res) :: env, bctx))
               founds)
           alts))
    [ (env, bctx) ]
    bindings

(* ------------------------------------------------------------------ *)
(* predicates                                                          *)
(* ------------------------------------------------------------------ *)

(* Column targets of a path used as a value (predicate side or scalar
   return).  Each target may extend the context. *)
let value_targets m bctx env (v, path) ~hint =
  let r, founds =
    if path = [] then (lookup_var env v, [])
    else resolve_from m env (v, path)
  in
  match (r.v_kind, path) with
  | V_scalar col, [] -> [ (bctx, (r.v_alias, col)) ]
  | V_elem _, [] -> []
  | _, _ ->
      List.filter_map
        (fun found ->
          match found with
          | Navigate.F_column _ | Navigate.F_wild _ ->
              let anchor = Some (r.v_alias, r.v_ty) in
              let bctx, res = realize_found bctx ~anchor ~hint found in
              (match res.v_kind with
              | V_scalar col -> Some (bctx, (res.v_alias, col))
              | V_elem _ -> None)
          | Navigate.F_elem _ -> None)
        founds

let const_value = function
  | Xq_ast.C_int n -> Rtype.V_int n
  | Xq_ast.C_string s -> Rtype.V_string s

let apply_pred m alts (p : Xq_ast.pred) =
  cap_alternatives "predicate"
    (List.concat_map
       (fun (env, bctx) ->
         let lhs_targets =
           value_targets m bctx env p.left ~hint:(fst p.left ^ "_p")
         in
         List.concat_map
           (fun (bctx, lcol) ->
             match p.right with
             | Xq_ast.O_const c ->
                 [ (env, add_pred bctx (Logical.eq_const lcol (const_value c))) ]
             | Xq_ast.O_path (w, path) ->
                 List.map
                   (fun (bctx, rcol) ->
                     (env, add_pred bctx (Logical.eq_col lcol rcol)))
                   (value_targets m bctx env (w, path) ~hint:(w ^ "_p")))
           lhs_targets)
       alts)

(* ------------------------------------------------------------------ *)
(* return clause                                                       *)
(* ------------------------------------------------------------------ *)

let table_out m alias ty =
  List.map (fun c -> (alias, c)) (Mapping.table_columns m ty)

let finish_block bctx out =
  {
    Logical.relations = List.rev bctx.rels;
    preds = List.rev bctx.preds;
    out;
  }

(* Publish the subtree rooted at (alias, ty, place): the element's own
   columns go into the main projection; each descendant table becomes
   an extra block. *)
let publish_blocks m bctx alias ty place =
  let own = table_out m alias ty in
  let blocks =
    List.map
      (fun hops ->
        let bctx, (dalias, dty) =
          realize_chain bctx ~anchor:(Some (alias, ty)) ~hint:"" hops
        in
        finish_block bctx (table_out m dalias dty))
      (Navigate.descendant_tables m place)
  in
  (own, blocks)

let rec rets_blocks m env bctx rets : Logical.block list =
  let rec flatten r =
    match r with Xq_ast.R_elem (_, rs) -> List.concat_map flatten rs | r -> [ r ]
  in
  let rets = List.concat_map flatten rets in
  let process (bctx, out, extra) ret =
    match ret with
    | Xq_ast.R_elem _ -> (bctx, out, extra) (* flattened away *)
    | Xq_ast.R_var v -> (
        let r = lookup_var env v in
        match r.v_kind with
        | V_scalar col -> (bctx, out @ [ (r.v_alias, col) ], extra)
        | V_elem place ->
            let own, blocks = publish_blocks m bctx r.v_alias r.v_ty place in
            (bctx, out @ own, extra @ blocks))
    | Xq_ast.R_path (v, path) ->
        let r, founds = resolve_from m env (v, path) in
        List.fold_left
          (fun (bctx, out, extra) found ->
            match found with
            | Navigate.F_column _ | Navigate.F_wild _ ->
                let bctx, res =
                  realize_found bctx
                    ~anchor:(Some (r.v_alias, r.v_ty))
                    ~hint:(v ^ "_r") found
                in
                (match res.v_kind with
                | V_scalar col -> (bctx, out @ [ (res.v_alias, col) ], extra)
                | V_elem _ -> (bctx, out, extra))
            | Navigate.F_elem _ ->
                (* a non-scalar element in return position: publish it *)
                let bctx, res =
                  realize_found bctx
                    ~anchor:(Some (r.v_alias, r.v_ty))
                    ~hint:(v ^ "_r") found
                in
                (match res.v_kind with
                | V_elem place ->
                    let own, blocks =
                      publish_blocks m bctx res.v_alias res.v_ty place
                    in
                    (bctx, out @ own, extra @ blocks)
                | V_scalar col -> (bctx, out @ [ (res.v_alias, col) ], extra)))
          (bctx, out, extra) founds
    | Xq_ast.R_nested f ->
        let alts = resolve_bindings m (env, bctx) f.bindings in
        let alts = List.fold_left (apply_pred m) alts f.where in
        let blocks =
          List.concat_map
            (fun (env, bctx) -> rets_blocks m env bctx f.return)
            alts
        in
        (bctx, out, extra @ blocks)
  in
  let bctx, out, extra = List.fold_left process (bctx, [], []) rets in
  if out = [] then extra else finish_block bctx out :: extra

(* ------------------------------------------------------------------ *)
(* top level                                                           *)
(* ------------------------------------------------------------------ *)

let translate m (q : Xq_ast.t) =
  (match Xq_ast.check q with
  | Ok () -> ()
  | Error es -> raise (Untranslatable (String.concat "; " es)));
  let alts = resolve_bindings m ([], empty_bctx) q.body.bindings in
  if alts = [] then
    raise
      (Untranslatable
         (Printf.sprintf "no storage location matches the bindings of %s" q.name));
  let alts = List.fold_left (apply_pred m) alts q.body.where in
  let blocks =
    List.concat_map (fun (env, bctx) -> rets_blocks m env bctx q.body.return) alts
  in
  { Logical.qname = q.name; blocks }

let translate_workload m w =
  List.map (fun (q, weight) -> (translate m q, weight)) w

module TSet = Set.Make (String)

let block_tables acc (b : Logical.block) =
  List.fold_left
    (fun acc (r : Logical.relation) -> TSet.add r.Logical.table acc)
    acc b.Logical.relations

let query_tables (q : Logical.query) =
  TSet.elements (List.fold_left block_tables TSet.empty q.Logical.blocks)

let translate_with_tables m q =
  let lq = translate m q in
  (lq, query_tables lq)

let equality_columns queries =
  let add acc (table, col) =
    if List.mem (table, col) acc then acc else (table, col) :: acc
  in
  List.fold_left
    (fun acc (q : Logical.query) ->
      List.fold_left
        (fun acc (b : Logical.block) ->
          List.fold_left
            (fun acc (p : Logical.pred) ->
              match (p.cmp, p.rhs) with
              | Logical.C_eq, Logical.O_const _ ->
                  let alias = fst p.lhs in
                  (match
                     List.find_opt
                       (fun (r : Logical.relation) ->
                         String.equal r.alias alias)
                       b.relations
                   with
                  | Some r -> add acc (r.table, snd p.lhs)
                  | None -> acc)
              | _ -> acc)
            acc b.preds)
        acc q.blocks)
    [] queries
  |> List.rev

(* ------------------------------------------------------------------ *)
(* update translation (the future-work extension of Section 7)         *)
(* ------------------------------------------------------------------ *)

let last_of chain = List.nth chain (List.length chain - 1)

(* blocks locating the element a DELETE/SET affects, one per storage
   alternative, projecting the target table's key *)
let locate_alternatives m (body : Xq_ast.flwr) var =
  let alts = resolve_bindings m ([], empty_bctx) body.bindings in
  let alts = List.fold_left (apply_pred m) alts body.where in
  List.filter_map
    (fun (env, bctx) ->
      match List.assoc_opt var env with
      | Some r ->
          Some
            ( finish_block bctx [ (r.v_alias, Naming.key_col r.v_ty) ],
              r.v_alias,
              r.v_ty )
      | None -> None)
    alts

let cascade m ty place kind locate =
  List.map
    (fun chain ->
      let dty = last_of chain in
      {
        Logical.w_table = dty;
        w_kind = kind;
        w_locate = locate;
        w_per_row = Mapping.card m dty /. Float.max 1. (Mapping.card m ty);
      })
    (Navigate.descendant_tables m place)

let translate_update m (u : Xq_ast.update) : Logical.update =
  (match Xq_ast.check_update u with
  | Ok () -> ()
  | Error es -> raise (Untranslatable (String.concat "; " es)));
  match u with
  | Xq_ast.U_insert { name; target } ->
      let elems =
        List.filter_map
          (function
            | Navigate.F_elem { hops; place } when hops <> [] ->
                Some (last_of hops, place)
            | _ -> None)
          (resolve_doc m target)
      in
      if elems = [] then
        raise (Untranslatable (Printf.sprintf "%s: no element storage target" name));
      (* an insert lands in exactly one of the storage alternatives:
         average the cost over them *)
      let n = float_of_int (List.length elems) in
      let writes =
        List.concat_map
          (fun (ty, place) ->
            {
              Logical.w_table = ty;
              w_kind = Logical.W_insert;
              w_locate = None;
              w_per_row = 1. /. n;
            }
            :: List.map
                 (fun w -> { w with Logical.w_per_row = w.Logical.w_per_row /. n })
                 (cascade m ty place Logical.W_insert None))
          elems
      in
      { Logical.uname = name; writes }
  | Xq_ast.U_delete { name; body; target } ->
      let alts = locate_alternatives m body target in
      if alts = [] then
        raise (Untranslatable (Printf.sprintf "%s: nothing to delete" name));
      let writes =
        List.concat_map
          (fun (block, _, ty) ->
            let place = { Navigate.ty; prefix = [] } in
            {
              Logical.w_table = ty;
              w_kind = Logical.W_delete;
              w_locate = Some block;
              w_per_row = 1.;
            }
            :: cascade m ty place Logical.W_delete (Some block))
          alts
      in
      { Logical.uname = name; writes }
  | Xq_ast.U_set { name; body; target = v, path; value = _ } ->
      let alts = resolve_bindings m ([], empty_bctx) body.bindings in
      let alts = List.fold_left (apply_pred m) alts body.where in
      let writes =
        List.concat_map
          (fun (env, bctx) ->
            List.map
              (fun (bctx, (alias, col)) ->
                let table =
                  match
                    List.find_opt
                      (fun (r : Logical.relation) -> String.equal r.alias alias)
                      bctx.rels
                  with
                  | Some r -> r.Logical.table
                  | None -> raise (Untranslatable (name ^ ": lost the target table"))
                in
                {
                  Logical.w_table = table;
                  w_kind = Logical.W_update;
                  w_locate = Some (finish_block bctx [ (alias, col) ]);
                  w_per_row = 1.;
                })
              (value_targets m bctx env (v, path) ~hint:(v ^ "_u")))
          alts
      in
      if writes = [] then
        raise (Untranslatable (Printf.sprintf "%s: target path not found" name));
      { Logical.uname = name; writes }

let translate_updates m us =
  List.map (fun (u, weight) -> (translate_update m u, weight)) us

let update_tables (u : Logical.update) =
  TSet.elements
    (List.fold_left
       (fun acc (w : Logical.write) ->
         let acc = TSet.add w.Logical.w_table acc in
         match w.Logical.w_locate with
         | Some b -> block_tables acc b
         | None -> acc)
       TSet.empty u.Logical.writes)

let translate_update_with_tables m u =
  let lu = translate_update m u in
  (lu, update_tables lu)
