open Legodb_relational

type col = string * string
type operand = O_const of Rtype.value | O_col of col
type cmp = C_eq | C_ne | C_lt | C_le | C_gt | C_ge
type pred = { cmp : cmp; lhs : col; rhs : operand }
type relation = { alias : string; table : string }

type block = {
  relations : relation list;
  preds : pred list;
  out : col list;
}

type query = { qname : string; blocks : block list }

let eq_col lhs rhs = { cmp = C_eq; lhs; rhs = O_col rhs }
let eq_const lhs v = { cmp = C_eq; lhs; rhs = O_const v }

let is_join_pred p =
  match p.rhs with
  | O_col (ra, _) -> not (String.equal (fst p.lhs) ra)
  | O_const _ -> false

let pred_aliases p =
  match p.rhs with
  | O_col (ra, _) -> [ fst p.lhs; ra ]
  | O_const _ -> [ fst p.lhs ]

let local_preds preds alias =
  List.filter
    (fun p ->
      match pred_aliases p with
      | [ a ] -> String.equal a alias
      | [ a; b ] -> String.equal a alias && String.equal b alias
      | _ -> false)
    preds

let block_wellformed cat block =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let aliases = List.map (fun r -> r.alias) block.relations in
  if List.length (List.sort_uniq String.compare aliases) <> List.length aliases
  then err "duplicate aliases";
  let resolve (alias, column) =
    match List.find_opt (fun r -> String.equal r.alias alias) block.relations with
    | None -> err "unknown alias %s" alias
    | Some r -> (
        match Rschema.find_table cat r.table with
        | None -> err "unknown table %s" r.table
        | Some tbl ->
            if Rschema.find_column tbl column = None then
              err "no column %s.%s" r.table column)
  in
  List.iter
    (fun p ->
      resolve p.lhs;
      match p.rhs with O_col c -> resolve c | O_const _ -> ())
    block.preds;
  List.iter resolve block.out;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let to_sql block =
  let operand = function
    | O_const (Rtype.V_int n) -> Sql.Int n
    | O_const (Rtype.V_string s) -> Sql.Str s
    | O_const Rtype.V_null -> Sql.Str "NULL"
    | O_col (a, c) -> Sql.Col (Sql.col a c)
  in
  let op = function
    | C_eq -> Sql.Eq
    | C_ne -> Sql.Ne
    | C_lt -> Sql.Lt
    | C_le -> Sql.Le
    | C_gt -> Sql.Gt
    | C_ge -> Sql.Ge
  in
  {
    Sql.proj = List.map (fun (a, c) -> Sql.col a c) block.out;
    from =
      List.map (fun r -> { Sql.table = r.table; alias = r.alias }) block.relations;
    where =
      List.map
        (fun p ->
          { Sql.op = op p.cmp; lhs = Sql.Col (Sql.col (fst p.lhs) (snd p.lhs));
            rhs = operand p.rhs })
        block.preds;
  }

let query_to_sql q = List.map (fun b -> Sql.Select (to_sql b)) q.blocks

let pp_block fmt b = Sql.pp_select fmt (to_sql b)

let pp_query fmt q =
  Format.fprintf fmt "@[<v>-- %s@," q.qname;
  List.iteri
    (fun i b ->
      if i > 0 then Format.fprintf fmt "@,-- plus@,";
      Format.fprintf fmt "%a;" pp_block b)
    q.blocks;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* write operations (update workloads)                                 *)
(* ------------------------------------------------------------------ *)

type write_kind = W_insert | W_delete | W_update

type write = {
  w_table : string;
  w_kind : write_kind;
  w_locate : block option;
  w_per_row : float;
}

type update = { uname : string; writes : write list }

let pp_write fmt w =
  let kind =
    match w.w_kind with
    | W_insert -> "INSERT INTO"
    | W_delete -> "DELETE FROM"
    | W_update -> "UPDATE"
  in
  Format.fprintf fmt "%s %s (x%.2f%s)" kind w.w_table w.w_per_row
    (match w.w_locate with Some _ -> " per located row" | None -> "")

let pp_update fmt u =
  Format.fprintf fmt "@[<v>-- %s@," u.uname;
  List.iter (fun w -> Format.fprintf fmt "%a@," pp_write w) u.writes;
  Format.fprintf fmt "@]"
