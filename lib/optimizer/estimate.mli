(** Cardinality and selectivity estimation over catalog statistics. *)

open Legodb_relational

type env
(** Resolves aliases to catalog tables for one block.  Internally the
    alias -> table binding is an array indexed by alias id (the alias's
    position in the block's relation list) with a hashtable from name
    to id, so every lookup is O(1) instead of an assoc-list walk. *)

val env : Rschema.t -> Logical.block -> env
(** @raise Invalid_argument if an alias does not resolve. *)

val alias_id : env -> string -> int
(** The alias's position in the block's relation list.
    @raise Invalid_argument on an unknown alias. *)

val alias_count : env -> int
val table_of : env -> string -> Rschema.table

val table_at : env -> int -> Rschema.table
(** [table_at env i = table_of env alias] when [alias] has id [i]. *)

val column_of : env -> Logical.col -> Rschema.column

val row_floor : float
(** Lower bound every row estimate is clamped to (1.0). *)

val local_preds : env -> string -> Logical.pred list
(** {!Logical.local_preds} over the block's predicates. *)

val pred_selectivity : env -> Logical.pred -> float
(** Textbook System-R rules: equality with a constant selects
    [(1 - null_frac) / distinct]; ranges interpolate with min/max when
    known (1/3 otherwise); column-column equality selects
    [1 / max(d1, d2)] discounted by null fractions. *)

val base_rows : env -> string -> float
(** Rows of an alias after its local predicates (never below a small
    positive floor). *)

val subset_rows : env -> string list -> float
(** Estimated result cardinality of joining the given aliases with
    every block predicate whose aliases all fall inside the subset. *)

val output_width : env -> Logical.col list -> string list -> float
(** Average output row width of the projection (all columns of the
    listed aliases when the projection is empty). *)
