open Legodb_relational

(* Alias resolution is the innermost lookup of every estimate: the
   alias -> table binding is resolved once into arrays at [env]
   construction, and by-name lookups go through a hashtable instead of
   walking an assoc list per probe. *)
type env = {
  names : string array;  (* alias, in block-relation order *)
  tabs : Rschema.table array;  (* catalog table per alias id *)
  ids : (string, int) Hashtbl.t;  (* alias -> id *)
  preds : Logical.pred list;
}

let env cat (block : Logical.block) =
  let names =
    Array.of_list (List.map (fun (r : Logical.relation) -> r.alias) block.relations)
  in
  let tabs =
    Array.of_list
      (List.map
         (fun (r : Logical.relation) ->
           match Rschema.find_table cat r.table with
           | Some tbl -> tbl
           | None ->
               invalid_arg
                 (Printf.sprintf "Estimate.env: unknown table %s" r.table))
         block.relations)
  in
  let ids = Hashtbl.create (2 * Array.length names) in
  (* first binding wins, like the assoc list this replaces *)
  Array.iteri
    (fun i a -> if not (Hashtbl.mem ids a) then Hashtbl.add ids a i)
    names;
  { names; tabs; ids; preds = block.preds }

let alias_id env alias =
  match Hashtbl.find_opt env.ids alias with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Estimate: unknown alias %s" alias)

let table_of env alias = env.tabs.(alias_id env alias)
let table_at env i = env.tabs.(i)
let alias_count env = Array.length env.names
let column_of env (alias, cname) = Rschema.column (table_of env alias) cname

let row_floor = 1.

let range_fraction stats const ~upper =
  match (stats.Rschema.v_min, stats.Rschema.v_max, const) with
  | Some lo, Some hi, Rtype.V_int c when hi > lo ->
      let f = float_of_int (c - lo) /. float_of_int (hi - lo) in
      let f = Float.max 0. (Float.min 1. f) in
      if upper then f else 1. -. f
  | _ -> 1. /. 3.

let pred_selectivity env (p : Logical.pred) =
  let lhs = column_of env p.lhs in
  let nn = 1. -. lhs.stats.null_frac in
  match (p.cmp, p.rhs) with
  | Logical.C_eq, Logical.O_const _ -> nn /. Float.max 1. lhs.stats.distinct
  | Logical.C_ne, Logical.O_const _ ->
      nn *. (1. -. (1. /. Float.max 1. lhs.stats.distinct))
  | Logical.C_lt, Logical.O_const c | Logical.C_le, Logical.O_const c ->
      nn *. range_fraction lhs.stats c ~upper:true
  | Logical.C_gt, Logical.O_const c | Logical.C_ge, Logical.O_const c ->
      nn *. range_fraction lhs.stats c ~upper:false
  | Logical.C_eq, Logical.O_col rc ->
      let rhs = column_of env rc in
      nn
      *. (1. -. rhs.stats.null_frac)
      /. Float.max 1. (Float.max lhs.stats.distinct rhs.stats.distinct)
  | Logical.C_ne, Logical.O_col _ -> 0.9
  | (Logical.C_lt | Logical.C_le | Logical.C_gt | Logical.C_ge), Logical.O_col _
    ->
      1. /. 3.

let local_preds env alias = Logical.local_preds env.preds alias

let base_rows env alias =
  let tbl = table_of env alias in
  let sel =
    List.fold_left
      (fun s p -> s *. pred_selectivity env p)
      1. (local_preds env alias)
  in
  Float.max row_floor (tbl.card *. sel)

let subset_rows env aliases =
  let inside a = List.exists (String.equal a) aliases in
  let cards =
    List.fold_left
      (fun acc a -> acc *. Float.max row_floor (table_of env a).Rschema.card)
      1. aliases
  in
  let sel =
    List.fold_left
      (fun s p ->
        if List.for_all inside (Logical.pred_aliases p) then
          s *. pred_selectivity env p
        else s)
      1. env.preds
  in
  Float.max row_floor (cards *. sel)

let output_width env out aliases =
  match out with
  | [] ->
      List.fold_left
        (fun w a -> w +. Rschema.row_width (table_of env a))
        0. aliases
  | cols ->
      List.fold_left
        (fun w c -> w +. (column_of env c).stats.avg_width)
        0. cols
