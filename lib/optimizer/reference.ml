(* Frozen reference implementation of the plan-selection core, kept
   verbatim from before the mask-indexed rewrite of {!Optimizer}.

   This module is the executable specification of the optimizer: the
   fast path must return a bit-identical plan, row estimate, and cost
   for every block (the differential qcheck suite in
   test/test_optimizer_perf.ml and `bench optimizer_perf` both assert
   it).  Do not "improve" this file — any intentional change to
   costing semantics must land in {!Optimizer} and here in the same
   commit, or the differential suite will (correctly) fail.

   Everything below is the pre-rewrite code: alias *lists* with O(n)
   membership tests, per-candidate recursive [plan_signature]
   re-stringification, and the [List.init (2^n)] + sort mask
   enumeration. *)

open Legodb_relational

type result = { plan : Physical.plan; rows : float; cost : Cost.t }

let dp_limit = 10

(* ------------------------------------------------------------------ *)
(* access-path selection                                               *)
(* ------------------------------------------------------------------ *)

let local_preds (block : Logical.block) alias =
  List.filter
    (fun p ->
      match Logical.pred_aliases p with
      | [ a ] -> String.equal a alias
      | [ a; b ] -> String.equal a alias && String.equal b alias
      | _ -> false)
    block.preds

let table_pages params (tbl : Rschema.table) =
  Cost.pages params (tbl.card *. Rschema.row_width tbl)

(* Signature of a base-table access, for common-subexpression sharing
   across the blocks of one query: a table read with identical local
   predicates in a later block of the same query comes from the buffer
   pool (the multi-query-optimizing Volcano of [16] shares such common
   subexpressions), so it costs CPU but no I/O. *)
let access_signature (rel : Logical.relation) filters access =
  let pred_sig (p : Logical.pred) =
    let op =
      match p.cmp with
      | Logical.C_eq -> "="
      | Logical.C_ne -> "<>"
      | Logical.C_lt -> "<"
      | Logical.C_le -> "<="
      | Logical.C_gt -> ">"
      | Logical.C_ge -> ">="
    in
    let operand = function
      | Logical.O_const v -> Legodb_relational.Rtype.value_to_sql v
      | Logical.O_col (_, c) -> "col:" ^ c
    in
    snd p.lhs ^ op ^ operand p.rhs
  in
  let access_sig =
    match access with
    | Physical.Seq_scan -> "scan"
    | Physical.Index_probe { column } -> "probe:" ^ column
  in
  String.concat "|"
    (rel.table :: access_sig :: List.sort String.compare (List.map pred_sig filters))

(* Canonical, alias-free signature of a whole sub-plan, so identical
   join subtrees across blocks (e.g. the actor⋈played⋈director⋈directed
   core repeated per partition) are also recognized as shared. *)
let rec plan_signature plan =
  match plan with
  | Physical.Scan { rel; access; filters } ->
      access_signature rel filters access
  | Physical.Join { left; right; conds; extra; _ } ->
      let table_of =
        let map =
          List.map
            (fun (r : Logical.relation) -> (r.alias, r.table))
            (Physical.relations plan)
        in
        fun alias -> Option.value ~default:alias (List.assoc_opt alias map)
      in
      let cond_sig ((la, lc), (ra, rc)) =
        let a = table_of la ^ "." ^ lc and b = table_of ra ^ "." ^ rc in
        if a <= b then a ^ "=" ^ b else b ^ "=" ^ a
      in
      let extra_sig (p : Logical.pred) =
        table_of (fst p.lhs) ^ "." ^ snd p.lhs
      in
      let subs = List.sort compare [ plan_signature left; plan_signature right ] in
      "join("
      ^ String.concat ";" subs
      ^ "|"
      ^ String.concat ","
          (List.sort compare (List.map cond_sig conds @ List.map extra_sig extra))
      ^ ")"

let rec register_accesses shared plan =
  Hashtbl.replace shared (plan_signature plan) ();
  match plan with
  | Physical.Scan _ -> ()
  | Physical.Join { left; right; _ } ->
      register_accesses shared left;
      register_accesses shared right

let access_plan ?shared params env (block : Logical.block)
    (rel : Logical.relation) =
  let tbl = Estimate.table_of env rel.alias in
  let filters = local_preds block rel.alias in
  let rows = Estimate.base_rows env rel.alias in
  let width = Rschema.row_width tbl in
  let tpages = table_pages params tbl in
  let buffered access cpu =
    match shared with
    | Some cache when Hashtbl.mem cache (access_signature rel filters access) ->
        Some { Cost.seeks = 0.; pages_read = 0.; pages_written = 0.; cpu }
    | _ -> None
  in
  let seq =
    let cost =
      match buffered Physical.Seq_scan tbl.card with
      | Some c -> c
      | None ->
          { Cost.seeks = 1.; pages_read = tpages; pages_written = 0.; cpu = tbl.card }
    in
    (Physical.Scan { rel; access = Physical.Seq_scan; filters }, cost)
  in
  let probes =
    List.filter_map
      (fun (p : Logical.pred) ->
        match (p.cmp, p.rhs) with
        | Logical.C_eq, Logical.O_const _
          when Rschema.has_index tbl (snd p.lhs) ->
            let matches =
              Float.max 1. (tbl.card *. Estimate.pred_selectivity env p)
            in
            let clustered = String.equal (snd p.lhs) tbl.key in
            let access = Physical.Index_probe { column = snd p.lhs } in
            let cost =
              match buffered access matches with
              | Some c -> c
              | None ->
                  if clustered then
                    {
                      Cost.seeks = 3.;
                      pages_read = Cost.pages params (matches *. width);
                      pages_written = 0.;
                      cpu = matches;
                    }
                  else
                    {
                      Cost.seeks = 3. +. Float.min matches tpages;
                      pages_read = Float.min matches tpages;
                      pages_written = 0.;
                      cpu = matches;
                    }
            in
            Some
              ( Physical.Scan
                  {
                    rel;
                    access = Physical.Index_probe { column = snd p.lhs };
                    filters;
                  },
                cost )
        | _ -> None)
      filters
  in
  let best =
    List.fold_left
      (fun (bp, bc) (p, c) ->
        if Cost.total params c < Cost.total params bc then (p, c) else (bp, bc))
      seq probes
  in
  (fst best, rows, snd best)

(* ------------------------------------------------------------------ *)
(* join costing                                                        *)
(* ------------------------------------------------------------------ *)

type entry = { e_plan : Physical.plan; e_rows : float; e_cost : Cost.t }

let plan_aliases plan =
  List.map (fun (r : Logical.relation) -> r.alias) (Physical.relations plan)

(* Width of an intermediate result: plans project eagerly, so a tuple
   flowing above a join carries only the columns the block still needs
   (projection columns and predicate columns), plus per-alias record
   bookkeeping. *)
let subtree_width env (block : Logical.block) aliases =
  List.fold_left
    (fun w a ->
      let tbl = Estimate.table_of env a in
      let needed =
        List.sort_uniq compare
          (List.filter_map
             (fun (al, c) -> if String.equal al a then Some c else None)
             block.out
          @ List.concat_map
              (fun (p : Logical.pred) ->
                (if String.equal (fst p.lhs) a then [ snd p.lhs ] else [])
                @
                match p.rhs with
                | Logical.O_col (ra, rc) when String.equal ra a -> [ rc ]
                | _ -> [])
              block.preds)
      in
      let cw =
        List.fold_left
          (fun acc c ->
            match Rschema.find_column tbl c with
            | Some col -> acc +. col.Rschema.stats.avg_width
            | None -> acc)
          0. needed
      in
      w +. cw +. 8.)
    0. aliases

let spanning_preds (block : Logical.block) left_aliases right_aliases =
  let in_l a = List.mem a left_aliases and in_r a = List.mem a right_aliases in
  List.filter
    (fun p ->
      match Logical.pred_aliases p with
      | [ a; b ] -> (in_l a && in_r b) || (in_l b && in_r a)
      | _ -> false)
    block.preds

let split_conds left_aliases preds =
  (* equality column pairs oriented left-first; everything else extra *)
  List.fold_left
    (fun (conds, extra) (p : Logical.pred) ->
      match (p.cmp, p.rhs) with
      | Logical.C_eq, Logical.O_col rc ->
          if List.mem (fst p.lhs) left_aliases then ((p.lhs, rc) :: conds, extra)
          else ((rc, p.lhs) :: conds, extra)
      | _ -> (conds, p :: extra))
    ([], []) preds

let join_candidates ?shared params env (block : Logical.block) left right
    rows_out =
  let la = plan_aliases left.e_plan and ra = plan_aliases right.e_plan in
  let preds = spanning_preds block la ra in
  let conds, extra = split_conds la preds in
  let out = ref [] in
  let push jm cost =
    out :=
      ( {
          e_plan =
            Physical.Join
              { jm; left = left.e_plan; right = right.e_plan; conds; extra };
          e_rows = rows_out;
          e_cost = cost;
        } )
      :: !out
  in
  (* a join subtree already computed by an earlier block of the same
     query is reused from the buffer pool: CPU to re-emit, no I/O *)
  (match shared with
  | Some cache
    when Hashtbl.mem cache
           (plan_signature
              (Physical.Join
                 {
                   jm = Physical.Hash_join;
                   left = left.e_plan;
                   right = right.e_plan;
                   conds;
                   extra;
                 })) ->
      push Physical.Hash_join
        { Cost.seeks = 0.; pages_read = 0.; pages_written = 0.; cpu = rows_out }
  | _ -> ());
  (* hash join: build the right input, probe with the left *)
  let build_pages = Cost.pages params (right.e_rows *. subtree_width env block ra) in
  let spill =
    if build_pages > params.Cost.memory_pages then
      let probe_pages = Cost.pages params (left.e_rows *. subtree_width env block la) in
      {
        Cost.seeks = 2.;
        pages_read = build_pages +. probe_pages;
        pages_written = build_pages +. probe_pages;
        cpu = 0.;
      }
    else Cost.zero
  in
  push Physical.Hash_join
    (Cost.add (Cost.add left.e_cost right.e_cost)
       (Cost.add spill
          {
            Cost.seeks = 0.;
            pages_read = 0.;
            pages_written = 0.;
            cpu = left.e_rows +. right.e_rows +. rows_out;
          }));
  (* index nested loops: right must be a single base relation with an
     index on a join column *)
  (match (ra, conds) with
  | [ ralias ], _ :: _ -> (
      let tbl = Estimate.table_of env ralias in
      let indexed_cond =
        List.find_opt
          (fun ((_, _), (ra2, rc)) ->
            String.equal ra2 ralias && Rschema.has_index tbl rc)
          conds
      in
      match indexed_cond with
      | Some (_, (_, rcol)) ->
          (* tuples fetched per probe are governed by the join key's
             distinct count — local filters are applied only after the
             fetch *)
          let m =
            tbl.card
            /. Float.max 1. (Rschema.column tbl rcol).Rschema.stats.distinct
          in
          let clustered = String.equal rcol tbl.key in
          let per_probe =
            if clustered then
              {
                Cost.seeks = 1.;
                pages_read =
                  Float.max 1.
                    (ceil (m *. Rschema.row_width tbl /. params.Cost.page_size));
                pages_written = 0.;
                cpu = 1. +. m;
              }
            else
              {
                Cost.seeks = 1. +. Float.max 0. (m -. 1.);
                pages_read = Float.max 1. m;
                pages_written = 0.;
                cpu = 1. +. m;
              }
          in
          push
            (Physical.Index_nl { column = rcol })
            (Cost.add left.e_cost
               (Cost.add
                  (Cost.scale left.e_rows per_probe)
                  {
                    Cost.seeks = 0.;
                    pages_read = 0.;
                    pages_written = 0.;
                    cpu = rows_out;
                  }))
      | None -> ())
  | _ -> ());
  (* naive nested loops *)
  push Physical.Nl_join
    (Cost.add left.e_cost
       (Cost.add
          (Cost.scale left.e_rows right.e_cost)
          {
            Cost.seeks = 0.;
            pages_read = 0.;
            pages_written = 0.;
            cpu = left.e_rows *. right.e_rows;
          }));
  !out

let best_of params entries =
  match entries with
  | [] -> None
  | e :: rest ->
      Some
        (List.fold_left
           (fun best e ->
             if Cost.total params e.e_cost < Cost.total params best.e_cost then e
             else best)
           e rest)

(* ------------------------------------------------------------------ *)
(* join ordering                                                       *)
(* ------------------------------------------------------------------ *)

let popcount m =
  let rec go m n = if m = 0 then n else go (m lsr 1) (n + (m land 1)) in
  go m 0

let mask_aliases aliases mask =
  List.filteri (fun i _ -> mask land (1 lsl i) <> 0) aliases

let connected (block : Logical.block) la ra =
  spanning_preds block la ra <> []

let optimize_dp ?shared params env block aliases base_entries =
  let n = List.length aliases in
  let full = (1 lsl n) - 1 in
  let table = Hashtbl.create (1 lsl n) in
  List.iteri (fun i e -> Hashtbl.replace table (1 lsl i) e) base_entries;
  let masks = List.init full (fun i -> i + 1) in
  let masks =
    List.sort (fun a b -> Int.compare (popcount a) (popcount b)) masks
  in
  (* left-deep enumeration: the right input of every join is a single
     base relation, which is where index-nested-loops applies anyway *)
  List.iter
    (fun mask ->
      if popcount mask >= 2 then begin
        let rows = Estimate.subset_rows env (mask_aliases aliases mask) in
        let best = ref None in
        let consider entry =
          match !best with
          | Some b when Cost.total params b.e_cost <= Cost.total params entry.e_cost
            ->
              ()
          | _ -> best := Some entry
        in
        let try_split require_connected =
          for i = 0 to n - 1 do
            let r = 1 lsl i in
            if mask land r <> 0 then begin
              let l = mask land lnot r in
              match (Hashtbl.find_opt table l, Hashtbl.find_opt table r) with
              | Some le, Some re ->
                  let la = mask_aliases aliases l
                  and ra = mask_aliases aliases r in
                  if (not require_connected) || connected block la ra then
                    List.iter consider
                      (join_candidates ?shared params env block le re rows)
              | _ -> ()
            end
          done
        in
        try_split true;
        if !best = None then try_split false;
        match !best with
        | Some e -> Hashtbl.replace table mask e
        | None -> ()
      end)
    masks;
  Hashtbl.find table full

let optimize_greedy ?shared params env block base_entries =
  (* left-deep: start from the cheapest entry, repeatedly add the
     relation that yields the cheapest join, preferring connected ones *)
  let by_cost =
    List.sort
      (fun a b ->
        Float.compare (Cost.total params a.e_cost) (Cost.total params b.e_cost))
      base_entries
  in
  match by_cost with
  | [] -> invalid_arg "optimize_greedy: empty block"
  | first :: rest ->
      let rec go acc remaining =
        match remaining with
        | [] -> acc
        | _ ->
            let acc_aliases = plan_aliases acc.e_plan in
            let candidates =
              List.map
                (fun r ->
                  let rows =
                    Estimate.subset_rows env
                      (acc_aliases @ plan_aliases r.e_plan)
                  in
                  (r, join_candidates ?shared params env block acc r rows))
                remaining
            in
            let connected_first =
              List.filter
                (fun (r, _) ->
                  connected block acc_aliases (plan_aliases r.e_plan))
                candidates
            in
            let pool = if connected_first <> [] then connected_first else candidates in
            let best =
              List.fold_left
                (fun best (r, cands) ->
                  match (best, best_of params cands) with
                  | None, Some e -> Some (r, e)
                  | Some (_, be), Some e
                    when Cost.total params e.e_cost < Cost.total params be.e_cost
                    ->
                      Some (r, e)
                  | best, _ -> best)
                None pool
            in
            (match best with
            | Some (r, e) ->
                go e (List.filter (fun x -> x != r) remaining)
            | None -> acc)
      in
      go first rest

let optimize_block ?(params = Cost.default_params) ?shared cat
    (block : Logical.block) =
  if block.relations = [] then invalid_arg "optimize_block: no relations";
  (match Logical.block_wellformed cat block with
  | Ok () -> ()
  | Error es ->
      invalid_arg ("optimize_block: " ^ String.concat "; " es));
  let env = Estimate.env cat block in
  let aliases = List.map (fun (r : Logical.relation) -> r.alias) block.relations in
  let base_entries =
    List.map
      (fun rel ->
        let plan, rows, cost = access_plan ?shared params env block rel in
        { e_plan = plan; e_rows = rows; e_cost = cost })
      block.relations
  in
  let joined =
    match base_entries with
    | [ single ] -> single
    | _ when List.length aliases <= dp_limit ->
        optimize_dp ?shared params env block aliases base_entries
    | _ -> optimize_greedy ?shared params env block base_entries
  in
  (* result output: write the projected rows out *)
  let out_width = Estimate.output_width env block.out aliases in
  let output_cost =
    {
      Cost.seeks = 0.;
      pages_read = 0.;
      pages_written = Cost.pages params (joined.e_rows *. out_width);
      cpu = joined.e_rows;
    }
  in
  (match shared with
  | Some cache -> register_accesses cache joined.e_plan
  | None -> ());
  {
    plan = joined.e_plan;
    rows = joined.e_rows;
    cost = Cost.add joined.e_cost output_cost;
  }

let query_cost ?(params = Cost.default_params) cat (q : Logical.query) =
  (* the blocks of one query share base-table accesses (outer-union
     decomposition reads the same tables repeatedly) *)
  let shared = Hashtbl.create 16 in
  let results = List.map (optimize_block ~params ~shared cat) q.blocks in
  let total =
    List.fold_left (fun t r -> t +. Cost.total params r.cost) 0. results
  in
  (results, total)

let query_scalar_cost ?params cat q = snd (query_cost ?params cat q)

let workload_cost ?params cat workload =
  List.fold_left
    (fun acc (q, weight) -> acc +. (weight *. query_scalar_cost ?params cat q))
    0. workload

(* ------------------------------------------------------------------ *)
(* write costing                                                       *)
(* ------------------------------------------------------------------ *)

let write_cost ?(params = Cost.default_params) cat (u : Logical.update) =
  let shared = Hashtbl.create 8 in
  List.fold_left
    (fun acc (w : Logical.write) ->
      let tbl = Rschema.table cat w.Logical.w_table in
      let rows, locate_cost =
        match w.Logical.w_locate with
        | Some block ->
            let r = optimize_block ~params ~shared cat block in
            (r.rows *. w.Logical.w_per_row, Cost.total params r.cost)
        | None -> (w.Logical.w_per_row, 0.)
      in
      let width = Rschema.row_width tbl in
      let indexes = float_of_int (List.length tbl.Rschema.indexed) in
      let per_row =
        match w.Logical.w_kind with
        | Logical.W_insert | Logical.W_delete ->
            (* the row's page plus maintenance of every index *)
            {
              Cost.seeks = 1. +. indexes;
              pages_read = 0.;
              pages_written = Float.max 1. (width /. params.Cost.page_size);
              cpu = 1. +. indexes;
            }
        | Logical.W_update ->
            (* rewrite the row in place; indexes on the changed column
               only — approximated as one *)
            {
              Cost.seeks = 2.;
              pages_read = 0.;
              pages_written = 1.;
              cpu = 2.;
            }
      in
      acc +. locate_cost +. Cost.total params (Cost.scale rows per_row))
    0. u.Logical.writes

let updates_cost ?params cat updates =
  List.fold_left
    (fun acc (u, weight) -> acc +. (weight *. write_cost ?params cat u))
    0. updates

let mixed_workload_cost ?params cat ~queries ~updates =
  workload_cost ?params cat queries +. updates_cost ?params cat updates
