open Legodb_relational

type result = { plan : Physical.plan; rows : float; cost : Cost.t }

let dp_limit = 10

(* The join-ordering core below is the mask-indexed fast path: alias
   sets are int bitmasks, per-split questions (connectivity, spanning
   predicates, subtree widths, subset cardinalities, plan signatures)
   are answered from per-block precomputed arrays, and the DP walks
   masks by a single ascending scan.  It must stay bit-identical to
   {!Reference} — same best plan, same cost floats — which pins down
   every float association order: see the comments on [extend_width]
   and [optimize_dp].  The differential suite in
   test/test_optimizer_perf.ml holds the two implementations together. *)

(* ------------------------------------------------------------------ *)
(* access-path selection                                               *)
(* ------------------------------------------------------------------ *)

let table_pages params (tbl : Rschema.table) =
  Cost.pages params (tbl.card *. Rschema.row_width tbl)

(* Signature of a base-table access, for common-subexpression sharing
   across the blocks of one query: a table read with identical local
   predicates in a later block of the same query comes from the buffer
   pool (the multi-query-optimizing Volcano of [16] shares such common
   subexpressions), so it costs CPU but no I/O. *)
let access_signature (rel : Logical.relation) filters access =
  let pred_sig (p : Logical.pred) =
    let op =
      match p.cmp with
      | Logical.C_eq -> "="
      | Logical.C_ne -> "<>"
      | Logical.C_lt -> "<"
      | Logical.C_le -> "<="
      | Logical.C_gt -> ">"
      | Logical.C_ge -> ">="
    in
    let operand = function
      | Logical.O_const v -> Legodb_relational.Rtype.value_to_sql v
      | Logical.O_col (_, c) -> "col:" ^ c
    in
    snd p.lhs ^ op ^ operand p.rhs
  in
  let access_sig =
    match access with
    | Physical.Seq_scan -> "scan"
    | Physical.Index_probe { column } -> "probe:" ^ column
  in
  String.concat "|"
    (rel.table :: access_sig :: List.sort String.compare (List.map pred_sig filters))

(* Canonical, alias-free signature of a whole sub-plan, so identical
   join subtrees across blocks (e.g. the actor⋈played⋈director⋈directed
   core repeated per partition) are also recognized as shared.  This
   recursive form is the specification; the DP never calls it per
   candidate — each [entry] interns its signature and a join's
   signature is assembled in O(children) from the children's interned
   strings (see [join_signature]). *)
let rec plan_signature plan =
  match plan with
  | Physical.Scan { rel; access; filters } ->
      access_signature rel filters access
  | Physical.Join { left; right; conds; extra; _ } ->
      let table_of =
        let map =
          List.map
            (fun (r : Logical.relation) -> (r.alias, r.table))
            (Physical.relations plan)
        in
        fun alias -> Option.value ~default:alias (List.assoc_opt alias map)
      in
      let cond_sig ((la, lc), (ra, rc)) =
        let a = table_of la ^ "." ^ lc and b = table_of ra ^ "." ^ rc in
        if a <= b then a ^ "=" ^ b else b ^ "=" ^ a
      in
      let extra_sig (p : Logical.pred) =
        table_of (fst p.lhs) ^ "." ^ snd p.lhs
      in
      let subs = List.sort compare [ plan_signature left; plan_signature right ] in
      "join("
      ^ String.concat ";" subs
      ^ "|"
      ^ String.concat ","
          (List.sort compare (List.map cond_sig conds @ List.map extra_sig extra))
      ^ ")"

let rec register_accesses shared plan =
  Hashtbl.replace shared (plan_signature plan) ();
  match plan with
  | Physical.Scan _ -> ()
  | Physical.Join { left; right; _ } ->
      register_accesses shared left;
      register_accesses shared right

(* ------------------------------------------------------------------ *)
(* per-block context: aliases as integer ids, preds as bitmasks        *)
(* ------------------------------------------------------------------ *)

let popcount m =
  let rec go m n = if m = 0 then n else go (m lsr 1) (n + (m land 1)) in
  go m 0

(* index of the highest set bit; [m > 0] *)
let top_bit m =
  let rec go m n = if m <= 1 then n else go (m lsr 1) (n + 1) in
  go m 0

(* Everything the inner DP loop consults per split, computed once per
   block: an alias's id is its position in the relation list, each
   predicate carries the bitmask of the aliases it mentions (its
   left/right bit pair for a join predicate) and its memoized
   selectivity, and each alias its clamped cardinality and carried
   width.  With these, connectivity and spanning-predicate selection
   are O(1) bit tests per predicate instead of alias-list membership
   walks. *)
type ctx = {
  c_params : Cost.params;
  c_env : Estimate.env;
  c_block : Logical.block;
  c_names : string array;  (* alias by id *)
  c_tnames : string array;  (* logical table name by id, for signatures *)
  c_preds : Logical.pred array;  (* block.preds, in block order *)
  c_pmask : int array;  (* alias bitmask of each pred *)
  c_pjoin : bool array;  (* pred spans two distinct aliases *)
  c_psel : float array;  (* memoized selectivity of each pred *)
  c_card : float array;  (* max(row_floor, card) per alias *)
  c_carry : float array;  (* per-alias carried width (see extend_width) *)
}

let context params env (block : Logical.block) =
  let names =
    Array.of_list
      (List.map (fun (r : Logical.relation) -> r.alias) block.relations)
  in
  let tnames =
    Array.of_list
      (List.map (fun (r : Logical.relation) -> r.table) block.relations)
  in
  let n = Array.length names in
  let preds = Array.of_list block.preds in
  let pmask =
    Array.map
      (fun p ->
        List.fold_left
          (fun m a -> m lor (1 lsl Estimate.alias_id env a))
          0 (Logical.pred_aliases p))
      preds
  in
  let pjoin = Array.map (fun pm -> popcount pm = 2) pmask in
  let psel = Array.map (Estimate.pred_selectivity env) preds in
  let card =
    Array.init n (fun i ->
        Float.max Estimate.row_floor (Estimate.table_at env i).Rschema.card)
  in
  (* Width contributed by one alias to an intermediate result: plans
     project eagerly, so a tuple flowing above a join carries only the
     columns the block still needs (projection columns and predicate
     columns). *)
  let carry =
    Array.init n (fun i ->
        let a = names.(i) in
        let tbl = Estimate.table_at env i in
        let needed =
          List.sort_uniq compare
            (List.filter_map
               (fun (al, c) -> if String.equal al a then Some c else None)
               block.out
            @ List.concat_map
                (fun (p : Logical.pred) ->
                  (if String.equal (fst p.lhs) a then [ snd p.lhs ] else [])
                  @
                  match p.rhs with
                  | Logical.O_col (ra, rc) when String.equal ra a -> [ rc ]
                  | _ -> [])
                block.preds)
        in
        List.fold_left
          (fun acc c ->
            match Rschema.find_column tbl c with
            | Some col -> acc +. col.Rschema.stats.avg_width
            | None -> acc)
          0. needed)
  in
  {
    c_params = params;
    c_env = env;
    c_block = block;
    c_names = names;
    c_tnames = tnames;
    c_preds = preds;
    c_pmask = pmask;
    c_pjoin = pjoin;
    c_psel = psel;
    c_card = card;
    c_carry = carry;
  }

(* ------------------------------------------------------------------ *)
(* join costing                                                        *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_plan : Physical.plan;
  e_rows : float;
  e_cost : Cost.t;
  e_mask : int;  (* the subtree's aliases, as a bitmask *)
  e_width : float;  (* subtree width, fold-accumulated in plan order *)
  e_sig : string Lazy.t;  (* interned signature; forced only with ?shared *)
}

let plan_aliases plan =
  List.map (fun (r : Logical.relation) -> r.alias) (Physical.relations plan)

(* Subtree width of [w0]'s plan extended by [plan]'s relations.  The
   reference folds [fun w a -> w +. carry a +. 8.] over the joined
   plan's aliases in plan order; since a join's relation list is
   [relations left @ relations right], continuing the fold from the
   left entry's stored width over the right side's relations
   reproduces the reference float exactly (fold over a concatenation
   is the fold over the suffix started from the fold over the
   prefix). *)
let extend_width ctx w0 plan =
  List.fold_left
    (fun w (r : Logical.relation) ->
      w +. ctx.c_carry.(Estimate.alias_id ctx.c_env r.alias) +. 8.)
    w0 (Physical.relations plan)

(* spanning predicates between two disjoint alias masks, in block
   order: a join predicate's own mask is its (left-bit, right-bit)
   pair, so membership is two bit tests *)
let spanning_preds ctx lmask rmask =
  let out = ref [] in
  for i = Array.length ctx.c_preds - 1 downto 0 do
    if
      ctx.c_pjoin.(i)
      && ctx.c_pmask.(i) land lmask <> 0
      && ctx.c_pmask.(i) land rmask <> 0
    then out := ctx.c_preds.(i) :: !out
  done;
  !out

let connected ctx lmask rmask =
  let n = Array.length ctx.c_preds in
  let rec go i =
    i < n
    && ((ctx.c_pjoin.(i)
        && ctx.c_pmask.(i) land lmask <> 0
        && ctx.c_pmask.(i) land rmask <> 0)
       || go (i + 1))
  in
  go 0

let split_conds ctx lmask preds =
  (* equality column pairs oriented left-first; everything else extra *)
  List.fold_left
    (fun (conds, extra) (p : Logical.pred) ->
      match (p.cmp, p.rhs) with
      | Logical.C_eq, Logical.O_col rc ->
          if lmask land (1 lsl Estimate.alias_id ctx.c_env (fst p.lhs)) <> 0
          then ((p.lhs, rc) :: conds, extra)
          else ((rc, p.lhs) :: conds, extra)
      | _ -> (conds, p :: extra))
    ([], []) preds

(* A join's signature assembled in O(children) from the children's
   interned signatures — string-identical to [plan_signature] of the
   corresponding [Physical.Join], because a join signature depends
   only on the two child signatures and the (alias-resolved) conds
   and extra predicates. *)
let join_signature ctx lsig rsig conds extra =
  let table_of a = ctx.c_tnames.(Estimate.alias_id ctx.c_env a) in
  let cond_sig ((la, lc), (ra, rc)) =
    let a = table_of la ^ "." ^ lc and b = table_of ra ^ "." ^ rc in
    if a <= b then a ^ "=" ^ b else b ^ "=" ^ a
  in
  let extra_sig (p : Logical.pred) = table_of (fst p.lhs) ^ "." ^ snd p.lhs in
  let subs = List.sort compare [ lsig; rsig ] in
  "join("
  ^ String.concat ";" subs
  ^ "|"
  ^ String.concat ","
      (List.sort compare (List.map cond_sig conds @ List.map extra_sig extra))
  ^ ")"

let access_plan ?shared ctx (rel : Logical.relation) =
  let params = ctx.c_params and env = ctx.c_env in
  let id = Estimate.alias_id env rel.alias in
  let tbl = Estimate.table_at env id in
  let filters = Logical.local_preds ctx.c_block.preds rel.alias in
  let rows = Estimate.base_rows env rel.alias in
  let width = Rschema.row_width tbl in
  let tpages = table_pages params tbl in
  let buffered access cpu =
    match shared with
    | Some cache when Hashtbl.mem cache (access_signature rel filters access) ->
        Some { Cost.seeks = 0.; pages_read = 0.; pages_written = 0.; cpu }
    | _ -> None
  in
  let seq =
    let cost =
      match buffered Physical.Seq_scan tbl.card with
      | Some c -> c
      | None ->
          { Cost.seeks = 1.; pages_read = tpages; pages_written = 0.; cpu = tbl.card }
    in
    (Physical.Scan { rel; access = Physical.Seq_scan; filters }, cost)
  in
  let probes =
    List.filter_map
      (fun (p : Logical.pred) ->
        match (p.cmp, p.rhs) with
        | Logical.C_eq, Logical.O_const _
          when Rschema.has_index tbl (snd p.lhs) ->
            let matches =
              Float.max 1. (tbl.card *. Estimate.pred_selectivity env p)
            in
            let clustered = String.equal (snd p.lhs) tbl.key in
            let access = Physical.Index_probe { column = snd p.lhs } in
            let cost =
              match buffered access matches with
              | Some c -> c
              | None ->
                  if clustered then
                    {
                      Cost.seeks = 3.;
                      pages_read = Cost.pages params (matches *. width);
                      pages_written = 0.;
                      cpu = matches;
                    }
                  else
                    {
                      Cost.seeks = 3. +. Float.min matches tpages;
                      pages_read = Float.min matches tpages;
                      pages_written = 0.;
                      cpu = matches;
                    }
            in
            Some
              ( Physical.Scan
                  {
                    rel;
                    access = Physical.Index_probe { column = snd p.lhs };
                    filters;
                  },
                cost )
        | _ -> None)
      filters
  in
  let plan, cost =
    List.fold_left
      (fun (bp, bc) (p, c) ->
        if Cost.total params c < Cost.total params bc then (p, c) else (bp, bc))
      seq probes
  in
  {
    e_plan = plan;
    e_rows = rows;
    e_cost = cost;
    e_mask = 1 lsl id;
    e_width = extend_width ctx 0. plan;
    e_sig = lazy (plan_signature plan);
  }

let join_candidates ?shared ctx left right rows_out =
  let params = ctx.c_params in
  let preds = spanning_preds ctx left.e_mask right.e_mask in
  let conds, extra = split_conds ctx left.e_mask preds in
  let jmask = left.e_mask lor right.e_mask in
  let jwidth = extend_width ctx left.e_width right.e_plan in
  (* one signature per split, shared by every join method (the
     signature ignores the method); with a cache it is needed for the
     probe anyway, without one it stays an unforced suspension *)
  let jsig =
    match shared with
    | Some _ ->
        Lazy.from_val
          (join_signature ctx (Lazy.force left.e_sig) (Lazy.force right.e_sig)
             conds extra)
    | None ->
        lazy
          (join_signature ctx (Lazy.force left.e_sig) (Lazy.force right.e_sig)
             conds extra)
  in
  let out = ref [] in
  let push jm cost =
    out :=
      {
        e_plan =
          Physical.Join
            { jm; left = left.e_plan; right = right.e_plan; conds; extra };
        e_rows = rows_out;
        e_cost = cost;
        e_mask = jmask;
        e_width = jwidth;
        e_sig = jsig;
      }
      :: !out
  in
  (* a join subtree already computed by an earlier block of the same
     query is reused from the buffer pool: CPU to re-emit, no I/O *)
  (match shared with
  | Some cache when Hashtbl.mem cache (Lazy.force jsig) ->
      push Physical.Hash_join
        { Cost.seeks = 0.; pages_read = 0.; pages_written = 0.; cpu = rows_out }
  | _ -> ());
  (* hash join: build the right input, probe with the left *)
  let build_pages = Cost.pages params (right.e_rows *. right.e_width) in
  let spill =
    if build_pages > params.Cost.memory_pages then
      let probe_pages = Cost.pages params (left.e_rows *. left.e_width) in
      {
        Cost.seeks = 2.;
        pages_read = build_pages +. probe_pages;
        pages_written = build_pages +. probe_pages;
        cpu = 0.;
      }
    else Cost.zero
  in
  push Physical.Hash_join
    (Cost.add (Cost.add left.e_cost right.e_cost)
       (Cost.add spill
          {
            Cost.seeks = 0.;
            pages_read = 0.;
            pages_written = 0.;
            cpu = left.e_rows +. right.e_rows +. rows_out;
          }));
  (* index nested loops: right must be a single base relation with an
     index on a join column *)
  (if popcount right.e_mask = 1 && conds <> [] then begin
     let rid = top_bit right.e_mask in
     let ralias = ctx.c_names.(rid) in
     let tbl = Estimate.table_at ctx.c_env rid in
     let indexed_cond =
       List.find_opt
         (fun ((_, _), (ra2, rc)) ->
           String.equal ra2 ralias && Rschema.has_index tbl rc)
         conds
     in
     match indexed_cond with
     | Some (_, (_, rcol)) ->
         (* tuples fetched per probe are governed by the join key's
            distinct count — local filters are applied only after the
            fetch *)
         let m =
           tbl.card
           /. Float.max 1. (Rschema.column tbl rcol).Rschema.stats.distinct
         in
         let clustered = String.equal rcol tbl.key in
         let per_probe =
           if clustered then
             {
               Cost.seeks = 1.;
               pages_read =
                 Float.max 1.
                   (ceil (m *. Rschema.row_width tbl /. params.Cost.page_size));
               pages_written = 0.;
               cpu = 1. +. m;
             }
           else
             {
               Cost.seeks = 1. +. Float.max 0. (m -. 1.);
               pages_read = Float.max 1. m;
               pages_written = 0.;
               cpu = 1. +. m;
             }
         in
         push
           (Physical.Index_nl { column = rcol })
           (Cost.add left.e_cost
              (Cost.add
                 (Cost.scale left.e_rows per_probe)
                 {
                   Cost.seeks = 0.;
                   pages_read = 0.;
                   pages_written = 0.;
                   cpu = rows_out;
                 }))
     | None -> ()
   end);
  (* naive nested loops *)
  push Physical.Nl_join
    (Cost.add left.e_cost
       (Cost.add
          (Cost.scale left.e_rows right.e_cost)
          {
            Cost.seeks = 0.;
            pages_read = 0.;
            pages_written = 0.;
            cpu = left.e_rows *. right.e_rows;
          }));
  !out

let best_of params entries =
  match entries with
  | [] -> None
  | e :: rest ->
      Some
        (List.fold_left
           (fun best e ->
             if Cost.total params e.e_cost < Cost.total params best.e_cost then e
             else best)
           e rest)

(* ------------------------------------------------------------------ *)
(* join ordering                                                       *)
(* ------------------------------------------------------------------ *)

let optimize_dp ?shared ctx base_entries =
  let params = ctx.c_params in
  let n = Array.length ctx.c_names in
  let full = (1 lsl n) - 1 in
  let table = Array.make (full + 1) None in
  List.iter (fun e -> table.(e.e_mask) <- Some e) base_entries;
  (* memoized Estimate.subset_rows, split into its two folds.  The
     clamped-card product over a mask's aliases in block order equals
     the product over the mask minus its top bit extended by the top
     alias (a left fold over a list extends over its last element), so
     one ascending pass fills the whole array. *)
  let cards = Array.make (full + 1) 1. in
  for m = 1 to full do
    let top = top_bit m in
    cards.(m) <- cards.(m land lnot (1 lsl top)) *. ctx.c_card.(top)
  done;
  let rows = Array.make (full + 1) Estimate.row_floor in
  let rows_of m =
    (* selectivities multiplied in block pred order, exactly like the
       reference's fold over the predicates whose aliases all fall
       inside the subset *)
    let s = ref 1. in
    Array.iteri
      (fun i pm -> if pm land m = pm then s := !s *. ctx.c_psel.(i))
      ctx.c_pmask;
    Float.max Estimate.row_floor (cards.(m) *. !s)
  in
  (* left-deep enumeration: the right input of every join is a single
     base relation, which is where index-nested-loops applies anyway.
     Every strict submask of [mask] is numerically smaller, so a
     single ascending scan visits masks in a valid DP order — the
     popcount-sorted work list of the reference, without materializing
     or sorting 2^n masks. *)
  for mask = 1 to full do
    if popcount mask >= 2 then begin
      rows.(mask) <- rows_of mask;
      let best = ref None in
      let consider entry =
        match !best with
        | Some b when Cost.total params b.e_cost <= Cost.total params entry.e_cost
          ->
            ()
        | _ -> best := Some entry
      in
      let try_split require_connected =
        for i = 0 to n - 1 do
          let r = 1 lsl i in
          if mask land r <> 0 then begin
            let l = mask land lnot r in
            match (table.(l), table.(r)) with
            | Some le, Some re ->
                if (not require_connected) || connected ctx l r then
                  List.iter consider
                    (join_candidates ?shared ctx le re rows.(mask))
            | _ -> ()
          end
        done
      in
      try_split true;
      if Option.is_none !best then try_split false;
      match !best with Some _ as b -> table.(mask) <- b | None -> ()
    end
  done;
  match table.(full) with Some e -> e | None -> raise Not_found

let optimize_greedy ?shared ctx base_entries =
  (* left-deep: start from the cheapest entry, repeatedly add the
     relation that yields the cheapest join, preferring connected ones.
     Cardinalities still go through the list-based
     [Estimate.subset_rows]: the greedy accumulator's aliases are in
     plan order, not block order, and the reference multiplies them in
     that order. *)
  let params = ctx.c_params in
  let by_cost =
    List.sort
      (fun a b ->
        Float.compare (Cost.total params a.e_cost) (Cost.total params b.e_cost))
      base_entries
  in
  match by_cost with
  | [] -> invalid_arg "optimize_greedy: empty block"
  | first :: rest ->
      let rec go acc remaining =
        match remaining with
        | [] -> acc
        | _ ->
            let acc_aliases = plan_aliases acc.e_plan in
            let candidates =
              List.map
                (fun r ->
                  let rows =
                    Estimate.subset_rows ctx.c_env
                      (acc_aliases @ plan_aliases r.e_plan)
                  in
                  (r, join_candidates ?shared ctx acc r rows))
                remaining
            in
            let connected_first =
              List.filter
                (fun (r, _) -> connected ctx acc.e_mask r.e_mask)
                candidates
            in
            let pool = if connected_first <> [] then connected_first else candidates in
            let best =
              List.fold_left
                (fun best (r, cands) ->
                  match (best, best_of params cands) with
                  | None, Some e -> Some (r, e)
                  | Some (_, be), Some e
                    when Cost.total params e.e_cost < Cost.total params be.e_cost
                    ->
                      Some (r, e)
                  | best, _ -> best)
                None pool
            in
            (match best with
            | Some (r, e) ->
                go e (List.filter (fun x -> x != r) remaining)
            | None -> acc)
      in
      go first rest

let optimize_block ?(params = Cost.default_params) ?shared cat
    (block : Logical.block) =
  if block.relations = [] then invalid_arg "optimize_block: no relations";
  (match Logical.block_wellformed cat block with
  | Ok () -> ()
  | Error es ->
      invalid_arg ("optimize_block: " ^ String.concat "; " es));
  let env = Estimate.env cat block in
  let ctx = context params env block in
  let aliases = List.map (fun (r : Logical.relation) -> r.alias) block.relations in
  let base_entries = List.map (access_plan ?shared ctx) block.relations in
  let joined =
    match base_entries with
    | [ single ] -> single
    | _ when List.length aliases <= dp_limit ->
        optimize_dp ?shared ctx base_entries
    | _ -> optimize_greedy ?shared ctx base_entries
  in
  (* result output: write the projected rows out *)
  let out_width = Estimate.output_width env block.out aliases in
  let output_cost =
    {
      Cost.seeks = 0.;
      pages_read = 0.;
      pages_written = Cost.pages params (joined.e_rows *. out_width);
      cpu = joined.e_rows;
    }
  in
  (match shared with
  | Some cache -> register_accesses cache joined.e_plan
  | None -> ());
  {
    plan = joined.e_plan;
    rows = joined.e_rows;
    cost = Cost.add joined.e_cost output_cost;
  }

let query_cost ?(params = Cost.default_params) cat (q : Logical.query) =
  (* the blocks of one query share base-table accesses (outer-union
     decomposition reads the same tables repeatedly) *)
  let shared = Hashtbl.create 16 in
  let results = List.map (optimize_block ~params ~shared cat) q.blocks in
  let total =
    List.fold_left (fun t r -> t +. Cost.total params r.cost) 0. results
  in
  (results, total)

let query_scalar_cost ?params cat q = snd (query_cost ?params cat q)

let workload_cost ?params cat workload =
  List.fold_left
    (fun acc (q, weight) -> acc +. (weight *. query_scalar_cost ?params cat q))
    0. workload

(* ------------------------------------------------------------------ *)
(* write costing                                                       *)
(* ------------------------------------------------------------------ *)

let write_cost ?(params = Cost.default_params) cat (u : Logical.update) =
  let shared = Hashtbl.create 8 in
  List.fold_left
    (fun acc (w : Logical.write) ->
      let tbl = Rschema.table cat w.Logical.w_table in
      let rows, locate_cost =
        match w.Logical.w_locate with
        | Some block ->
            let r = optimize_block ~params ~shared cat block in
            (r.rows *. w.Logical.w_per_row, Cost.total params r.cost)
        | None -> (w.Logical.w_per_row, 0.)
      in
      let width = Rschema.row_width tbl in
      let indexes = float_of_int (List.length tbl.Rschema.indexed) in
      let per_row =
        match w.Logical.w_kind with
        | Logical.W_insert | Logical.W_delete ->
            (* the row's page plus maintenance of every index *)
            {
              Cost.seeks = 1. +. indexes;
              pages_read = 0.;
              pages_written = Float.max 1. (width /. params.Cost.page_size);
              cpu = 1. +. indexes;
            }
        | Logical.W_update ->
            (* rewrite the row in place; indexes on the changed column
               only — approximated as one *)
            {
              Cost.seeks = 2.;
              pages_read = 0.;
              pages_written = 1.;
              cpu = 2.;
            }
      in
      acc +. locate_cost +. Cost.total params (Cost.scale rows per_row))
    0. u.Logical.writes

let updates_cost ?params cat updates =
  List.fold_left
    (fun acc (u, weight) -> acc +. (weight *. write_cost ?params cat u))
    0. updates

let mixed_workload_cost ?params cat ~queries ~updates =
  workload_cost ?params cat queries +. updates_cost ?params cat updates
