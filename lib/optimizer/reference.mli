(** Frozen pre-rewrite plan selection — the executable specification
    that the mask-indexed {!Optimizer} must match bit for bit.

    Same public surface as {!Optimizer}; every function returns the
    exact floats the optimizer returned before the fast-path rewrite
    (alias lists, recursive plan signatures, [List.init (2^n)] mask
    enumeration).  Used only by the differential test suite and
    [bench optimizer_perf]; production code routes through
    {!Optimizer}. *)

open Legodb_relational

type result = {
  plan : Physical.plan;
  rows : float;  (** estimated result cardinality *)
  cost : Cost.t;  (** estimated cost, including result output *)
}

val dp_limit : int
(** Maximum number of relations optimized with exact DP (10). *)

val optimize_block :
  ?params:Cost.params ->
  ?shared:(string, unit) Hashtbl.t ->
  Rschema.t ->
  Logical.block ->
  result
(** @raise Invalid_argument on an ill-formed block (unknown tables or
    columns, empty relation list).

    [?shared] is the common-subexpression cache used by {!query_cost}:
    a base-table access whose signature is already in the cache is
    charged CPU but no I/O (the table was just read by an earlier block
    of the same query and sits in the buffer pool — the sharing a
    multi-query-optimizing Volcano performs); the accesses of the
    chosen plan are added to the cache. *)

val query_cost :
  ?params:Cost.params -> Rschema.t -> Logical.query -> result list * float
(** Optimize every block with a fresh shared-access cache; the query's
    scalar cost is the sum of block costs. *)

val query_scalar_cost :
  ?params:Cost.params -> Rschema.t -> Logical.query -> float
(** The scalar of {!query_cost} without the plans — the per-query
    costing entry point the incremental cost engine memoizes.  A
    query's scalar cost is a pure function of the catalog entries of
    the tables its blocks reference. *)

val workload_cost :
  ?params:Cost.params -> Rschema.t -> (Logical.query * float) list -> float
(** Weighted sum of query costs — the objective minimized by the
    greedy search.  Equals folding {!query_scalar_cost} over the
    workload in order. *)

val write_cost :
  ?params:Cost.params -> Rschema.t -> Logical.update -> float
(** Cost of one translated update: for each write, the cost of the
    locating block (shared-access cache across the update's writes)
    plus, per affected row, one page write and the maintenance of every
    index on the table (a seek and a tuple of CPU each); updates in
    place touch one index. *)

val updates_cost :
  ?params:Cost.params -> Rschema.t -> (Logical.update * float) list -> float
(** Weighted sum of {!write_cost} over the update statements. *)

val mixed_workload_cost :
  ?params:Cost.params ->
  Rschema.t ->
  queries:(Logical.query * float) list ->
  updates:(Logical.update * float) list ->
  float
(** Weighted queries plus weighted updates — the objective for
    update-aware storage design (the paper's future-work extension).
    Equals [workload_cost + updates_cost]. *)
