open Legodb_relational

type tuple = (string * Storage.row) list

type measures = {
  tuples_scanned : int;
  index_probes : int;
  join_tuples : int;
  bytes_read : float;
  output_rows : int;
}

let zero_measures =
  {
    tuples_scanned = 0;
    index_probes = 0;
    join_tuples = 0;
    bytes_read = 0.;
    output_rows = 0;
  }

type state = {
  db : Storage.t;
  mutable m : measures;
}

let row_bytes (row : Storage.row) =
  Array.fold_left (fun b v -> b +. float_of_int (Rtype.value_width v)) 0. row

let value_of st tuple plan_tables (alias, column) =
  match List.assoc_opt alias tuple with
  | None -> invalid_arg (Printf.sprintf "Executor: alias %s not in tuple" alias)
  | Some row ->
      let table =
        match List.assoc_opt alias plan_tables with
        | Some t -> t
        | None -> invalid_arg (Printf.sprintf "Executor: unknown alias %s" alias)
      in
      row.(Storage.column_position st.db ~table ~column)

let eval_cmp cmp l r =
  if Rtype.is_null l || Rtype.is_null r then false
  else
    let c = Rtype.compare_value l r in
    match cmp with
    | Logical.C_eq -> c = 0
    | Logical.C_ne -> c <> 0
    | Logical.C_lt -> c < 0
    | Logical.C_le -> c <= 0
    | Logical.C_gt -> c > 0
    | Logical.C_ge -> c >= 0

let eval_pred st plan_tables tuple (p : Logical.pred) =
  let l = value_of st tuple plan_tables p.lhs in
  let r =
    match p.rhs with
    | Logical.O_const v -> v
    | Logical.O_col c -> value_of st tuple plan_tables c
  in
  eval_cmp p.cmp l r

let plan_tables plan =
  List.map
    (fun (r : Logical.relation) -> (r.alias, r.table))
    (Physical.relations plan)

let rec eval st plan : tuple list =
  let tables = plan_tables plan in
  match plan with
  | Physical.Scan { rel; access; filters } -> (
      let keep row =
        let tuple = [ (rel.Logical.alias, row) ] in
        List.for_all (eval_pred st tables tuple) filters
      in
      match access with
      | Physical.Seq_scan ->
          Seq.fold_left
            (fun acc row ->
              st.m <-
                {
                  st.m with
                  tuples_scanned = st.m.tuples_scanned + 1;
                  bytes_read = st.m.bytes_read +. row_bytes row;
                };
              if keep row then [ (rel.Logical.alias, row) ] :: acc else acc)
            [] (Storage.scan st.db rel.Logical.table)
          |> List.rev
      | Physical.Index_probe { column } ->
          let const =
            List.find_map
              (fun (p : Logical.pred) ->
                match (p.cmp, p.rhs) with
                | Logical.C_eq, Logical.O_const v
                  when String.equal (snd p.lhs) column ->
                    Some v
                | _ -> None)
              filters
          in
          (match const with
          | None ->
              invalid_arg "Executor: index probe without a constant filter"
          | Some v ->
              st.m <- { st.m with index_probes = st.m.index_probes + 1 };
              let rows = Storage.lookup st.db ~table:rel.Logical.table ~column v in
              List.filter_map
                (fun row ->
                  st.m <-
                    { st.m with bytes_read = st.m.bytes_read +. row_bytes row };
                  if keep row then Some [ (rel.Logical.alias, row) ] else None)
                rows))
  | Physical.Join { jm; left; right; conds; extra } -> (
      let check_extras tuple = List.for_all (eval_pred st tables tuple) extra in
      let emit acc tuple =
        st.m <- { st.m with join_tuples = st.m.join_tuples + 1 };
        if check_extras tuple then tuple :: acc else acc
      in
      match jm with
      | Physical.Hash_join ->
          let ltuples = eval st left and rtuples = eval st right in
          let key_of cols tuple =
            List.map (fun c -> value_of st tuple tables c) cols
          in
          (* SQL join semantics: NULL compares equal to nothing, so a
             NULL-keyed tuple can never match.  The hash table compares
             keys structurally (V_null = V_null), so NULL-keyed tuples
             must be skipped on both sides or hash joins would return
             rows the other join methods reject through eval_cmp. *)
          let null_key = List.exists Rtype.is_null in
          let lcols = List.map fst conds and rcols = List.map snd conds in
          let index = Hashtbl.create (List.length rtuples) in
          List.iter
            (fun rt ->
              let k = key_of rcols rt in
              if not (null_key k) then Hashtbl.add index k rt)
            rtuples;
          List.fold_left
            (fun acc lt ->
              let k = key_of lcols lt in
              if null_key k then acc
              else
                let matches = Hashtbl.find_all index k in
                List.fold_left (fun acc rt -> emit acc (lt @ rt)) acc matches)
            [] ltuples
          |> List.rev
      | Physical.Index_nl { column } -> (
          match right with
          | Physical.Scan { rel; filters; _ } ->
              let ltuples = eval st left in
              let probe_cond =
                List.find_opt
                  (fun ((_, _), (ra, rc)) ->
                    String.equal ra rel.Logical.alias && String.equal rc column)
                  conds
              in
              (match probe_cond with
              | None -> invalid_arg "Executor: index-nl join without probe cond"
              | Some ((lcol, _) as probe) ->
                  let rest_conds = List.filter (fun c -> not (c == probe)) conds in
                  List.fold_left
                    (fun acc lt ->
                      let v = value_of st lt tables lcol in
                      (* the probe condition is delegated to the index,
                         which finds V_null = V_null structurally: a
                         NULL probe key must not probe at all *)
                      if Rtype.is_null v then acc
                      else begin
                        st.m <-
                          { st.m with index_probes = st.m.index_probes + 1 };
                        let rows =
                          Storage.lookup st.db ~table:rel.Logical.table ~column
                            v
                        in
                        List.fold_left
                          (fun acc row ->
                            st.m <-
                              {
                                st.m with
                                bytes_read = st.m.bytes_read +. row_bytes row;
                              };
                            let rt = [ (rel.Logical.alias, row) ] in
                            let tuple = lt @ rt in
                            let ok =
                              List.for_all (eval_pred st tables rt) filters
                              && List.for_all
                                   (fun (lc, rc) ->
                                     eval_cmp Logical.C_eq
                                       (value_of st tuple tables lc)
                                       (value_of st tuple tables rc))
                                   rest_conds
                            in
                            if ok then emit acc tuple else acc)
                          acc rows
                      end)
                    [] ltuples
                  |> List.rev)
          | Physical.Join _ ->
              invalid_arg "Executor: index-nl join needs a base right input")
      | Physical.Nl_join ->
          let ltuples = eval st left and rtuples = eval st right in
          List.fold_left
            (fun acc lt ->
              List.fold_left
                (fun acc rt ->
                  let tuple = lt @ rt in
                  let ok =
                    List.for_all
                      (fun (lc, rc) ->
                        eval_cmp Logical.C_eq
                          (value_of st tuple tables lc)
                          (value_of st tuple tables rc))
                      conds
                  in
                  if ok then emit acc tuple else acc)
                acc rtuples)
            [] ltuples
          |> List.rev)

let run_plan db plan =
  let st = { db; m = zero_measures } in
  let tuples = eval st plan in
  (tuples, st.m)

let run_block db plan out =
  let st = { db; m = zero_measures } in
  let tuples = eval st plan in
  let tables = plan_tables plan in
  let project tuple =
    match out with
    | [] ->
        List.concat_map (fun (_, (row : Storage.row)) -> Array.to_list row) tuple
    | cols -> List.map (fun c -> value_of st tuple tables c) cols
  in
  let rows = List.map project tuples in
  (rows, { st.m with output_rows = List.length rows })

let run_query db blocks =
  (* reverse-accumulate: [rows @ r] per block is quadratic in the
     output size across the many outer-union blocks a published
     subtree generates *)
  let rev_rows, m =
    List.fold_left
      (fun (rows, m) (plan, out) ->
        let r, m' = run_block db plan out in
        ( List.rev_append r rows,
          {
            tuples_scanned = m.tuples_scanned + m'.tuples_scanned;
            index_probes = m.index_probes + m'.index_probes;
            join_tuples = m.join_tuples + m'.join_tuples;
            bytes_read = m.bytes_read +. m'.bytes_read;
            output_rows = m.output_rows + m'.output_rows;
          } ))
      ([], zero_measures) blocks
  in
  (List.rev rev_rows, m)
