(** Logical query representation: select-project-join blocks.

    A translated XQuery becomes a {e set} of SPJ blocks whose costs add
    up (see DESIGN.md §3): the main FOR/WHERE/RETURN block, one block
    per nested FLWR in the return clause, and one block per root-to-leaf
    chain of a published subtree.  A block lists its relations (with
    aliases, since one table can occur twice, as in Q12's
    actor-and-director self-joins), a conjunction of predicates, and the
    projected columns. *)

type col = string * string
(** (alias, column) *)

type operand = O_const of Legodb_relational.Rtype.value | O_col of col

type cmp = C_eq | C_ne | C_lt | C_le | C_gt | C_ge

type pred = { cmp : cmp; lhs : col; rhs : operand }

type relation = { alias : string; table : string }

type block = {
  relations : relation list;
  preds : pred list;
  out : col list;  (** empty means: every column of every relation *)
}

type query = { qname : string; blocks : block list }

val eq_col : col -> col -> pred
val eq_const : col -> Legodb_relational.Rtype.value -> pred

val is_join_pred : pred -> bool
(** Does the predicate relate two different aliases? *)

val pred_aliases : pred -> string list

val local_preds : pred list -> string -> pred list
(** Predicates local to one alias, in input order: every alias they
    mention equals [alias].  The single shared definition of "local"
    used by both the optimizer's access-path selection and the
    estimator's {!Estimate.base_rows}. *)

val block_wellformed :
  Legodb_relational.Rschema.t -> block -> (unit, string list) result
(** Aliases unique and resolvable; every referenced column exists. *)

val to_sql : block -> Legodb_relational.Sql.select
(** Render a block as SQL for display. *)

val query_to_sql : query -> Legodb_relational.Sql.statement list

val pp_block : Format.formatter -> block -> unit
val pp_query : Format.formatter -> query -> unit

(** {1 Write operations}

    The relational side of an XQuery update: each update statement
    becomes a set of writes, optionally driven by a locating SPJ block
    (the rows a DELETE/SET affects).  [w_per_row] is the number of rows
    written per located row (cascades multiply it), or the absolute row
    count when there is no locating block (INSERT). *)

type write_kind = W_insert | W_delete | W_update

type write = {
  w_table : string;
  w_kind : write_kind;
  w_locate : block option;  (** rows to affect; None for inserts *)
  w_per_row : float;
}

type update = { uname : string; writes : write list }

val pp_write : Format.formatter -> write -> unit
val pp_update : Format.formatter -> update -> unit
