(* A tour of the schema rewritings of Section 4.1 on the Section 2
   schema, showing the p-schema and the relational configuration after
   each step — the Figure 3/4/8 storyline of the paper, reproduced
   mechanically.

   Run with:  dune exec examples/transform_tour.exe *)

open Legodb

let stats =
  Pathstat.of_list
    [
      ([ "imdb" ], Pathstat.STcnt 1);
      ([ "imdb"; "show" ], Pathstat.STcnt 10000);
      ([ "imdb"; "show"; "title" ], Pathstat.STsize 50);
      ([ "imdb"; "show"; "year" ], Pathstat.STbase (1900, 2010, 110));
      ([ "imdb"; "show"; "type" ], Pathstat.STsize 8);
      ([ "imdb"; "show"; "aka" ], Pathstat.STcnt 15000);
      ([ "imdb"; "show"; "aka" ], Pathstat.STsize 40);
      ([ "imdb"; "show"; "review" ], Pathstat.STcnt 4000);
      ([ "imdb"; "show"; "review"; "nyt" ], Pathstat.STcnt 1000);
      ([ "imdb"; "show"; "review"; "suntimes" ], Pathstat.STcnt 3000);
      ([ "imdb"; "show"; "review"; "TILDE" ], Pathstat.STsize 800);
      ([ "imdb"; "show"; "box_office" ], Pathstat.STcnt 7000);
      ([ "imdb"; "show"; "seasons" ], Pathstat.STcnt 3000);
      ([ "imdb"; "show"; "description" ], Pathstat.STcnt 3000);
      ([ "imdb"; "show"; "description" ], Pathstat.STsize 120);
      ([ "imdb"; "show"; "episode" ], Pathstat.STcnt 27000);
    ]

let show_config title schema =
  Format.printf "@.==== %s ====@." title;
  Format.printf "%a@." Xschema.pp schema;
  match Mapping.of_pschema schema with
  | Ok m -> Format.printf "@[<v>%a@]@." Rschema.pp m.Mapping.catalog
  | Error es ->
      Format.printf "(not a p-schema: %s)@." (String.concat "; " es)

let find_loc schema ty pick =
  match
    List.find_opt (fun (_, t) -> pick t) (Xtype.locations (Xschema.find schema ty))
  with
  | Some (loc, _) -> loc
  | None -> failwith "sub-term not found"

let () =
  let s0 = Annotate.schema stats Imdb.Schema.section2 in
  show_config "Initial p-schema (Figure 2(b) / Figure 3)" s0;

  (* 1. inlining: Aka{1,10} stays a table, but the Movie branch can be
     inlined once the union is turned into options *)
  let s_opt =
    let loc =
      find_loc s0 "Show" (function Xtype.Choice _ -> true | _ -> false)
    in
    Rewrite.union_to_options s0 ~tname:"Show" ~loc
  in
  show_config "After union-to-options (the Figure 4(a) treatment)" s_opt;

  let s_inl = Init.all_inlined ~union_to_options:false s_opt in
  show_config "After inlining every single-use type (Figure 4(a))" s_inl;

  (* 2. union distribution: horizontal partitioning (Figure 4(c)) *)
  let s_dist =
    let loc =
      find_loc s0 "Show" (function Xtype.Choice _ -> true | _ -> false)
    in
    Init.all_inlined ~union_to_options:false
      (Rewrite.distribute_union s0 ~tname:"Show" ~loc)
  in
  show_config "After union distribution (Figure 4(c))" s_dist;

  (* 3. wildcard materialization: NYT reviews split out (Figure 4(b)) *)
  let s_wild =
    let loc =
      find_loc s0 "Review" (function
        | Xtype.Elem { label = Label.Any; _ } -> true
        | _ -> false)
    in
    Rewrite.materialize_wildcard s0 ~tname:"Review" ~loc ~tag:"nyt"
  in
  show_config "After wildcard materialization (Figure 4(b))" s_wild;

  (* 4. repetition split: Aka{1,10} == Aka, Aka{0,9} *)
  let s_split =
    let loc =
      find_loc s0 "Show" (function
        | Xtype.Rep (Xtype.Ref "Aka", o) -> o.Xtype.lo >= 1
        | _ -> false)
    in
    Rewrite.split_repetition s0 ~tname:"Show" ~loc
  in
  show_config "After repetition split (Section 4.1)" s_split;

  (* 5. the search space seen by the greedy search from PS0 *)
  let steps = Space.applicable ~kinds:Space.all_kinds s0 in
  Format.printf "@.==== %d single-step transformations from the initial schema ====@."
    (List.length steps);
  List.iter (fun s -> Format.printf "  %a@." Space.pp_step s) steps
