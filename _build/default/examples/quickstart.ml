(* Quickstart: find a storage design for the IMDB lookup workload.

   Run with:  dune exec examples/quickstart.exe

   Inputs are purely XML-level, as in the paper: an XML Schema (built
   programmatically here), data statistics (the paper's Appendix A
   numbers), and a weighted XQuery workload.  The output is a
   relational configuration plus the greedy-search trace that found
   it. *)

open Legodb

let () =
  let d =
    Legodb.design
      ~schema:Imdb.Schema.schema (* Appendix B *)
      ~stats:Imdb.Stats.full (* Appendix A *)
      ~workload:Imdb.Workloads.lookup (* Q8, Q9, Q11, Q12, Q13 *)
      ()
  in
  Format.printf "%a@." Legodb.report d;

  (* the same design as DDL, ready for a real RDBMS *)
  Format.printf "-- DDL --@.%s@." (Sql.ddl d.mapping.Mapping.catalog);

  (* and the SQL your queries become under it *)
  let q8 = Imdb.Queries.q 8 in
  Format.printf "-- Q8 (%s) translates to --@.%a@."
    q8.Xq_ast.name Logical.pp_query
    (Xq_translate.translate d.mapping q8)
