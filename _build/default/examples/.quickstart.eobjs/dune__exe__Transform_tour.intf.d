examples/transform_tour.mli:
