examples/web_lookup.ml: Annotate Collector Executor Format Imdb Init Legodb List Logical Mapping Optimizer Printf Search Shred Storage String Xq_ast Xq_translate
