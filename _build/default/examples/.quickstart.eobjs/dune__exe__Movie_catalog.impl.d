examples/movie_catalog.ml: Collector Executor Imdb Legodb List Logical Mapping Optimizer Printf Publish Rschema Shred Storage Unix Xml Xq_translate
