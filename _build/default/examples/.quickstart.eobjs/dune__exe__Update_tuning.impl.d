examples/update_tuning.ml: Annotate Imdb Init Legodb List Mapping Optimizer Printf Search Space String Workload Xq_parse Xq_translate
