examples/quickstart.mli:
