examples/web_lookup.mli:
