examples/transform_tour.ml: Annotate Format Imdb Init Label Legodb List Mapping Pathstat Rewrite Rschema Space String Xschema Xtype
