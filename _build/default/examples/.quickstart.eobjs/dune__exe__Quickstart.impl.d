examples/quickstart.ml: Format Imdb Legodb Logical Mapping Sql Xq_ast Xq_translate
