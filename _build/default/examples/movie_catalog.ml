(* The catalog-publishing scenario from the paper's introduction: a
   cable company routinely exports large parts of the movie database
   (workload W1 is publish-heavy).

   This example runs the whole pipeline end to end on generated data:

     generate -> collect statistics -> design for the publish workload
     -> shred the document into the chosen tables -> run the publishing
     queries on the actual rows -> reconstruct the XML catalog.

   Run with:  dune exec examples/movie_catalog.exe *)

open Legodb

let time name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "%-28s %6.2fs\n%!" name (Unix.gettimeofday () -. t0);
  r

let () =
  (* a mid-sized synthetic IMDB (2% of the paper's scale) *)
  let doc =
    time "generate" (fun () -> Imdb.Gen.generate (Imdb.Gen.scaled 0.02))
  in
  Printf.printf "document: %d elements\n" (Xml.count_elements doc);

  (* statistics come from the data itself, as Figure 7 prescribes *)
  let stats = time "collect statistics" (fun () -> Collector.collect doc) in

  (* design for the publishing workload *)
  let d =
    time "design (publish)" (fun () ->
        Legodb.design ~schema:Imdb.Schema.schema ~stats
          ~workload:Imdb.Workloads.publish ())
  in
  Printf.printf "chosen configuration: %d tables, estimated cost %.1f\n"
    (List.length d.mapping.Mapping.catalog.Rschema.tables)
    d.cost;

  (* load the document into the chosen configuration *)
  let db = time "shred" (fun () -> Shred.shred d.mapping doc) in
  Printf.printf "loaded %d rows\n" (Storage.total_rows db);
  let db = Storage.refresh_stats db in

  (* run Q16 ("publish all shows") on the real rows *)
  let q16 = Xq_translate.translate d.mapping (Imdb.Queries.q 16) in
  let cat = Storage.catalog db in
  let plans =
    List.map
      (fun (b : Logical.block) ->
        ((Optimizer.optimize_block cat b).Optimizer.plan, b.Logical.out))
      q16.Logical.blocks
  in
  let rows, measures =
    time "execute Q16" (fun () -> Executor.run_query db plans)
  in
  Printf.printf "Q16 produced %d rows (%.1f KB read)\n" (List.length rows)
    (measures.Executor.bytes_read /. 1024.);

  (* reconstruct the catalog as XML — the actual export *)
  let doc' = time "publish document" (fun () -> Publish.document db d.mapping) in
  Printf.printf "reconstructed %d elements; round trip %s\n"
    (Xml.count_elements doc')
    (if Xml.equal doc doc' then "exact" else "DIFFERS")
