(* Update-aware storage design — the extension the paper lists as
   future work ("including updates in our workload", Section 7).

   A read-only workload pushes the design toward vertical partitioning:
   scans get narrower if rarely-used columns live elsewhere.  But every
   extra table makes an insert more expensive (more rows, more index
   maintenance), so as the write rate grows the best design folds
   columns back in.  This example sweeps the insert weight and shows
   the chosen design shrinking.

   Run with:  dune exec examples/update_tuning.exe *)

open Legodb

let () =
  let schema = Annotate.schema Imdb.Stats.full Imdb.Schema.schema in
  (* the reads: the actor-director join query (Q12), which likes the
     Played table narrow; the writes: new actors arriving, which touch
     the whole Actor/Played/Award subtree *)
  let reads = Workload.of_queries [ Imdb.Queries.q 12 ] in
  let insert = Xq_parse.parse_update ~name:"new-actor" "INSERT imdb/actor" in

  Printf.printf "%-14s %-12s %-8s %s\n" "insert weight" "cost" "tables"
    "outlined from the actor subtree";
  List.iter
    (fun weight ->
      let updates = if weight = 0. then [] else [ (insert, weight) ] in
      let r = Search.greedy_si ~workload:reads ~updates schema in
      let final = List.nth r.Search.trace (List.length r.Search.trace - 1) in
      let outlined =
        List.filter_map
          (fun (e : Search.trace_entry) ->
            match e.Search.step with
            | Some (Space.Outline { tname; tag; _ })
              when List.mem tname [ "Actor"; "Played"; "Award" ] ->
                Some tag
            | _ -> None)
          r.Search.trace
      in
      Printf.printf "%-14.0f %-12.1f %-8d %s\n%!" weight r.Search.cost
        final.Search.tables
        (String.concat ", " outlined))
    [ 0.; 5.; 20.; 80. ];

  (* what one actor insert costs under the two extreme designs *)
  let cost_of_insert schema_cfg =
    match Mapping.of_pschema schema_cfg with
    | Ok m ->
        Optimizer.write_cost m.Mapping.catalog
          (Xq_translate.translate_update m insert)
    | Error es -> failwith (String.concat "; " es)
  in
  Printf.printf "\none actor insert: all-inlined %.2f, all-outlined %.2f cost units\n"
    (cost_of_insert (Init.all_inlined schema))
    (cost_of_insert (Init.all_outlined schema))
