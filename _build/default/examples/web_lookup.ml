(* The interactive-lookup scenario from the paper's introduction: a
   movie-information web site issuing selective queries (workload W2 is
   lookup-heavy).

   The point of this example: the configuration LegoDB picks for the
   lookup workload beats the one-size-fits-all "inline everything"
   heuristic, both in the optimizer's estimates and in actual work done
   by the executor on the same data.

   Run with:  dune exec examples/web_lookup.exe *)

open Legodb

let actual_bytes mapping db (q : Xq_ast.t) =
  let lq = Xq_translate.translate mapping q in
  let cat = Storage.catalog db in
  let plans =
    List.map
      (fun (b : Logical.block) ->
        ((Optimizer.optimize_block cat b).Optimizer.plan, b.Logical.out))
      lq.Logical.blocks
  in
  let rows, m = Executor.run_query db plans in
  (List.length rows, m.Executor.bytes_read)

let () =
  let doc = Imdb.Gen.generate (Imdb.Gen.scaled 0.02) in
  let stats = Collector.collect doc in
  let workload = Imdb.Workloads.lookup in

  (* the tuned design vs the rule-of-thumb design *)
  let tuned = Legodb.design ~schema:Imdb.Schema.schema ~stats ~workload () in
  let annotated = Annotate.schema stats Imdb.Schema.schema in
  let inlined = Init.all_inlined annotated in
  let inlined_cost = Search.pschema_cost ~workload inlined in

  Printf.printf "estimated workload cost:\n";
  Printf.printf "  all-inlined heuristic : %10.1f\n" inlined_cost;
  Printf.printf "  LegoDB design         : %10.1f  (%.0f%% of heuristic)\n"
    tuned.cost
    (100. *. tuned.cost /. inlined_cost);

  (* check the estimate ordering against real execution *)
  let db_tuned = Storage.refresh_stats (Shred.shred tuned.mapping doc) in
  let m_inlined =
    match Mapping.of_pschema inlined with
    | Ok m -> m
    | Error es -> failwith (String.concat "; " es)
  in
  let db_inlined = Storage.refresh_stats (Shred.shred m_inlined doc) in

  Printf.printf "\nactual bytes read per query (executor):\n";
  Printf.printf "  %-6s %14s %14s\n" "query" "all-inlined" "tuned";
  List.iter
    (fun (q, _) ->
      let n1, b1 = actual_bytes m_inlined db_inlined q in
      let n2, b2 = actual_bytes tuned.mapping db_tuned q in
      assert (n1 = n2);
      Printf.printf "  %-6s %12.0fKB %12.0fKB  (%d rows)\n" q.Xq_ast.name
        (b1 /. 1024.) (b2 /. 1024.) n1)
    workload;

  (* what a point lookup looks like under the tuned design *)
  let q = Imdb.Queries.q 8 in
  Format.printf "\nQ8 under the tuned design:@.%a@." Logical.pp_query
    (Xq_translate.translate tuned.mapping q)
