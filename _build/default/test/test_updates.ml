(* The update-workload extension (paper §7 future work). *)

open Legodb
open Test_util

let m_inlined = lazy (mapping_of (Init.all_inlined (Lazy.force annotated_imdb)))
let m_outlined = lazy (mapping_of (Init.all_outlined (Lazy.force annotated_imdb)))

let parse_u = Xq_parse.parse_update

let ins_show = lazy (parse_u ~name:"ins" "INSERT imdb/show")

let del_show =
  lazy
    (parse_u ~name:"del"
       {| FOR $v IN document("x")/imdb/show WHERE $v/title = c1 DELETE $v |})

let set_title =
  lazy
    (parse_u ~name:"set"
       {| FOR $v IN document("x")/imdb/show WHERE $v/year = 1999 SET $v/title = c9 |})

let cost m u =
  Optimizer.write_cost m.Mapping.catalog (Xq_translate.translate_update m u)

let suite =
  [
    case "parser: insert" (fun () ->
        match Lazy.force ins_show with
        | Xq_ast.U_insert { target = [ "imdb"; "show" ]; _ } -> ()
        | _ -> Alcotest.fail "bad insert");
    case "parser: delete" (fun () ->
        match Lazy.force del_show with
        | Xq_ast.U_delete { target = "v"; body; _ } ->
            check_int "one pred" 1 (List.length body.Xq_ast.where)
        | _ -> Alcotest.fail "bad delete");
    case "parser: set" (fun () ->
        match Lazy.force set_title with
        | Xq_ast.U_set
            { target = ("v", [ "title" ]); value = Xq_ast.C_string "c9"; _ } ->
            ()
        | _ -> Alcotest.fail "bad set");
    case "parser: rejects garbage" (fun () ->
        List.iter
          (fun s ->
            match parse_u s with
            | _ -> Alcotest.failf "expected error for %S" s
            | exception Xq_parse.Parse_error _ -> ())
          [ "INSERT"; "FOR $v IN imdb/show RETURN $v extra DELETE"; "DELETE $v" ]);
    case "check_update catches unbound variables" (fun () ->
        let u =
          parse_u "FOR $v IN document(\"x\")/imdb/show DELETE $w"
        in
        check_bool "error" true (Result.is_error (Xq_ast.check_update u)));
    case "insert cascades over the subtree tables" (fun () ->
        let m = Lazy.force m_inlined in
        let u = Xq_translate.translate_update m (Lazy.force ins_show) in
        let tables = List.map (fun (w : Logical.write) -> w.Logical.w_table) u.Logical.writes in
        List.iter
          (fun t -> check_bool t true (List.mem t tables))
          [ "Show"; "Aka"; "Reviews"; "Episodes" ];
        (* per-show averages from the appendix statistics *)
        let per t =
          (List.find
             (fun (w : Logical.write) -> w.Logical.w_table = t)
             u.Logical.writes)
            .Logical.w_per_row
        in
        check_bool "one show row" true (abs_float (per "Show" -. 1.) < 1e-9);
        check_bool "akas per show" true
          (abs_float (per "Aka" -. (13641. /. 34798.)) < 1e-6));
    case "delete locates rows and cascades" (fun () ->
        let m = Lazy.force m_inlined in
        let u = Xq_translate.translate_update m (Lazy.force del_show) in
        List.iter
          (fun (w : Logical.write) ->
            check_bool "has locate" true (w.Logical.w_locate <> None);
            check_bool "is delete" true (w.Logical.w_kind = Logical.W_delete))
          u.Logical.writes);
    case "set touches exactly the column's table" (fun () ->
        let m = Lazy.force m_inlined in
        let u = Xq_translate.translate_update m (Lazy.force set_title) in
        match u.Logical.writes with
        | [ w ] ->
            check_string "table" "Show" w.Logical.w_table;
            check_bool "kind" true (w.Logical.w_kind = Logical.W_update)
        | ws -> Alcotest.failf "expected one write, got %d" (List.length ws));
    case "write costs are positive and finite" (fun () ->
        let m = Lazy.force m_inlined in
        List.iter
          (fun u ->
            let c = cost m (Lazy.force u) in
            check_bool "positive" true (c > 0. && Float.is_finite c))
          [ ins_show; del_show; set_title ]);
    case "inserting is cheaper into fewer tables" (fun () ->
        (* the all-outlined configuration spreads one show over many
           tables: inserting costs strictly more *)
        let ci = cost (Lazy.force m_inlined) (Lazy.force ins_show) in
        let co = cost (Lazy.force m_outlined) (Lazy.force ins_show) in
        check_bool "outlined dearer" true (co > ci));
    case "update weight pulls the design toward fewer tables" (fun () ->
        let schema = Lazy.force annotated_imdb in
        let workload = Workload.of_queries [ Imdb.Queries.q 12 ] in
        let pure = Search.greedy_si ~workload schema in
        let heavy =
          Search.greedy_si ~workload
            ~updates:[ (Lazy.force ins_show, 50.) ]
            schema
        in
        let tables r =
          (List.nth r.Search.trace (List.length r.Search.trace - 1)).Search.tables
        in
        check_bool "fewer or equal tables under updates" true
          (tables heavy <= tables pure));
    case "mixed cost adds the update component" (fun () ->
        let schema = Init.all_inlined (Lazy.force annotated_imdb) in
        let workload = Workload.of_queries [ Imdb.Queries.q 1 ] in
        let plain = Search.pschema_cost ~workload schema in
        let mixed =
          Search.pschema_cost ~workload
            ~updates:[ (Lazy.force ins_show, 1.) ]
            schema
        in
        check_bool "strictly more" true (mixed > plain));
    case "untranslatable update raises" (fun () ->
        let m = Lazy.force m_inlined in
        let u = parse_u "INSERT imdb/nothing" in
        match Xq_translate.translate_update m u with
        | _ -> Alcotest.fail "expected Untranslatable"
        | exception Xq_translate.Untranslatable _ -> ());
  ]
