(* Property-based tests (qcheck, registered as alcotest cases). *)

open Legodb

let tags = [ "a"; "b"; "c" ]

(* ---------- generators ---------- *)

let gen_text =
  QCheck2.Gen.(
    map
      (fun l -> String.concat "" l)
      (list_size (int_range 1 6)
         (oneofl [ "x"; "y"; "<"; "&"; "\""; "'"; " z"; "0" ])))

let gen_xml =
  QCheck2.Gen.(
    sized_size (int_range 0 3) @@ fix (fun self n ->
        let leaf = map2 (fun t s -> Xml.leaf t s) (oneofl tags) gen_text in
        if n = 0 then leaf
        else
          frequency
            [
              (1, leaf);
              ( 2,
                map3
                  (fun t attrs kids -> Xml.elem ~attrs t kids)
                  (oneofl tags)
                  (list_size (int_range 0 2)
                     (map2 (fun n v -> (n, v)) (oneofl [ "p"; "q" ]) gen_text))
                  (list_size (int_range 0 3) (self (n - 1))) );
            ]))

(* random regular-expression types over leaf elements a/b/c *)
let gen_rtype =
  QCheck2.Gen.(
    sized_size (int_range 0 4) @@ fix (fun self n ->
        let leaf =
          map (fun t -> Xtype.named_elem t Xtype.string_) (oneofl tags)
        in
        if n = 0 then leaf
        else
          frequency
            [
              (2, leaf);
              (1, return Xtype.Empty);
              ( 2,
                map
                  (fun ts -> Xtype.seq ts)
                  (list_size (int_range 2 3) (self (n / 2))) );
              ( 2,
                map
                  (fun ts -> Xtype.choice ts)
                  (list_size (int_range 2 3) (self (n / 2))) );
              ( 2,
                map2
                  (fun t (lo, hi) ->
                    Xtype.rep t
                      {
                        Xtype.lo;
                        hi = (match hi with Some h -> Xtype.Bounded (max h lo) | None -> Xtype.Unbounded);
                      })
                  (self (n / 2))
                  (pair (int_range 0 2) (option (int_range 0 3))) );
            ]))

let gen_tag_seq = QCheck2.Gen.(list_size (int_range 0 6) (oneofl tags))

(* naive regex matching over tag sequences, by suffix enumeration *)
let naive_matches t seq =
  let module SS = Set.Make (struct
    type t = string list

    let compare = compare
  end) in
  let rec suffixes t seq : SS.t =
    match t with
    | Xtype.Empty | Xtype.Scalar _ | Xtype.Attr _ | Xtype.Ref _ ->
        SS.singleton seq
    | Xtype.Elem e -> (
        match seq with
        | x :: rest when Label.matches e.Xtype.label x -> SS.singleton rest
        | _ -> SS.empty)
    | Xtype.Seq ts ->
        List.fold_left
          (fun acc u ->
            SS.fold (fun s acc -> SS.union (suffixes u s) acc) acc SS.empty)
          (SS.singleton seq) ts
    | Xtype.Choice ts ->
        List.fold_left (fun acc u -> SS.union (suffixes u seq) acc) SS.empty ts
    | Xtype.Rep (u, o) ->
        let lo = o.Xtype.lo in
        let hi =
          match o.Xtype.hi with
          | Xtype.Bounded h -> h
          | Xtype.Unbounded -> List.length seq + lo + 1
        in
        let rec iterate k acc frontier =
          if k > hi || SS.is_empty frontier then acc
          else
            let next =
              SS.fold (fun s acc -> SS.union (suffixes u s) acc) frontier SS.empty
            in
            let acc = if k >= lo then SS.union acc next else acc in
            iterate (k + 1) acc next
        in
        let start = SS.singleton seq in
        let acc = if lo = 0 then start else SS.empty in
        iterate 1 acc start
  in
  SS.mem [] (suffixes t seq)

let dummy_schema = Xschema.make ~root:"X" [ { Xschema.name = "X"; body = Xtype.Empty } ]

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let suite =
  [
    prop "xml print/parse round trip" gen_xml (fun doc ->
        Xml.equal doc (Xml_parse.parse_string (Xml.to_string doc)));
    prop "derivative matcher agrees with naive regex semantics"
      ~count:300
      QCheck2.Gen.(pair gen_rtype gen_tag_seq)
      (fun (t, seq) ->
        let nodes = List.map (fun tag -> Xml.leaf tag "v") seq in
        Validate.matches dummy_schema t nodes = naive_matches t seq);
    prop "docs generated from a type match it" ~count:100 gen_rtype (fun t ->
        (* wrap in a root element and generate a document for it *)
        let schema =
          Xschema.make ~root:"R"
            [ { Xschema.name = "R"; body = Xtype.named_elem "root" t } ]
        in
        let doc = Test_util.doc_of_schema schema in
        Result.is_ok (Validate.document schema doc));
    prop "replace of own subterm is identity" gen_rtype (fun t ->
        List.for_all
          (fun (loc, sub) -> Xtype.equal (Xtype.replace t loc sub) t)
          (Xtype.locations t));
    prop "normalize preserves random-type languages" ~count:60
      QCheck2.Gen.(pair gen_rtype (int_range 0 1000))
      (fun (t, seed) ->
        let schema =
          Xschema.make ~root:"R"
            [ { Xschema.name = "R"; body = Xtype.named_elem "root" t } ]
        in
        let ps0 = Init.normalize schema in
        let rng = Random.State.make [| seed |] in
        let doc = Test_util.doc_of_schema ~rng schema in
        Result.is_ok (Validate.document ps0 doc)
        &&
        let rng = Random.State.make [| seed + 1 |] in
        let doc' = Test_util.doc_of_schema ~rng ps0 in
        Result.is_ok (Validate.document schema doc'))
    ;
    prop "every neighbor step preserves the language" ~count:25
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let schema = Init.normalize Test_util.books_schema in
        let nbrs =
          Space.neighbors
            ~kinds:[ Space.K_inline; Space.K_outline; Space.K_rep_split; Space.K_rep_merge ]
            schema
        in
        nbrs = []
        ||
        let _, schema' = List.nth nbrs (seed mod List.length nbrs) in
        let rng = Random.State.make [| seed |] in
        let doc = Test_util.doc_of_schema ~rng schema in
        Result.is_ok (Validate.document schema' doc));
    prop "shred/publish round trip on random imdb documents" ~count:8
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let doc = Test_util.doc_of_schema ~rng Imdb.Schema.schema in
        let annotated =
          Annotate.schema (Collector.collect doc) Imdb.Schema.schema
        in
        let m = Test_util.mapping_of (Init.all_inlined annotated) in
        let db = Shred.shred m doc in
        Xml.equal doc (Publish.document db m));
    prop "pathstat merge is commutative on counts" ~count:100
      QCheck2.Gen.(
        pair
          (list_size (int_range 0 5) (pair (oneofl tags) (int_range 0 100)))
          (list_size (int_range 0 5) (pair (oneofl tags) (int_range 0 100))))
      (fun (l1, l2) ->
        let mk l =
          Pathstat.of_list
            (List.map (fun (t, n) -> ([ t ], Pathstat.STcnt n)) l)
        in
        let a = mk l1 and b = mk l2 in
        let m1 = Pathstat.merge a b and m2 = Pathstat.merge b a in
        List.for_all
          (fun tag -> Pathstat.count m1 [ tag ] = Pathstat.count m2 [ tag ])
          tags);
    prop "workload mix preserves total weight" ~count:50
      QCheck2.Gen.(float_range 0. 1.)
      (fun k ->
        let w = Workload.mix k Imdb.Workloads.lookup Imdb.Workloads.publish in
        abs_float (Workload.total_weight w -. 1.) < 1e-9);
  ]

(* a generator over the full type syntax, for printer/parser round trips *)
let gen_full_type =
  QCheck2.Gen.(
    sized_size (int_range 0 4) @@ fix (fun self n ->
        let scalar =
          oneofl
            [
              Xtype.string_;
              Xtype.integer;
              Xtype.Scalar
                ( Xtype.String_t,
                  Some { Xtype.width = 50; s_min = None; s_max = None; distinct = Some 7 } );
              Xtype.Scalar
                ( Xtype.Integer_t,
                  Some { Xtype.width = 4; s_min = Some 1; s_max = Some 99; distinct = None } );
            ]
        in
        let leaf =
          frequency
            [
              (2, map2 (fun t s -> Xtype.named_elem t s) (oneofl tags) scalar);
              (1, return (Xtype.ref_ "SomeType"));
              (1, map (fun s -> Xtype.attr "attr" s) scalar);
              (1, map (fun s -> Xtype.elem Label.Any s) scalar);
              (1, map (fun s -> Xtype.elem (Label.Any_except [ "x"; "y" ]) s) scalar);
            ]
        in
        if n = 0 then leaf
        else
          frequency
            [
              (3, leaf);
              (2, map Xtype.seq (list_size (int_range 2 3) (self (n / 2))));
              (2, map Xtype.choice (list_size (int_range 2 3) (self (n / 2))));
              ( 2,
                map2
                  (fun t k ->
                    Xtype.rep t
                      (List.nth
                         [ Xtype.opt; Xtype.star; Xtype.plus; Xtype.occ 2 (Xtype.Bounded 5) ]
                         k))
                  (self (n / 2)) (int_range 0 3) );
              ( 1,
                map2
                  (fun tag inner -> Xtype.named_elem tag inner)
                  (oneofl tags) (self (n / 2)) );
            ]))

let extra =
  [
    prop "type notation printer/parser round trip" ~count:300 gen_full_type
      (fun t ->
        let printed = Xtype.to_string t in
        match Xtype_parse.type_of_string printed with
        | t' -> Xtype.equal t t'
        | exception Xtype_parse.Parse_error _ ->
            QCheck2.Test.fail_reportf "did not parse: %s" printed);
    prop "annotated printer/parser round trip keeps scalar stats" ~count:150
      gen_full_type (fun t ->
        let printed = Format.asprintf "%a" Xtype.pp_with_stats t in
        match Xtype_parse.type_of_string printed with
        | t' ->
            (* bodies equal, and scalar statistics survive verbatim *)
            Xtype.equal t t'
            &&
            let scalars u =
              let rec go u acc =
                match u with
                | Xtype.Scalar (k, st) -> (k, st) :: acc
                | Xtype.Attr (_, v) | Xtype.Elem { content = v; _ }
                | Xtype.Rep (v, _) ->
                    go v acc
                | Xtype.Seq vs | Xtype.Choice vs ->
                    List.fold_left (fun acc v -> go v acc) acc vs
                | Xtype.Empty | Xtype.Ref _ -> acc
              in
              go u []
            in
            scalars t = scalars t'
        | exception Xtype_parse.Parse_error _ ->
            QCheck2.Test.fail_reportf "did not parse: %s" printed);
    prop "navigation never raises on random steps" ~count:100
      QCheck2.Gen.(pair (oneofl [ "title"; "aka"; "nope"; "reviews"; "tilde"; "type" ])
                     (oneofl [ "Show"; "Actor"; "IMDB"; "Missing" ]))
      (fun (step, ty) ->
        let m = Test_util.mapping_of (Init.all_inlined Imdb.Schema.schema) in
        match Navigate.navigate m { Navigate.ty; prefix = [] } step with
        | _ -> true);
    prop "xml parser never crashes on mutated documents" ~count:200
      QCheck2.Gen.(pair (int_range 0 500) (int_range 0 255))
      (fun (pos, byte) ->
        let doc = Xml.to_string Test_util.books_doc in
        let mutated =
          if pos < String.length doc then
            String.mapi (fun i c -> if i = pos then Char.chr byte else c) doc
          else doc
        in
        match Xml_parse.parse_string mutated with
        | _ -> true
        | exception Xml_parse.Parse_error _ -> true);
  ]
