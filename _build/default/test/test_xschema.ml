open Legodb
open Test_util

let mk defs root = Xschema.make ~root defs

let d name body = { Xschema.name; body }

let suite =
  [
    case "make rejects duplicates" (fun () ->
        match mk [ d "A" Xtype.string_; d "A" Xtype.integer ] "A" with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    case "find and update" (fun () ->
        let s = mk [ d "A" Xtype.string_ ] "A" in
        check_bool "find" true (Xtype.equal (Xschema.find s "A") Xtype.string_);
        let s = Xschema.update s "A" Xtype.integer in
        check_bool "updated" true (Xtype.equal (Xschema.find s "A") Xtype.integer));
    case "add preserves order" (fun () ->
        let s = mk [ d "A" Xtype.string_ ] "A" in
        let s = Xschema.add s "B" Xtype.integer in
        Alcotest.(check (list string)) "order" [ "A"; "B" ]
          (List.map (fun (x : Xschema.defn) -> x.name) (Xschema.defs s)));
    case "fresh_name avoids collisions" (fun () ->
        let s = mk [ d "A" Xtype.string_ ] "A" in
        check_string "fresh" "A'" (Xschema.fresh_name s "A");
        check_string "unused" "B" (Xschema.fresh_name s "B"));
    case "check: undefined reference" (fun () ->
        let s = mk [ d "A" (Xtype.ref_ "Missing") ] "A" in
        match Xschema.check s with
        | Error [ msg ] -> check_bool "mentions Missing" true (contains msg "Missing")
        | Error _ | Ok () -> Alcotest.fail "expected one error");
    case "check: undefined root" (fun () ->
        let s = mk [ d "A" Xtype.string_ ] "Root" in
        check_bool "error" true (Result.is_error (Xschema.check s)));
    case "check: unguarded recursion rejected" (fun () ->
        let s = mk [ d "A" (Xtype.seq [ Xtype.ref_ "A"; Xtype.string_ ]) ] "A" in
        check_bool "error" true (Result.is_error (Xschema.check s)));
    case "check: guarded recursion accepted" (fun () ->
        let s = mk [ d "A" (Xtype.named_elem "a" (Xtype.rep (Xtype.ref_ "A") Xtype.star)) ] "A" in
        check_bool "ok" true (Result.is_ok (Xschema.check s)));
    case "reachable and gc" (fun () ->
        let s =
          mk
            [
              d "A" (Xtype.named_elem "a" (Xtype.ref_ "B"));
              d "B" (Xtype.named_elem "b" Xtype.string_);
              d "Dead" (Xtype.named_elem "x" Xtype.string_);
            ]
            "A"
        in
        Alcotest.(check (list string)) "reachable" [ "A"; "B" ] (Xschema.reachable s);
        let s = Xschema.gc s in
        check_bool "gc dropped Dead" false (Xschema.mem s "Dead"));
    case "use_count and parents" (fun () ->
        let s =
          mk
            [
              d "A" (Xtype.named_elem "a" (Xtype.seq [ Xtype.ref_ "B"; Xtype.ref_ "B" ]));
              d "B" (Xtype.named_elem "b" Xtype.string_);
            ]
            "A"
        in
        check_int "use_count" 2 (Xschema.use_count s "B");
        Alcotest.(check (list string)) "parents" [ "A" ] (Xschema.parents s "B"));
    case "recursive detection" (fun () ->
        let s =
          mk
            [
              d "A" (Xtype.named_elem "a" (Xtype.ref_ "B"));
              d "B" (Xtype.named_elem "b" (Xtype.optional (Xtype.ref_ "A")));
              d "C" (Xtype.named_elem "c" Xtype.string_);
            ]
            "A"
        in
        check_bool "A recursive" true (Xschema.recursive s "A");
        check_bool "B recursive" true (Xschema.recursive s "B");
        check_bool "C not" false (Xschema.recursive s "C"));
    case "nullable through refs" (fun () ->
        let s = mk [ d "A" (Xtype.rep Xtype.string_ Xtype.star) ] "A" in
        check_bool "nullable" true (Xschema.nullable s (Xtype.ref_ "A")));
    case "expand one level" (fun () ->
        let s = mk [ d "A" (Xtype.named_elem "a" Xtype.string_) ] "A" in
        check_bool "expanded" true
          (Xtype.equal (Xschema.expand s (Xtype.ref_ "A")) (Xtype.named_elem "a" Xtype.string_)));
    case "equal ignores order and stats" (fun () ->
        let s1 = mk [ d "A" Xtype.string_; d "B" Xtype.integer ] "A" in
        let s2 = mk [ d "B" Xtype.integer; d "A" Xtype.string_ ] "A" in
        check_bool "equal" true (Xschema.equal s1 s2));
    case "imdb schema well-formed" (fun () ->
        check_bool "ok" true (Result.is_ok (Xschema.check Imdb.Schema.schema));
        check_bool "s2 ok" true (Result.is_ok (Xschema.check Imdb.Schema.section2)));
  ]
