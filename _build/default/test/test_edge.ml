(* Edge cases and failure injection across modules. *)

open Legodb
open Test_util

let suite =
  [
    case "empty tables execute cleanly" (fun () ->
        let m = mapping_of (Init.all_inlined books_schema) in
        let db = Storage.create m.Mapping.catalog in
        let q =
          Xq_parse.parse ~name:"q" "FOR $b IN document(\"x\")/store/book RETURN $b/title"
        in
        let lq = Xq_translate.translate m q in
        let plans =
          List.map
            (fun (b : Logical.block) ->
              ((Optimizer.optimize_block (Storage.catalog db) b).Optimizer.plan, b.Logical.out))
            lq.Logical.blocks
        in
        let rows, _ = Executor.run_query db plans in
        check_int "no rows" 0 (List.length rows));
    case "executor extra predicates filter join results" (fun () ->
        let db = Test_relational.fill_db () in
        let plan =
          Physical.Join
            {
              jm = Physical.Hash_join;
              left =
                Physical.Scan
                  { rel = { Logical.alias = "p"; table = "People" };
                    access = Physical.Seq_scan; filters = [] };
              right =
                Physical.Scan
                  { rel = { Logical.alias = "t"; table = "Pets" };
                    access = Physical.Seq_scan; filters = [] };
              conds = [ (("p", "People_id"), ("t", "parent_People")) ];
              extra =
                [ { Logical.cmp = Logical.C_lt; lhs = ("p", "age");
                    rhs = Logical.O_const (Rtype.V_int 21) } ];
            }
        in
        let rows, _ = Executor.run_block db plan [] in
        (* only age 20 passes: 2 people x 3 pets *)
        check_int "filtered" 6 (List.length rows));
    case "executor null comparisons are false" (fun () ->
        check_bool "null=null" true
          (let db = Test_relational.fill_db () in
           let plan =
             Physical.Scan
               {
                 rel = { Logical.alias = "p"; table = "People" };
                 access = Physical.Seq_scan;
                 filters =
                   [ { Logical.cmp = Logical.C_eq; lhs = ("p", "name");
                       rhs = Logical.O_const Rtype.V_null } ];
               }
           in
           fst (Executor.run_block db plan []) = []));
    case "optimizer rejects empty blocks" (fun () ->
        match
          Optimizer.optimize_block Test_relational.catalog
            { Logical.relations = []; preds = []; out = [] }
        with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    case "cross join without predicates still plans" (fun () ->
        let b =
          {
            Logical.relations =
              [ { Logical.alias = "p"; table = "People" };
                { Logical.alias = "t"; table = "Pets" } ];
            preds = [];
            out = [ ("p", "name") ];
          }
        in
        let r = Optimizer.optimize_block Test_relational.catalog b in
        check_bool "cartesian rows" true (abs_float (r.Optimizer.rows -. 30000.) < 1.));
    case "navigation misses return empty, not exceptions" (fun () ->
        let m = mapping_of (Init.all_inlined (Lazy.force annotated_imdb)) in
        check_int "bad step" 0
          (List.length (Navigate.navigate m { Navigate.ty = "Show"; prefix = [] } "nope"));
        check_int "bad place" 0
          (List.length
             (Navigate.navigate m { Navigate.ty = "Nope"; prefix = [] } "title"));
        check_int "path through scalar" 0
          (List.length
             (Navigate.navigate_path m
                { Navigate.ty = "Show"; prefix = [] }
                [ "title"; "deeper" ])));
    case "attribute pipeline end to end (section 2 schema)" (fun () ->
        (* @type is an attribute in the section-2 schema: it must flow
           through mapping, shredding, querying and publishing *)
        let doc =
          Xml.elem "imdb"
            [
              Xml.elem "show"
                ~attrs:[ ("type", "Movie") ]
                [
                  Xml.leaf "title" "T1";
                  Xml.leaf "year" "1999";
                  Xml.leaf "aka" "A1";
                  Xml.leaf "box_office" "7";
                  Xml.leaf "video_sales" "8";
                ];
              Xml.elem "show"
                ~attrs:[ ("type", "TVseries") ]
                [
                  Xml.leaf "title" "T2";
                  Xml.leaf "year" "2000";
                  Xml.leaf "aka" "A2";
                  Xml.leaf "seasons" "3";
                  Xml.leaf "description" "D";
                ];
            ]
        in
        (match Validate.document Imdb.Schema.section2 doc with
        | Ok () -> ()
        | Error e -> Alcotest.failf "invalid: %s" (Format.asprintf "%a" Validate.pp_error e));
        let annotated = Annotate.schema (Collector.collect doc) Imdb.Schema.section2 in
        let m = mapping_of (Init.all_inlined annotated) in
        let db = Storage.refresh_stats (Shred.shred m doc) in
        check_bool "round trip" true (Xml.equal doc (Publish.document db m));
        let q =
          Xq_parse.parse ~name:"bytype"
            "FOR $v IN document(\"x\")/imdb/show WHERE $v/type = Movie RETURN $v/title"
        in
        let lq = Xq_translate.translate m q in
        let plans =
          List.map
            (fun (b : Logical.block) ->
              ((Optimizer.optimize_block (Storage.catalog db) b).Optimizer.plan, b.Logical.out))
            lq.Logical.blocks
        in
        let rows, _ = Executor.run_query db plans in
        check_int "one movie" 1 (List.length rows));
    case "aka{1,10} bounds enforced by section-2 schema" (fun () ->
        let mk n =
          Xml.elem "imdb"
            [
              Xml.elem "show"
                ~attrs:[ ("type", "Movie") ]
                ([ Xml.leaf "title" "T"; Xml.leaf "year" "1999" ]
                @ List.init n (fun i -> Xml.leaf "aka" (string_of_int i))
                @ [ Xml.leaf "box_office" "1"; Xml.leaf "video_sales" "2" ]);
            ]
        in
        check_bool "zero akas invalid" false
          (Result.is_ok (Validate.document Imdb.Schema.section2 (mk 0)));
        check_bool "ten akas valid" true
          (Result.is_ok (Validate.document Imdb.Schema.section2 (mk 10)));
        check_bool "eleven akas invalid" false
          (Result.is_ok (Validate.document Imdb.Schema.section2 (mk 11))));
    case "deep recursion in AnyElement documents" (fun () ->
        let any =
          Xschema.make ~root:"AnyElement"
            [
              {
                Xschema.name = "AnyElement";
                body =
                  Xtype.elem Label.Any
                    (Xtype.rep (Xtype.ref_ "AnyElement") Xtype.star);
              };
            ]
        in
        let rec deep n =
          if n = 0 then Xml.elem "leaf" [] else Xml.elem "node" [ deep (n - 1) ]
        in
        check_bool "valid at depth 200" true
          (Result.is_ok (Validate.document any (deep 200)));
        (* and the mapping stores the whole spine in one table *)
        let m = mapping_of any in
        let db = Shred.shred m (deep 50) in
        check_int "51 rows" 51 (Storage.row_count db "AnyElement");
        check_bool "round trip" true
          (Xml.equal (deep 50) (Publish.document db m)));
    case "workload file parsing via blank-line split survives queries with blank-free bodies"
      (fun () ->
        (* two queries in one string, as the CLI accepts *)
        let text =
          "FOR $v IN document(\"x\")/imdb/show RETURN $v/title\n\n\
           FOR $a IN document(\"x\")/imdb/actor RETURN $a/name"
        in
        let chunks =
          String.split_on_char '\n' text
          |> List.fold_left
               (fun (acc, cur) line ->
                 if String.trim line = "" then
                   match cur with [] -> (acc, []) | c -> (List.rev c :: acc, [])
                 else (acc, line :: cur))
               ([], [])
          |> fun (acc, cur) ->
          List.rev (match cur with [] -> acc | c -> List.rev c :: acc)
        in
        check_int "two chunks" 2 (List.length chunks));
    case "sql rendering of every workload query is well-formed text" (fun () ->
        let m = mapping_of (Init.all_inlined (Lazy.force annotated_imdb)) in
        List.iter
          (fun q ->
            let lq = Xq_translate.translate m q in
            List.iter
              (fun stmt ->
                let s = Sql.to_string stmt in
                check_bool "has SELECT" true (contains s "SELECT");
                check_bool "has FROM" true (contains s "FROM"))
              (Logical.query_to_sql lq))
          Imdb.Queries.all);
  ]
