open Legodb
open Test_util

let books_mapping = lazy (mapping_of (Init.all_inlined books_schema))

let suite =
  [
    case "books shred row counts" (fun () ->
        let m = Lazy.force books_mapping in
        let db = Shred.shred m books_doc in
        check_int "store" 1 (Storage.row_count db "Store");
        check_int "books" 2 (Storage.row_count db "Book");
        check_int "authors" 4 (Storage.row_count db "Author"));
    case "inline scalars land in columns" (fun () ->
        let m = Lazy.force books_mapping in
        let db = Shred.shred m books_doc in
        let rows = Storage.lookup db ~table:"Book" ~column:"isbn" (Rtype.V_string "222") in
        check_int "found by attribute" 1 (List.length rows);
        let row = List.hd rows in
        let title = row.(Storage.column_position db ~table:"Book" ~column:"title") in
        check_bool "title" true (title = Rtype.V_string "Database Systems"));
    case "optional absent becomes NULL" (fun () ->
        let m = Lazy.force books_mapping in
        let db = Shred.shred m books_doc in
        let rows = Storage.lookup db ~table:"Book" ~column:"isbn" (Rtype.V_string "222") in
        let row = List.hd rows in
        check_bool "blurb null" true
          (row.(Storage.column_position db ~table:"Book" ~column:"blurb") = Rtype.V_null));
    case "foreign keys point at parents" (fun () ->
        let m = Lazy.force books_mapping in
        let db = Shred.shred m books_doc in
        let books = List.of_seq (Storage.scan db "Book") in
        let key_pos = Storage.column_position db ~table:"Book" ~column:"Book_id" in
        let b222 =
          List.find
            (fun (r : Storage.row) ->
              r.(Storage.column_position db ~table:"Book" ~column:"isbn")
              = Rtype.V_string "222")
            books
        in
        let authors =
          Storage.lookup db ~table:"Author" ~column:"parent_Book" b222.(key_pos)
        in
        check_int "three authors of b222" 3 (List.length authors));
    case "books round trip" (fun () ->
        let m = Lazy.force books_mapping in
        let db = Shred.shred m books_doc in
        check_bool "equal" true (Xml.equal books_doc (Publish.document db m)));
    case "publish a single element" (fun () ->
        let m = Lazy.force books_mapping in
        let db = Shred.shred m books_doc in
        let node = Publish.element db m ~ty:"Author" ~id:1 in
        check_string "tag" "author" (Option.get (Xml.tag node)));
    case "shred_into accumulates documents" (fun () ->
        let m = Lazy.force books_mapping in
        let db = Storage.create m.Mapping.catalog in
        Shred.shred_into db m books_doc;
        Shred.shred_into db m books_doc;
        check_int "doubled" 4 (Storage.row_count db "Book"));
    case "invalid document raises Shred_error" (fun () ->
        let m = Lazy.force books_mapping in
        let bad = Xml.elem "store" [ Xml.elem "pamphlet" [] ] in
        match Shred.shred m bad with
        | _ -> Alcotest.fail "expected Shred_error"
        | exception Shred.Shred_error _ -> ());
    case "imdb round trip across configurations" (fun () ->
        let doc = Lazy.force small_imdb_doc in
        let stats = Collector.collect doc in
        let annotated = Annotate.schema stats Imdb.Schema.schema in
        List.iter
          (fun schema ->
            let m = mapping_of schema in
            let db = Shred.shred m doc in
            check_bool "round trip" true (Xml.equal doc (Publish.document db m)))
          [
            Init.all_inlined annotated;
            Init.all_outlined annotated;
            Init.normalize annotated;
          ]);
    case "round trip with horizontal partitioning" (fun () ->
        (* distribute the Show union, then shred a generated document:
           the lookahead must route movies and tv shows to their parts *)
        let doc = Lazy.force small_imdb_doc in
        let stats = Collector.collect doc in
        let annotated = Annotate.schema stats Imdb.Schema.schema in
        let ps0 = Init.normalize annotated in
        let loc =
          match
            List.find_opt
              (fun (_, t) -> match t with Xtype.Choice _ -> true | _ -> false)
              (Xtype.locations (Xschema.find ps0 "Show"))
          with
          | Some (l, _) -> l
          | None -> Alcotest.fail "no union in ps0 Show"
        in
        let dist = Rewrite.distribute_union ps0 ~tname:"Show" ~loc in
        let m = mapping_of dist in
        let db = Shred.shred m doc in
        (* horizontal partitioning loses the interleaving of movies and
           tv shows (no order columns, as in the paper): compare the
           show subtrees as multisets *)
        let doc' = Publish.document db m in
        let shows d =
          List.sort compare
            (List.map Xml.to_string (Xml.select [ "imdb"; "show" ] d))
        in
        check_bool "same shows" true (shows doc = shows doc');
        let rest d =
          List.map Xml.to_string
            (Xml.select [ "imdb"; "director" ] d @ Xml.select [ "imdb"; "actor" ] d)
        in
        check_bool "rest preserved in order" true (rest doc = rest doc');
        (* both partitions hold rows *)
        let p1 = Storage.row_count db "Show_Part1"
        and p2 = Storage.row_count db "Show_Part2" in
        check_bool "both non-empty" true (p1 > 0 && p2 > 0);
        check_int "partition" (Storage.row_count db "Show_Part1" + p2)
          (List.length (Xml.select [ "imdb"; "show" ] doc)));
    case "shredded cardinalities match collector statistics" (fun () ->
        let doc = Lazy.force small_imdb_doc in
        let stats = Collector.collect doc in
        let annotated = Annotate.schema stats Imdb.Schema.schema in
        let m = mapping_of (Init.all_inlined annotated) in
        let db = Shred.shred m doc in
        check_int "shows" (Option.get (Pathstat.count stats [ "imdb"; "show" ]))
          (Storage.row_count db "Show");
        check_int "episodes"
          (Option.get (Pathstat.count stats [ "imdb"; "show"; "episodes" ]))
          (Storage.row_count db "Episodes"));
    case "estimated catalog close to refreshed reality" (fun () ->
        (* the statistics translation should agree with statistics
           recomputed from the actual shredded rows *)
        let doc = Lazy.force small_imdb_doc in
        let stats = Collector.collect doc in
        let annotated = Annotate.schema stats Imdb.Schema.schema in
        let m = mapping_of (Init.all_inlined annotated) in
        let db = Storage.refresh_stats (Shred.shred m doc) in
        List.iter
          (fun (t : Rschema.table) ->
            let actual = Rschema.table (Storage.catalog db) t.Rschema.tname in
            check_bool (t.Rschema.tname ^ " card") true
              (abs_float (t.Rschema.card -. actual.Rschema.card) <= 0.5))
          m.Mapping.catalog.tables);
  ]

(* order-columns extension: exact round trips even under partitioning *)
let ordered_suite =
  [
    case "order columns appear in every table" (fun () ->
        let annotated = Lazy.force annotated_imdb in
        match Mapping.of_pschema ~order_columns:true (Init.all_inlined annotated) with
        | Error es -> Alcotest.failf "%s" (String.concat ";" es)
        | Ok m ->
            List.iter
              (fun (t : Rschema.table) ->
                check_bool t.Rschema.tname true
                  (Rschema.find_column t Naming.order_col <> None))
              m.Mapping.catalog.Rschema.tables);
    case "ordered mapping round-trips a partitioned schema exactly" (fun () ->
        let doc = Lazy.force small_imdb_doc in
        let stats = Collector.collect doc in
        let annotated = Annotate.schema stats Imdb.Schema.schema in
        let ps0 = Init.normalize annotated in
        let loc =
          match
            List.find_opt
              (fun (_, t) -> match t with Xtype.Choice _ -> true | _ -> false)
              (Xtype.locations (Xschema.find ps0 "Show"))
          with
          | Some (l, _) -> l
          | None -> Alcotest.fail "no union in ps0 Show"
        in
        let dist = Rewrite.distribute_union ps0 ~tname:"Show" ~loc in
        match Mapping.of_pschema ~order_columns:true dist with
        | Error es -> Alcotest.failf "%s" (String.concat ";" es)
        | Ok m ->
            let db = Shred.shred m doc in
            check_bool "exact round trip" true
              (Xml.equal doc (Publish.document db m)));
    case "ordered mapping keeps ordinary round trips exact too" (fun () ->
        let doc = Lazy.force small_imdb_doc in
        let stats = Collector.collect doc in
        let annotated = Annotate.schema stats Imdb.Schema.schema in
        match Mapping.of_pschema ~order_columns:true (Init.all_inlined annotated) with
        | Error es -> Alcotest.failf "%s" (String.concat ";" es)
        | Ok m ->
            let db = Shred.shred m doc in
            check_bool "exact" true (Xml.equal doc (Publish.document db m)));
    case "order columns cost a little" (fun () ->
        let annotated = Lazy.force annotated_imdb in
        let inl = Init.all_inlined annotated in
        let plain = mapping_of inl in
        match Mapping.of_pschema ~order_columns:true inl with
        | Error es -> Alcotest.failf "%s" (String.concat ";" es)
        | Ok ordered ->
            let cost m =
              let q = Xq_translate.translate m (Imdb.Queries.q 16) in
              snd (Optimizer.query_cost m.Mapping.catalog q)
            in
            let cp = cost plain and co = cost ordered in
            check_bool "ordered slightly dearer" true (co >= cp);
            check_bool "within 10 percent" true (co <= cp *. 1.10));
  ]
