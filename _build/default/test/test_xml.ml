open Legodb
open Test_util

let parse = Xml_parse.parse_string

let roundtrip name input =
  case name (fun () ->
      let doc = parse input in
      let doc' = parse (Xml.to_string doc) in
      check_bool "round trip" true (Xml.equal doc doc'))

let parse_error name input =
  case name (fun () ->
      match parse input with
      | _ -> Alcotest.failf "expected a parse error for %S" input
      | exception Xml_parse.Parse_error _ -> ())

let suite =
  [
    case "element with text" (fun () ->
        let doc = parse "<a>hello</a>" in
        check_string "tag" "a" (Option.get (Xml.tag doc));
        check_string "text" "hello" (Xml.text_content doc));
    case "attributes" (fun () ->
        let doc = parse {|<a x="1" y='two'/>|} in
        check_string "x" "1" (Option.get (Xml.attribute "x" doc));
        check_string "y" "two" (Option.get (Xml.attribute "y" doc));
        check_bool "missing" true (Xml.attribute "z" doc = None));
    case "nesting and children" (fun () ->
        let doc = parse "<a><b>1</b><c/><b>2</b></a>" in
        check_int "element children" 3 (List.length (Xml.element_children doc));
        check_int "b children" 2 (List.length (Xml.child_elements "b" doc));
        check_string "first b" "1"
          (Xml.text_content (Option.get (Xml.first_child "b" doc))));
    case "entities decode" (fun () ->
        let doc = parse "<a>&lt;x&gt; &amp; &quot;y&quot; &#65;&#x42;</a>" in
        check_string "decoded" {|<x> & "y" AB|} (Xml.text_content doc));
    case "escaping on output" (fun () ->
        let doc = Xml.leaf "a" "<&>\"'" in
        let s = Xml.to_string doc in
        check_bool "no raw angle" true (not (String.contains (String.sub s 3 (String.length s - 7)) '<'));
        check_bool "round trip" true (Xml.equal doc (parse s)));
    case "comments skipped" (fun () ->
        let doc = parse "<a><!-- hi --><b/><!-- bye --></a>" in
        check_int "children" 1 (List.length (Xml.element_children doc)));
    case "prolog and doctype skipped" (fun () ->
        let doc =
          parse "<?xml version=\"1.0\"?><!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b/></a>"
        in
        check_string "root" "a" (Option.get (Xml.tag doc)));
    case "cdata" (fun () ->
        let doc = parse "<a><![CDATA[<raw> & stuff]]></a>" in
        check_string "cdata" "<raw> & stuff" (Xml.text_content doc));
    case "whitespace-only text dropped" (fun () ->
        let doc = parse "<a>\n  <b/>\n  <c/>\n</a>" in
        check_int "children" 2 (List.length (Xml.children doc)));
    case "select paths" (fun () ->
        let doc = parse "<a><b><c>1</c></b><b><c>2</c><c>3</c></b></a>" in
        check_int "a/b/c" 3 (List.length (Xml.select [ "a"; "b"; "c" ] doc));
        check_int "wrong root" 0 (List.length (Xml.select [ "x"; "b" ] doc)));
    case "count and fold" (fun () ->
        let doc = parse "<a><b><c/></b><d/></a>" in
        check_int "count" 4 (Xml.count_elements doc);
        let paths = Xml.fold (fun acc p _ -> String.concat "/" p :: acc) [] doc in
        check_bool "deep path seen" true (List.mem "a/b/c" paths));
    case "normalize merges text" (fun () ->
        let doc = Xml.elem "a" [ Xml.text "x"; Xml.text ""; Xml.text "y" ] in
        match Xml.normalize doc with
        | Xml.Element (_, _, [ Xml.Text "xy" ]) -> ()
        | _ -> Alcotest.fail "expected merged text");
    case "equal ignores text fragmentation" (fun () ->
        let a = Xml.elem "a" [ Xml.text "xy" ] in
        let b = Xml.elem "a" [ Xml.text "x"; Xml.text "y" ] in
        check_bool "equal" true (Xml.equal a b));
    roundtrip "round trip simple" "<a x=\"1\"><b>t</b><c/></a>";
    roundtrip "round trip escapes" "<a>&lt;&amp;&gt;</a>";
    roundtrip "round trip imdb sample"
      {|<imdb><show type="Movie"><title>Fugitive, The</title><year>1993</year></show></imdb>|};
    case "round trip generated imdb" (fun () ->
        let doc = Lazy.force small_imdb_doc in
        let doc' = parse (Xml.to_string doc) in
        check_bool "equal" true (Xml.equal doc doc'));
    parse_error "unclosed tag" "<a><b></a>";
    parse_error "bad entity" "<a>&unknown;</a>";
    parse_error "trailing garbage" "<a/><b/>";
    parse_error "unterminated string" "<a x=\"1/>";
    parse_error "empty input" "   ";
    case "error message has line info" (fun () ->
        (try ignore (parse "<a>\n<b>\n</a>") with
        | Xml_parse.Parse_error { position; message } ->
            let s = Xml_parse.error_message position message "<a>\n<b>\n</a>" in
            check_bool "mentions line 3" true
              (String.length s > 0
              && Option.is_some
                   (String.index_opt s '3'))));
  ]
