open Legodb
open Test_util

(* statistics for the Section 2 schema, small and round for easy checks *)
let s2_stats =
  Pathstat.of_list
    [
      ([ "imdb" ], Pathstat.STcnt 1);
      ([ "imdb"; "show" ], Pathstat.STcnt 1000);
      ([ "imdb"; "show"; "type" ], Pathstat.STsize 8);
      ([ "imdb"; "show"; "type" ], Pathstat.STdistinct 2);
      ([ "imdb"; "show"; "title" ], Pathstat.STsize 50);
      ([ "imdb"; "show"; "title" ], Pathstat.STdistinct 1000);
      ([ "imdb"; "show"; "year" ], Pathstat.STbase (1900, 2000, 100));
      ([ "imdb"; "show"; "aka" ], Pathstat.STcnt 2000);
      ([ "imdb"; "show"; "aka" ], Pathstat.STsize 40);
      ([ "imdb"; "show"; "review" ], Pathstat.STcnt 500);
      ([ "imdb"; "show"; "review"; "TILDE" ], Pathstat.STcnt 500);
      ([ "imdb"; "show"; "review"; "TILDE" ], Pathstat.STsize 80);
      ([ "imdb"; "show"; "review"; "nyt" ], Pathstat.STcnt 125);
      ([ "imdb"; "show"; "review"; "suntimes" ], Pathstat.STcnt 375);
      ([ "imdb"; "show"; "box_office" ], Pathstat.STcnt 750);
      ([ "imdb"; "show"; "box_office" ], Pathstat.STbase (1, 1000000, 750));
      ([ "imdb"; "show"; "video_sales" ], Pathstat.STcnt 750);
      ([ "imdb"; "show"; "video_sales" ], Pathstat.STbase (1, 1000000, 750));
      ([ "imdb"; "show"; "seasons" ], Pathstat.STcnt 250);
      ([ "imdb"; "show"; "seasons" ], Pathstat.STbase (1, 20, 20));
      ([ "imdb"; "show"; "description" ], Pathstat.STcnt 250);
      ([ "imdb"; "show"; "description" ], Pathstat.STsize 120);
      ([ "imdb"; "show"; "episode" ], Pathstat.STcnt 2500);
      ([ "imdb"; "show"; "episode"; "name" ], Pathstat.STsize 40);
      ([ "imdb"; "show"; "episode"; "guest_director" ], Pathstat.STsize 40);
    ]

let s2 = lazy (Annotate.schema s2_stats Imdb.Schema.section2)

(* the location of the (Movie | TV) union in Show's body *)
let choice_loc schema =
  let body = Xschema.find schema "Show" in
  match
    List.find_opt
      (fun (_, t) -> match t with Xtype.Choice _ -> true | _ -> false)
      (Xtype.locations body)
  with
  | Some (loc, _) -> loc
  | None -> Alcotest.fail "no union found in Show"

let elem_loc schema ty tag =
  let body = Xschema.find schema ty in
  match
    List.find_opt
      (fun (_, t) ->
        match t with
        | Xtype.Elem { label = Label.Name n; _ } -> String.equal n tag
        | _ -> false)
      (Xtype.locations body)
  with
  | Some (loc, _) -> loc
  | None -> Alcotest.failf "no element %s in %s" tag ty

let ref_loc schema ty target =
  let body = Xschema.find schema ty in
  match
    List.find_opt
      (fun (_, t) -> match t with Xtype.Ref n -> String.equal n target | _ -> false)
      (Xtype.locations body)
  with
  | Some (loc, _) -> loc
  | None -> Alcotest.failf "no reference to %s in %s" target ty

(* both schemas accept the same random documents *)
let same_language ?(n = 15) s1 s2 =
  let rng = Random.State.make [| 23 |] in
  for _ = 1 to n do
    let doc = doc_of_schema ~rng s1 in
    check_bool "s1 doc valid under s2" true
      (Result.is_ok (Validate.document s2 doc))
  done;
  let rng = Random.State.make [| 29 |] in
  for _ = 1 to n do
    let doc = doc_of_schema ~rng s2 in
    check_bool "s2 doc valid under s1" true
      (Result.is_ok (Validate.document s1 doc))
  done

let card schema ty =
  match Rewrite.card_of_def schema ty with
  | Some c -> c
  | None -> Alcotest.failf "no cardinality for %s" ty

let suite =
  [
    case "outline then inline is identity" (fun () ->
        let s = Lazy.force s2 in
        let loc = elem_loc s "Show" "title" in
        let s', name = Rewrite.outline s ~tname:"Show" ~loc in
        check_string "name" "Title" name;
        check_bool "new def exists" true (Xschema.mem s' "Title");
        let s'' = Rewrite.inline s' ~tname:"Show" ~loc:(ref_loc s' "Show" "Title") in
        check_bool "round trip" true (Xschema.equal s s''));
    case "outline keeps p-schema and language" (fun () ->
        let s = Lazy.force s2 in
        let s', _ = Rewrite.outline s ~tname:"Show" ~loc:(elem_loc s "Show" "title") in
        check_bool "p-schema" true (Pschema.is_pschema s');
        same_language s s');
    case "cannot outline the body root" (fun () ->
        let s = Lazy.force s2 in
        match Rewrite.outline s ~tname:"Show" ~loc:[] with
        | _ -> Alcotest.fail "expected Not_applicable"
        | exception Rewrite.Not_applicable _ -> ());
    case "cannot inline a shared type" (fun () ->
        let s = Lazy.force s2 in
        (* make Aka shared by adding a second reference *)
        let body = Xschema.find s "Show" in
        let s =
          Xschema.update s "Show"
            (Xtype.seq [ body; Xtype.rep (Xtype.ref_ "Aka") Xtype.star ])
        in
        check_bool "not inlinable" false
          (Rewrite.can_inline s ~tname:"Show" ~loc:(ref_loc s "Show" "Aka")));
    case "cannot inline under multi-occurrence repetition" (fun () ->
        let s = Lazy.force s2 in
        (* Review appears under a star; its ref location is inside Rep *)
        let loc = ref_loc s "Show" "Review" in
        check_bool "not inlinable" false (Rewrite.can_inline s ~tname:"Show" ~loc));
    case "cannot inline a recursive type" (fun () ->
        let s =
          Xschema.make ~root:"R"
            [
              {
                Xschema.name = "R";
                body = Xtype.named_elem "r" (Xtype.optional (Xtype.ref_ "R"));
              };
            ]
        in
        let loc = ref_loc s "R" "R" in
        check_bool "not inlinable" false (Rewrite.can_inline s ~tname:"R" ~loc));
    case "inline a union branch under an optional" (fun () ->
        let s = Lazy.force s2 in
        let s = Rewrite.union_to_options s ~tname:"Show" ~loc:(choice_loc s) in
        let loc = ref_loc s "Show" "Movie" in
        check_bool "inlinable" true (Rewrite.can_inline s ~tname:"Show" ~loc);
        let s' = Rewrite.inline s ~tname:"Show" ~loc in
        check_bool "p-schema" true (Pschema.is_pschema s'));
    case "union_to_options widens the language" (fun () ->
        let s = Lazy.force s2 in
        let s' = Rewrite.union_to_options s ~tname:"Show" ~loc:(choice_loc s) in
        check_bool "p-schema" true (Pschema.is_pschema s');
        (* old documents remain valid *)
        let rng = Random.State.make [| 31 |] in
        for _ = 1 to 10 do
          let doc = doc_of_schema ~rng s in
          check_bool "still valid" true (Result.is_ok (Validate.document s' doc))
        done);
    case "distribute_union partitions Show" (fun () ->
        let s = Lazy.force s2 in
        let s' = Rewrite.distribute_union s ~tname:"Show" ~loc:(choice_loc s) in
        check_bool "p-schema" true (Pschema.is_pschema s');
        (* Show becomes a union of two type names *)
        (match Xschema.find s' "Show" with
        | Xtype.Choice [ Xtype.Ref p1; Xtype.Ref p2 ] ->
            let b1 = Xschema.find s' p1 and b2 = Xschema.find s' p2 in
            let has_ref body name = List.mem name (Xtype.refs body) in
            check_bool "part1 is a show element" true
              (match b1 with
              | Xtype.Elem { label = Label.Name "show"; _ } -> true
              | _ -> false);
            check_bool "movie branch in one part" true
              (has_ref b1 "Movie" <> has_ref b2 "Movie");
            check_bool "tv branch in the other" true
              (has_ref b1 "TV" <> has_ref b2 "TV");
            check_bool "shared aka duplicated into both" true
              (has_ref b1 "Aka" && has_ref b2 "Aka")
        | t -> Alcotest.failf "unexpected Show body: %s" (Xtype.to_string t));
        same_language s s');
    case "distribute_union splits counts by branch weight" (fun () ->
        let s = Lazy.force s2 in
        let s' = Rewrite.distribute_union s ~tname:"Show" ~loc:(choice_loc s) in
        match Xschema.find s' "Show" with
        | Xtype.Choice [ Xtype.Ref p1; Xtype.Ref p2 ] ->
            let c1 = card s' p1 and c2 = card s' p2 in
            check_bool "sums to shows" true (abs_float (c1 +. c2 -. 1000.) < 1.);
            (* movie branch weight = 750/(750+250) *)
            check_bool "3:1 split" true
              (abs_float (Float.max c1 c2 -. 750.) < 1.)
        | _ -> Alcotest.fail "not partitioned");
    case "factor_union reverses distribution" (fun () ->
        let s = Lazy.force s2 in
        let s' = Rewrite.distribute_union s ~tname:"Show" ~loc:(choice_loc s) in
        let s'' = Rewrite.factor_union s' ~tname:"Show" ~loc:[] in
        (* after factoring, Show is again a single element with a union
           inside; languages coincide with the original *)
        same_language s s'');
    case "split_repetition on aka" (fun () ->
        let s = Lazy.force s2 in
        let loc = ref_loc s "Show" "Aka" in
        (* the ref sits inside Aka{1,10}: split at the repetition *)
        let rep_loc = List.filteri (fun i _ -> i < List.length loc - 1) loc in
        let s' = Rewrite.split_repetition s ~tname:"Show" ~loc:rep_loc in
        check_bool "p-schema" true (Pschema.is_pschema s');
        check_bool "fresh copy exists" true (Xschema.mem s' "Aka_1");
        (* counts: 1000 parents get the mandatory first aka *)
        check_bool "first count" true (abs_float (card s' "Aka_1" -. 1000.) < 1.);
        check_bool "rest count" true (abs_float (card s' "Aka" -. 1000.) < 1.);
        same_language s s');
    case "merge_repetition reverses split" (fun () ->
        let s = Lazy.force s2 in
        let loc = ref_loc s "Show" "Aka" in
        let rep_loc = List.filteri (fun i _ -> i < List.length loc - 1) loc in
        let s' = Rewrite.split_repetition s ~tname:"Show" ~loc:rep_loc in
        (* the split produced [Aka_1, Aka{0,9}] inside the content Seq *)
        let seq_loc = List.filteri (fun i _ -> i < List.length rep_loc - 1) rep_loc in
        let s'' = Rewrite.merge_repetition s' ~tname:"Show" ~loc:seq_loc in
        check_bool "copy gone" false (Xschema.mem s'' "Aka_1");
        same_language s s'');
    case "materialize_wildcard splits reviews" (fun () ->
        let s = Lazy.force s2 in
        (* the wildcard element lives in the Review def *)
        let body = Xschema.find s "Review" in
        let loc =
          match
            List.find_opt
              (fun (_, t) ->
                match t with
                | Xtype.Elem { label = Label.Any; _ } -> true
                | _ -> false)
              (Xtype.locations body)
          with
          | Some (loc, _) -> loc
          | None -> Alcotest.fail "no wildcard"
        in
        let s' = Rewrite.materialize_wildcard s ~tname:"Review" ~loc ~tag:"nyt" in
        check_bool "p-schema" true (Pschema.is_pschema s');
        check_bool "nyt type" true (Xschema.mem s' "Nyt");
        check_bool "other type" true (Xschema.mem s' "Other_nyt");
        (* counts split 125 / 375 *)
        check_bool "nyt count" true (abs_float (card s' "Nyt" -. 125.) < 1.);
        check_bool "other count" true (abs_float (card s' "Other_nyt" -. 375.) < 1.);
        same_language s s');
    case "branch weights from statistics" (fun () ->
        let s = Lazy.force s2 in
        match Xschema.find s "Show" with
        | Xtype.Elem { content = Xtype.Seq items; _ } -> (
            match List.rev items with
            | Xtype.Choice branches :: _ -> (
                match Rewrite.branch_weights s branches with
                | [ w1; w2 ] ->
                    check_bool "sums to one" true (abs_float (w1 +. w2 -. 1.) < 1e-9);
                    check_bool "75/25" true (abs_float (w1 -. 0.75) < 0.01)
                | _ -> Alcotest.fail "expected two weights")
            | _ -> Alcotest.fail "no union at end of Show")
        | _ -> Alcotest.fail "unexpected Show body");
    case "space: default kinds are inline and outline" (fun () ->
        Alcotest.(check (list bool))
          "kinds"
          [ true; true ]
          (List.map
             (fun k -> List.mem k Space.all_kinds)
             Space.default_kinds));
    case "space: neighbors preserve p-schema" (fun () ->
        let s = Init.normalize (Lazy.force s2) in
        let nbrs = Space.neighbors ~kinds:Space.all_kinds s in
        check_bool "some neighbors" true (List.length nbrs > 5);
        List.iter
          (fun (step, s') ->
            if not (Pschema.is_pschema s') then
              Alcotest.failf "step broke stratification: %s"
                (Format.asprintf "%a" Space.pp_step step))
          nbrs);
    case "space: outline enables the inverse inline step" (fun () ->
        let s = Init.normalize (Lazy.force s2) in
        let steps = Space.applicable ~kinds:Space.default_kinds s in
        let kinds = List.map Space.kind_of_step steps in
        (* every reference in a fresh p-schema sits under a repetition or
           union, so only outline steps apply initially *)
        check_bool "has outline" true (List.mem Space.K_outline kinds);
        check_bool "no inline yet" false (List.mem Space.K_inline kinds);
        let s' =
          Space.apply s
            (List.find (fun st -> Space.kind_of_step st = Space.K_outline) steps)
        in
        let kinds' =
          List.map Space.kind_of_step (Space.applicable ~kinds:Space.default_kinds s')
        in
        check_bool "inline after outline" true (List.mem Space.K_inline kinds'));
  ]
