open Legodb
open Test_util

let inlined = lazy (Init.all_inlined (Lazy.force annotated_imdb))
let m_inlined = lazy (mapping_of (Lazy.force inlined))

let table m ty = Rschema.table m.Mapping.catalog ty

let suite =
  [
    case "one table per concrete type" (fun () ->
        let m = Lazy.force m_inlined in
        let names =
          List.map (fun (t : Rschema.table) -> t.Rschema.tname) m.Mapping.catalog.tables
        in
        List.iter
          (fun expected ->
            check_bool expected true (List.mem expected names))
          [ "IMDB"; "Show"; "Aka"; "Reviews"; "Episodes"; "Director"; "Directed";
            "Actor"; "Played"; "Award" ]);
    case "non-pschema is rejected" (fun () ->
        match Mapping.of_pschema Imdb.Schema.schema with
        | Error es -> check_bool "errors" true (es <> [])
        | Ok _ -> Alcotest.fail "expected failure");
    case "keys, fks and indexes" (fun () ->
        let m = Lazy.force m_inlined in
        let t = table m "Aka" in
        check_string "key" "Aka_id" t.Rschema.key;
        (match t.Rschema.fks with
        | [ ("parent_Show", "Show") ] -> ()
        | _ -> Alcotest.fail "bad fks");
        check_bool "key indexed" true (Rschema.has_index t "Aka_id");
        check_bool "fk indexed" true (Rschema.has_index t "parent_Show"));
    case "inlined union becomes nullable columns" (fun () ->
        let m = Lazy.force m_inlined in
        let t = table m "Show" in
        let bo = Rschema.column t "box_office" in
        check_bool "nullable" true bo.Rschema.nullable;
        check_bool "null fraction" true
          (abs_float (bo.Rschema.stats.null_frac -. (1. -. (7000. /. 34798.))) < 0.01);
        let title = Rschema.column t "title" in
        check_bool "title not nullable" false title.Rschema.nullable);
    case "statistics translated" (fun () ->
        let m = Lazy.force m_inlined in
        let t = table m "Show" in
        check_bool "card" true (t.Rschema.card = 34798.);
        let year = Rschema.column t "year" in
        check_bool "min" true (year.Rschema.stats.v_min = Some 1800);
        check_bool "distinct" true (year.Rschema.stats.distinct = 300.);
        let title = Rschema.column t "title" in
        check_bool "width" true (title.Rschema.stats.avg_width = 50.));
    case "nested inline elements use path-joined names" (fun () ->
        let m = Lazy.force m_inlined in
        let t = table m "Actor" in
        check_bool "biography_birthday" true
          (Rschema.find_column t "biography_birthday" <> None));
    case "scalar-rooted type uses the root tag column" (fun () ->
        let m = Lazy.force m_inlined in
        let t = table m "Aka" in
        check_bool "aka column" true (Rschema.find_column t "aka" <> None));
    case "wildcard gets tag and value columns" (fun () ->
        let m = Lazy.force m_inlined in
        let t = table m "Reviews" in
        check_bool "tilde" true (Rschema.find_column t "tilde" <> None);
        check_bool "value (root tag rule)" true
          (Rschema.find_column t "reviews" <> None));
    case "transparent types are collapsed" (fun () ->
        let s = Lazy.force inlined in
        (* distribute the (movie|tv) optional pair?  use section2 with a
           real union instead *)
        ignore s;
        let s2 = Annotate.schema Pathstat.empty Imdb.Schema.section2 in
        let loc =
          let body = Xschema.find s2 "Show" in
          match
            List.find_opt
              (fun (_, t) -> match t with Xtype.Choice _ -> true | _ -> false)
              (Xtype.locations body)
          with
          | Some (l, _) -> l
          | None -> Alcotest.fail "no choice"
        in
        let dist = Rewrite.distribute_union s2 ~tname:"Show" ~loc in
        let m = mapping_of dist in
        check_bool "Show is transparent" true (List.mem "Show" m.Mapping.transparent);
        check_bool "no Show table" true
          (Rschema.find_table m.Mapping.catalog "Show" = None);
        (* the parts attach directly to IMDB *)
        let p1 = table m "Show_Part1" in
        (match p1.Rschema.fks with
        | [ ("parent_IMDB", "IMDB") ] -> ()
        | _ -> Alcotest.fail "parts should reference IMDB");
        (* the shared Aka table now has two nullable parents *)
        let aka = table m "Aka" in
        check_int "two fks" 2 (List.length aka.Rschema.fks));
    case "navigate: inline column" (fun () ->
        let m = Lazy.force m_inlined in
        match Navigate.navigate m { Navigate.ty = "Show"; prefix = [] } "title" with
        | [ Navigate.F_column { hops = []; ty = "Show"; column = "title" } ] -> ()
        | fs ->
            Alcotest.failf "unexpected: %s"
              (String.concat "; " (List.map (Format.asprintf "%a" Navigate.pp_found) fs)));
    case "navigate: outlined child" (fun () ->
        let m = Lazy.force m_inlined in
        match Navigate.navigate m { Navigate.ty = "Show"; prefix = [] } "aka" with
        | [ Navigate.F_column { hops = [ "Aka" ]; ty = "Aka"; column = "aka" } ] -> ()
        | _ -> Alcotest.fail "expected the Aka chain");
    case "navigate: nested inline element" (fun () ->
        let m = Lazy.force m_inlined in
        match Navigate.navigate m { Navigate.ty = "Actor"; prefix = [] } "biography" with
        | [ Navigate.F_elem { hops = []; place = { ty = "Actor"; prefix = [ "biography" ] } } ] ->
            ()
        | _ -> Alcotest.fail "expected an inline element");
    case "navigate: wildcard step" (fun () ->
        let m = Lazy.force m_inlined in
        match Navigate.navigate m { Navigate.ty = "Show"; prefix = [] } "reviews" with
        | [ Navigate.F_elem { hops = [ "Reviews" ]; place } ] -> (
            match Navigate.navigate m place "nyt" with
            | [ Navigate.F_wild { ty = "Reviews"; tilde = "tilde"; data = "reviews"; tag = "nyt"; _ } ] ->
                ()
            | _ -> Alcotest.fail "expected a wildcard hit")
        | _ -> Alcotest.fail "expected the Reviews chain");
    case "navigate: attribute step" (fun () ->
        let m = mapping_of (Init.all_inlined Imdb.Schema.section2) in
        match Navigate.navigate m { Navigate.ty = "Show"; prefix = [] } "type" with
        | [ Navigate.F_column { column = "type"; _ } ] -> ()
        | _ -> Alcotest.fail "expected the attribute column");
    case "navigate_path chains hops" (fun () ->
        let m = Lazy.force m_inlined in
        match
          Navigate.navigate_path m
            { Navigate.ty = "IMDB"; prefix = [] }
            [ "actor"; "played"; "title" ]
        with
        | [ Navigate.F_column { hops = [ "Actor"; "Played" ]; column = "title"; _ } ] -> ()
        | _ -> Alcotest.fail "expected a two-hop chain");
    case "enter_root matches the document root" (fun () ->
        let m = Lazy.force m_inlined in
        (match Navigate.enter_root m "imdb" with
        | [ Navigate.F_elem { hops = [ "IMDB" ]; _ } ] -> ()
        | _ -> Alcotest.fail "expected the IMDB table");
        check_int "no match" 0 (List.length (Navigate.enter_root m "nope")));
    case "descendant_tables for publish" (fun () ->
        let m = Lazy.force m_inlined in
        let chains =
          Navigate.descendant_tables m { Navigate.ty = "Show"; prefix = [] }
        in
        let lasts = List.map (fun hops -> List.nth hops (List.length hops - 1)) chains in
        List.iter
          (fun t -> check_bool t true (List.mem t lasts))
          [ "Aka"; "Reviews"; "Episodes" ];
        check_int "exactly three" 3 (List.length chains));
    case "descendant_tables stops on recursion" (fun () ->
        let s =
          Xschema.make ~root:"R"
            [
              {
                Xschema.name = "R";
                body = Xtype.named_elem "r" (Xtype.rep (Xtype.ref_ "R") Xtype.star);
              };
            ]
        in
        let m = mapping_of s in
        let chains = Navigate.descendant_tables m { Navigate.ty = "R"; prefix = [] } in
        check_int "one level" 1 (List.length chains));
    case "partitioned binding resolves to both parts" (fun () ->
        let s2 = Annotate.schema Pathstat.empty Imdb.Schema.section2 in
        let loc =
          match
            List.find_opt
              (fun (_, t) -> match t with Xtype.Choice _ -> true | _ -> false)
              (Xtype.locations (Xschema.find s2 "Show"))
          with
          | Some (l, _) -> l
          | None -> Alcotest.fail "no choice"
        in
        let dist = Rewrite.distribute_union s2 ~tname:"Show" ~loc in
        let m = mapping_of dist in
        check_int "two targets" 2
          (List.length
             (Navigate.navigate m { Navigate.ty = "IMDB"; prefix = [] } "show")));
  ]
