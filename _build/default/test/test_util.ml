(* Shared helpers for the test suites. *)

open Legodb

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let case name f = Alcotest.test_case name `Quick f

(* Generate a random document valid for a schema: choices pick random
   branches, repetitions draw a small count within bounds, scalars get
   fresh values.  Wildcards draw from a fixed tag pool disjoint from
   ordinary tags. *)
let doc_of_schema ?(rng = Random.State.make [| 7 |]) ?(rep_max = 3) schema =
  let counter = ref 0 in
  let fresh_string () =
    incr counter;
    Printf.sprintf "s%d" !counter
  in
  let fresh_int () =
    incr counter;
    string_of_int (1000 + !counter)
  in
  let wild_tags = [| "w_alpha"; "w_beta"; "w_gamma" |] in
  let scalar_text = function
    | Xtype.String_t -> fresh_string ()
    | Xtype.Integer_t -> fresh_int ()
  in
  let rec gen depth t : (string * string) list * Xml.t list * string option =
    (* attrs, child nodes, text content *)
    match t with
    | Xtype.Empty -> ([], [], None)
    | Xtype.Scalar (k, _) -> ([], [], Some (scalar_text k))
    | Xtype.Attr (n, content) ->
        let kind =
          match content with Xtype.Scalar (k, _) -> k | _ -> Xtype.String_t
        in
        ([ (n, scalar_text kind) ], [], None)
    | Xtype.Elem e ->
        let tag =
          match e.label with
          | Label.Name n -> n
          | Label.Any -> wild_tags.(Random.State.int rng (Array.length wild_tags))
          | Label.Any_except excl ->
              let candidates =
                Array.to_list wild_tags
                |> List.filter (fun t -> not (List.mem t excl))
              in
              (match candidates with c :: _ -> c | [] -> "w_other")
        in
        let attrs, kids, text = gen depth e.content in
        let children =
          match text with Some s -> kids @ [ Xml.Text s ] | None -> kids
        in
        ([], [ Xml.Element (tag, attrs, children) ], None)
    | Xtype.Seq ts ->
        List.fold_left
          (fun (attrs, kids, text) u ->
            let a, k, t = gen depth u in
            (attrs @ a, kids @ k, match text with Some _ -> text | None -> t))
          ([], [], None) ts
    | Xtype.Choice ts ->
        let nullable_first =
          if depth > 6 then
            match List.find_opt Xtype.nullable ts with
            | Some t -> t
            | None -> List.nth ts (Random.State.int rng (List.length ts))
          else List.nth ts (Random.State.int rng (List.length ts))
        in
        gen depth nullable_first
    | Xtype.Rep (u, o) ->
        let hi =
          match o.Xtype.hi with
          | Xtype.Bounded h -> min h (o.Xtype.lo + rep_max)
          | Xtype.Unbounded -> o.Xtype.lo + rep_max
        in
        let hi = if depth > 6 then o.Xtype.lo else hi in
        let n = o.Xtype.lo + Random.State.int rng (max 1 (hi - o.Xtype.lo + 1)) in
        let acc = ref ([], [], None) in
        for _ = 1 to n do
          let a, k, t = gen depth u in
          let aa, kk, tt = !acc in
          acc := (aa @ a, kk @ k, match tt with Some _ -> tt | None -> t)
        done;
        !acc
    | Xtype.Ref n -> gen (depth + 1) (Xschema.find schema n)
  in
  match gen 0 (Xschema.find schema (Xschema.root schema)) with
  | _, [ doc ], _ -> doc
  | _ -> failwith "doc_of_schema: root is not a single element"

(* A tiny bookstore-style schema used by unit tests (smaller than IMDB). *)
let books_schema =
  let book =
    Xtype.named_elem "book"
      (Xtype.seq
         [
           Xtype.attr "isbn" Xtype.string_;
           Xtype.named_elem "title" Xtype.string_;
           Xtype.named_elem "price" Xtype.integer;
           Xtype.rep (Xtype.ref_ "Author") Xtype.plus;
           Xtype.optional (Xtype.named_elem "blurb" Xtype.string_);
         ])
  in
  let author =
    Xtype.named_elem "author"
      (Xtype.seq
         [ Xtype.named_elem "name" Xtype.string_ ])
  in
  let store =
    Xtype.named_elem "store" (Xtype.rep (Xtype.ref_ "Book") Xtype.star)
  in
  Xschema.make ~root:"Store"
    [
      { Xschema.name = "Store"; body = store };
      { Xschema.name = "Book"; body = book };
      { Xschema.name = "Author"; body = author };
    ]

let books_doc =
  Xml.elem "store"
    [
      Xml.elem "book"
        ~attrs:[ ("isbn", "111") ]
        [
          Xml.leaf "title" "Types and Programming Languages";
          Xml.leaf "price" "90";
          Xml.elem "author" [ Xml.leaf "name" "Pierce" ];
          Xml.leaf "blurb" "the red book";
        ];
      Xml.elem "book"
        ~attrs:[ ("isbn", "222") ]
        [
          Xml.leaf "title" "Database Systems";
          Xml.leaf "price" "120";
          Xml.elem "author" [ Xml.leaf "name" "Garcia-Molina" ];
          Xml.elem "author" [ Xml.leaf "name" "Ullman" ];
          Xml.elem "author" [ Xml.leaf "name" "Widom" ];
        ];
    ]

let mapping_of schema =
  match Mapping.of_pschema schema with
  | Ok m -> m
  | Error es -> Alcotest.failf "mapping failed: %s" (String.concat "; " es)

let annotated_imdb =
  lazy (Annotate.schema Imdb.Stats.full Imdb.Schema.schema)

let small_imdb_doc = lazy (Imdb.Gen.generate Imdb.Gen.default)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0
