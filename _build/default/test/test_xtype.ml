open Legodb
open Test_util

let t_title = Xtype.named_elem "title" Xtype.string_
let t_year = Xtype.named_elem "year" Xtype.integer

let suite =
  [
    case "seq flattens and drops empty" (fun () ->
        let t = Xtype.seq [ t_title; Xtype.Empty; Xtype.seq [ t_year ] ] in
        match t with
        | Xtype.Seq [ _; _ ] -> ()
        | _ -> Alcotest.failf "got %s" (Xtype.to_string t));
    case "seq of one collapses" (fun () ->
        check_bool "singleton" true (Xtype.equal (Xtype.seq [ t_title ]) t_title));
    case "choice flattens" (fun () ->
        match Xtype.choice [ t_title; Xtype.choice [ t_year; t_title ] ] with
        | Xtype.Choice [ _; _; _ ] -> ()
        | t -> Alcotest.failf "got %s" (Xtype.to_string t));
    case "rep of once collapses" (fun () ->
        check_bool "once" true
          (Xtype.equal (Xtype.rep t_title Xtype.once) t_title));
    case "rep of empty is empty" (fun () ->
        check_bool "empty" true
          (Xtype.equal (Xtype.rep Xtype.Empty Xtype.star) Xtype.Empty));
    case "nested reps fuse" (fun () ->
        match Xtype.rep (Xtype.rep t_title Xtype.opt) Xtype.star with
        | Xtype.Rep (_, o) ->
            check_bool "0..*" true (Xtype.occurs_equal o Xtype.star)
        | t -> Alcotest.failf "got %s" (Xtype.to_string t));
    case "equality ignores stats" (fun () ->
        let with_stats =
          Xtype.Scalar
            ( Xtype.String_t,
              Some { Xtype.width = 50; s_min = None; s_max = None; distinct = Some 3 } )
        in
        check_bool "equal" true (Xtype.equal with_stats Xtype.string_);
        check_bool "strict differs" false
          (Xtype.equal_strict with_stats Xtype.string_));
    case "nullable" (fun () ->
        check_bool "empty" true (Xtype.nullable Xtype.Empty);
        check_bool "star" true (Xtype.nullable (Xtype.rep t_title Xtype.star));
        check_bool "plus" false (Xtype.nullable (Xtype.rep t_title Xtype.plus));
        check_bool "elem" false (Xtype.nullable t_title);
        check_bool "choice with empty" true
          (Xtype.nullable (Xtype.Choice [ t_title; Xtype.Empty ])));
    case "refs in order" (fun () ->
        let t =
          Xtype.seq [ Xtype.ref_ "A"; Xtype.rep (Xtype.ref_ "B") Xtype.star; Xtype.ref_ "A" ]
        in
        Alcotest.(check (list string)) "refs" [ "A"; "B"; "A" ] (Xtype.refs t));
    case "elements pre-order" (fun () ->
        let t = Xtype.named_elem "a" (Xtype.seq [ t_title; t_year ]) in
        let tags =
          List.map (fun (e : Xtype.elem) -> Label.to_string e.label) (Xtype.elements t)
        in
        Alcotest.(check (list string)) "tags" [ "a"; "title"; "year" ] tags);
    case "size" (fun () ->
        check_int "size" 6
          (Xtype.size (Xtype.named_elem "a" (Xtype.seq [ t_title; t_year ]))));
    case "subterm and locations agree" (fun () ->
        let t = Xtype.named_elem "a" (Xtype.seq [ t_title; Xtype.rep t_year Xtype.star ]) in
        List.iter
          (fun (loc, sub) ->
            match Xtype.subterm t loc with
            | Some sub' -> check_bool "same node" true (sub == sub')
            | None -> Alcotest.fail "dangling location")
          (Xtype.locations t));
    case "locations pre-order root first" (fun () ->
        let t = Xtype.seq [ t_title; t_year ] in
        match Xtype.locations t with
        | ([], _) :: ([ 0 ], _) :: _ -> ()
        | _ -> Alcotest.fail "unexpected order");
    case "replace at location" (fun () ->
        let t = Xtype.named_elem "a" (Xtype.seq [ t_title; t_year ]) in
        let t' = Xtype.replace t [ 0; 1 ] (Xtype.ref_ "Year") in
        match Xtype.subterm t' [ 0; 1 ] with
        | Some (Xtype.Ref "Year") -> ()
        | _ -> Alcotest.fail "replace failed");
    case "replace renormalizes" (fun () ->
        let t = Xtype.seq [ t_title; t_year ] in
        let t' = Xtype.replace t [ 1 ] Xtype.Empty in
        check_bool "collapsed" true (Xtype.equal t' t_title));
    case "replace out of range" (fun () ->
        let t = Xtype.seq [ t_title; t_year ] in
        match Xtype.replace t [ 5 ] Xtype.Empty with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    case "scale_counts scales counts" (fun () ->
        let e =
          Xtype.elem
            ~ann:{ Xtype.count = Some 100.; labels = [ ("x", 40.) ] }
            (Label.Name "a") Xtype.string_
        in
        match Xtype.scale_counts 0.5 e with
        | Xtype.Elem { ann = { count = Some c; labels = [ (_, lc) ] }; _ } ->
            check_bool "count" true (abs_float (c -. 50.) < 1e-9);
            check_bool "label" true (abs_float (lc -. 20.) < 1e-9)
        | _ -> Alcotest.fail "unexpected shape");
    case "map_ref renames" (fun () ->
        let t = Xtype.seq [ Xtype.ref_ "A"; t_title ] in
        let t' = Xtype.map_ref (fun n -> n ^ "2") t in
        Alcotest.(check (list string)) "renamed" [ "A2" ] (Xtype.refs t'));
    case "pretty printing matches paper style" (fun () ->
        let t =
          Xtype.named_elem "show"
            (Xtype.seq
               [
                 Xtype.attr "type" Xtype.string_;
                 t_title;
                 Xtype.rep (Xtype.ref_ "Aka") (Xtype.occ 1 (Xtype.Bounded 10));
                 Xtype.choice [ Xtype.ref_ "Movie"; Xtype.ref_ "TV" ];
               ])
        in
        let s = Xtype.to_string t in
        check_bool "has attr" true (contains s "@type[ String ]");
        check_bool "has occurs" true (contains s "Aka{1,10}");
        check_bool "has union" true (contains s "(Movie | TV)"));
    case "pp occurs shorthand" (fun () ->
        let s = Format.asprintf "%a" Xtype.pp (Xtype.rep t_title Xtype.star) in
        check_bool "star" true (String.length s > 0 && s.[String.length s - 1] = '*'));
    case "scalar_ok" (fun () ->
        check_bool "int" true (Xtype.scalar_ok Xtype.Integer_t " 1,234 ");
        check_bool "not int" false (Xtype.scalar_ok Xtype.Integer_t "abc");
        check_bool "string" true (Xtype.scalar_ok Xtype.String_t "anything"));
  ]
