open Legodb
open Test_util

let suite =
  [
    case "raw imdb schema is not a p-schema" (fun () ->
        match Pschema.check Imdb.Schema.schema with
        | Error vs -> check_bool "violations" true (List.length vs >= 3)
        | Ok () -> Alcotest.fail "expected violations");
    case "violations point at offending elements" (fun () ->
        match Pschema.check Imdb.Schema.schema with
        | Error vs ->
            List.iter
              (fun (v : Pschema.violation) ->
                match Xtype.subterm (Xschema.find Imdb.Schema.schema v.tname) v.loc with
                | Some (Xtype.Elem _) -> ()
                | Some t -> Alcotest.failf "violation at non-element: %s" (Xtype.to_string t)
                | None -> Alcotest.fail "dangling violation location")
              vs
        | Ok () -> Alcotest.fail "expected violations");
    case "normalized schema is a p-schema" (fun () ->
        check_bool "ps0" true (Pschema.is_pschema (Init.normalize Imdb.Schema.schema)));
    case "section2 schema is already a p-schema" (fun () ->
        check_bool "ok" true (Pschema.is_pschema Imdb.Schema.section2));
    case "multi-occurrence element violates" (fun () ->
        let s =
          Xschema.make ~root:"R"
            [
              {
                Xschema.name = "R";
                body =
                  Xtype.named_elem "r"
                    (Xtype.rep (Xtype.named_elem "x" Xtype.string_) Xtype.star);
              };
            ]
        in
        check_bool "violates" false (Pschema.is_pschema s));
    case "optional element is fine" (fun () ->
        let s =
          Xschema.make ~root:"R"
            [
              {
                Xschema.name = "R";
                body =
                  Xtype.named_elem "r"
                    (Xtype.optional (Xtype.named_elem "x" Xtype.string_));
              };
            ]
        in
        check_bool "ok" true (Pschema.is_pschema s));
    case "union of elements violates, union of refs is fine" (fun () ->
        let mk body =
          Xschema.make ~root:"R"
            ({ Xschema.name = "R"; body = Xtype.named_elem "r" body }
            ::
            [
              { Xschema.name = "A"; body = Xtype.named_elem "a" Xtype.string_ };
              { Xschema.name = "B"; body = Xtype.named_elem "b" Xtype.string_ };
            ])
        in
        check_bool "elements" false
          (Pschema.is_pschema
             (mk
                (Xtype.choice
                   [
                     Xtype.named_elem "a" Xtype.string_;
                     Xtype.named_elem "b" Xtype.string_;
                   ])));
        check_bool "refs" true
          (Pschema.is_pschema
             (mk (Xtype.choice [ Xtype.ref_ "A"; Xtype.ref_ "B" ]))));
    case "scalar choice allowed (AnyScalar)" (fun () ->
        let s =
          Xschema.make ~root:"R"
            [
              {
                Xschema.name = "R";
                body = Xtype.choice [ Xtype.integer; Xtype.string_ ];
              };
            ]
        in
        check_bool "ok" true (Pschema.is_pschema s));
    case "attribute under repetition violates" (fun () ->
        let s =
          Xschema.make ~root:"R"
            [
              {
                Xschema.name = "R";
                body =
                  Xtype.named_elem "r"
                    (Xtype.Rep
                       ( Xtype.attr "x" Xtype.string_,
                         { Xtype.lo = 0; hi = Xtype.Unbounded } ));
              };
            ]
        in
        check_bool "violates" false (Pschema.is_pschema s));
    case "recursive type through element is fine" (fun () ->
        let s =
          Xschema.make ~root:"R"
            [
              {
                Xschema.name = "R";
                body = Xtype.named_elem "r" (Xtype.rep (Xtype.ref_ "R") Xtype.star);
              };
            ]
        in
        check_bool "ok" true (Pschema.is_pschema s));
    case "ill-formed schema reported by check" (fun () ->
        let s =
          Xschema.make ~root:"R"
            [ { Xschema.name = "R"; body = Xtype.ref_ "Nope" } ]
        in
        check_bool "error" true (Result.is_error (Pschema.check s)));
  ]
