open Legodb
open Test_util

let ok schema doc = Result.is_ok (Validate.document schema doc)

let any_element_schema =
  (* the paper's AnyElement type for untyped documents *)
  Xschema.make ~root:"AnyElement"
    [
      {
        Xschema.name = "AnyElement";
        body =
          Xtype.elem Label.Any
            (Xtype.rep
               (Xtype.choice [ Xtype.ref_ "AnyElement"; Xtype.ref_ "AnyScalar" ])
               Xtype.star);
      };
      {
        Xschema.name = "AnyScalar";
        body = Xtype.choice [ Xtype.integer; Xtype.string_ ];
      };
    ]

let suite =
  [
    case "books document validates" (fun () ->
        check_bool "valid" true (ok books_schema books_doc));
    case "missing required element" (fun () ->
        let doc =
          Xml.elem "store"
            [ Xml.elem "book" ~attrs:[ ("isbn", "1") ] [ Xml.leaf "title" "t" ] ]
        in
        check_bool "invalid" false (ok books_schema doc));
    case "wrong element order" (fun () ->
        let doc =
          Xml.elem "store"
            [
              Xml.elem "book"
                ~attrs:[ ("isbn", "1") ]
                [
                  Xml.leaf "price" "5";
                  Xml.leaf "title" "t";
                  Xml.elem "author" [ Xml.leaf "name" "n" ];
                ];
            ]
        in
        check_bool "invalid" false (ok books_schema doc));
    case "bad scalar kind" (fun () ->
        let doc =
          Xml.elem "store"
            [
              Xml.elem "book"
                ~attrs:[ ("isbn", "1") ]
                [
                  Xml.leaf "title" "t";
                  Xml.leaf "price" "not-a-number";
                  Xml.elem "author" [ Xml.leaf "name" "n" ];
                ];
            ]
        in
        check_bool "invalid" false (ok books_schema doc));
    case "undeclared attribute" (fun () ->
        let doc =
          Xml.elem "store"
            [
              Xml.elem "book"
                ~attrs:[ ("isbn", "1"); ("bogus", "x") ]
                [
                  Xml.leaf "title" "t";
                  Xml.leaf "price" "5";
                  Xml.elem "author" [ Xml.leaf "name" "n" ];
                ];
            ]
        in
        check_bool "invalid" false (ok books_schema doc));
    case "unknown element rejected" (fun () ->
        let doc = Xml.elem "store" [ Xml.elem "pamphlet" [] ] in
        check_bool "invalid" false (ok books_schema doc));
    case "error reports deep path" (fun () ->
        let doc =
          Xml.elem "store"
            [
              Xml.elem "book"
                ~attrs:[ ("isbn", "1") ]
                [
                  Xml.leaf "title" "t";
                  Xml.leaf "price" "x";
                  Xml.elem "author" [ Xml.leaf "name" "n" ];
                ];
            ]
        in
        match Validate.document books_schema doc with
        | Error e -> check_bool "path depth" true (List.length e.Validate.path >= 2)
        | Ok () -> Alcotest.fail "expected failure");
    case "occurrence bounds enforced" (fun () ->
        let schema =
          Xschema.make ~root:"R"
            [
              {
                Xschema.name = "R";
                body =
                  Xtype.named_elem "r"
                    (Xtype.rep (Xtype.named_elem "x" Xtype.string_)
                       (Xtype.occ 1 (Xtype.Bounded 2)));
              };
            ]
        in
        let doc n = Xml.elem "r" (List.init n (fun i -> Xml.leaf "x" (string_of_int i))) in
        check_bool "zero" false (ok schema (doc 0));
        check_bool "one" true (ok schema (doc 1));
        check_bool "two" true (ok schema (doc 2));
        check_bool "three" false (ok schema (doc 3)));
    case "union branches" (fun () ->
        check_bool "imdb generated doc" true
          (ok Imdb.Schema.schema (Lazy.force small_imdb_doc)));
    case "wildcard accepts any tag" (fun () ->
        let schema =
          Xschema.make ~root:"R"
            [
              {
                Xschema.name = "R";
                body = Xtype.named_elem "r" (Xtype.elem Label.Any Xtype.string_);
              };
            ]
        in
        check_bool "any" true (ok schema (Xml.elem "r" [ Xml.leaf "whatever" "x" ])));
    case "wildcard exclusion" (fun () ->
        let schema =
          Xschema.make ~root:"R"
            [
              {
                Xschema.name = "R";
                body =
                  Xtype.named_elem "r"
                    (Xtype.elem (Label.Any_except [ "nyt" ]) Xtype.string_);
              };
            ]
        in
        check_bool "other ok" true (ok schema (Xml.elem "r" [ Xml.leaf "suntimes" "x" ]));
        check_bool "excluded" false (ok schema (Xml.elem "r" [ Xml.leaf "nyt" "x" ])));
    case "recursive AnyElement" (fun () ->
        let doc =
          Xml.elem "anything"
            [ Xml.elem "nested" [ Xml.text "42"; Xml.elem "deeper" [] ] ]
        in
        check_bool "valid untyped" true (ok any_element_schema doc));
    case "matches sequences" (fun () ->
        let t =
          Xtype.seq
            [
              Xtype.named_elem "a" Xtype.string_;
              Xtype.rep (Xtype.named_elem "b" Xtype.string_) Xtype.star;
            ]
        in
        let a = Xml.leaf "a" "x" and b = Xml.leaf "b" "y" in
        let s = books_schema in
        check_bool "a" true (Validate.matches s t [ a ]);
        check_bool "a b b" true (Validate.matches s t [ a; b; b ]);
        check_bool "b a" false (Validate.matches s t [ b; a ]);
        check_bool "empty" false (Validate.matches s t []));
    case "ambiguous choice backtracks" (fun () ->
        let t =
          Xtype.choice
            [
              Xtype.seq [ Xtype.named_elem "a" Xtype.string_; Xtype.named_elem "b" Xtype.string_ ];
              Xtype.seq [ Xtype.named_elem "a" Xtype.string_; Xtype.named_elem "c" Xtype.string_ ];
            ]
        in
        let a = Xml.leaf "a" "x" in
        check_bool "a c" true (Validate.matches books_schema t [ a; Xml.leaf "c" "y" ]));
    case "random docs from schema validate" (fun () ->
        let rng = Random.State.make [| 11 |] in
        for _ = 1 to 20 do
          let doc = doc_of_schema ~rng books_schema in
          check_bool "valid" true (ok books_schema doc)
        done);
    case "random imdb-schema docs validate" (fun () ->
        let rng = Random.State.make [| 13 |] in
        for _ = 1 to 5 do
          let doc = doc_of_schema ~rng Imdb.Schema.schema in
          check_bool "valid" true (ok Imdb.Schema.schema doc)
        done);
  ]
