open Legodb
open Test_util

let parse = Xtype_parse.type_of_string

let roundtrip_type name t =
  case name (fun () ->
      let printed = Xtype.to_string t in
      let t' = parse printed in
      if not (Xtype.equal t t') then
        Alcotest.failf "round trip changed %s into %s" printed
          (Xtype.to_string t'))

let suite =
  [
    case "scalars and refs" (fun () ->
        check_bool "string" true (Xtype.equal (parse "String") Xtype.string_);
        check_bool "integer" true (Xtype.equal (parse "Integer") Xtype.integer);
        check_bool "ref" true (Xtype.equal (parse "Show") (Xtype.ref_ "Show"));
        check_bool "primed ref" true
          (Xtype.equal (parse "Name''") (Xtype.ref_ "Name''")));
    case "elements, attributes, wildcards" (fun () ->
        check_bool "elem" true
          (Xtype.equal (parse "title[ String ]")
             (Xtype.named_elem "title" Xtype.string_));
        check_bool "attr" true
          (Xtype.equal (parse "@type[ String ]")
             (Xtype.attr "type" Xtype.string_));
        check_bool "wildcard" true
          (Xtype.equal (parse "~[ String ]")
             (Xtype.elem Label.Any Xtype.string_));
        check_bool "wildcard except" true
          (Xtype.equal
             (parse "~!nyt,suntimes[ String ]")
             (Xtype.elem (Label.Any_except [ "nyt"; "suntimes" ]) Xtype.string_)));
    case "occurrences" (fun () ->
        check_bool "star" true
          (Xtype.equal (parse "Aka*") (Xtype.rep (Xtype.ref_ "Aka") Xtype.star));
        check_bool "plus" true
          (Xtype.equal (parse "Aka+") (Xtype.rep (Xtype.ref_ "Aka") Xtype.plus));
        check_bool "opt" true
          (Xtype.equal (parse "Aka?") (Xtype.optional (Xtype.ref_ "Aka")));
        check_bool "range" true
          (Xtype.equal (parse "Aka{1,10}")
             (Xtype.rep (Xtype.ref_ "Aka") (Xtype.occ 1 (Xtype.Bounded 10))));
        check_bool "open range" true
          (Xtype.equal (parse "Aka{2,*}")
             (Xtype.rep (Xtype.ref_ "Aka") (Xtype.occ 2 Xtype.Unbounded))));
    case "sequences and unions" (fun () ->
        check_bool "seq" true
          (Xtype.equal
             (parse "title[ String ], year[ Integer ]")
             (Xtype.seq
                [
                  Xtype.named_elem "title" Xtype.string_;
                  Xtype.named_elem "year" Xtype.integer;
                ]));
        check_bool "union" true
          (Xtype.equal (parse "(Movie | TV)")
             (Xtype.choice [ Xtype.ref_ "Movie"; Xtype.ref_ "TV" ]));
        check_bool "empty" true (Xtype.equal (parse "()") Xtype.Empty));
    case "statistics annotations" (fun () ->
        match parse "String<#50,#34798>" with
        | Xtype.Scalar (Xtype.String_t, Some st) ->
            check_int "width" 50 st.Xtype.width;
            check_int "distinct" 34798 (Option.get st.Xtype.distinct)
        | _ -> Alcotest.fail "bad scalar stats");
    case "integer stats with holes" (fun () ->
        match parse "Integer<#4,#?,#2100,#?>" with
        | Xtype.Scalar (Xtype.Integer_t, Some st) ->
            check_bool "min absent" true (st.Xtype.s_min = None);
            check_int "max" 2100 (Option.get st.Xtype.s_max)
        | _ -> Alcotest.fail "bad holes");
    case "element counts" (fun () ->
        match parse "show[ String ]<#34798>" with
        | Xtype.Elem e -> check_bool "count" true (e.ann.count = Some 34798.)
        | _ -> Alcotest.fail "bad elem count");
    case "comments" (fun () ->
        check_bool "comment" true
          (Xtype.equal (parse "(: hello :) String") Xtype.string_));
    case "parse errors" (fun () ->
        List.iter
          (fun input ->
            match parse input with
            | _ -> Alcotest.failf "expected a parse error for %S" input
            | exception Xtype_parse.Parse_error _ -> ())
          [ ""; "title["; "(a | )"; "Aka{1,}"; "String<#>"; "foo ]" ]);
    roundtrip_type "round trip: show body"
      (Xschema.find Imdb.Schema.section2 "Show");
    roundtrip_type "round trip: imdb show" (Xschema.find Imdb.Schema.schema "Show");
    roundtrip_type "round trip: actor" (Xschema.find Imdb.Schema.schema "Actor");
    case "schema: paper notation parses" (fun () ->
        let s =
          Xtype_parse.schema_of_string
            {|
              type IMDB = imdb [ Show{0,*}, Director{0,*} ]
              type Show = show [ @type[ String ], title[ String ],
                                 year[ Integer ], Aka{1,10}, (Movie | TV) ]
              type Aka = aka[ String ]
              type Movie = box_office[ Integer ], video_sales[ Integer ]
              type TV = seasons[ Integer ], description[ String ]
              type Director = director [ name[ String ] ]
            |}
        in
        check_string "root" "IMDB" (Xschema.root s);
        check_int "defs" 6 (List.length (Xschema.defs s));
        check_bool "well-formed" true (Result.is_ok (Xschema.check s)));
    case "schema: full round trip through the printer" (fun () ->
        List.iter
          (fun schema ->
            let printed = Xschema.to_string schema in
            let reparsed =
              Xtype_parse.schema_of_string ~root:(Xschema.root schema) printed
            in
            check_bool "equal" true (Xschema.equal schema reparsed))
          [ Imdb.Schema.schema; Imdb.Schema.section2; books_schema ]);
    case "schema: annotated round trip keeps counts" (fun () ->
        let annotated = Lazy.force annotated_imdb in
        let printed = Format.asprintf "%a" Xschema.pp_with_stats annotated in
        let reparsed = Xtype_parse.schema_of_string ~root:"IMDB" printed in
        check_bool "bodies equal" true (Xschema.equal annotated reparsed);
        (* the Show cardinality survives the text round trip *)
        match Rewrite.card_of_def reparsed "Show" with
        | Some c -> check_bool "card" true (c = 34798.)
        | None -> Alcotest.fail "count lost");
    case "normalized and transformed schemas round trip" (fun () ->
        List.iter
          (fun schema ->
            let printed = Xschema.to_string schema in
            let reparsed =
              Xtype_parse.schema_of_string ~root:(Xschema.root schema) printed
            in
            check_bool "equal" true (Xschema.equal schema reparsed))
          [
            Init.normalize Imdb.Schema.schema;
            Init.all_outlined Imdb.Schema.schema;
            Init.all_inlined Imdb.Schema.schema;
          ]);
  ]
