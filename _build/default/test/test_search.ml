open Legodb
open Test_util

(* a cheaper workload keeps the search suite fast *)
let tiny_lookup = Workload.of_queries [ Imdb.Queries.q 1; Imdb.Queries.q 8 ]
let tiny_publish = Workload.of_queries [ Imdb.Queries.q 16 ]

let suite =
  [
    case "pschema_cost is positive and finite" (fun () ->
        let s = Init.all_inlined (Lazy.force annotated_imdb) in
        let c = Search.pschema_cost ~workload:tiny_lookup s in
        check_bool "positive" true (c > 0.);
        check_bool "finite" true (Float.is_finite c));
    case "pschema_cost rejects non-p-schemas" (fun () ->
        match Search.pschema_cost ~workload:tiny_lookup Imdb.Schema.schema with
        | _ -> Alcotest.fail "expected Cost_error"
        | exception Search.Cost_error _ -> ());
    case "greedy trace decreases strictly" (fun () ->
        let r = Search.greedy_si ~workload:tiny_lookup (Lazy.force annotated_imdb) in
        let costs = List.map (fun (e : Search.trace_entry) -> e.cost) r.Search.trace in
        let rec decreasing = function
          | a :: (b :: _ as rest) -> a > b && decreasing rest
          | _ -> true
        in
        check_bool "strictly decreasing" true (decreasing costs);
        check_bool "final is last" true
          (abs_float (r.Search.cost -. List.nth costs (List.length costs - 1)) < 1e-9));
    case "greedy result is a p-schema with final cost" (fun () ->
        let r = Search.greedy_si ~workload:tiny_lookup (Lazy.force annotated_imdb) in
        check_bool "p-schema" true (Pschema.is_pschema r.Search.schema);
        let again = Search.pschema_cost ~workload:tiny_lookup r.Search.schema in
        check_bool "cost reproducible" true (abs_float (again -. r.Search.cost) < 1e-6));
    case "greedy is locally optimal" (fun () ->
        let r = Search.greedy_si ~workload:tiny_lookup (Lazy.force annotated_imdb) in
        List.iter
          (fun (_, s') ->
            match Search.pschema_cost ~workload:tiny_lookup s' with
            | c -> check_bool "no better neighbor" true (c >= r.Search.cost -. 1e-6)
            | exception Search.Cost_error _ -> ())
          (Space.neighbors ~kinds:[ Space.K_outline ] r.Search.schema));
    case "join workload prefers outlining unused columns" (fun () ->
        (* Q12 scans Played and Directed; the wide columns it never
           touches (character, info, ...) are worth outlining *)
        let w = Workload.of_queries [ Imdb.Queries.q 12 ] in
        let r = Search.greedy_si ~workload:w (Lazy.force annotated_imdb) in
        check_bool "at least one step" true (List.length r.Search.trace > 1));
    case "publish workload keeps the all-inlined design" (fun () ->
        let r = Search.greedy_si ~workload:tiny_publish (Lazy.force annotated_imdb) in
        let initial = (List.hd r.Search.trace).Search.cost in
        check_bool "little to gain" true (r.Search.cost <= initial));
    case "threshold stops the search early" (fun () ->
        let full = Search.greedy_si ~workload:tiny_lookup (Lazy.force annotated_imdb) in
        let coarse =
          Search.greedy_si ~threshold:0.5 ~workload:tiny_lookup
            (Lazy.force annotated_imdb)
        in
        check_bool "fewer or equal iterations" true
          (List.length coarse.Search.trace <= List.length full.Search.trace));
    case "max_iterations bounds the descent" (fun () ->
        let r =
          Search.greedy ~max_iterations:1 ~kinds:[ Space.K_outline ]
            ~workload:tiny_lookup
            (Init.all_inlined (Lazy.force annotated_imdb))
        in
        check_bool "at most initial + 1" true (List.length r.Search.trace <= 2));
    case "si and so converge to comparable costs" (fun () ->
        let si = Search.greedy_si ~workload:tiny_lookup (Lazy.force annotated_imdb) in
        let so = Search.greedy_so ~workload:tiny_lookup (Lazy.force annotated_imdb) in
        let ratio = Float.max si.Search.cost so.Search.cost
                    /. Float.min si.Search.cost so.Search.cost in
        check_bool "within 3x" true (ratio < 3.));
    case "design facade end to end" (fun () ->
        let d =
          Legodb.design ~schema:Imdb.Schema.schema ~stats:Imdb.Stats.full
            ~workload:tiny_lookup ()
        in
        check_bool "cost positive" true (d.Legodb.cost > 0.);
        check_bool "catalog nonempty" true
          (d.Legodb.mapping.Mapping.catalog.Rschema.tables <> []);
        (* the report renders *)
        let s = Format.asprintf "%a" Legodb.report d in
        check_bool "report mentions tables" true (contains s "TABLE"));
  ]

(* beam search *)
let beam_suite =
  [
    case "beam never loses to greedy" (fun () ->
        let schema = Lazy.force annotated_imdb in
        let w = Workload.of_queries [ Imdb.Queries.q 12 ] in
        let g = Search.greedy_si ~workload:w schema in
        let b =
          Search.beam ~width:3 ~kinds:[ Space.K_outline ] ~workload:w
            (Init.all_inlined schema)
        in
        check_bool "beam <= greedy" true (b.Search.cost <= g.Search.cost +. 1e-6));
    case "beam trace is monotone in best cost" (fun () ->
        let schema = Lazy.force annotated_imdb in
        let w = Workload.of_queries [ Imdb.Queries.q 1; Imdb.Queries.q 8 ] in
        let b =
          Search.beam ~width:2 ~kinds:[ Space.K_outline ] ~workload:w
            (Init.all_inlined schema)
        in
        let costs = List.map (fun (e : Search.trace_entry) -> e.cost) b.Search.trace in
        let rec decreasing = function
          | a :: (b :: _ as r) -> a > b && decreasing r
          | _ -> true
        in
        check_bool "decreasing" true (decreasing costs);
        check_bool "result is a p-schema" true (Pschema.is_pschema b.Search.schema));
    case "beam with all transformation kinds stays stratified" (fun () ->
        let schema = Lazy.force annotated_imdb in
        let w = Workload.of_queries [ Imdb.Queries.q 4 ] in
        let b =
          Search.beam ~width:2 ~patience:1 ~max_iterations:4
            ~kinds:Space.all_kinds ~workload:w (Init.normalize schema)
        in
        check_bool "p-schema" true (Pschema.is_pschema b.Search.schema);
        check_bool "cost sane" true (b.Search.cost > 0.));
  ]
