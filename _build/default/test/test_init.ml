open Legodb
open Test_util

let nested_elem_count schema =
  List.fold_left
    (fun n (d : Xschema.defn) ->
      n
      + List.length
          (List.filter
             (fun (loc, t) ->
               loc <> [] && match t with Xtype.Elem _ -> true | _ -> false)
             (Xtype.locations d.body)))
    0 (Xschema.defs schema)

let suite =
  [
    case "normalize produces a p-schema" (fun () ->
        let ps0 = Init.normalize Imdb.Schema.schema in
        check_bool "stratified" true (Pschema.is_pschema ps0));
    case "normalize preserves the language" (fun () ->
        let ps0 = Init.normalize Imdb.Schema.schema in
        let rng = Random.State.make [| 3 |] in
        for _ = 1 to 10 do
          let doc = doc_of_schema ~rng Imdb.Schema.schema in
          check_bool "doc valid under ps0" true
            (Result.is_ok (Validate.document ps0 doc))
        done;
        let rng = Random.State.make [| 5 |] in
        for _ = 1 to 10 do
          let doc = doc_of_schema ~rng ps0 in
          check_bool "ps0 doc valid under original" true
            (Result.is_ok (Validate.document Imdb.Schema.schema doc))
        done);
    case "normalize is idempotent" (fun () ->
        let ps0 = Init.normalize Imdb.Schema.schema in
        check_bool "fixed point" true (Xschema.equal ps0 (Init.normalize ps0)));
    case "normalize keeps statistics" (fun () ->
        let ps0 = Init.normalize (Lazy.force annotated_imdb) in
        match Rewrite.card_of_def ps0 "Show" with
        | Some c -> check_bool "show card" true (c = 34798.)
        | None -> Alcotest.fail "lost the Show cardinality");
    case "all_outlined leaves no nested elements" (fun () ->
        let s = Init.all_outlined Imdb.Schema.schema in
        check_bool "p-schema" true (Pschema.is_pschema s);
        check_int "no nested elements" 0 (nested_elem_count s));
    case "all_outlined is bigger than ps0" (fun () ->
        let ps0 = Init.normalize Imdb.Schema.schema in
        let out = Init.all_outlined Imdb.Schema.schema in
        check_bool "more types" true
          (List.length (Xschema.reachable out) > List.length (Xschema.reachable ps0)));
    case "all_inlined has no inlinable references" (fun () ->
        let s = Init.all_inlined Imdb.Schema.schema in
        check_bool "p-schema" true (Pschema.is_pschema s);
        let steps = Space.applicable ~kinds:[ Space.K_inline ] s in
        check_int "no inline steps" 0 (List.length steps));
    case "all_inlined converts unions to options by default" (fun () ->
        let s = Init.all_inlined Imdb.Schema.schema in
        let has_choice =
          List.exists
            (fun (d : Xschema.defn) ->
              List.exists
                (fun (_, t) ->
                  match t with
                  | Xtype.Choice ts ->
                      not (List.for_all (function Xtype.Scalar _ -> true | _ -> false) ts)
                  | _ -> false)
                (Xtype.locations d.body))
            (Xschema.defs s)
        in
        check_bool "no structural unions left" false has_choice);
    case "all_inlined with unions kept" (fun () ->
        let s = Init.all_inlined ~union_to_options:false Imdb.Schema.schema in
        check_bool "p-schema" true (Pschema.is_pschema s);
        let has_choice =
          List.exists
            (fun (d : Xschema.defn) ->
              match Xschema.find s d.name with
              | Xtype.Elem _ | _ ->
                  List.exists
                    (fun (_, t) -> match t with Xtype.Choice _ -> true | _ -> false)
                    (Xtype.locations d.body))
            (Xschema.defs s)
        in
        check_bool "union survives" true has_choice);
    case "all_inlined docs widen but contain the original language" (fun () ->
        let s = Init.all_inlined Imdb.Schema.schema in
        let rng = Random.State.make [| 17 |] in
        for _ = 1 to 10 do
          let doc = doc_of_schema ~rng Imdb.Schema.schema in
          check_bool "original docs valid" true
            (Result.is_ok (Validate.document s doc))
        done);
    case "all_inlined on the books schema keeps multi-valued types" (fun () ->
        let s = Init.all_inlined books_schema in
        (* Book and Author are multi-valued, so they stay; the optional
           blurb element is inlined as a nullable column *)
        check_bool "Book survives" true (Xschema.mem s "Book");
        check_bool "Author survives" true (Xschema.mem s "Author");
        check_int "exactly three types" 3 (List.length (Xschema.reachable s)));
  ]
