open Legodb
open Test_util

(* every element of a definition body, keyed by its tag path (wildcard
   steps spelled "TILDE") *)
let find_elem schema ty path =
  let rec walk prefix t acc =
    match t with
    | Xtype.Elem e ->
        let step =
          match e.Xtype.label with
          | Label.Name n -> n
          | Label.Any | Label.Any_except _ -> "TILDE"
        in
        let prefix = prefix @ [ step ] in
        (prefix, e) :: walk prefix e.Xtype.content acc
    | Xtype.Seq ts | Xtype.Choice ts ->
        List.fold_left (fun acc u -> walk prefix u acc) acc ts
    | Xtype.Rep (u, _) | Xtype.Attr (_, u) -> walk prefix u acc
    | Xtype.Empty | Xtype.Scalar _ | Xtype.Ref _ -> acc
  in
  match List.assoc_opt path (walk [] (Xschema.find schema ty) []) with
  | Some e -> e
  | None -> Alcotest.failf "no element %s in %s" (String.concat "/" path) ty

let count_of e = Option.get e.Xtype.ann.count

let suite =
  [
    case "pathstat add and find" (fun () ->
        let s =
          Pathstat.of_list
            [ ([ "a"; "b" ], Pathstat.STcnt 5); ([ "a"; "b" ], Pathstat.STsize 10) ]
        in
        check_int "count" 5 (Option.get (Pathstat.count s [ "a"; "b" ]));
        check_int "size" 10 (Option.get (Pathstat.size s [ "a"; "b" ]));
        check_bool "missing" true (Pathstat.find s [ "a" ] = None));
    case "pathstat children" (fun () ->
        let s =
          Pathstat.of_list
            [
              ([ "a"; "b" ], Pathstat.STcnt 1);
              ([ "a"; "c" ], Pathstat.STcnt 2);
              ([ "a"; "b"; "d" ], Pathstat.STcnt 3);
            ]
        in
        check_int "two children" 2 (List.length (Pathstat.children s [ "a" ])));
    case "pathstat merge adds counts, widens bases" (fun () ->
        let a =
          Pathstat.of_list
            [ ([ "x" ], Pathstat.STcnt 5); ([ "x" ], Pathstat.STbase (1, 10, 5)) ]
        in
        let b =
          Pathstat.of_list
            [ ([ "x" ], Pathstat.STcnt 7); ([ "x" ], Pathstat.STbase (0, 20, 7)) ]
        in
        let m = Pathstat.merge a b in
        check_int "count" 12 (Option.get (Pathstat.count m [ "x" ]));
        match (Pathstat.find m [ "x" ] : Pathstat.entry option) with
        | Some { base = Some (0, 20, 7); _ } -> ()
        | _ -> Alcotest.fail "base not widened");
    case "collector counts paths" (fun () ->
        let s = Collector.collect books_doc in
        check_int "books" 2 (Option.get (Pathstat.count s [ "store"; "book" ]));
        check_int "authors" 4
          (Option.get (Pathstat.count s [ "store"; "book"; "author" ]));
        check_int "isbn attr" 2
          (Option.get (Pathstat.count s [ "store"; "book"; "isbn" ])));
    case "collector integer stats" (fun () ->
        let s = Collector.collect books_doc in
        match Pathstat.find s [ "store"; "book"; "price" ] with
        | Some { Pathstat.base = Some (90, 120, 2); _ } -> ()
        | Some e ->
            Alcotest.failf "unexpected entry: base=%s"
              (match e.Pathstat.base with
              | Some (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c
              | None -> "none")
        | None -> Alcotest.fail "no entry");
    case "collector string distinct and width" (fun () ->
        let s = Collector.collect books_doc in
        match Pathstat.find s [ "store"; "book"; "author"; "name" ] with
        | Some { Pathstat.distinct = Some 4; size = Some w; _ } ->
            check_bool "width sane" true (w > 4 && w < 20)
        | _ -> Alcotest.fail "bad entry");
    case "collector distinct cap saturates" (fun () ->
        let doc =
          Xml.elem "r" (List.init 10 (fun i -> Xml.leaf "x" (string_of_int i)))
        in
        let s = Collector.collect ~distinct_cap:3 doc in
        match Pathstat.find s [ "r"; "x" ] with
        | Some { Pathstat.base = Some (_, _, 3); _ } -> ()
        | _ -> Alcotest.fail "expected saturation at 3");
    case "annotate: show count from appendix" (fun () ->
        let s = Lazy.force annotated_imdb in
        let show = find_elem s "Show" [ "show" ] in
        check_bool "34798" true (count_of show = 34798.));
    case "annotate: nested counts" (fun () ->
        let s = Lazy.force annotated_imdb in
        let aka = find_elem s "Show" [ "show"; "aka" ] in
        check_bool "13641" true (count_of aka = 13641.);
        let bo = find_elem s "Show" [ "show"; "box_office" ] in
        check_bool "7000" true (count_of bo = 7000.));
    case "annotate: scalar stats land on scalars" (fun () ->
        let s = Lazy.force annotated_imdb in
        let title = find_elem s "Show" [ "show"; "title" ] in
        match title.Xtype.content with
        | Xtype.Scalar (Xtype.String_t, Some st) ->
            check_int "width" 50 st.Xtype.width;
            check_int "distinct" 34798 (Option.get st.Xtype.distinct)
        | _ -> Alcotest.fail "title not annotated");
    case "annotate: integer min/max" (fun () ->
        let s = Lazy.force annotated_imdb in
        let year = find_elem s "Show" [ "show"; "year" ] in
        match year.Xtype.content with
        | Xtype.Scalar (Xtype.Integer_t, Some st) ->
            check_int "min" 1800 (Option.get st.Xtype.s_min);
            check_int "max" 2100 (Option.get st.Xtype.s_max)
        | _ -> Alcotest.fail "year not annotated");
    case "annotate: wildcard via TILDE path" (fun () ->
        let s = Lazy.force annotated_imdb in
        let w = find_elem s "Show" [ "show"; "reviews"; "TILDE" ] in
        check_bool "11250" true (count_of w = 11250.));
    case "annotate: wildcard labels from concrete children" (fun () ->
        let stats =
          Imdb.Stats.with_review_sources Imdb.Stats.full ~total:10000
            [ ("nyt", 0.25); ("suntimes", 0.75) ]
        in
        let s = Annotate.schema stats Imdb.Schema.schema in
        let w = find_elem s "Show" [ "show"; "reviews"; "TILDE" ] in
        check_int "labels" 2 (List.length w.Xtype.ann.labels);
        check_bool "nyt count" true
          (List.assoc "nyt" w.Xtype.ann.labels = 2500.));
    case "annotate from collected stats is consistent" (fun () ->
        let doc = Lazy.force small_imdb_doc in
        let s = Annotate.schema (Collector.collect doc) Imdb.Schema.schema in
        let show = find_elem s "Show" [ "show" ] in
        let expected = List.length (Xml.select [ "imdb"; "show" ] doc) in
        check_bool "matches document" true
          (count_of show = float_of_int expected));
    case "strip removes annotations" (fun () ->
        let s = Annotate.strip (Lazy.force annotated_imdb) in
        check_bool "equal to raw" true (Xschema.equal s Imdb.Schema.schema);
        let show = find_elem s "Show" [ "show" ] in
        check_bool "no count" true (show.Xtype.ann.count = None));
    case "contexts computed per type" (fun () ->
        let ctxs = Annotate.contexts Imdb.Schema.schema in
        match List.assoc_opt "Show" ctxs with
        | Some [ [ "imdb" ] ] -> ()
        | _ -> Alcotest.fail "Show context should be [imdb]");
  ]
