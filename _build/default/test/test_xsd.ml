open Legodb
open Test_util

let imdb_xsd = lazy (Xsd_import.schema_of_file "../data/imdb.xsd")

let mini_xsd =
  {|<schema xmlns="http://www.w3.org/2001/XMLSchema">
      <element name="library" type="Library"/>
      <complexType name="Library">
        <sequence>
          <element name="book" type="Book" minOccurs="1" maxOccurs="3"/>
          <element name="motto" type="string" minOccurs="0"/>
        </sequence>
      </complexType>
      <complexType name="Book">
        <sequence>
          <element name="title" type="string"/>
          <element name="pages" type="integer"/>
          <attribute name="isbn" type="string"/>
        </sequence>
      </complexType>
    </schema>|}

let suite =
  [
    case "mini schema imports" (fun () ->
        let s = Xsd_import.schema_of_string mini_xsd in
        check_string "root" "Library" (Xschema.root s);
        check_bool "book def" true (Xschema.mem s "Book");
        check_bool "well-formed" true (Result.is_ok (Xschema.check s)));
    case "occurs bounds imported" (fun () ->
        let s = Xsd_import.schema_of_string mini_xsd in
        match Xschema.find s "Library" with
        | Xtype.Elem { content = Xtype.Seq (Xtype.Rep (Xtype.Ref "Book", o) :: _); _ }
          ->
            check_int "lo" 1 o.Xtype.lo;
            check_bool "hi 3" true (o.Xtype.hi = Xtype.Bounded 3)
        | t -> Alcotest.failf "unexpected body %s" (Xtype.to_string t));
    case "scalar kinds mapped" (fun () ->
        let s = Xsd_import.schema_of_string mini_xsd in
        let doc =
          Xml.elem "library"
            [
              Xml.elem "book"
                [ Xml.leaf "title" "t"; Xml.leaf "pages" "not a number" ];
            ]
        in
        check_bool "integer enforced" false
          (Result.is_ok (Validate.document s doc)));
    case "valid document accepted" (fun () ->
        let s = Xsd_import.schema_of_string mini_xsd in
        let doc =
          Xml.elem "library"
            [
              Xml.elem "book"
                ~attrs:[ ("isbn", "x") ]
                [ Xml.leaf "title" "t"; Xml.leaf "pages" "120" ];
              Xml.leaf "motto" "read more";
            ]
        in
        check_bool "valid" true (Result.is_ok (Validate.document s doc)));
    case "shared complexType under two tags gets two defs" (fun () ->
        let s =
          Xsd_import.schema_of_string
            {|<schema>
                <element name="r" type="R"/>
                <complexType name="R">
                  <sequence>
                    <element name="home" type="Addr"/>
                    <element name="work" type="Addr"/>
                  </sequence>
                </complexType>
                <complexType name="Addr">
                  <sequence><element name="city" type="string"/></sequence>
                </complexType>
              </schema>|}
        in
        check_bool "Addr" true (Xschema.mem s "Addr");
        check_bool "Addr'" true (Xschema.mem s "Addr'");
        let doc =
          Xml.elem "r"
            [
              Xml.elem "home" [ Xml.leaf "city" "a" ];
              Xml.elem "work" [ Xml.leaf "city" "b" ];
            ]
        in
        check_bool "valid" true (Result.is_ok (Validate.document s doc)));
    case "recursive complexType" (fun () ->
        let s =
          Xsd_import.schema_of_string
            {|<schema>
                <element name="part" type="Part"/>
                <complexType name="Part">
                  <sequence>
                    <element name="name" type="string"/>
                    <element name="part" type="Part" minOccurs="0" maxOccurs="unbounded"/>
                  </sequence>
                </complexType>
              </schema>|}
        in
        check_bool "recursive" true (Xschema.recursive s "Part");
        let doc =
          Xml.elem "part"
            [ Xml.leaf "name" "a"; Xml.elem "part" [ Xml.leaf "name" "b" ] ]
        in
        check_bool "valid" true (Result.is_ok (Validate.document s doc)));
    case "import errors" (fun () ->
        List.iter
          (fun xsd ->
            match Xsd_import.schema_of_string xsd with
            | _ -> Alcotest.failf "expected Import_error for %s" xsd
            | exception Xsd_import.Import_error _ -> ())
          [
            "<notschema/>";
            "<schema><complexType name=\"T\"/></schema>";
            {|<schema><element name="r" type="Missing"/></schema>|};
          ]);
    case "appendix B XSD imports" (fun () ->
        let s = Lazy.force imdb_xsd in
        check_string "root" "IMDB" (Xschema.root s);
        List.iter
          (fun n -> check_bool n true (Xschema.mem s n))
          [ "IMDB"; "Show"; "Director"; "Actor"; "Movie"; "TV" ];
        check_bool "well-formed" true (Result.is_ok (Xschema.check s)));
    case "imported schema accepts generated IMDB documents" (fun () ->
        let s = Lazy.force imdb_xsd in
        check_bool "generated doc valid" true
          (Result.is_ok (Validate.document s (Lazy.force small_imdb_doc))));
    case "imported and hand-built schemas accept the same documents"
      (fun () ->
        let s = Lazy.force imdb_xsd in
        let rng = Random.State.make [| 41 |] in
        for _ = 1 to 8 do
          let doc = doc_of_schema ~rng Imdb.Schema.schema in
          check_bool "hand-built doc valid under import" true
            (Result.is_ok (Validate.document s doc))
        done;
        let rng = Random.State.make [| 43 |] in
        for _ = 1 to 8 do
          let doc = doc_of_schema ~rng s in
          check_bool "imported doc valid under hand-built" true
            (Result.is_ok (Validate.document Imdb.Schema.schema doc))
        done);
    case "imported schema runs the whole pipeline" (fun () ->
        let s = Lazy.force imdb_xsd in
        let doc = Lazy.force small_imdb_doc in
        let annotated = Annotate.schema (Collector.collect doc) s in
        let m = mapping_of (Init.all_inlined annotated) in
        let db = Shred.shred m doc in
        check_bool "round trip" true (Xml.equal doc (Publish.document db m));
        let cost =
          Search.pschema_cost
            ~workload:(Workload.of_queries [ Imdb.Queries.q 1 ])
            (Init.all_inlined annotated)
        in
        check_bool "costable" true (cost > 0.));
  ]
