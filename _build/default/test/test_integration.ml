(* Cross-module integration: the relational answer of a translated query
   must match the reference XQuery evaluator on the same document,
   whatever storage configuration is chosen; and the optimizer's
   estimates must rank configurations consistently with actual work. *)

open Legodb
open Test_util

let doc = small_imdb_doc

let configurations =
  lazy
    (let d = Lazy.force doc in
     let annotated = Annotate.schema (Collector.collect d) Imdb.Schema.schema in
     let ps0 = Init.normalize annotated in
     let dist =
       let loc =
         match
           List.find_opt
             (fun (_, t) -> match t with Xtype.Choice _ -> true | _ -> false)
             (Xtype.locations (Xschema.find ps0 "Show"))
         with
         | Some (l, _) -> l
         | None -> failwith "no union"
       in
       Rewrite.distribute_union ps0 ~tname:"Show" ~loc
     in
     [
       ("all-inlined", Init.all_inlined annotated);
       ("all-outlined", Init.all_outlined annotated);
       ("ps0", ps0);
       ("distributed", dist);
     ])

let run_query m db (q : Xq_ast.t) =
  let lq = Xq_translate.translate m q in
  let cat =
    Rschema.add_indexes (Storage.catalog db)
      (Xq_translate.equality_columns [ lq ])
  in
  let plans =
    List.map
      (fun (b : Logical.block) ->
        let r = Optimizer.optimize_block cat b in
        (r.Optimizer.plan, b.Logical.out))
      lq.Logical.blocks
  in
  Executor.run_query db plans

(* queries whose return paths are mandatory and single-valued: the main
   block row count equals the number of satisfying binding tuples *)
let comparable_queries =
  [
    (* by title: mandatory returns only *)
    "FOR $v IN document(\"x\")/imdb/show WHERE $v/year = 1900 RETURN $v/title, $v/year, $v/type";
    "FOR $v IN document(\"x\")/imdb/actor RETURN $v/name";
    "FOR $v IN document(\"x\")/imdb/show $e IN $v/episodes RETURN $v/title, $e/name";
    "FOR $i IN document(\"x\")/imdb $a in $i/actor, $m1 in $a/played RETURN $a/name, $m1/title";
    "FOR $i IN document(\"x\")/imdb $a in $i/actor, $m1 in $a/played, $d in $i/director, $m2 in $d/directed WHERE $a/name = $d/name AND $m1/title = $m2/title RETURN $a/name, $m1/title, $m1/year";
  ]

let suite =
  [
    case "relational answers match the reference evaluator" (fun () ->
        let d = Lazy.force doc in
        List.iter
          (fun (cname, schema) ->
            let m = mapping_of schema in
            let db = Storage.refresh_stats (Shred.shred m d) in
            List.iteri
              (fun i text ->
                let q = Xq_parse.parse ~name:(Printf.sprintf "cmp%d" i) text in
                let expected = Xq_eval.count_bindings d q in
                let rows, _ = run_query m db q in
                Alcotest.(check int)
                  (Printf.sprintf "%s / cmp%d" cname i)
                  expected (List.length rows))
              comparable_queries)
          (Lazy.force configurations));
    case "query answers agree across configurations" (fun () ->
        let d = Lazy.force doc in
        let counts =
          List.map
            (fun (cname, schema) ->
              let m = mapping_of schema in
              let db = Storage.refresh_stats (Shred.shred m d) in
              let q = Imdb.Queries.q 12 in
              let rows, _ = run_query m db q in
              (cname, List.length rows))
            (Lazy.force configurations)
        in
        match counts with
        | (_, first) :: rest ->
            List.iter
              (fun (cname, n) -> Alcotest.(check int) cname first n)
              rest
        | [] -> Alcotest.fail "no configurations");
    case "reference evaluator confirms Q12 on generated data" (fun () ->
        (* the generator overlaps actor and director names on purpose *)
        let d = Lazy.force doc in
        let expected = Xq_eval.count_bindings d (Imdb.Queries.q 12) in
        check_bool "count computed" true (expected >= 0));
    case "estimates rank scan-heavy vs probe-heavy plans like reality"
      (fun () ->
        let d = Lazy.force doc in
        let _, schema = List.hd (Lazy.force configurations) in
        let m = mapping_of schema in
        let db = Storage.refresh_stats (Shred.shred m d) in
        let cat = Storage.catalog db in
        (* publish-all vs a selective lookup: estimates and actual bytes
           read must order the same way *)
        let publish = Xq_translate.translate m (Imdb.Queries.q 16) in
        let lookup = Xq_translate.translate m (Imdb.Queries.q 19) in
        let cat =
          Rschema.add_indexes cat (Xq_translate.equality_columns [ lookup ])
        in
        let cost q = snd (Optimizer.query_cost cat q) in
        let work (q : Logical.query) =
          let plans =
            List.map
              (fun (b : Logical.block) ->
                ((Optimizer.optimize_block cat b).Optimizer.plan, b.Logical.out))
              q.Logical.blocks
          in
          let _, ms = Executor.run_query db plans in
          ms.Executor.bytes_read
        in
        check_bool "estimate order" true (cost publish > cost lookup);
        check_bool "actual order" true (work publish > work lookup));
    case "publish queries return every stored row once" (fun () ->
        let d = Lazy.force doc in
        let _, schema = List.hd (Lazy.force configurations) in
        let m = mapping_of schema in
        let db = Storage.refresh_stats (Shred.shred m d) in
        let rows, _ = run_query m db (Imdb.Queries.q 15) in
        (* actors + played + awards rows (per-table blocks) *)
        let expected =
          Storage.row_count db "Actor"
          + Storage.row_count db "Played"
          + Storage.row_count db "Award"
        in
        Alcotest.(check int) "actor subtree rows" expected (List.length rows));
    case "wildcard query finds the right sources" (fun () ->
        let d = Lazy.force doc in
        let _, schema = List.hd (Lazy.force configurations) in
        let m = mapping_of schema in
        let db = Storage.refresh_stats (Shred.shred m d) in
        let q =
          Xq_parse.parse ~name:"nyt"
            "FOR $v in imdb/show RETURN $v/title, $v/reviews/nyt"
        in
        let rows, _ = run_query m db q in
        let expected =
          List.length
            (List.filter
               (fun r -> Xml.child_elements "nyt" r <> [])
               (Xml.select [ "imdb"; "show"; "reviews" ] d))
        in
        Alcotest.(check int) "nyt reviews" expected (List.length rows));
  ]

(* cost-model calibration: the estimates must order (query, config)
   pairs the same way the executor's actual work does, whenever the
   estimated gap is substantial *)
let calibration_suite =
  [
    case "estimate orderings agree with actual bytes read" (fun () ->
        let d = Lazy.force doc in
        let points =
          List.concat_map
            (fun (cname, schema) ->
              let m = mapping_of schema in
              let db = Storage.refresh_stats (Shred.shred m d) in
              let cat = Storage.catalog db in
              List.map
                (fun qn ->
                  let q = Xq_translate.translate m (Imdb.Queries.q qn) in
                  let _, est = Optimizer.query_cost cat q in
                  let plans =
                    List.map
                      (fun (b : Logical.block) ->
                        ( (Optimizer.optimize_block cat b).Optimizer.plan,
                          b.Logical.out ))
                      q.Logical.blocks
                  in
                  let _, ms = Executor.run_query db plans in
                  (Printf.sprintf "%s/Q%d" cname qn, est, ms.Executor.bytes_read))
                [ 3; 7; 15; 16 ])
            (List.filteri (fun i _ -> i < 2) (Lazy.force configurations))
        in
        let violations = ref [] in
        List.iter
          (fun (n1, e1, a1) ->
            List.iter
              (fun (n2, e2, a2) ->
                (* only judge pairs with a clear estimated gap and real
                   work on both sides *)
                if e1 > 4. *. e2 && a1 > 0. && a2 > 0. && a1 < a2 then
                  violations := Printf.sprintf "%s vs %s" n1 n2 :: !violations)
              points)
          points;
        if !violations <> [] then
          Alcotest.failf "ordering violations: %s"
            (String.concat "; " !violations));
  ]

(* every appendix query runs on real data under every configuration *)
let all_queries_suite =
  [
    case "all twenty appendix queries execute everywhere" (fun () ->
        let d = Lazy.force doc in
        List.iter
          (fun (cname, schema) ->
            let m = mapping_of schema in
            let db = Storage.refresh_stats (Shred.shred m d) in
            List.iteri
              (fun i q ->
                match run_query m db q with
                | rows, _ ->
                    check_bool
                      (Printf.sprintf "%s/Q%d non-negative" cname (i + 1))
                      true
                      (List.length rows >= 0)
                | exception e ->
                    Alcotest.failf "%s/Q%d raised %s" cname (i + 1)
                      (Printexc.to_string e))
              Imdb.Queries.all)
          (Lazy.force configurations));
    case "query answers for all queries agree across configurations" (fun () ->
        let d = Lazy.force doc in
        let per_config =
          List.map
            (fun (cname, schema) ->
              let m = mapping_of schema in
              let db = Storage.refresh_stats (Shred.shred m d) in
              ( cname,
                List.map
                  (fun q -> List.length (fst (run_query m db q)))
                  (List.map Imdb.Queries.q [ 1; 2; 3; 8; 12; 14; 18; 20 ]) ))
            (Lazy.force configurations)
        in
        match per_config with
        | (_, first) :: rest ->
            List.iter
              (fun (cname, counts) ->
                Alcotest.(check (list int)) cname first counts)
              rest
        | [] -> Alcotest.fail "no configurations");
  ]
