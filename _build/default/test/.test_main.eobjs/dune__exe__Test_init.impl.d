test/test_init.ml: Alcotest Imdb Init Lazy Legodb List Pschema Random Result Rewrite Space Test_util Validate Xschema Xtype
