test/test_mapping.ml: Alcotest Annotate Format Imdb Init Lazy Legodb List Mapping Navigate Pathstat Rewrite Rschema String Test_util Xschema Xtype
