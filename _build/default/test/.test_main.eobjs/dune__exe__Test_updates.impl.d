test/test_updates.ml: Alcotest Float Imdb Init Lazy Legodb List Logical Mapping Optimizer Result Search Test_util Workload Xq_ast Xq_parse Xq_translate
