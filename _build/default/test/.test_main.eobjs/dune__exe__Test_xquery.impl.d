test/test_xquery.ml: Alcotest Imdb Legodb List Result String Test_util Workload Xq_ast Xq_eval Xq_parse
