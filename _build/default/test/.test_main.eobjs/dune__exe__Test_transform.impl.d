test/test_transform.ml: Alcotest Annotate Float Format Imdb Init Label Lazy Legodb List Pathstat Pschema Random Result Rewrite Space String Test_util Validate Xschema Xtype
