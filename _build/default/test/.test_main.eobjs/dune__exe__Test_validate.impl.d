test/test_validate.ml: Alcotest Imdb Label Lazy Legodb List Random Result Test_util Validate Xml Xschema Xtype
