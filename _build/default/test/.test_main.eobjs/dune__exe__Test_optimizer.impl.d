test/test_optimizer.ml: Alcotest Cost Estimate Executor Format Legodb List Logical Optimizer Physical Printf Rschema Rtype Storage Test_relational Test_util
