test/test_xtype.ml: Alcotest Format Label Legodb List String Test_util Xtype
