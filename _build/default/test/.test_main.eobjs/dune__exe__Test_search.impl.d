test/test_search.ml: Alcotest Float Format Imdb Init Lazy Legodb List Mapping Pschema Rschema Search Space Test_util Workload
