test/test_stats.ml: Alcotest Annotate Collector Imdb Label Lazy Legodb List Option Pathstat Printf String Test_util Xml Xschema Xtype
