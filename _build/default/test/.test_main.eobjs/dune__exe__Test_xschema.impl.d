test/test_xschema.ml: Alcotest Imdb Legodb List Result Test_util Xschema Xtype
