test/test_xsd.ml: Alcotest Annotate Collector Imdb Init Lazy Legodb List Publish Random Result Search Shred Test_util Validate Workload Xml Xschema Xsd_import Xtype
