test/test_xtype_parse.ml: Alcotest Format Imdb Init Label Lazy Legodb List Option Result Rewrite Test_util Xschema Xtype Xtype_parse
