test/test_util.ml: Alcotest Annotate Array Imdb Label Legodb List Mapping Printf Random String Xml Xschema Xtype
