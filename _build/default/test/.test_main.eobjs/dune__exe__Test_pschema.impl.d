test/test_pschema.ml: Alcotest Imdb Init Legodb List Pschema Result Test_util Xschema Xtype
