test/test_xml.ml: Alcotest Lazy Legodb List Option String Test_util Xml Xml_parse
