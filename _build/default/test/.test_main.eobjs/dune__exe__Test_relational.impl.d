test/test_relational.ml: Alcotest Legodb List Printf Result Rschema Rtype Seq Sql Storage Test_util
