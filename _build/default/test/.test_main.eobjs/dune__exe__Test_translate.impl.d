test/test_translate.ml: Alcotest Annotate Imdb Init Lazy Legodb List Logical Mapping Pathstat Rewrite Rtype String Test_util Xq_ast Xq_parse Xq_translate Xschema Xtype
