(** Pushing path statistics into schema annotations.

    The initial physical schema PS0 carries statistics inline
    (Section 3.1: [String<#50,#34798>], [Review*<#10>], ...).  This
    module computes, for every type definition, the set of absolute
    document paths at which the type's content can occur ("contexts"),
    then annotates every element node with its total occurrence count,
    every scalar with width / min / max / distinct, and every wildcard
    element with the observed distribution of concrete tags. *)

val schema : Pathstat.t -> Legodb_xtype.Xschema.t -> Legodb_xtype.Xschema.t
(** Annotate every reachable definition.  Unannotated facts (paths with
    no statistics) are left as [None] and downstream consumers fall
    back to defaults.  Recursive types are handled by bounding context
    paths at a fixed depth. *)

val strip : Legodb_xtype.Xschema.t -> Legodb_xtype.Xschema.t
(** Remove every statistics annotation (inverse of {!schema} up to
    defaults); useful for annotation-insensitive comparisons. *)

val contexts :
  Legodb_xtype.Xschema.t -> (string * string list list) list
(** The context paths computed for each reachable type (exposed for
    testing): [(type name, set of element-path prefixes)]. *)
