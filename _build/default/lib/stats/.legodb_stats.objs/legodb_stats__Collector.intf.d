lib/stats/collector.mli: Legodb_xml Pathstat
