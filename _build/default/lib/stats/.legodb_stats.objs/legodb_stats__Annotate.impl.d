lib/stats/annotate.ml: Hashtbl Label Legodb_xtype List Option Pathstat Queue Set String Xschema Xtype
