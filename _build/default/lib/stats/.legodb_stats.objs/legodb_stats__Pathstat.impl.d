lib/stats/pathstat.ml: Format List Map Option String
