lib/stats/collector.ml: Hashtbl Legodb_xml List Pathstat Seq String Xml
