lib/stats/annotate.mli: Legodb_xtype Pathstat
