lib/stats/pathstat.mli: Format
