open Legodb_xtype

let max_context_depth = 32
let max_contexts = 256

let path_step (label : Label.t) =
  match label with Label.Name n -> n | Label.Any | Label.Any_except _ -> "TILDE"

(* For each Ref in a type body, the element tags crossed from the body
   root down to the Ref. *)
let ref_contexts body =
  let rec go rel t acc =
    match t with
    | Xtype.Ref n -> (n, List.rev rel) :: acc
    | Xtype.Elem e -> go (path_step e.label :: rel) e.content acc
    | Xtype.Empty | Xtype.Scalar _ -> acc
    | Xtype.Attr (_, u) | Xtype.Rep (u, _) -> go rel u acc
    | Xtype.Seq ts | Xtype.Choice ts ->
        List.fold_left (fun acc u -> go rel u acc) acc ts
  in
  List.rev (go [] body [])

module PSet = Set.Make (struct
  type t = string list

  let compare = compare
end)

(* Contexts: for each reachable type, the set of absolute element paths
   under which its body occurs. *)
let compute_contexts schema =
  let ctxs : (string, PSet.t) Hashtbl.t = Hashtbl.create 16 in
  let get name = Option.value ~default:PSet.empty (Hashtbl.find_opt ctxs name) in
  let queue = Queue.create () in
  Hashtbl.replace ctxs (Xschema.root schema) (PSet.singleton []);
  Queue.add (Xschema.root schema, []) queue;
  while not (Queue.is_empty queue) do
    let name, ctx = Queue.pop queue in
    match Xschema.find_opt schema name with
    | None -> ()
    | Some body ->
        List.iter
          (fun (ref_name, rel) ->
            let path = ctx @ rel in
            if List.length path <= max_context_depth then
              let existing = get ref_name in
              if
                (not (PSet.mem path existing))
                && PSet.cardinal existing < max_contexts
              then begin
                Hashtbl.replace ctxs ref_name (PSet.add path existing);
                Queue.add (ref_name, path) queue
              end)
          (ref_contexts body)
  done;
  ctxs

let contexts schema =
  let ctxs = compute_contexts schema in
  List.filter_map
    (fun name ->
      Option.map
        (fun set -> (name, PSet.elements set))
        (Hashtbl.find_opt ctxs name))
    (Xschema.reachable schema)

(* Sum an optional-int query over a list of paths. *)
let sum_over stats paths f =
  let vals = List.filter_map (fun p -> f stats p) paths in
  match vals with [] -> None | vs -> Some (List.fold_left ( + ) 0 vs)

let scalar_stats_at stats paths kind : Xtype.scalar_stats option =
  let entries = List.filter_map (Pathstat.find stats) paths in
  if entries = [] then None
  else
    let size =
      let sizes = List.filter_map (fun (e : Pathstat.entry) -> e.size) entries in
      match sizes with
      | [] -> Xtype.default_width kind
      | ss -> List.fold_left max 0 ss
    in
    let bases = List.filter_map (fun (e : Pathstat.entry) -> e.base) entries in
    let s_min =
      match bases with
      | [] -> None
      | _ -> Some (List.fold_left (fun m (lo, _, _) -> min m lo) max_int bases)
    in
    let s_max =
      match bases with
      | [] -> None
      | _ -> Some (List.fold_left (fun m (_, hi, _) -> max m hi) min_int bases)
    in
    let distinct =
      let from_base =
        match bases with
        | [] -> None
        | _ -> Some (List.fold_left (fun n (_, _, d) -> n + d) 0 bases)
      in
      let from_distinct =
        let ds =
          List.filter_map (fun (e : Pathstat.entry) -> e.distinct) entries
        in
        match ds with [] -> None | _ -> Some (List.fold_left ( + ) 0 ds)
      in
      match (from_base, from_distinct) with
      | Some a, Some b -> Some (max a b)
      | (Some _ as r), None | None, (Some _ as r) -> r
      | None, None -> None
    in
    Some { Xtype.width = size; s_min; s_max; distinct }

(* Declared tags at a content level: attribute names and concretely
   named element tags, crossing Refs one level but not elements. *)
let declared_names schema content =
  let rec go depth t acc =
    match t with
    | Xtype.Attr (n, _) -> n :: acc
    | Xtype.Elem { label = Label.Name n; _ } -> n :: acc
    | Xtype.Elem _ -> acc
    | Xtype.Ref n when depth > 0 -> (
        match Xschema.find_opt schema n with
        | Some body -> go (depth - 1) body acc
        | None -> acc)
    | Xtype.Ref _ | Xtype.Empty | Xtype.Scalar _ -> acc
    | Xtype.Rep (u, _) -> go depth u acc
    | Xtype.Seq ts | Xtype.Choice ts ->
        List.fold_left (fun acc u -> go depth u acc) acc ts
  in
  go 2 content []

(* Tag distribution for a wildcard element occurring under [paths]. *)
let wildcard_labels stats paths label declared =
  List.concat_map
    (fun parent ->
      List.filter_map
        (fun (step, (e : Pathstat.entry)) ->
          if
            (not (String.equal step "TILDE"))
            && Label.matches label step
            && (not (List.mem step declared))
          then Option.map (fun c -> (step, float_of_int c)) e.count
          else None)
        (Pathstat.children stats parent))
    paths

let annotate_body schema stats ctxs body =
  (* [paths]: absolute element paths of the current content level.
     [inherited]: the count of the enclosing element, passed down to
     mandatory singleton children with no explicit statistics (the
     appendix records STsize but no STcnt for title, year, name, ...);
     repetitions and unions break the inheritance. *)
  let start_inherited =
    match List.filter_map (Pathstat.count stats) ctxs with
    | [] -> None
    | cs -> Some (float_of_int (List.fold_left ( + ) 0 cs))
  in
  let rec go paths siblings ~inherited t =
    match t with
    | Xtype.Empty | Xtype.Ref _ -> t
    | Xtype.Scalar (kind, _) ->
        Xtype.Scalar (kind, scalar_stats_at stats paths kind)
    | Xtype.Attr (n, u) ->
        let apaths = List.map (fun p -> p @ [ n ]) paths in
        Xtype.Attr (n, go apaths [] ~inherited:None u)
    | Xtype.Elem e ->
        let step = path_step e.label in
        let epaths = List.map (fun p -> p @ [ step ]) paths in
        let direct_count =
          Option.map float_of_int (sum_over stats epaths Pathstat.count)
        in
        let is_wild =
          match e.label with
          | Label.Any | Label.Any_except _ -> true
          | Label.Name _ -> false
        in
        let labels =
          if is_wild then wildcard_labels stats paths e.label siblings else []
        in
        let count =
          match direct_count with
          | Some _ as c -> c
          | None when labels <> [] ->
              Some (List.fold_left (fun a (_, c) -> a +. c) 0. labels)
          | None -> inherited
        in
        let content_paths =
          (* for wildcard content, value statistics live under TILDE when
             given explicitly, otherwise under the concrete tags *)
          if is_wild && labels <> [] && direct_count = None then
            List.concat_map
              (fun p -> List.map (fun (l, _) -> p @ [ l ]) labels)
              paths
          else epaths
        in
        let content =
          go content_paths
            (declared_names schema e.content)
            ~inherited:count e.content
        in
        Xtype.Elem { e with content; ann = { Xtype.count; labels } }
    | Xtype.Seq ts -> Xtype.Seq (List.map (go paths siblings ~inherited) ts)
    | Xtype.Choice ts ->
        Xtype.Choice (List.map (go paths siblings ~inherited:None) ts)
    | Xtype.Rep (u, o) -> Xtype.Rep (go paths siblings ~inherited:None u, o)
  in
  go ctxs (declared_names schema body) ~inherited:start_inherited body

let schema stats s =
  let ctxs = compute_contexts s in
  List.fold_left
    (fun s name ->
      match (Xschema.find_opt s name, Hashtbl.find_opt ctxs name) with
      | Some body, Some paths ->
          Xschema.update s name
            (annotate_body s stats (PSet.elements paths) body)
      | _, _ -> s)
    s (Xschema.reachable s)

let strip s =
  let rec go t =
    match t with
    | Xtype.Empty | Xtype.Ref _ -> t
    | Xtype.Scalar (k, _) -> Xtype.Scalar (k, None)
    | Xtype.Attr (n, u) -> Xtype.Attr (n, go u)
    | Xtype.Elem e ->
        Xtype.Elem { e with content = go e.content; ann = Xtype.no_ann }
    | Xtype.Seq ts -> Xtype.Seq (List.map go ts)
    | Xtype.Choice ts -> Xtype.Choice (List.map go ts)
    | Xtype.Rep (u, o) -> Xtype.Rep (go u, o)
  in
  List.fold_left
    (fun s (d : Xschema.defn) -> Xschema.update s d.name (go d.body))
    s (Xschema.defs s)
