(** Path-keyed XML data statistics, in the style of the paper's
    Appendix A:

    {v
    (["imdb";"show"], STcnt(34798));
    (["imdb";"show";"title"], STsize(50));
    (["imdb";"show";"year"], STbase(1800,2100,300));
    v}

    A path is the chain of element tags from the document root; an
    attribute contributes its name as a final step; a wildcard element
    is the conventional step ["TILDE"]. *)

type stat =
  | STcnt of int  (** total number of occurrences of the path *)
  | STsize of int  (** average printed width, bytes *)
  | STbase of int * int * int  (** integers: min, max, distinct count *)
  | STdistinct of int  (** strings: distinct count (our extension) *)

type entry = {
  count : int option;
  size : int option;
  base : (int * int * int) option;
  distinct : int option;
}

val empty_entry : entry

type t
(** Immutable map from paths to entries. *)

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val add : t -> string list -> stat -> t
(** Record one fact; later facts of the same kind overwrite. *)

val of_list : (string list * stat) list -> t
val find : t -> string list -> entry option
val count : t -> string list -> int option
val size : t -> string list -> int option

val children : t -> string list -> (string * entry) list
(** Entries exactly one step below the given path, keyed by that step. *)

val paths : t -> string list list
(** All recorded paths, sorted. *)

val merge : t -> t -> t
(** Point-wise merge; counts add, sizes average weighted by counts,
    bases widen, distincts take the max.  Used to combine statistics
    from several sample documents. *)

val pp : Format.formatter -> t -> unit
