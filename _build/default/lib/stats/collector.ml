open Legodb_xml

type acc = {
  mutable count : int;
  mutable total_size : int;  (* sum of text widths, for averaging *)
  mutable text_count : int;
  mutable int_min : int option;
  mutable int_max : int option;
  mutable all_int : bool;
  values : (string, unit) Hashtbl.t;  (* distinct values, capped *)
  mutable saturated : bool;
}

let fresh_acc () =
  {
    count = 0;
    total_size = 0;
    text_count = 0;
    int_min = None;
    int_max = None;
    all_int = true;
    values = Hashtbl.create 16;
    saturated = false;
  }

let parse_int text =
  let cleaned =
    String.to_seq (String.trim text)
    |> Seq.filter (fun c -> c <> ',')
    |> String.of_seq
  in
  int_of_string_opt cleaned

let record_value cap acc v =
  acc.total_size <- acc.total_size + String.length v;
  acc.text_count <- acc.text_count + 1;
  (match parse_int v with
  | Some n ->
      acc.int_min <- Some (match acc.int_min with None -> n | Some m -> min m n);
      acc.int_max <- Some (match acc.int_max with None -> n | Some m -> max m n)
  | None -> acc.all_int <- false);
  if not acc.saturated then
    if Hashtbl.length acc.values >= cap then acc.saturated <- true
    else Hashtbl.replace acc.values v ()

let text_only node =
  match node with
  | Xml.Element (_, _, children) ->
      children <> []
      && List.for_all (function Xml.Text _ -> true | _ -> false) children
  | Xml.Text _ -> false

let collect ?(distinct_cap = 1_000_000) doc =
  let table : (string list, acc) Hashtbl.t = Hashtbl.create 64 in
  let get path =
    match Hashtbl.find_opt table path with
    | Some a -> a
    | None ->
        let a = fresh_acc () in
        Hashtbl.add table path a;
        a
  in
  let rec walk path node =
    match node with
    | Xml.Text _ -> ()
    | Xml.Element (tag, attrs, children) ->
        let path = path @ [ tag ] in
        let acc = get path in
        acc.count <- acc.count + 1;
        List.iter
          (fun (name, value) ->
            let apath = path @ [ name ] in
            let aacc = get apath in
            aacc.count <- aacc.count + 1;
            record_value distinct_cap aacc value)
          attrs;
        if text_only node then record_value distinct_cap acc (Xml.text_content node)
        else List.iter (walk path) children
  in
  walk [] doc;
  Hashtbl.fold
    (fun path acc stats ->
      let stats = Pathstat.add stats path (Pathstat.STcnt acc.count) in
      if acc.text_count = 0 then stats
      else
        let avg = acc.total_size / max 1 acc.text_count in
        let distinct =
          if acc.saturated then distinct_cap else Hashtbl.length acc.values
        in
        let stats = Pathstat.add stats path (Pathstat.STsize avg) in
        match (acc.all_int, acc.int_min, acc.int_max) with
        | true, Some lo, Some hi ->
            Pathstat.add stats path (Pathstat.STbase (lo, hi, distinct))
        | _ -> Pathstat.add stats path (Pathstat.STdistinct distinct))
    table Pathstat.empty

let collect_all ?distinct_cap docs =
  List.fold_left
    (fun stats doc -> Pathstat.merge stats (collect ?distinct_cap doc))
    Pathstat.empty docs
