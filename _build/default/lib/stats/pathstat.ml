type stat =
  | STcnt of int
  | STsize of int
  | STbase of int * int * int
  | STdistinct of int

type entry = {
  count : int option;
  size : int option;
  base : (int * int * int) option;
  distinct : int option;
}

let empty_entry = { count = None; size = None; base = None; distinct = None }

module PMap = Map.Make (struct
  type t = string list

  let compare = compare
end)

type t = entry PMap.t

let empty = PMap.empty
let is_empty = PMap.is_empty
let cardinal = PMap.cardinal

let add m path stat =
  let e = Option.value ~default:empty_entry (PMap.find_opt path m) in
  let e =
    match stat with
    | STcnt n -> { e with count = Some n }
    | STsize n -> { e with size = Some n }
    | STbase (lo, hi, d) -> { e with base = Some (lo, hi, d) }
    | STdistinct n -> { e with distinct = Some n }
  in
  PMap.add path e m

let of_list l = List.fold_left (fun m (p, s) -> add m p s) empty l
let find m path = PMap.find_opt path m
let count m path = Option.bind (find m path) (fun e -> e.count)
let size m path = Option.bind (find m path) (fun e -> e.size)

let children m path =
  let n = List.length path in
  PMap.fold
    (fun p e acc ->
      if List.length p = n + 1 && List.filteri (fun i _ -> i < n) p = path then
        (List.nth p n, e) :: acc
      else acc)
    m []
  |> List.rev

let paths m = PMap.fold (fun p _ acc -> p :: acc) m [] |> List.rev

let merge_entry a b =
  let add_opt x y =
    match (x, y) with
    | Some x, Some y -> Some (x + y)
    | (Some _ as r), None | None, (Some _ as r) -> r
    | None, None -> None
  in
  let count = add_opt a.count b.count in
  let size =
    match (a.size, b.size, a.count, b.count) with
    | Some s1, Some s2, Some c1, Some c2 when c1 + c2 > 0 ->
        Some (((s1 * c1) + (s2 * c2)) / (c1 + c2))
    | Some s1, Some s2, _, _ -> Some ((s1 + s2) / 2)
    | (Some _ as r), None, _, _ | None, (Some _ as r), _, _ -> r
    | None, None, _, _ -> None
  in
  let base =
    match (a.base, b.base) with
    | Some (l1, h1, d1), Some (l2, h2, d2) ->
        Some (min l1 l2, max h1 h2, max d1 d2)
    | (Some _ as r), None | None, (Some _ as r) -> r
    | None, None -> None
  in
  let distinct =
    match (a.distinct, b.distinct) with
    | Some x, Some y -> Some (max x y)
    | (Some _ as r), None | None, (Some _ as r) -> r
    | None, None -> None
  in
  { count; size; base; distinct }

let merge a b =
  PMap.union (fun _ ea eb -> Some (merge_entry ea eb)) a b

let pp fmt m =
  PMap.iter
    (fun path e ->
      Format.fprintf fmt "@[([%s]" (String.concat ";" path);
      Option.iter (fun n -> Format.fprintf fmt ", STcnt(%d)" n) e.count;
      Option.iter (fun n -> Format.fprintf fmt ", STsize(%d)" n) e.size;
      Option.iter
        (fun (lo, hi, d) -> Format.fprintf fmt ", STbase(%d,%d,%d)" lo hi d)
        e.base;
      Option.iter (fun n -> Format.fprintf fmt ", STdistinct(%d)" n) e.distinct;
      Format.fprintf fmt ")@]@.")
    m
