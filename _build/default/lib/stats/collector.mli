(** Extraction of path statistics from sample XML documents
    (the "Statistics gathering" input of the architecture, Figure 7). *)

val collect : ?distinct_cap:int -> Legodb_xml.Xml.t -> Pathstat.t
(** Walk a document and record, for every element path: its occurrence
    count; for text-only elements the average text width and the number
    of distinct values (exact up to [distinct_cap] values per path,
    default 1_000_000, beyond which the count saturates); and for
    integer-valued text additionally the min and max.  Attribute values
    are treated like text-only children (the attribute name is the
    final path step). *)

val collect_all : ?distinct_cap:int -> Legodb_xml.Xml.t list -> Pathstat.t
(** {!collect} over several documents, merged. *)
