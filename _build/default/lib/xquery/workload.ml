type t = (Xq_ast.t * float) list

let total_weight w = List.fold_left (fun acc (_, x) -> acc +. x) 0. w

let normalize w =
  let total = total_weight w in
  if total <= 0. then w else List.map (fun (q, x) -> (q, x /. total)) w

let of_queries qs =
  let n = List.length qs in
  if n = 0 then []
  else List.map (fun q -> (q, 1. /. float_of_int n)) qs

let mix k a b =
  let a = normalize a and b = normalize b in
  List.map (fun (q, x) -> (q, k *. x)) a
  @ List.map (fun (q, x) -> (q, (1. -. k) *. x)) b

let queries w = List.map fst w

let pp fmt w =
  List.iter
    (fun ((q : Xq_ast.t), x) -> Format.fprintf fmt "%s: %.3f@," q.name x)
    w
