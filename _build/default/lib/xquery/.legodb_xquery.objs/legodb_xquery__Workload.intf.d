lib/xquery/workload.mli: Format Xq_ast
