lib/xquery/xq_ast.ml: Format List String
