lib/xquery/xq_eval.mli: Legodb_xml Xq_ast
