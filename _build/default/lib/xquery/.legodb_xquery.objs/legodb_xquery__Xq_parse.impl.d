lib/xquery/xq_parse.ml: List Printf Seq String Xq_ast
