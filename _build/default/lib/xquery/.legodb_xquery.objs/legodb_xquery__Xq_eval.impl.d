lib/xquery/xq_eval.ml: Legodb_xml List Seq String Xml Xq_ast
