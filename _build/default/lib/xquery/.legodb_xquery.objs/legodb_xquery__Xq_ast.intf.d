lib/xquery/xq_ast.mli: Format
