lib/xquery/workload.ml: Format List Xq_ast
