open Legodb_xml

let step node name =
  (* elements first; attribute values are wrapped as text-only synthetic
     elements so path machinery stays uniform *)
  let elems = Xml.child_elements name node in
  match (elems, Xml.attribute name node) with
  | [], Some v -> [ Xml.leaf name v ]
  | es, _ -> es

let select node path =
  List.fold_left (fun nodes name -> List.concat_map (fun n -> step n name) nodes)
    [ node ] path

let path_values node path =
  List.map Xml.text_content (select node path)

let normalize v =
  let cleaned =
    String.to_seq (String.trim v) |> Seq.filter (fun c -> c <> ',') |> String.of_seq
  in
  match int_of_string_opt cleaned with
  | Some n -> string_of_int n
  | None -> String.trim v

let values_equal a b = String.equal (normalize a) (normalize b)

let const_string = function
  | Xq_ast.C_int n -> string_of_int n
  | Xq_ast.C_string s -> s

(* All binding tuples (var -> node) of a FLWR over a document. *)
let binding_tuples doc (flwr : Xq_ast.flwr) =
  List.fold_left
    (fun tuples (v, source) ->
      List.concat_map
        (fun tuple ->
          let nodes =
            match source with
            | Xq_ast.Doc path -> (
                (* absolute: first step must match the root *)
                match path with
                | [] -> []
                | root :: rest ->
                    if Xml.tag doc = Some root then select doc rest else [])
            | Xq_ast.Var_path (w, path) -> (
                match List.assoc_opt w tuple with
                | Some node -> select node path
                | None -> [])
          in
          List.map (fun n -> (v, n) :: tuple) nodes)
        tuples)
    [ [] ]
    flwr.bindings

let pred_holds tuple (p : Xq_ast.pred) =
  match List.assoc_opt (fst p.left) tuple with
  | None -> false
  | Some node ->
      let lefts = path_values node (snd p.left) in
      let rights =
        match p.right with
        | Xq_ast.O_const c -> [ const_string c ]
        | Xq_ast.O_path (w, path) -> (
            match List.assoc_opt w tuple with
            | Some n -> path_values n path
            | None -> [])
      in
      List.exists (fun l -> List.exists (values_equal l) rights) lefts

let satisfying doc (flwr : Xq_ast.flwr) =
  List.filter
    (fun tuple -> List.for_all (pred_holds tuple) flwr.where)
    (binding_tuples doc flwr)

let count_bindings doc (q : Xq_ast.t) = List.length (satisfying doc q.body)

let eval_strings doc (q : Xq_ast.t) =
  let rec scalar_rets acc = function
    | Xq_ast.R_path (v, path) -> (v, path) :: acc
    | Xq_ast.R_elem (_, rs) -> List.fold_left scalar_rets acc rs
    | Xq_ast.R_var _ | Xq_ast.R_nested _ -> acc
  in
  let rets = List.rev (List.fold_left scalar_rets [] q.body.return) in
  List.map
    (fun tuple ->
      List.concat_map
        (fun (v, path) ->
          match List.assoc_opt v tuple with
          | Some node -> path_values node path
          | None -> [])
        rets)
    (satisfying doc q.body)
