(** Weighted query workloads. *)

type t = (Xq_ast.t * float) list
(** Queries with relative weights, e.g.
    [W1 = {Q1: 0.4, Q2: 0.4, Q3: 0.1, Q4: 0.1}]. *)

val of_queries : Xq_ast.t list -> t
(** Uniform weights summing to 1. *)

val normalize : t -> t
(** Scale weights to sum to 1 (identity on an empty workload). *)

val total_weight : t -> float

val mix : float -> t -> t -> t
(** [mix k a b] combines two workloads in the ratio [k : (1-k)] —
    the workload spectrum of Section 5.3.  Both inputs are normalized
    first. *)

val queries : t -> Xq_ast.t list
val pp : Format.formatter -> t -> unit
