type path = string list
type const = C_int of int | C_string of string
type source = Doc of path | Var_path of string * path
type operand = O_path of string * path | O_const of const
type pred = { left : string * path; right : operand }

type ret =
  | R_path of string * path
  | R_var of string
  | R_nested of flwr
  | R_elem of string * ret list

and flwr = {
  bindings : (string * source) list;
  where : pred list;
  return : ret list;
}

type t = { name : string; body : flwr }

let rec vars flwr =
  List.map fst flwr.bindings
  @ List.concat_map
      (fun r ->
        let rec go = function
          | R_nested f -> vars f
          | R_elem (_, rs) -> List.concat_map go rs
          | R_path _ | R_var _ -> []
        in
        go r)
      flwr.return

let check q =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let rec go scope flwr =
    let scope =
      List.fold_left
        (fun scope (v, src) ->
          if List.mem v scope then err "variable $%s bound twice" v;
          (match src with
          | Doc _ -> ()
          | Var_path (w, _) ->
              if not (List.mem w scope) then err "unbound variable $%s" w);
          v :: scope)
        scope flwr.bindings
    in
    List.iter
      (fun p ->
        if not (List.mem (fst p.left) scope) then
          err "unbound variable $%s" (fst p.left);
        match p.right with
        | O_path (v, _) ->
            if not (List.mem v scope) then err "unbound variable $%s" v
        | O_const _ -> ())
      flwr.where;
    let rec ret = function
      | R_path (v, _) | R_var v ->
          if not (List.mem v scope) then err "unbound variable $%s" v
      | R_nested f -> go scope f
      | R_elem (_, rs) -> List.iter ret rs
    in
    List.iter ret flwr.return
  in
  let has_doc_root =
    let rec doc_rooted f =
      List.exists (fun (_, s) -> match s with Doc _ -> true | _ -> false) f.bindings
      || List.exists
           (function
             | R_nested f -> doc_rooted f
             | R_elem (_, _) | R_path _ | R_var _ -> false)
           f.return
    in
    doc_rooted q.body
  in
  if not has_doc_root then err "no binding is rooted in the document";
  go [] q.body;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp_path fmt p = Format.pp_print_string fmt (String.concat "/" p)

let pp_const fmt = function
  | C_int n -> Format.pp_print_int fmt n
  | C_string s -> Format.pp_print_string fmt s

let pp_source fmt = function
  | Doc p -> Format.fprintf fmt "document(\"imdbdata\")/%a" pp_path p
  | Var_path (v, p) -> Format.fprintf fmt "$%s/%a" v pp_path p

let rec pp_flwr fmt f =
  List.iteri
    (fun i (v, src) ->
      Format.fprintf fmt "%s $%s IN %a@,"
        (if i = 0 then "FOR" else "   ")
        v pp_source src)
    f.bindings;
  if f.where <> [] then begin
    Format.pp_print_string fmt "WHERE ";
    List.iteri
      (fun i p ->
        if i > 0 then Format.fprintf fmt " AND@,      ";
        Format.fprintf fmt "$%s/%a = " (fst p.left) pp_path (snd p.left);
        match p.right with
        | O_path (v, path) -> Format.fprintf fmt "$%s/%a" v pp_path path
        | O_const c -> pp_const fmt c)
      f.where;
    Format.pp_print_cut fmt ()
  end;
  Format.pp_print_string fmt "RETURN ";
  List.iteri
    (fun i r ->
      if i > 0 then Format.fprintf fmt ",@,       ";
      pp_ret fmt r)
    f.return

and pp_ret fmt = function
  | R_path (v, p) -> Format.fprintf fmt "$%s/%a" v pp_path p
  | R_var v -> Format.fprintf fmt "$%s" v
  | R_nested f -> Format.fprintf fmt "@[<v 2>(%a)@]" pp_flwr f
  | R_elem (tag, rs) ->
      Format.fprintf fmt "@[<v 2><%s>@," tag;
      List.iteri
        (fun i r ->
          if i > 0 then Format.pp_print_cut fmt ();
          pp_ret fmt r)
        rs;
      Format.fprintf fmt "@]@,</%s>" tag

let pp fmt q = Format.fprintf fmt "@[<v>(: %s :)@,%a@]" q.name pp_flwr q.body

(* ------------------------------------------------------------------ *)
(* update statements (the paper's future-work extension)               *)
(* ------------------------------------------------------------------ *)

type update =
  | U_insert of { name : string; target : path }
  | U_delete of { name : string; body : flwr; target : string }
  | U_set of {
      name : string;
      body : flwr;
      target : string * path;
      value : const;
    }

let update_name = function
  | U_insert { name; _ } | U_delete { name; _ } | U_set { name; _ } -> name

let check_update u =
  match u with
  | U_insert { target = []; _ } -> Error [ "INSERT with an empty path" ]
  | U_insert _ -> Ok ()
  | U_delete { body; target; name } ->
      check
        {
          name;
          body = { body with return = [ R_var target ] };
        }
  | U_set { body; target = v, path; name; _ } ->
      check { name; body = { body with return = [ R_path (v, path) ] } }

let pp_update fmt = function
  | U_insert { target; _ } ->
      Format.fprintf fmt "INSERT %a" pp_path target
  | U_delete { body; target; _ } ->
      Format.fprintf fmt "@[<v>%a@]"
        (fun fmt () ->
          List.iteri
            (fun i (v, src) ->
              Format.fprintf fmt "%s $%s IN %a@,"
                (if i = 0 then "FOR" else "   ")
                v pp_source src)
            body.bindings;
          if body.where <> [] then Format.fprintf fmt "WHERE ...@,";
          Format.fprintf fmt "DELETE $%s" target)
        ()
  | U_set { body; target = v, path; value; _ } ->
      Format.fprintf fmt "@[<v>%a@]"
        (fun fmt () ->
          List.iteri
            (fun i (w, src) ->
              Format.fprintf fmt "%s $%s IN %a@,"
                (if i = 0 then "FOR" else "   ")
                w pp_source src)
            body.bindings;
          if body.where <> [] then Format.fprintf fmt "WHERE ...@,";
          Format.fprintf fmt "SET $%s/%a = %a" v pp_path path pp_const value)
        ()
