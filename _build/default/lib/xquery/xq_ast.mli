(** Abstract syntax for the XQuery subset of the paper's workloads
    (Appendix C): FLWR expressions with child-axis paths, conjunctive
    equality predicates, nested FLWRs and element constructors in the
    return clause. *)

type path = string list
(** Child steps from a binding; attribute access uses the attribute
    name as a step (the paper writes [$v/type] for the [@type]
    attribute). *)

type const = C_int of int | C_string of string
(** Symbolic constants like [c1] parse as strings. *)

type source =
  | Doc of path  (** [document("...")/imdb/show] or bare [imdb/show] *)
  | Var_path of string * path  (** [$v/episode] *)

type operand = O_path of string * path | O_const of const

type pred = { left : string * path; right : operand }
(** Equality only — the workload queries use no other comparison. *)

type ret =
  | R_path of string * path  (** [$v/title] *)
  | R_var of string  (** [$v] — publish the whole subtree *)
  | R_nested of flwr  (** a nested FOR in the return clause *)
  | R_elem of string * ret list  (** [<result> ... </result>] *)

and flwr = {
  bindings : (string * source) list;
  where : pred list;
  return : ret list;
}

type t = { name : string; body : flwr }

val vars : flwr -> string list
(** Bound variables in order, including nested FLWRs. *)

val check : t -> (unit, string list) result
(** Every variable used is bound (in scope), binding names are unique,
    and at least one binding is rooted in the document. *)

val pp : Format.formatter -> t -> unit
val pp_flwr : Format.formatter -> flwr -> unit
val pp_path : Format.formatter -> path -> unit
val pp_source : Format.formatter -> source -> unit
val pp_const : Format.formatter -> const -> unit

(** {1 Updates}

    The update statements of the paper's future-work list ("including
    updates in our workload", Section 7): inserting a fresh element at
    a document path, deleting the elements a FLWR binds, and replacing
    a scalar value. *)

type update =
  | U_insert of { name : string; target : path }
      (** [INSERT imdb/show] — a new element (with its whole subtree)
          appears at the path *)
  | U_delete of { name : string; body : flwr; target : string }
      (** [FOR $v IN ... WHERE ... DELETE $v] *)
  | U_set of {
      name : string;
      body : flwr;
      target : string * path;
      value : const;
    }  (** [FOR $v IN ... WHERE ... SET $v/path = c] *)

val update_name : update -> string

val check_update : update -> (unit, string list) result
(** Variable scoping, like {!check}. *)

val pp_update : Format.formatter -> update -> unit
