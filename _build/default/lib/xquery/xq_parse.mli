(** Parser for the XQuery subset, accepting the (slightly informal)
    concrete syntax of the paper's appendix:

    {v
    FOR $v IN document("imdbdata")/imdb/show
    WHERE $v/title = c1
    RETURN $v/title, $v/year, $v/type
    v}

    including bare document paths ([FOR $v in imdb/show]), reversed
    bindings ([FOR $v/episode $e]), case-insensitive keywords,
    comma-or-whitespace separated bindings and return items, element
    constructors ([<result> ... </result>]) and nested FLWRs in return
    position, and [(: comments :)]. *)

exception Parse_error of { position : int; message : string }

val parse : ?name:string -> string -> Xq_ast.t
(** Parse one query.  @raise Parse_error on malformed input. *)

val parse_update : ?name:string -> string -> Xq_ast.update
(** Parse one update statement:
    [INSERT imdb/show],
    [FOR $v IN ... WHERE ... DELETE $v], or
    [FOR $v IN ... WHERE ... SET $v/path = c].
    @raise Parse_error *)
