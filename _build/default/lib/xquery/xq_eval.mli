(** A naive reference evaluator for the XQuery subset, operating
    directly on document trees.

    It exists to cross-check the relational translation: for a query
    whose return paths are mandatory and single-valued, the number of
    binding tuples satisfying the WHERE clause must equal the row count
    of the translated main block on a shredded copy of the same
    document, whatever storage configuration was chosen. *)

val select : Legodb_xml.Xml.t -> string list -> Legodb_xml.Xml.t list
(** Child-axis path evaluation relative to a node (the node itself is
    not matched by the first step). *)

val path_values : Legodb_xml.Xml.t -> string list -> string list
(** Text contents of the elements (or values of the attributes) a path
    reaches from a node. *)

val count_bindings : Legodb_xml.Xml.t -> Xq_ast.t -> int
(** Number of FOR-binding tuples of the outer FLWR that satisfy the
    WHERE clause (existential semantics for multi-valued predicate
    paths). *)

val eval_strings : Legodb_xml.Xml.t -> Xq_ast.t -> string list list
(** Full naive evaluation: one row of strings per satisfying binding
    tuple, containing the values of the scalar return paths (missing
    paths contribute nothing; nested FLWRs and published subtrees are
    skipped).  Useful for spot checks. *)
