open Legodb_xtype

type kind =
  | K_inline
  | K_outline
  | K_union_dist
  | K_union_factor
  | K_rep_split
  | K_rep_merge
  | K_wildcard
  | K_union_opts

type step =
  | Inline of { tname : string; loc : Xtype.loc; target : string }
  | Outline of { tname : string; loc : Xtype.loc; tag : string }
  | Union_dist of { tname : string; loc : Xtype.loc }
  | Union_factor of { tname : string; loc : Xtype.loc }
  | Rep_split of { tname : string; loc : Xtype.loc; target : string }
  | Rep_merge of { tname : string; loc : Xtype.loc }
  | Wildcard of { tname : string; loc : Xtype.loc; tag : string }
  | Union_opts of { tname : string; loc : Xtype.loc }

let kind_of_step = function
  | Inline _ -> K_inline
  | Outline _ -> K_outline
  | Union_dist _ -> K_union_dist
  | Union_factor _ -> K_union_factor
  | Rep_split _ -> K_rep_split
  | Rep_merge _ -> K_rep_merge
  | Wildcard _ -> K_wildcard
  | Union_opts _ -> K_union_opts

let pp_loc fmt loc =
  Format.pp_print_string fmt (String.concat "." (List.map string_of_int loc))

let pp_step fmt = function
  | Inline { tname; target; _ } ->
      Format.fprintf fmt "inline %s into %s" target tname
  | Outline { tname; tag; loc } ->
      Format.fprintf fmt "outline %s from %s at %a" tag tname pp_loc loc
  | Union_dist { tname; loc } ->
      Format.fprintf fmt "distribute union in %s at %a" tname pp_loc loc
  | Union_factor { tname; loc } ->
      Format.fprintf fmt "factor union in %s at %a" tname pp_loc loc
  | Rep_split { tname; target; _ } ->
      Format.fprintf fmt "split repetition of %s in %s" target tname
  | Rep_merge { tname; loc } ->
      Format.fprintf fmt "merge repetition in %s at %a" tname pp_loc loc
  | Wildcard { tname; tag; _ } ->
      Format.fprintf fmt "materialize wildcard tag %s in %s" tag tname
  | Union_opts { tname; loc } ->
      Format.fprintf fmt "union to options in %s at %a" tname pp_loc loc

let default_kinds = [ K_inline; K_outline ]

let all_kinds =
  [
    K_inline;
    K_outline;
    K_union_dist;
    K_union_factor;
    K_rep_split;
    K_rep_merge;
    K_wildcard;
    K_union_opts;
  ]

let apply schema step =
  match step with
  | Inline { tname; loc; _ } -> Rewrite.inline schema ~tname ~loc
  | Outline { tname; loc; _ } -> fst (Rewrite.outline schema ~tname ~loc)
  | Union_dist { tname; loc } -> Rewrite.distribute_union schema ~tname ~loc
  | Union_factor { tname; loc } -> Rewrite.factor_union schema ~tname ~loc
  | Rep_split { tname; loc; _ } -> Rewrite.split_repetition schema ~tname ~loc
  | Rep_merge { tname; loc } -> Rewrite.merge_repetition schema ~tname ~loc
  | Wildcard { tname; loc; tag } ->
      Rewrite.materialize_wildcard schema ~tname ~loc ~tag
  | Union_opts { tname; loc } -> Rewrite.union_to_options schema ~tname ~loc

let max_wildcard_tags = 8

let scalar_choice ts =
  List.for_all (function Xtype.Scalar _ -> true | _ -> false) ts

let candidates kinds schema =
  let want k = List.mem k kinds in
  let live = Xschema.reachable schema in
  List.concat_map
    (fun tname ->
      let body = Xschema.find schema tname in
      List.concat_map
        (fun (loc, t) ->
          let parent =
            if loc = [] then None
            else
              Xtype.subterm body
                (List.filteri (fun i _ -> i < List.length loc - 1) loc)
          in
          let steps = ref [] in
          let push s = steps := s :: !steps in
          (match t with
          | Xtype.Ref target ->
              if want K_inline && Rewrite.can_inline schema ~tname ~loc then
                push (Inline { tname; loc; target })
          | Xtype.Elem e ->
              if want K_outline && loc <> [] then
                push (Outline { tname; loc; tag = Label.column_name e.label });
              (match e.label with
              | Label.Any | Label.Any_except _ ->
                  if want K_wildcard then
                    let tags =
                      List.sort
                        (fun (_, a) (_, b) -> Float.compare b a)
                        e.ann.labels
                    in
                    List.iteri
                      (fun i (tag, _) ->
                        if i < max_wildcard_tags then
                          push (Wildcard { tname; loc; tag }))
                      tags
              | Label.Name _ -> ())
          | Xtype.Choice ts when not (scalar_choice ts) ->
              (if
                 want K_union_dist
                 &&
                 match parent with
                 | Some (Xtype.Seq _) | Some (Xtype.Elem _) -> true
                 | _ -> false
               then push (Union_dist { tname; loc }));
              if want K_union_factor then push (Union_factor { tname; loc });
              if
                want K_union_opts
                && Rewrite.inlinable_position schema ~tname ~loc
              then push (Union_opts { tname; loc })
          | Xtype.Rep (Xtype.Ref target, o) ->
              if
                want K_rep_split && o.lo >= 1
                &&
                match o.hi with
                | Xtype.Bounded n -> n > 1
                | Xtype.Unbounded -> true
              then push (Rep_split { tname; loc; target })
          | Xtype.Seq _ ->
              if want K_rep_merge then push (Rep_merge { tname; loc })
          | Xtype.Choice _ | Xtype.Empty | Xtype.Scalar _ | Xtype.Attr _
          | Xtype.Rep _ ->
              ());
          List.rev !steps)
        (Xtype.locations body))
    live

let neighbors ?(kinds = default_kinds) schema =
  List.filter_map
    (fun step ->
      match apply schema step with
      | schema' -> Some (step, schema')
      | exception Rewrite.Not_applicable _ -> None)
    (candidates kinds schema)

let applicable ?(kinds = default_kinds) schema =
  List.map fst (neighbors ~kinds schema)
