(** The search space: single-step transformations applicable to a
    p-schema (the [ApplyTransformations] of Algorithm 4.1). *)

open Legodb_xtype

type kind =
  | K_inline
  | K_outline
  | K_union_dist
  | K_union_factor
  | K_rep_split
  | K_rep_merge
  | K_wildcard
  | K_union_opts

type step =
  | Inline of { tname : string; loc : Xtype.loc; target : string }
  | Outline of { tname : string; loc : Xtype.loc; tag : string }
  | Union_dist of { tname : string; loc : Xtype.loc }
  | Union_factor of { tname : string; loc : Xtype.loc }
  | Rep_split of { tname : string; loc : Xtype.loc; target : string }
  | Rep_merge of { tname : string; loc : Xtype.loc }
  | Wildcard of { tname : string; loc : Xtype.loc; tag : string }
  | Union_opts of { tname : string; loc : Xtype.loc }

val kind_of_step : step -> kind
val pp_step : Format.formatter -> step -> unit

val default_kinds : kind list
(** [[K_inline; K_outline]] — the paper's prototype limits the greedy
    search to inlining/outlining and explores the other rewritings
    separately (Section 5). *)

val all_kinds : kind list

val applicable : ?kinds:kind list -> Xschema.t -> step list
(** Every applicable single-step transformation of the given kinds
    (default {!default_kinds}), over all reachable definitions.
    Wildcard steps are proposed for each tag in the annotated label
    distribution of a wildcard element. *)

val apply : Xschema.t -> step -> Xschema.t
(** Apply one step.  @raise Rewrite.Not_applicable if the step does not
    (or no longer does) apply. *)

val neighbors : ?kinds:kind list -> Xschema.t -> (step * Xschema.t) list
(** [applicable] steps together with their results, skipping any step
    that fails to apply. *)
