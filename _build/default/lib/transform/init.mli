(** Construction of initial physical schemas (Section 3.1, Section 5.2).

    [normalize] produces {e some} equivalent p-schema (PS0) by outlining
    exactly the sub-terms that violate the stratified grammar;
    [all_outlined] and [all_inlined] produce the two extreme starting
    points used by the paper's [greedy-so] and [greedy-si] searches. *)

open Legodb_xtype

val normalize : Xschema.t -> Xschema.t
(** Outline every element (or scalar) that occurs under a repetition or
    union until the schema satisfies {!Legodb_pschema.Pschema.check}.
    Semantics-preserving.  @raise Rewrite.Not_applicable if a violation
    cannot be repaired by outlining (e.g. an attribute under a
    repetition). *)

val all_outlined : Xschema.t -> Xschema.t
(** {!normalize}, then outline every element that is not the root
    element of its definition body, to a fixpoint: every element gets
    its own type name ("all elements outlined except base types"). *)

val all_inlined : ?union_to_options:bool -> Xschema.t -> Xschema.t
(** {!normalize}, then (by default) rewrite every union in a physical
    position into optional sequences — the treatment of union that
    Figure 4(a) attributes to the inline-as-much-as-possible strategy
    of [19] — and finally inline every inlinable reference to a
    fixpoint.  With [~union_to_options:false] the result keeps unions
    (and the types they mention) outlined. *)
