open Legodb_xtype

exception Not_applicable of string

let fail fmt = Format.kasprintf (fun m -> raise (Not_applicable m)) fmt

let get_body schema tname =
  match Xschema.find_opt schema tname with
  | Some b -> b
  | None -> fail "type %s is not defined" tname

let get_subterm body loc =
  match Xtype.subterm body loc with
  | Some t -> t
  | None -> fail "no sub-term at the given location"

let is_optional (o : Xtype.occurs) =
  o.lo = 0 && match o.hi with Xtype.Bounded 1 -> true | _ -> false

(* -- statistics helpers ------------------------------------------------ *)

module SSet = Set.Make (String)

let rec card_of_body schema visiting t =
  match t with
  | Xtype.Elem e -> e.Xtype.ann.count
  | Xtype.Ref n ->
      if SSet.mem n visiting then None
      else
        Option.bind (Xschema.find_opt schema n)
          (card_of_body schema (SSet.add n visiting))
  | Xtype.Choice ts ->
      let cards = List.filter_map (card_of_body schema visiting) ts in
      if cards = [] then None else Some (List.fold_left ( +. ) 0. cards)
  | Xtype.Seq ts ->
      List.find_map (card_of_body schema visiting) ts
  | Xtype.Rep (u, _) -> card_of_body schema visiting u
  | Xtype.Empty | Xtype.Scalar _ | Xtype.Attr _ -> None

let card_of_def schema name =
  Option.bind (Xschema.find_opt schema name)
    (card_of_body schema (SSet.singleton name))

(* Count of the first mandatory element of a type, following refs. *)
let rec first_count schema visiting t =
  match t with
  | Xtype.Elem e -> e.Xtype.ann.count
  | Xtype.Ref n ->
      if SSet.mem n visiting then None
      else
        Option.bind (Xschema.find_opt schema n)
          (first_count schema (SSet.add n visiting))
  | Xtype.Seq ts -> List.find_map (first_count schema visiting) ts
  | Xtype.Choice ts ->
      let cs = List.filter_map (first_count schema visiting) ts in
      if cs = [] then None else Some (List.fold_left ( +. ) 0. cs)
  | Xtype.Rep (u, o) ->
      if o.Xtype.lo >= 1 then first_count schema visiting u else None
  | Xtype.Empty | Xtype.Scalar _ | Xtype.Attr _ -> None

let branch_weights schema branches =
  let raw =
    List.map
      (fun b ->
        match first_count schema SSet.empty b with
        | Some c -> Some c
        | None -> card_of_body schema SSet.empty b)
      branches
  in
  let known = List.filter_map Fun.id raw in
  if known = [] then
    let n = float_of_int (List.length branches) in
    List.map (fun _ -> 1. /. n) branches
  else
    let mean = List.fold_left ( +. ) 0. known /. float_of_int (List.length known) in
    let filled = List.map (Option.value ~default:mean) raw in
    let total = List.fold_left ( +. ) 0. filled in
    if total <= 0. then
      let n = float_of_int (List.length branches) in
      List.map (fun _ -> 1. /. n) branches
    else List.map (fun c -> c /. total) filled

let scale_elem_ann w (ann : Xtype.ann) =
  {
    Xtype.count = Option.map (fun c -> c *. w) ann.count;
    labels = List.map (fun (l, c) -> (l, c *. w)) ann.labels;
  }

(* Structural merge adding counts; both sides must be [Xtype.equal]. *)
let rec merge_counts a b =
  let add_opt x y =
    match (x, y) with
    | Some x, Some y -> Some (x +. y)
    | (Some _ as r), None | None, (Some _ as r) -> r
    | None, None -> None
  in
  match (a, b) with
  | Xtype.Scalar (k, s1), Xtype.Scalar (_, s2) ->
      let merged =
        match (s1, s2) with
        | Some x, Some y ->
            Some
              {
                Xtype.width = max x.Xtype.width y.Xtype.width;
                s_min =
                  (match (x.s_min, y.s_min) with
                  | Some a, Some b -> Some (min a b)
                  | (Some _ as r), None | None, (Some _ as r) -> r
                  | None, None -> None);
                s_max =
                  (match (x.s_max, y.s_max) with
                  | Some a, Some b -> Some (max a b)
                  | (Some _ as r), None | None, (Some _ as r) -> r
                  | None, None -> None);
                distinct =
                  (match (x.distinct, y.distinct) with
                  | Some a, Some b -> Some (a + b)
                  | (Some _ as r), None | None, (Some _ as r) -> r
                  | None, None -> None);
              }
        | (Some _ as r), None | None, (Some _ as r) -> r
        | None, None -> None
      in
      Xtype.Scalar (k, merged)
  | Xtype.Attr (n, u1), Xtype.Attr (_, u2) -> Xtype.Attr (n, merge_counts u1 u2)
  | Xtype.Elem e1, Xtype.Elem e2 ->
      let labels =
        List.fold_left
          (fun acc (l, c) ->
            match List.assoc_opt l acc with
            | Some c0 -> (l, c0 +. c) :: List.remove_assoc l acc
            | None -> (l, c) :: acc)
          e1.Xtype.ann.labels e2.Xtype.ann.labels
      in
      Xtype.Elem
        {
          e1 with
          content = merge_counts e1.content e2.content;
          ann = { Xtype.count = add_opt e1.ann.count e2.ann.count; labels };
        }
  | Xtype.Seq l1, Xtype.Seq l2 when List.length l1 = List.length l2 ->
      Xtype.Seq (List.map2 merge_counts l1 l2)
  | Xtype.Choice l1, Xtype.Choice l2 when List.length l1 = List.length l2 ->
      Xtype.Choice (List.map2 merge_counts l1 l2)
  | Xtype.Rep (u1, o), Xtype.Rep (u2, _) -> Xtype.Rep (merge_counts u1 u2, o)
  | _, _ -> a

(* -- positions --------------------------------------------------------- *)

let ancestors body loc =
  let rec go t loc acc =
    match loc with
    | [] -> List.rev acc
    | i :: rest -> (
        let children =
          match t with
          | Xtype.Empty | Xtype.Scalar _ | Xtype.Ref _ -> []
          | Xtype.Attr (_, u) | Xtype.Elem { content = u; _ } | Xtype.Rep (u, _)
            ->
              [ u ]
          | Xtype.Seq ts | Xtype.Choice ts -> ts
        in
        match List.nth_opt children i with
        | Some c -> go c rest (t :: acc)
        | None -> fail "no sub-term at the given location")
  in
  go body loc []

let inlinable_position schema ~tname ~loc =
  let body = get_body schema tname in
  List.for_all
    (fun t ->
      match t with
      | Xtype.Elem _ | Xtype.Seq _ -> true
      | Xtype.Rep (_, o) -> is_optional o
      | Xtype.Empty | Xtype.Scalar _ | Xtype.Attr _ | Xtype.Choice _
      | Xtype.Ref _ ->
          false)
    (ancestors body loc)

let enclosing_elem_count schema ~tname ~loc =
  let body = get_body schema tname in
  let enclosing =
    List.find_map
      (function
        | Xtype.Elem e -> e.Xtype.ann.count
        | _ -> None)
      (List.rev (ancestors body loc))
  in
  match enclosing with Some _ as c -> c | None -> card_of_def schema tname

(* Find the (unique) location of a physically-equal node. *)
let loc_of_node body node =
  match
    List.find_opt (fun (_, t) -> t == node) (Xtype.locations body)
  with
  | Some (loc, _) -> Some loc
  | None -> None

(* -- outlining / inlining ---------------------------------------------- *)

let type_name_base t =
  match t with
  | Xtype.Elem { label = Label.Name n; _ } -> String.capitalize_ascii n
  | Xtype.Elem _ -> "Wildcard"
  | Xtype.Scalar (Xtype.String_t, _) -> "String_data"
  | Xtype.Scalar (Xtype.Integer_t, _) -> "Integer_data"
  | _ -> "Part"

let outline_any ?name ~base schema ~tname ~loc =
  let body = get_body schema tname in
  let sub = get_subterm body loc in
  if loc = [] then fail "cannot outline the whole body of %s" tname;
  let nm = Xschema.fresh_name schema (Option.value ~default:base name) in
  let schema = Xschema.add schema nm sub in
  let schema = Xschema.update schema tname (Xtype.replace body loc (Xtype.Ref nm)) in
  (schema, nm)

let outline ?name schema ~tname ~loc =
  let body = get_body schema tname in
  match get_subterm body loc with
  | (Xtype.Elem _ | Xtype.Scalar _) as sub ->
      outline_any ?name ~base:(type_name_base sub) schema ~tname ~loc
  | _ -> fail "only elements and scalars can be outlined"

let inline_target schema ~tname ~loc =
  match Xtype.subterm (get_body schema tname) loc with
  | Some (Xtype.Ref n) -> Some n
  | Some _ | None -> None

let can_inline schema ~tname ~loc =
  match inline_target schema ~tname ~loc with
  | None -> false
  | Some n ->
      (not (String.equal n tname))
      && Xschema.mem schema n
      && Xschema.use_count schema n = 1
      && (not (Xschema.recursive schema n))
      && inlinable_position schema ~tname ~loc

let inline schema ~tname ~loc =
  if not (can_inline schema ~tname ~loc) then
    fail "reference not inlinable (shared, recursive, or in a named position)";
  let n = Option.get (inline_target schema ~tname ~loc) in
  let body = get_body schema tname in
  let schema = Xschema.update schema tname (Xtype.replace body loc (Xschema.find schema n)) in
  Xschema.remove schema n

(* -- unions ------------------------------------------------------------ *)

let union_to_options schema ~tname ~loc =
  let body = get_body schema tname in
  match get_subterm body loc with
  | Xtype.Choice ts ->
      if not (inlinable_position schema ~tname ~loc) then
        fail "the union is not in a physical position";
      Xschema.update schema tname
        (Xtype.replace body loc (Xtype.seq (List.map Xtype.optional ts)))
  | _ -> fail "no union at the given location"

let distribute_union schema ~tname ~loc =
  let body = get_body schema tname in
  let cs =
    match get_subterm body loc with
    | Xtype.Choice cs -> cs
    | _ -> fail "no union at the given location"
  in
  let ws = branch_weights schema cs in
  let parent_loc l = List.filteri (fun i _ -> i < List.length l - 1) l in
  (* Step 1: (a,(b|c)) == (a,b | a,c) when the union sits in a sequence. *)
  let body, loc, cs =
    if loc = [] then (body, loc, cs)
    else
      let ploc = parent_loc loc in
      match get_subterm body ploc with
      | Xtype.Seq ts ->
          let j = List.nth loc (List.length loc - 1) in
          let branches =
            List.map2
              (fun c w ->
                Xtype.seq
                  (List.mapi
                     (fun i it -> if i = j then c else Xtype.scale_counts w it)
                     ts))
              cs ws
          in
          let node = Xtype.choice branches in
          let body = Xtype.replace body ploc node in
          (match loc_of_node body node with
          | Some l -> (body, l, branches)
          | None -> fail "union distribution lost track of the rewritten union")
      | _ -> (body, loc, cs)
  in
  (* Step 2: a[t1|t2] == a[t1] | a[t2] when the union is an element's
     whole content. *)
  let body, loc, cs =
    if loc = [] then (body, loc, cs)
    else
      let ploc = parent_loc loc in
      match get_subterm body ploc with
      | Xtype.Elem e when List.length loc - List.length ploc = 1 ->
          let branches =
            List.map2
              (fun c w ->
                Xtype.Elem { e with content = c; ann = scale_elem_ann w e.ann })
              cs ws
          in
          let node = Xtype.choice branches in
          let body = Xtype.replace body ploc node in
          (match loc_of_node body node with
          | Some l -> (body, l, branches)
          | None -> fail "union distribution lost track of the rewritten union")
      | _ -> (body, loc, cs)
  in
  let schema = Xschema.update schema tname body in
  (* Step 3: outline every non-reference branch so the union mentions
     only type names. *)
  let n_branches = List.length cs in
  let rec outline_branches schema i =
    if i >= n_branches then schema
    else
      let body = get_body schema tname in
      match get_subterm body (loc @ [ i ]) with
      | Xtype.Ref _ -> outline_branches schema (i + 1)
      | sub ->
          let base =
            match sub with
            | Xtype.Elem { label = Label.Name n; _ } ->
                Printf.sprintf "%s_Part%d" (String.capitalize_ascii n) (i + 1)
            | _ -> Printf.sprintf "%s_Part%d" tname (i + 1)
          in
          let schema, _ = outline_any ~base schema ~tname ~loc:(loc @ [ i ]) in
          outline_branches schema (i + 1)
  in
  outline_branches schema 0

let factor_union schema ~tname ~loc =
  let body = get_body schema tname in
  let cs =
    match get_subterm body loc with
    | Xtype.Choice cs -> cs
    | _ -> fail "no union at the given location"
  in
  (* resolve refs one level for the element-merge case *)
  let resolved =
    List.map
      (fun c ->
        match c with
        | Xtype.Ref n -> (Xschema.find_opt schema n, c)
        | _ -> (Some c, c))
      cs
  in
  let as_elems =
    List.map
      (fun (r, orig) ->
        match r with Some (Xtype.Elem e) -> Some (e, orig) | _ -> None)
      resolved
  in
  if List.for_all Option.is_some as_elems then begin
    let elems = List.map Option.get as_elems in
    let (e0, _), rest = (List.hd elems, List.tl elems) in
    if not (List.for_all (fun (e, _) -> Label.equal e.Xtype.label e0.Xtype.label) rest)
    then fail "branches are elements with different labels";
    (* all refs must be exclusively used here *)
    let refs =
      List.filter_map
        (fun (_, orig) ->
          match orig with Xtype.Ref n -> Some n | _ -> None)
        elems
    in
    List.iter
      (fun n ->
        if Xschema.use_count schema n <> 1 then
          fail "branch type %s is shared and cannot be merged" n)
      refs;
    let contents = List.map (fun (e, _) -> e.Xtype.content) elems in
    let count =
      let counts = List.filter_map (fun (e, _) -> e.Xtype.ann.count) elems in
      match counts with [] -> None | cs -> Some (List.fold_left ( +. ) 0. cs)
    in
    let labels =
      List.concat_map (fun (e, _) -> e.Xtype.ann.labels) elems
      |> List.fold_left
           (fun acc (l, c) ->
             match List.assoc_opt l acc with
             | Some c0 -> (l, c0 +. c) :: List.remove_assoc l acc
             | None -> (l, c) :: acc)
           []
    in
    let merged =
      Xtype.Elem
        {
          e0 with
          content = Xtype.choice contents;
          ann = { Xtype.count; labels };
        }
    in
    let schema = Xschema.update schema tname (Xtype.replace body loc merged) in
    List.fold_left Xschema.remove schema refs
  end
  else
    (* sequence-head factorization: (a,b | a,c) == (a,(b|c)) *)
    let seqs =
      List.map
        (function
          | Xtype.Seq (h :: t) -> (h, t)
          | _ -> fail "branches are neither same-label elements nor sequences")
        cs
    in
    let (h0, _), rest = (List.hd seqs, List.tl seqs) in
    if not (List.for_all (fun (h, _) -> Xtype.equal h h0) rest) then
      fail "sequence branches do not share an equal head";
    let head = List.fold_left (fun acc (h, _) -> merge_counts acc h) h0 (List.tl seqs) in
    let tails = List.map (fun (_, t) -> Xtype.seq t) seqs in
    Xschema.update schema tname
      (Xtype.replace body loc (Xtype.seq [ head; Xtype.choice tails ]))

(* -- repetitions -------------------------------------------------------- *)

let dec (o : Xtype.occurs) =
  let hi =
    match o.hi with
    | Xtype.Bounded n -> Xtype.Bounded (n - 1)
    | Xtype.Unbounded -> Xtype.Unbounded
  in
  { Xtype.lo = max 0 (o.lo - 1); hi }

let inc (o : Xtype.occurs) =
  let hi =
    match o.hi with
    | Xtype.Bounded n -> Xtype.Bounded (n + 1)
    | Xtype.Unbounded -> Xtype.Unbounded
  in
  { Xtype.lo = o.lo + 1; hi }

let split_repetition schema ~tname ~loc =
  let body = get_body schema tname in
  match get_subterm body loc with
  | Xtype.Rep (inner, o) -> (
      if o.Xtype.lo < 1 then fail "repetition with a zero lower bound";
      (match o.Xtype.hi with
      | Xtype.Bounded n when n <= 1 -> fail "repetition already singular"
      | Xtype.Bounded _ | Xtype.Unbounded -> ());
      let parent_card = enclosing_elem_count schema ~tname ~loc in
      match inner with
      | Xtype.Ref n ->
          let total = card_of_def schema n in
          let f_first, f_rest =
            match (parent_card, total) with
            | Some p, Some c when c > 0. ->
                let f = Float.min 1. (Float.max 0. (p /. c)) in
                (f, 1. -. f)
            | _, _ -> (0.5, 0.5)
          in
          let n1 = Xschema.fresh_name schema (n ^ "_1") in
          let n_body = get_body schema n in
          let schema = Xschema.add schema n1 (Xtype.scale_counts f_first n_body) in
          let schema = Xschema.update schema n (Xtype.scale_counts f_rest n_body) in
          Xschema.update schema tname
            (Xtype.replace body loc
               (Xtype.seq [ Xtype.Ref n1; Xtype.rep (Xtype.Ref n) (dec o) ]))
      | Xtype.Elem _ ->
          let first = Xtype.scale_counts 0.5 inner in
          let rest = Xtype.rep (Xtype.scale_counts 0.5 inner) (dec o) in
          Xschema.update schema tname
            (Xtype.replace body loc (Xtype.seq [ first; rest ]))
      | _ -> fail "repetition content must be a type name or an element")
  | _ -> fail "no repetition at the given location"

let merge_repetition schema ~tname ~loc =
  let body = get_body schema tname in
  match get_subterm body loc with
  | Xtype.Seq ts ->
      let rec find i = function
        | a :: (Xtype.Rep (b, o) :: _ as rest_from_b) -> (
            let compatible =
              match (a, b) with
              | Xtype.Ref na, Xtype.Ref nb ->
                  String.equal na nb
                  || (Xschema.mem schema na && Xschema.mem schema nb
                     && Xtype.equal (Xschema.find schema na) (Xschema.find schema nb)
                     && Xschema.use_count schema na = 1)
              | Xtype.Elem _, Xtype.Elem _ -> Xtype.equal a b
              | _ -> false
            in
            if compatible then Some (i, a, b, o, rest_from_b)
            else find (i + 1) rest_from_b)
        | _ :: rest -> find (i + 1) rest
        | [] -> None
      in
      (match find 0 ts with
      | None -> fail "no adjacent singleton + repetition of equal types"
      | Some (i, a, b, o, _) ->
          let schema =
            match (a, b) with
            | Xtype.Ref na, Xtype.Ref nb when not (String.equal na nb) ->
                let merged =
                  merge_counts (Xschema.find schema nb) (Xschema.find schema na)
                in
                let schema = Xschema.update schema nb merged in
                Xschema.remove schema na
            | _ -> schema
          in
          let merged_item =
            match (a, b) with
            | Xtype.Elem _, Xtype.Elem _ ->
                Xtype.rep (merge_counts b a) (inc o)
            | _ -> Xtype.rep b (inc o)
          in
          let ts' =
            List.concat
              (List.mapi
                 (fun j it ->
                   if j = i then [ merged_item ]
                   else if j = i + 1 then []
                   else [ it ])
                 ts)
          in
          let body = Xschema.find schema tname in
          Xschema.update schema tname (Xtype.replace body loc (Xtype.seq ts')))
  | _ -> fail "no sequence at the given location"

(* -- wildcards ----------------------------------------------------------- *)

let materialize_wildcard schema ~tname ~loc ~tag =
  let body = get_body schema tname in
  match get_subterm body loc with
  | Xtype.Elem e -> (
      (match e.Xtype.label with
      | Label.Name _ -> fail "element label is not a wildcard"
      | Label.Any | Label.Any_except _ -> ());
      if not (Label.matches e.Xtype.label tag) then
        fail "the wildcard excludes tag %s" tag;
      match Label.remove e.Xtype.label tag with
      | None -> fail "nothing remains after removing %s" tag
      | Some rest_label ->
          let total = Option.value ~default:0. e.Xtype.ann.count in
          let tag_count =
            match List.assoc_opt tag e.Xtype.ann.labels with
            | Some c -> c
            | None -> if total > 0. then total /. 2. else 0.
          in
          let w = if total > 0. then Float.min 1. (tag_count /. total) else 0.5 in
          let e1 =
            Xtype.Elem
              {
                label = Label.Name tag;
                content = Xtype.scale_counts w e.Xtype.content;
                ann = { Xtype.count = Some tag_count; labels = [] };
              }
          in
          let e2 =
            Xtype.Elem
              {
                label = rest_label;
                content = Xtype.scale_counts (1. -. w) e.Xtype.content;
                ann =
                  {
                    Xtype.count = Some (Float.max 0. (total -. tag_count));
                    labels =
                      List.filter
                        (fun (l, _) -> not (String.equal l tag))
                        e.Xtype.ann.labels;
                  };
              }
          in
          let node = Xtype.choice [ e1; e2 ] in
          let body = Xtype.replace body loc node in
          let schema = Xschema.update schema tname body in
          let choice_loc =
            match loc_of_node body node with
            | Some l -> l
            | None -> fail "wildcard rewriting lost track of the union"
          in
          let schema, _ =
            outline_any
              ~base:(String.capitalize_ascii tag)
              schema ~tname ~loc:(choice_loc @ [ 0 ])
          in
          let schema, _ =
            outline_any ~base:("Other_" ^ tag) schema ~tname
              ~loc:(choice_loc @ [ 1 ])
          in
          schema)
  | _ -> fail "no element at the given location"
