(** The schema rewritings of Section 4.1.

    Each rewriting takes a schema and a location [(tname, loc)]
    addressing a sub-term of the body of definition [tname], checks its
    applicability condition, and returns the rewritten schema.
    Statistics annotations are redistributed so that the relational
    statistics derived from the result remain consistent (e.g. union
    distribution splits the duplicated prefix's counts by branch
    weight).

    All rewritings except {!union_to_options} preserve the set of valid
    documents exactly; [union_to_options] widens it
    ([ (t1|t2) ⊆ (t1?,t2?) ], as noted in the paper). *)

open Legodb_xtype

exception Not_applicable of string
(** Raised when a rewriting's precondition fails; the payload says
    why. *)

(** {1 Shared helpers} *)

val card_of_def : Xschema.t -> string -> float option
(** Estimated number of instances of a type (the cardinality of its
    table under the fixed mapping): the summed counts of the top-level
    elements of its body, following references. *)

val branch_weights : Xschema.t -> Xtype.t list -> float list
(** Relative frequency of each branch of a union, normalized to sum
    to 1.  Derived from the count of each branch's first mandatory
    element (following references); equal weights when no statistics
    are available. *)

val inlinable_position : Xschema.t -> tname:string -> loc:Xtype.loc -> bool
(** Is the given position in the physical layer — reachable from the
    body root through elements, sequences and optional repetitions
    only?  (The paper's "only within sequences or nested elements".) *)

(** {1 Inlining / outlining} *)

val outline :
  ?name:string -> Xschema.t -> tname:string -> loc:Xtype.loc -> Xschema.t * string
(** Give a type name to the element at [loc] and replace it by a
    reference.  The generated name capitalizes the element tag
    (disambiguated if taken); [?name] overrides it.  Returns the new
    schema and the new type's name.  Applicable when the sub-term is an
    element other than the body root. *)

val can_inline : Xschema.t -> tname:string -> loc:Xtype.loc -> bool

val inline : Xschema.t -> tname:string -> loc:Xtype.loc -> Xschema.t
(** Replace the reference at [loc] by the body of the referenced
    definition and drop that definition.  Applicable when the sub-term
    is a reference to a non-recursive type used exactly once, in an
    {!inlinable_position}. *)

(** {1 Union rewritings} *)

val distribute_union : Xschema.t -> tname:string -> loc:Xtype.loc -> Xschema.t
(** Full union distribution at the [Choice] found at [loc]:
    [(a,(b|c)) == (a,b | a,c)] if the union sits in a sequence, then
    [a\[t1|t2\] == a\[t1\]|a\[t2\]] if the (possibly lifted) union is the
    whole content of an element, and finally each resulting branch is
    outlined so the result is a union of type names (the horizontal
    partitioning of Figure 4(c)). *)

val factor_union : Xschema.t -> tname:string -> loc:Xtype.loc -> Xschema.t
(** The inverse direction: at a [Choice] whose branches are elements
    with the same label, merge them ([a\[t1\]|a\[t2\] == a\[t1|t2\]]);
    at a [Choice] whose branches are sequences sharing an equal head,
    factor the head out ([ (a,b|a,c) == (a,(b|c)) ]).  References are
    followed (and their definitions merged) when branches are refs to
    structurally equal elements. *)

val union_to_options : Xschema.t -> tname:string -> loc:Xtype.loc -> Xschema.t
(** [(t1|t2)] becomes [(t1?, t2?)] — the inlining-enabling,
    validation-widening rewriting of [19].  Applicable at a [Choice] in
    an {!inlinable_position}. *)

(** {1 Repetition rewritings} *)

val split_repetition : Xschema.t -> tname:string -> loc:Xtype.loc -> Xschema.t
(** [t{l,h}] with [l ≥ 1, h > 1] becomes [t', t{l-1,h-1}] where [t'] is
    a fresh copy of [t]'s definition (so the mandatory first occurrence
    can be inlined independently, as in the paper's [a+ == a, a*]
    example).  Counts are split: the fresh copy receives one occurrence
    per parent, the remainder keeps the rest. *)

val merge_repetition : Xschema.t -> tname:string -> loc:Xtype.loc -> Xschema.t
(** Inverse of {!split_repetition}: at a [Seq] whose items [i, i+1] are
    a reference and a repetition of a structurally equal type, merge
    them into [t{l+1,h+1}].  [loc] addresses the sequence; the first
    matching adjacent pair is merged. *)

(** {1 Wildcards} *)

val materialize_wildcard :
  Xschema.t -> tname:string -> loc:Xtype.loc -> tag:string -> Xschema.t
(** At a wildcard element, split off a concrete tag:
    [~ == tag | ~!tag] distributed over the element constructor, with
    both alternatives outlined (the NYTReview / OtherReview example).
    Requires the element's label to admit [tag]; occurrence counts are
    split using the annotated label distribution. *)
