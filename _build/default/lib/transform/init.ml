open Legodb_xtype
module Pschema = Legodb_pschema.Pschema

let max_steps = 100_000

let normalize schema =
  let rec fix schema steps =
    if steps > max_steps then
      raise (Rewrite.Not_applicable "normalization did not converge")
    else
      match Pschema.check schema with
      | Ok () -> schema
      | Error (v :: _) -> (
          match Xtype.subterm (Xschema.find schema v.Pschema.tname) v.loc with
          | Some (Xtype.Elem _ | Xtype.Scalar _) ->
              let schema, _ =
                Rewrite.outline schema ~tname:v.Pschema.tname ~loc:v.loc
              in
              fix schema (steps + 1)
          | Some _ | None ->
              raise
                (Rewrite.Not_applicable
                   (Format.asprintf "cannot repair: %a" Pschema.pp_violation v)))
      | Error [] -> schema
  in
  fix (Xschema.gc schema) 0

let find_first defs pick =
  List.find_map
    (fun (d : Xschema.defn) ->
      List.find_map
        (fun (loc, t) -> pick d.name loc t)
        (Xtype.locations d.body))
    defs

let all_outlined schema =
  let rec fix schema steps =
    if steps > max_steps then schema
    else
      let next =
        find_first (Xschema.defs schema) (fun name loc t ->
            match t with
            | Xtype.Elem _ when loc <> [] -> Some (name, loc)
            | _ -> None)
      in
      match next with
      | None -> schema
      | Some (tname, loc) ->
          fix (fst (Rewrite.outline schema ~tname ~loc)) (steps + 1)
  in
  fix (normalize schema) 0

let scalar_choice ts =
  List.for_all (function Xtype.Scalar _ -> true | _ -> false) ts

let all_inlined ?(union_to_options = true) schema =
  let schema = normalize schema in
  let rec remove_unions schema steps =
    if steps > max_steps then schema
    else
      let next =
        find_first (Xschema.defs schema) (fun name loc t ->
            match t with
            | Xtype.Choice ts
              when (not (scalar_choice ts))
                   && Rewrite.inlinable_position schema ~tname:name ~loc ->
                Some (name, loc)
            | _ -> None)
      in
      match next with
      | None -> schema
      | Some (tname, loc) ->
          remove_unions (Rewrite.union_to_options schema ~tname ~loc) (steps + 1)
  in
  let schema = if union_to_options then remove_unions schema 0 else schema in
  let rec inline_all schema steps =
    if steps > max_steps then schema
    else
      let next =
        find_first (Xschema.defs schema) (fun name loc t ->
            match t with
            | Xtype.Ref _ when Rewrite.can_inline schema ~tname:name ~loc ->
                Some (name, loc)
            | _ -> None)
      in
      match next with
      | None -> schema
      | Some (tname, loc) ->
          inline_all (Rewrite.inline schema ~tname ~loc) (steps + 1)
  in
  inline_all schema 0
