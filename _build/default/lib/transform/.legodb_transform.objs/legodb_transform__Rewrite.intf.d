lib/transform/rewrite.mli: Legodb_xtype Xschema Xtype
