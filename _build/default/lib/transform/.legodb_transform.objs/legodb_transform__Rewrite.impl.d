lib/transform/rewrite.ml: Float Format Fun Label Legodb_xtype List Option Printf Set String Xschema Xtype
