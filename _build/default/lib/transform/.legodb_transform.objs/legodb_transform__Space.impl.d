lib/transform/space.ml: Float Format Label Legodb_xtype List Rewrite String Xschema Xtype
