lib/transform/init.ml: Format Legodb_pschema Legodb_xtype List Rewrite Xschema Xtype
