lib/transform/space.mli: Format Legodb_xtype Xschema Xtype
