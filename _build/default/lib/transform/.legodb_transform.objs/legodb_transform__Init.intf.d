lib/transform/init.mli: Legodb_xtype Xschema
