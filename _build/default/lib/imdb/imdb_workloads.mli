(** The workloads used across the paper's experiments. *)

val lookup : Legodb_xquery.Workload.t
(** Five lookup queries, uniform weights (Section 5.2). *)

val publish : Legodb_xquery.Workload.t
(** Three publishing queries, uniform weights (Section 5.2). *)

val mixed : float -> Legodb_xquery.Workload.t
(** [mixed k]: lookup and publish in the ratio [k : (1-k)]
    (the Section 5.3 spectrum). *)

val w1 : Legodb_xquery.Workload.t
(** Section 2's W1 = [{F1: 0.4, F2: 0.4, F3: 0.1, F4: 0.1}] over the
    Figure 5 queries (publishing-heavy). *)

val w2 : Legodb_xquery.Workload.t
(** Section 2's W2 = [{F1: 0.1, F2: 0.1, F3: 0.4, F4: 0.4}]
    (lookup-heavy). *)
