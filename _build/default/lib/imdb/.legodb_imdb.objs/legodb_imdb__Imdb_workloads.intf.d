lib/imdb/imdb_workloads.mli: Legodb_xquery
