lib/imdb/imdb_schema.mli: Legodb_xtype
