lib/imdb/imdb_stats.mli: Legodb_stats
