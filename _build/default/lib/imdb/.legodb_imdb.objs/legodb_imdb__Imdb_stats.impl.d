lib/imdb/imdb_stats.ml: Float Legodb_stats List Option
