lib/imdb/imdb_schema.ml: Label Legodb_xtype Xschema Xtype
