lib/imdb/imdb_gen.mli: Legodb_xml
