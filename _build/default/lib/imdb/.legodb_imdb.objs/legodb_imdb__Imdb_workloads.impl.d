lib/imdb/imdb_workloads.ml: Imdb_queries Legodb_xquery Workload
