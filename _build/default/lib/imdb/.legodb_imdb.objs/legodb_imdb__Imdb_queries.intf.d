lib/imdb/imdb_queries.mli: Legodb_xquery
