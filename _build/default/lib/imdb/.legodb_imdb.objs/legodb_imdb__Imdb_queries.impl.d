lib/imdb/imdb_queries.ml: Array Legodb_xquery List Printf
