lib/imdb/imdb_gen.ml: Char Legodb_xml List Printf Random String Xml
