open Legodb_stats.Pathstat

let appendix =
  of_list
    [
      ([ "imdb" ], STcnt 1);
      ([ "imdb"; "director" ], STcnt 26251);
      ([ "imdb"; "director"; "name" ], STsize 40);
      ([ "imdb"; "director"; "directed" ], STcnt 105004);
      ([ "imdb"; "director"; "directed"; "title" ], STsize 40);
      ([ "imdb"; "director"; "directed"; "year" ], STbase (1800, 2100, 300));
      ([ "imdb"; "director"; "directed"; "info" ], STcnt 50000);
      ([ "imdb"; "director"; "directed"; "info" ], STsize 100);
      ([ "imdb"; "director"; "directed"; "TILDE" ], STsize 255);
      ([ "imdb"; "show" ], STcnt 34798);
      ([ "imdb"; "show"; "title" ], STsize 50);
      ([ "imdb"; "show"; "year" ], STbase (1800, 2100, 300));
      ([ "imdb"; "show"; "aka" ], STcnt 13641);
      ([ "imdb"; "show"; "aka" ], STsize 40);
      ([ "imdb"; "show"; "type" ], STsize 8);
      ([ "imdb"; "show"; "reviews" ], STcnt 11250);
      ([ "imdb"; "show"; "reviews"; "TILDE" ], STsize 800);
      ([ "imdb"; "show"; "box_office" ], STcnt 7000);
      ([ "imdb"; "show"; "box_office" ], STbase (10000, 100000000, 7000));
      ([ "imdb"; "show"; "video_sales" ], STcnt 7000);
      ([ "imdb"; "show"; "video_sales" ], STbase (10000, 100000000, 7000));
      ([ "imdb"; "show"; "seasons" ], STcnt 3500);
      ([ "imdb"; "show"; "description" ], STsize 120);
      ([ "imdb"; "show"; "episodes" ], STcnt 31250);
      ([ "imdb"; "show"; "episodes"; "name" ], STsize 40);
      ([ "imdb"; "show"; "episodes"; "guest_director" ], STsize 40);
      ([ "imdb"; "actor" ], STcnt 165786);
      ([ "imdb"; "actor"; "name" ], STsize 40);
      ([ "imdb"; "actor"; "played" ], STcnt 663144);
      ([ "imdb"; "actor"; "played"; "title" ], STsize 40);
      ([ "imdb"; "actor"; "played"; "year" ], STbase (1800, 2100, 200));
      ([ "imdb"; "actor"; "played"; "character" ], STsize 40);
      ([ "imdb"; "actor"; "played"; "order_of_appearance" ], STbase (1, 300, 300));
      ([ "imdb"; "actor"; "played"; "award"; "result" ], STsize 3);
      ([ "imdb"; "actor"; "played"; "award"; "award_name" ], STsize 40);
      ([ "imdb"; "actor"; "biography"; "birthday" ], STsize 10);
      ([ "imdb"; "actor"; "biography"; "text" ], STcnt 20000);
      ([ "imdb"; "actor"; "biography"; "text" ], STsize 30);
    ]

(* Facts the appendix leaves implicit but the statistics translation
   needs; see DESIGN.md.  Counts follow directly from the appendix
   (e.g. one wildcard element per [reviews], one [title] per [show]);
   string distinct counts use the obvious population (shows for titles,
   people for names). *)
let extensions =
  of_list
    [
      ([ "imdb"; "show"; "title" ], STdistinct 34798);
      ([ "imdb"; "show"; "type" ], STdistinct 2);
      ([ "imdb"; "show"; "aka" ], STdistinct 13641);
      ([ "imdb"; "show"; "reviews"; "TILDE" ], STcnt 11250);
      ([ "imdb"; "show"; "reviews"; "TILDE" ], STdistinct 11250);
      ([ "imdb"; "show"; "description" ], STcnt 3500);
      ([ "imdb"; "show"; "description" ], STdistinct 3500);
      ([ "imdb"; "show"; "episodes"; "name" ], STdistinct 31250);
      ([ "imdb"; "show"; "episodes"; "guest_director" ], STdistinct 15000);
      ([ "imdb"; "director"; "name" ], STdistinct 26251);
      ([ "imdb"; "director"; "directed"; "title" ], STdistinct 34798);
      ([ "imdb"; "director"; "directed"; "info" ], STdistinct 50000);
      ([ "imdb"; "director"; "directed"; "TILDE" ], STcnt 50000);
      ([ "imdb"; "director"; "directed"; "TILDE" ], STdistinct 50000);
      ([ "imdb"; "actor"; "name" ], STdistinct 165786);
      ([ "imdb"; "actor"; "played"; "title" ], STdistinct 34798);
      ([ "imdb"; "actor"; "played"; "character" ], STdistinct 120000);
      ([ "imdb"; "actor"; "played"; "award" ], STcnt 200000);
      ([ "imdb"; "actor"; "played"; "award"; "result" ], STdistinct 3);
      ([ "imdb"; "actor"; "played"; "award"; "award_name" ], STdistinct 50);
      ([ "imdb"; "actor"; "biography" ], STcnt 20000);
      ([ "imdb"; "actor"; "biography"; "birthday" ], STcnt 20000);
      ([ "imdb"; "actor"; "biography"; "birthday" ], STdistinct 15000);
      ([ "imdb"; "actor"; "biography"; "text" ], STdistinct 20000);
    ]

let full = merge appendix extensions

let with_review_sources stats ~total sources =
  let base =
    of_list
      [
        ([ "imdb"; "show"; "reviews" ], STcnt total);
        ([ "imdb"; "show"; "reviews"; "TILDE" ], STcnt total);
        ([ "imdb"; "show"; "reviews"; "TILDE" ], STdistinct total);
      ]
  in
  let tagged =
    List.fold_left
      (fun acc (tag, frac) ->
        let count = int_of_float (Float.round (float_of_int total *. frac)) in
        let acc = add acc [ "imdb"; "show"; "reviews"; tag ] (STcnt count) in
        let acc = add acc [ "imdb"; "show"; "reviews"; tag ] (STsize 800) in
        add acc [ "imdb"; "show"; "reviews"; tag ] (STdistinct count))
      base sources
  in
  (* later facts overwrite: merge [tagged] over [stats] *)
  let overwritten =
    List.fold_left
      (fun acc path ->
        List.fold_left
          (fun acc stat -> add acc path stat)
          acc
          (let e = Option.get (find tagged path) in
           List.concat
             [
               (match e.count with Some n -> [ STcnt n ] | None -> []);
               (match e.size with Some n -> [ STsize n ] | None -> []);
               (match e.base with
               | Some (lo, hi, d) -> [ STbase (lo, hi, d) ]
               | None -> []);
               (match e.distinct with Some n -> [ STdistinct n ] | None -> []);
             ]))
      stats (paths tagged)
  in
  overwritten

let with_aka_count stats n =
  let stats = add stats [ "imdb"; "show"; "aka" ] (STcnt n) in
  add stats [ "imdb"; "show"; "aka" ] (STdistinct n)
