open Legodb_xml

type params = {
  seed : int;
  shows : int;
  movie_frac : float;
  aka_avg : float;
  reviews_avg : float;
  review_sources : (string * float) list;
  review_width : int;
  episodes_avg : float;
  directors : int;
  directed_avg : float;
  actors : int;
  played_avg : float;
  award_frac : float;
  biography_frac : float;
  year_range : int * int;
}

let default =
  {
    seed = 42;
    shows = 200;
    movie_frac = 0.67;
    aka_avg = 0.4;
    reviews_avg = 0.33;
    review_sources = [ ("nyt", 0.25); ("suntimes", 0.5); ("variety", 0.25) ];
    review_width = 80;
    episodes_avg = 9.;
    directors = 50;
    directed_avg = 4.;
    actors = 150;
    played_avg = 4.;
    award_frac = 0.3;
    biography_frac = 0.12;
    year_range = (1800, 2100);
  }

let paper_scale =
  {
    default with
    shows = 34798;
    movie_frac = 0.67;
    aka_avg = 13641. /. 34798.;
    reviews_avg = 11250. /. 34798.;
    review_width = 800;
    episodes_avg = 31250. /. 11483.;
    directors = 26251;
    directed_avg = 105004. /. 26251.;
    actors = 165786;
    played_avg = 663144. /. 165786.;
    biography_frac = 20000. /. 165786.;
  }

let scaled f =
  let p = paper_scale in
  let s n = max 1 (int_of_float (float_of_int n *. f)) in
  { p with shows = s p.shows; directors = s p.directors; actors = s p.actors }

(* deterministic helpers *)

let word rng stem idx width =
  let base = Printf.sprintf "%s_%06d" stem idx in
  let pad = width - String.length base in
  if pad <= 0 then base
  else
    base
    ^ String.init pad (fun _ -> Char.chr (Char.code 'a' + Random.State.int rng 26))

let poissonish rng avg =
  (* cheap integer draw with the right mean: floor(avg) plus a
     Bernoulli on the fractional part, plus geometric-ish spread *)
  let base = int_of_float avg in
  let frac = avg -. float_of_int base in
  let extra = if Random.State.float rng 1. < frac then 1 else 0 in
  let spread =
    if base >= 2 && Random.State.bool rng then Random.State.int rng base else 0
  in
  max 0 (base + extra + spread - (if base >= 2 then base / 2 else 0))

let pick_source rng sources =
  let x = Random.State.float rng 1. in
  let rec go acc = function
    | [ (tag, _) ] -> tag
    | (tag, f) :: rest -> if x < acc +. f then tag else go (acc +. f) rest
    | [] -> "misc"
  in
  go 0. sources

let year rng (lo, hi) = lo + Random.State.int rng (max 1 (hi - lo))

let generate p =
  let rng = Random.State.make [| p.seed |] in
  let title i = word rng "title" i 20 in
  let person i = word rng "person" i 18 in
  let show i =
    let is_movie = Random.State.float rng 1. < p.movie_frac in
    let akas =
      List.init (poissonish rng p.aka_avg) (fun k ->
          Xml.leaf "aka" (word rng "aka" ((i * 7) + k) 20))
    in
    let reviews =
      List.init (poissonish rng p.reviews_avg) (fun k ->
          Xml.elem "reviews"
            [
              Xml.leaf
                (pick_source rng p.review_sources)
                (word rng "review" ((i * 11) + k) p.review_width);
            ])
    in
    let branch =
      if is_movie then
        [
          Xml.leaf "box_office"
            (string_of_int (10000 + Random.State.int rng 99990000));
          Xml.leaf "video_sales"
            (string_of_int (10000 + Random.State.int rng 99990000));
        ]
      else
        [
          Xml.leaf "seasons" (string_of_int (1 + Random.State.int rng 20));
          Xml.leaf "description" (word rng "description" i 60);
        ]
        @ List.init (poissonish rng p.episodes_avg) (fun k ->
              Xml.elem "episodes"
                [
                  Xml.leaf "name" (word rng "episode" ((i * 13) + k) 20);
                  Xml.leaf "guest_director"
                    (person (Random.State.int rng (max 1 p.directors)));
                ])
    in
    Xml.elem "show"
      ([
         Xml.leaf "title" (title i);
         Xml.leaf "year" (string_of_int (year rng p.year_range));
         Xml.leaf "type" (if is_movie then "Movie" else "TVseries");
       ]
      @ akas @ reviews @ branch)
  in
  let directed i k =
    Xml.elem "directed"
      ([
         Xml.leaf "title" (title (Random.State.int rng (max 1 p.shows)));
         Xml.leaf "year" (string_of_int (year rng p.year_range));
       ]
      @ (if Random.State.float rng 1. < 0.5 then
           [ Xml.leaf "info" (word rng "info" ((i * 3) + k) 40) ]
         else [])
      @
      if Random.State.float rng 1. < 0.5 then
        [ Xml.leaf "misc" (word rng "misc" ((i * 5) + k) 40) ]
      else [])
  in
  let director i =
    Xml.elem "director"
      (Xml.leaf "name" (person i)
      :: List.init (poissonish rng p.directed_avg) (directed i))
  in
  let played i k =
    let awards =
      if Random.State.float rng 1. < p.award_frac then
        [
          Xml.elem "award"
            [
              Xml.leaf "result"
                (if Random.State.bool rng then "won" else "nom");
              Xml.leaf "award_name" (word rng "award" (k mod 50) 12);
            ];
        ]
      else []
    in
    Xml.elem "played"
      ([
         Xml.leaf "title" (title (Random.State.int rng (max 1 p.shows)));
         Xml.leaf "year" (string_of_int (year rng p.year_range));
         Xml.leaf "character" (word rng "char" ((i * 17) + k) 16);
         Xml.leaf "order_of_appearance"
           (string_of_int (1 + Random.State.int rng 300));
       ]
      @ awards)
  in
  let actor i =
    (* overlap the name pools so some actors are also directors *)
    let name_idx =
      if i < p.directors / 2 then i else p.directors + i
    in
    let biography =
      if Random.State.float rng 1. < p.biography_frac then
        [
          Xml.elem "biography"
            [
              Xml.leaf "birthday"
                (Printf.sprintf "%04d-%02d-%02d"
                   (1900 + Random.State.int rng 100)
                   (1 + Random.State.int rng 12)
                   (1 + Random.State.int rng 28));
              Xml.leaf "text" (word rng "bio" i 30);
            ];
        ]
      else []
    in
    Xml.elem "actor"
      ((Xml.leaf "name" (person name_idx)
       :: List.init (poissonish rng p.played_avg) (played i))
      @ biography)
  in
  Xml.elem "imdb"
    (List.init p.shows show
    @ List.init p.directors director
    @ List.init p.actors actor)
