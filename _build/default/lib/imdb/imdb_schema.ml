open Legodb_xtype

let s tag = Xtype.named_elem tag Xtype.string_
let i tag = Xtype.named_elem tag Xtype.integer

let schema =
  let show =
    Xtype.named_elem "show"
      (Xtype.seq
         [
           s "title";
           i "year";
           s "type";
           Xtype.rep (s "aka") Xtype.star;
           Xtype.rep
             (Xtype.named_elem "reviews" (Xtype.elem Label.Any Xtype.string_))
             Xtype.star;
           Xtype.choice
             [
               Xtype.seq [ i "box_office"; i "video_sales" ];
               Xtype.seq
                 [
                   i "seasons";
                   s "description";
                   Xtype.rep
                     (Xtype.named_elem "episodes"
                        (Xtype.seq [ s "name"; s "guest_director" ]))
                     Xtype.star;
                 ];
             ];
         ])
  in
  let director =
    Xtype.named_elem "director"
      (Xtype.seq
         [
           s "name";
           Xtype.rep
             (Xtype.named_elem "directed"
                (Xtype.seq
                   [
                     s "title";
                     i "year";
                     Xtype.optional (s "info");
                     Xtype.optional (Xtype.elem Label.Any Xtype.string_);
                   ]))
             Xtype.star;
         ])
  in
  let actor =
    Xtype.named_elem "actor"
      (Xtype.seq
         [
           s "name";
           Xtype.rep
             (Xtype.named_elem "played"
                (Xtype.seq
                   [
                     s "title";
                     i "year";
                     s "character";
                     i "order_of_appearance";
                     Xtype.rep
                       (Xtype.named_elem "award"
                          (Xtype.seq [ s "result"; s "award_name" ]))
                       (Xtype.occ 0 (Xtype.Bounded 5));
                   ]))
             Xtype.star;
           Xtype.optional
             (Xtype.named_elem "biography"
                (Xtype.seq [ s "birthday"; s "text" ]));
         ])
  in
  let imdb =
    Xtype.named_elem "imdb"
      (Xtype.seq
         [
           Xtype.rep (Xtype.ref_ "Show") Xtype.star;
           Xtype.rep (Xtype.ref_ "Director") Xtype.star;
           Xtype.rep (Xtype.ref_ "Actor") Xtype.star;
         ])
  in
  Xschema.make ~root:"IMDB"
    [
      { Xschema.name = "IMDB"; body = imdb };
      { Xschema.name = "Show"; body = show };
      { Xschema.name = "Director"; body = director };
      { Xschema.name = "Actor"; body = actor };
    ]

let section2 =
  let show =
    Xtype.named_elem "show"
      (Xtype.seq
         [
           Xtype.attr "type" Xtype.string_;
           s "title";
           i "year";
           Xtype.rep (Xtype.ref_ "Aka") (Xtype.occ 1 (Xtype.Bounded 10));
           Xtype.rep (Xtype.ref_ "Review") Xtype.star;
           Xtype.choice [ Xtype.ref_ "Movie"; Xtype.ref_ "TV" ];
         ])
  in
  let movie = Xtype.seq [ i "box_office"; i "video_sales" ] in
  let tv =
    Xtype.seq
      [
        i "seasons";
        s "description";
        Xtype.rep (Xtype.ref_ "Episode") Xtype.star;
      ]
  in
  let episode =
    Xtype.named_elem "episode" (Xtype.seq [ s "name"; s "guest_director" ])
  in
  let imdb =
    Xtype.named_elem "imdb" (Xtype.seq [ Xtype.rep (Xtype.ref_ "Show") Xtype.star ])
  in
  Xschema.make ~root:"IMDB"
    [
      { Xschema.name = "IMDB"; body = imdb };
      { Xschema.name = "Show"; body = show };
      { Xschema.name = "Aka"; body = s "aka" };
      {
        Xschema.name = "Review";
        body = Xtype.named_elem "review" (Xtype.elem Label.Any Xtype.string_);
      };
      { Xschema.name = "Movie"; body = movie };
      { Xschema.name = "TV"; body = tv };
      { Xschema.name = "Episode"; body = episode };
    ]
