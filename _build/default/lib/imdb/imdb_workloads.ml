open Legodb_xquery

let lookup = Workload.of_queries Imdb_queries.lookup_queries
let publish = Workload.of_queries Imdb_queries.publish_queries
let mixed k = Workload.mix k lookup publish

let w1 =
  [
    (Imdb_queries.fig5 1, 0.4);
    (Imdb_queries.fig5 2, 0.4);
    (Imdb_queries.fig5 3, 0.1);
    (Imdb_queries.fig5 4, 0.1);
  ]

let w2 =
  [
    (Imdb_queries.fig5 1, 0.1);
    (Imdb_queries.fig5 2, 0.1);
    (Imdb_queries.fig5 3, 0.4);
    (Imdb_queries.fig5 4, 0.4);
  ]
