(** The workload queries of Appendix C (Q1–Q20) and the four Section 2
    queries of Figure 5, parsed from their concrete syntax.

    Two appendix typos are fixed (documented in DESIGN.md):
    [Q12]/[Q13] bind [$m2 in $d/directed] (not [$a/directed]), and
    [Q13]'s aka loop returns [$v] (the aka itself).  Element names
    follow Appendix B ([episodes], not [episode]). *)

val q : int -> Legodb_xquery.Xq_ast.t
(** [q n] returns Qn for n in 1..20. @raise Invalid_argument otherwise. *)

val lookup_queries : Legodb_xquery.Xq_ast.t list
(** {Q8, Q9, Q11, Q12, Q13} — the lookup workload of Section 5.2. *)

val publish_queries : Legodb_xquery.Xq_ast.t list
(** {Q15, Q16, Q17} — the publish workload of Section 5.2. *)

val fig5 : int -> Legodb_xquery.Xq_ast.t
(** [fig5 n] for n in 1..4: the Section 2 queries (NYT reviews of 1999
    shows; publish all shows; description by title; episodes by guest
    director). *)

val all : Legodb_xquery.Xq_ast.t list
(** Q1–Q20 in order. *)
