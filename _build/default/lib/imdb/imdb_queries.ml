let parse name text = Legodb_xquery.Xq_parse.parse ~name text

let texts =
  [|
    (* Q1 *)
    {| FOR $v IN document("imdbdata")/imdb/show
       WHERE $v/title = c1
       RETURN $v/title, $v/year, $v/type |};
    (* Q2 *)
    {| FOR $v IN document("imdbdata")/imdb/show
       WHERE $v/title = c1
       RETURN $v/title, $v/year |};
    (* Q3 *)
    {| FOR $v IN document("imdbdata")/imdb/show
       WHERE $v/year = 1999
       RETURN $v/title, $v/year |};
    (* Q4 *)
    {| FOR $v IN document("imdbdata")/imdb/show
       WHERE $v/title = c1
       RETURN $v/title, $v/year, $v/description |};
    (* Q5 *)
    {| FOR $v IN document("imdbdata")/imdb/show
       WHERE $v/title = c1
       RETURN $v/title, $v/year, $v/box_office |};
    (* Q6 *)
    {| FOR $v IN document("imdbdata")/imdb/show
       WHERE $v/title = c1
       RETURN $v/title, $v/year, $v/box_office, $v/description |};
    (* Q7 *)
    {| FOR $v IN document("imdbdata")/imdb/show
       RETURN $v/title, $v/year
       FOR $e IN $v/episodes
       WHERE $e/guest_director = c1
       RETURN $e/guest_director |};
    (* Q8 *)
    {| FOR $v IN document("imdbdata")/imdb/actor
       WHERE $v/name = c1
       RETURN $v/biography/birthday |};
    (* Q9 *)
    {| FOR $v IN document("imdbdata")/imdb/actor
       RETURN <result>
         $v/name
         FOR $v/biography $b where $b/birthday = c1
         RETURN $b/text
       </result> |};
    (* Q10 *)
    {| FOR $v IN document("imdbdata")/imdb/actor
       RETURN <result>
         $v/name
         FOR $v/biography $b where $b/birthday = c1
         RETURN $b/text, $b/birthday
       </result> |};
    (* Q11 *)
    {| FOR $v IN document("imdbdata")/imdb/actor
       RETURN <result>
         $v/name
         FOR $v/played $p where $p/character = c1
         RETURN $p/order_of_appearance
       </result> |};
    (* Q12 *)
    {| FOR $i IN document("imdbdata")/imdb
           $a in $i/actor,
           $m1 in $a/played,
           $d in $i/director,
           $m2 in $d/directed
       WHERE $a/name = $d/name AND $m1/title = $m2/title
       RETURN <result> $a/name $m1/title $m1/year </result> |};
    (* Q13 *)
    {| FOR $i IN document("imdbdata")/imdb
           $s in $i/show,
           $a in $i/actor,
           $m1 in $a/played,
           $d in $i/director,
           $m2 in $d/directed
       WHERE $a/name = $d/name AND $m1/title = $m2/title AND $m1/title = $s/title
       RETURN <result>
         $a/name $m1/title $m1/year
         FOR $v in $s/aka RETURN $v
       </result> |};
    (* Q14 *)
    {| FOR $i IN document("imdbdata")/imdb
           $a in $i/actor,
           $m1 in $a/played,
           $d in $i/director,
           $m2 in $d/directed
       WHERE $a/name = c1 AND $m1/title = $m2/title
       RETURN <result> $d/name $m1/title $m1/year </result> |};
    (* Q15 *)
    {| FOR $a IN document("imdbdata")/imdb/actor RETURN $a |};
    (* Q16 *)
    {| FOR $s IN document("imdbdata")/imdb/show RETURN $s |};
    (* Q17 *)
    {| FOR $d IN document("imdbdata")/imdb/director RETURN $d |};
    (* Q18 *)
    {| FOR $a IN document("imdbdata")/imdb/actor
       WHERE $a/name = c1
       RETURN $a |};
    (* Q19 *)
    {| FOR $s IN document("imdbdata")/imdb/show
       WHERE $s/title = c1
       RETURN $s |};
    (* Q20 *)
    {| FOR $d IN document("imdbdata")/imdb/director
       WHERE $d/name = c1
       RETURN $d |};
  |]

let cache = Array.make (Array.length texts) None

let q n =
  if n < 1 || n > Array.length texts then
    invalid_arg (Printf.sprintf "Imdb_queries.q: no query Q%d" n)
  else
    match cache.(n - 1) with
    | Some q -> q
    | None ->
        let parsed = parse (Printf.sprintf "Q%d" n) texts.(n - 1) in
        cache.(n - 1) <- Some parsed;
        parsed

let all = List.init (Array.length texts) (fun i -> q (i + 1))

let lookup_queries = List.map q [ 8; 9; 11; 12; 13 ]
let publish_queries = List.map q [ 15; 16; 17 ]

let fig5_texts =
  [|
    (* F1: title, year and NYT reviews of the 1999 shows *)
    {| FOR $v IN document("imdbdata")/imdb/show
       WHERE $v/year = 1999
       RETURN $v/title, $v/year, $v/reviews/nyt |};
    (* F2: publish everything *)
    {| FOR $v IN document("imdbdata")/imdb/show RETURN $v |};
    (* F3: description lookup *)
    {| FOR $v IN document("imdbdata")/imdb/show
       WHERE $v/title = c2
       RETURN $v/description |};
    (* F4: episodes by guest director *)
    {| FOR $v IN document("imdbdata")/imdb/show
       RETURN <result>
         $v/title
         $v/year
         FOR $e IN $v/episodes
         WHERE $e/guest_director = c4
         RETURN $e
       </result> |};
  |]

let fig5_cache = Array.make (Array.length fig5_texts) None

let fig5 n =
  if n < 1 || n > Array.length fig5_texts then
    invalid_arg (Printf.sprintf "Imdb_queries.fig5: no query %d" n)
  else
    match fig5_cache.(n - 1) with
    | Some q -> q
    | None ->
        let parsed =
          parse (Printf.sprintf "Fig5-Q%d" n) fig5_texts.(n - 1)
        in
        fig5_cache.(n - 1) <- Some parsed;
        parsed
