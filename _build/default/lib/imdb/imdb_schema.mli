(** The IMDB schema of Appendix B (XML Query Algebra notation), built
    programmatically.

    Two deliberate deviations from the appendix text, both to stay
    consistent with the Appendix A statistics: [info] inside [directed]
    and [biography] inside [actor] are optional (their counts are far
    below their parents'), and the wildcard inside [directed] is
    optional for the same reason. *)

val schema : Legodb_xtype.Xschema.t
(** The full IMDB schema: IMDB / Show / Director / Actor. *)

val section2 : Legodb_xtype.Xschema.t
(** The smaller Section 2 variant (Figure 2(b)): [@type] attribute,
    [Aka{1,10}] as a named type, named [Movie]/[TV] union branches.
    Used by documentation examples and transformation tests. *)
