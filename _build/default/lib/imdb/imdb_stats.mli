(** The Appendix A statistics, plus the handful of extensions the cost
    model needs (distinct counts for string columns, occurrence counts
    for paths the appendix sizes but does not count).  Extensions are
    kept separate so tests can verify the verbatim appendix set. *)

val appendix : Legodb_stats.Pathstat.t
(** The statistics exactly as printed in Appendix A. *)

val full : Legodb_stats.Pathstat.t
(** {!appendix} merged with the extensions (documented in DESIGN.md). *)

val with_review_sources :
  Legodb_stats.Pathstat.t ->
  total:int ->
  (string * float) list ->
  Legodb_stats.Pathstat.t
(** Override the review statistics: [total] reviews distributed over
    concrete source tags (e.g. [["nyt", 0.125; "suntimes", 0.875]]),
    each tag recorded as a concrete child path of
    [imdb/show/reviews] so wildcard label distributions get annotated.
    Used by the Table 2 experiment. *)

val with_aka_count : Legodb_stats.Pathstat.t -> int -> Legodb_stats.Pathstat.t
(** Override the total number of [aka] elements (the Figure 14
    sweep). *)
