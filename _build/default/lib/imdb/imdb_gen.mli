(** A scalable synthetic IMDB document generator.

    Generated documents validate against {!Imdb_schema.schema} and
    reproduce the proportions of the Appendix A statistics at any
    scale; the paper's real IMDB-derived dataset is not available, so
    this is the data substrate for shredding, execution and
    integration tests (see DESIGN.md §5).

    Joinability is preserved on purpose: [played] and [directed] titles
    are drawn from the show title pool, and actor and director names
    overlap, so Q12–Q14 return non-empty results. *)

type params = {
  seed : int;
  shows : int;
  movie_frac : float;  (** fraction of shows that are movies *)
  aka_avg : float;  (** average akas per show *)
  reviews_avg : float;  (** average reviews per show *)
  review_sources : (string * float) list;
      (** wildcard tag distribution, fractions summing to ~1 *)
  review_width : int;
  episodes_avg : float;  (** average episodes per TV show *)
  directors : int;
  directed_avg : float;
  actors : int;
  played_avg : float;
  award_frac : float;  (** fraction of played entries with one award *)
  biography_frac : float;
  year_range : int * int;
}

val default : params
(** A small instance (200 shows, 150 actors, 50 directors) suitable
    for unit and integration tests. *)

val paper_scale : params
(** Appendix A proportions at full scale (34798 shows, 165786 actors,
    26251 directors) — large; meant for benchmarks only. *)

val scaled : float -> params
(** [scaled f] shrinks {!paper_scale} populations by factor [f]
    (averages stay put). *)

val generate : params -> Legodb_xml.Xml.t
(** Deterministic for a given [seed]. *)
