(** Interpretation of physical plans over the in-memory storage engine.

    Used by integration tests and examples to actually run translated
    workloads, and to sanity-check the cost model: [measures] reports
    the real work done (tuples scanned, index probes, bytes touched) so
    estimate {e orderings} can be compared against actual behaviour. *)

open Legodb_relational

type tuple = (string * Storage.row) list
(** A joined tuple: alias -> base row. *)

type measures = {
  tuples_scanned : int;  (** rows fetched by sequential scans *)
  index_probes : int;
  join_tuples : int;  (** rows materialized by joins *)
  bytes_read : float;
  output_rows : int;
}

val zero_measures : measures

val run_plan : Storage.t -> Physical.plan -> tuple list * measures
(** Evaluate a plan bottom-up.  @raise Invalid_argument if the plan
    references unknown tables or columns. *)

val run_block :
  Storage.t -> Physical.plan -> Logical.col list -> Rtype.value list list * measures
(** [run_plan] followed by projection ([\[\]] projects every column of
    every relation, in plan order). *)

val run_query :
  Storage.t ->
  (Physical.plan * Logical.col list) list ->
  Rtype.value list list * measures
(** Run each block and concatenate results (outer-union semantics). *)
