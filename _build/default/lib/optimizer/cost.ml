type t = {
  seeks : float;
  pages_read : float;
  pages_written : float;
  cpu : float;
}

let zero = { seeks = 0.; pages_read = 0.; pages_written = 0.; cpu = 0. }

let add a b =
  {
    seeks = a.seeks +. b.seeks;
    pages_read = a.pages_read +. b.pages_read;
    pages_written = a.pages_written +. b.pages_written;
    cpu = a.cpu +. b.cpu;
  }

let scale k a =
  {
    seeks = k *. a.seeks;
    pages_read = k *. a.pages_read;
    pages_written = k *. a.pages_written;
    cpu = k *. a.cpu;
  }

let ( + ) = add

type params = {
  page_size : float;
  seek_weight : float;
  read_weight : float;
  write_weight : float;
  cpu_weight : float;
  memory_pages : float;
}

let default_params =
  {
    page_size = 8192.;
    seek_weight = 40.;
    read_weight = 1.;
    write_weight = 1.;
    cpu_weight = 0.002;
    memory_pages = 4096.;
  }

let pages p bytes = Float.max 1. (ceil (bytes /. p.page_size))

let total p c =
  (p.seek_weight *. c.seeks)
  +. (p.read_weight *. c.pages_read)
  +. (p.write_weight *. c.pages_written)
  +. (p.cpu_weight *. c.cpu)

let pp fmt c =
  Format.fprintf fmt "{seeks=%.1f; read=%.1f; written=%.1f; cpu=%.0f}" c.seeks
    c.pages_read c.pages_written c.cpu
