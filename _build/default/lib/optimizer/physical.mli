(** Physical plans: what the optimizer chooses and the executor runs. *)

type access =
  | Seq_scan
  | Index_probe of { column : string }
      (** equality probe with a constant taken from the scan's filters *)

type join_method =
  | Hash_join  (** build on the right input, probe with the left *)
  | Index_nl of { column : string }
      (** for each left row, index lookup on the right base table *)
  | Nl_join  (** naive nested loops (kept for completeness) *)

type plan =
  | Scan of {
      rel : Logical.relation;
      access : access;
      filters : Logical.pred list;  (** all local predicates, re-checked *)
    }
  | Join of {
      jm : join_method;
      left : plan;
      right : plan;
      conds : (Logical.col * Logical.col) list;
          (** equality pairs, left column first *)
      extra : Logical.pred list;  (** non-equality cross predicates *)
    }

val relations : plan -> Logical.relation list
val pp : Format.formatter -> plan -> unit
