(** The optimizer's cost vocabulary.

    Following the paper (Section 5): "the cost of a query [is] estimated
    ... on the basis of a cost model that takes into account number of
    seeks, amount of data read, amount of data written, and CPU time for
    in-memory processing".  Costs are kept as a vector of those four
    components and collapsed to a scalar with configurable weights. *)

type t = {
  seeks : float;  (** random I/O operations *)
  pages_read : float;
  pages_written : float;
  cpu : float;  (** tuples touched by in-memory processing *)
}

val zero : t
val add : t -> t -> t
val scale : float -> t -> t
val ( + ) : t -> t -> t

type params = {
  page_size : float;  (** bytes per page *)
  seek_weight : float;  (** cost units per seek *)
  read_weight : float;  (** per page read *)
  write_weight : float;  (** per page written *)
  cpu_weight : float;  (** per tuple of in-memory processing *)
  memory_pages : float;  (** working memory for hash tables and sorts *)
}

val default_params : params
(** Magnetic-disk-era proportions matching the paper's setting: 8 KB
    pages, a seek worth ~40 sequential page transfers, CPU three orders
    of magnitude below I/O. *)

val pages : params -> float -> float
(** [pages p bytes] — number of pages occupied by [bytes], at least 1. *)

val total : params -> t -> float
(** Collapse to a scalar. *)

val pp : Format.formatter -> t -> unit
