type access = Seq_scan | Index_probe of { column : string }

type join_method =
  | Hash_join
  | Index_nl of { column : string }
  | Nl_join

type plan =
  | Scan of {
      rel : Logical.relation;
      access : access;
      filters : Logical.pred list;
    }
  | Join of {
      jm : join_method;
      left : plan;
      right : plan;
      conds : (Logical.col * Logical.col) list;
      extra : Logical.pred list;
    }

let rec relations = function
  | Scan { rel; _ } -> [ rel ]
  | Join { left; right; _ } -> relations left @ relations right

let pp_method fmt = function
  | Hash_join -> Format.pp_print_string fmt "hash-join"
  | Index_nl { column } -> Format.fprintf fmt "index-nl-join(%s)" column
  | Nl_join -> Format.pp_print_string fmt "nl-join"

let rec pp fmt = function
  | Scan { rel; access; filters } ->
      (match access with
      | Seq_scan -> Format.fprintf fmt "scan %s" rel.Logical.table
      | Index_probe { column } ->
          Format.fprintf fmt "index %s.%s" rel.Logical.table column);
      if rel.alias <> rel.table then Format.fprintf fmt " as %s" rel.alias;
      if filters <> [] then
        Format.fprintf fmt " [%d filters]" (List.length filters)
  | Join { jm; left; right; conds; _ } ->
      Format.fprintf fmt "@[<v 2>%a on %d cond(s)@,%a@,%a@]" pp_method jm
        (List.length conds) pp left pp right
