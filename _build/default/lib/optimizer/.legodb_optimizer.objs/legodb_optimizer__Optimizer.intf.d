lib/optimizer/optimizer.mli: Cost Hashtbl Legodb_relational Logical Physical Rschema
