lib/optimizer/estimate.mli: Legodb_relational Logical Rschema
