lib/optimizer/estimate.ml: Float Legodb_relational List Logical Printf Rschema Rtype String
