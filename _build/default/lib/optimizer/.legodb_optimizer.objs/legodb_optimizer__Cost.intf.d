lib/optimizer/cost.mli: Format
