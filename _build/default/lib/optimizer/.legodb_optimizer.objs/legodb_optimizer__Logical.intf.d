lib/optimizer/logical.mli: Format Legodb_relational
