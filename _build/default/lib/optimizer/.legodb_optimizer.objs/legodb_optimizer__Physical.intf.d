lib/optimizer/physical.mli: Format Logical
