lib/optimizer/physical.ml: Format List Logical
