lib/optimizer/logical.ml: Format Legodb_relational List Rschema Rtype Sql String
