lib/optimizer/cost.ml: Float Format
