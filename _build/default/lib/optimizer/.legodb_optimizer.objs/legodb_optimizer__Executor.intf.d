lib/optimizer/executor.mli: Legodb_relational Logical Physical Rtype Storage
