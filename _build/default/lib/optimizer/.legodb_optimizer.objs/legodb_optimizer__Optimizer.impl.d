lib/optimizer/optimizer.ml: Cost Estimate Float Hashtbl Int Legodb_relational List Logical Option Physical Rschema String
