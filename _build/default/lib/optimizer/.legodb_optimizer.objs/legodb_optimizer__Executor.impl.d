lib/optimizer/executor.ml: Array Hashtbl Legodb_relational List Logical Physical Printf Rtype Seq Storage String
