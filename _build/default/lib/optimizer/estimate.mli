(** Cardinality and selectivity estimation over catalog statistics. *)

open Legodb_relational

type env
(** Resolves aliases to catalog tables for one block. *)

val env : Rschema.t -> Logical.block -> env
(** @raise Invalid_argument if an alias does not resolve. *)

val table_of : env -> string -> Rschema.table
val column_of : env -> Logical.col -> Rschema.column

val pred_selectivity : env -> Logical.pred -> float
(** Textbook System-R rules: equality with a constant selects
    [(1 - null_frac) / distinct]; ranges interpolate with min/max when
    known (1/3 otherwise); column-column equality selects
    [1 / max(d1, d2)] discounted by null fractions. *)

val base_rows : env -> string -> float
(** Rows of an alias after its local predicates (never below a small
    positive floor). *)

val subset_rows : env -> string list -> float
(** Estimated result cardinality of joining the given aliases with
    every block predicate whose aliases all fall inside the subset. *)

val output_width : env -> Logical.col list -> string list -> float
(** Average output row width of the projection (all columns of the
    listed aliases when the projection is empty). *)
