(** Named schemas: an ordered environment of type definitions plus a
    distinguished root type, as in

    {v
    type IMDB = imdb [ Show*, Director*, Actor* ]
    type Show = show [ ... ]
    v} *)

type defn = { name : string; body : Xtype.t }

type t
(** A schema.  Invariants: definition names are unique; lookups are
    O(1). *)

val make : root:string -> defn list -> t
(** @raise Invalid_argument on duplicate definition names. *)

val root : t -> string
val defs : t -> defn list

val find : t -> string -> Xtype.t
(** @raise Not_found if the type name is not defined. *)

val find_opt : t -> string -> Xtype.t option
val mem : t -> string -> bool

val add : t -> string -> Xtype.t -> t
(** Append a definition. @raise Invalid_argument if the name exists. *)

val update : t -> string -> Xtype.t -> t
(** Replace the body of an existing definition.
    @raise Not_found if absent. *)

val remove : t -> string -> t
val set_root : t -> string -> t

val fresh_name : t -> string -> string
(** [fresh_name s base] returns [base] if unused, else [base'], [base''],
    … following the paper's convention (e.g. [Show'Part1]). *)

(** {1 Analyses} *)

val check : t -> (unit, string list) result
(** Well-formedness: the root is defined, every [Ref] resolves, and no
    type is "left-recursive" through a non-element position (a cycle of
    refs that never crosses an element boundary would denote no finite
    document). *)

val reachable : t -> string list
(** Type names reachable from the root, in discovery order (root
    first). *)

val gc : t -> t
(** Drop unreachable definitions. *)

val use_count : t -> string -> int
(** Number of [Ref] occurrences of a name across reachable definitions
    (sharing detector: inlining requires a use count of 1). *)

val parents : t -> string -> string list
(** The defined types whose bodies reference the given name directly. *)

val recursive : t -> string -> bool
(** Is the type part of a reference cycle? *)

val nullable : t -> Xtype.t -> bool
(** {!Xtype.nullable} closed under the schema's definitions. *)

val expand : ?depth:int -> t -> Xtype.t -> Xtype.t
(** Substitute definitions for references, [depth] levels deep
    (default 1).  Recursive types stop unfolding at the depth limit. *)

val equal : t -> t -> bool
(** Same root, same definition names (order-insensitive), and
    annotation-insensitive equal bodies. *)

val pp : Format.formatter -> t -> unit
val pp_with_stats : Format.formatter -> t -> unit
val to_string : t -> string
