(** Element labels, including the wildcards of the XML Query Algebra.

    [~] (match any tag) is written {!Any}; [~!a] (match any tag except
    the listed ones) is written {!Any_except}. *)

type t =
  | Name of string  (** a concrete tag *)
  | Any  (** [~]: any tag *)
  | Any_except of string list  (** [~!a]: any tag not listed *)

val name : string -> t
(** [name tag] is [Name tag]. *)

val matches : t -> string -> bool
(** Does a concrete document tag satisfy the label? *)

val overlap : t -> t -> bool
(** Could some concrete tag satisfy both labels?  ([Any_except] vs
    [Any_except] always overlaps: the excluded sets are finite.) *)

val remove : t -> string -> t option
(** [remove l tag] is the label matching everything [l] matches except
    [tag]; [None] if nothing remains.  Used by the wildcard
    materialization rewriting: [~ = nyt | ~!nyt]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Paper notation: a bare name, [~], or [~!a,b]. *)

val to_string : t -> string

val column_name : t -> string
(** A deterministic identifier usable in relational column/table names:
    the tag for [Name], ["tilde"] for wildcards (as in the paper's
    mapped schemas). *)
