(** The type language of the XML Query Algebra, with statistics.

    This single AST serves both ordinary XML Schemas and the paper's
    physical schemas (p-schemas); [Legodb_pschema.Pschema] decides which
    values are in the stratified fragment of Figure 9.

    Statistics annotations (Section 3.1) are carried inline:
    - every element node may carry its absolute occurrence count in the
      document ([ann.count]) and, for wildcard elements, the observed
      distribution of concrete tags ([ann.labels]);
    - every scalar may carry width / min / max / distinct-count.

    Annotations never affect semantic operations (equality of types,
    validation); they only feed the relational statistics translation. *)

(** {1 Occurrence bounds} *)

type bound = Bounded of int | Unbounded

type occurs = { lo : int; hi : bound }
(** [{lo; hi}] is the [{m,n}] cardinality annotation of the paper. *)

val occ : int -> bound -> occurs
val opt : occurs  (** [{0,1}] *)

val star : occurs  (** [{0,*}] *)

val plus : occurs  (** [{1,*}] *)

val once : occurs  (** [{1,1}] *)

val occurs_equal : occurs -> occurs -> bool
val pp_occurs : Format.formatter -> occurs -> unit

(** {1 Scalars} *)

type scalar_kind = String_t | Integer_t

type scalar_stats = {
  width : int;  (** average/declared byte width of the printed value *)
  s_min : int option;  (** minimum value, integers only *)
  s_max : int option;  (** maximum value, integers only *)
  distinct : int option;  (** number of distinct values *)
}

val scalar_kind_equal : scalar_kind -> scalar_kind -> bool

val default_width : scalar_kind -> int
(** Width assumed when no statistics are available. *)

val scalar_ok : scalar_kind -> string -> bool
(** Does a document text value inhabit the scalar type?  Integers allow
    surrounding whitespace and grouping commas ("183,752,965"). *)

(** {1 The type AST} *)

type ann = {
  count : float option;
      (** total occurrences of this element in the document *)
  labels : (string * float) list;
      (** wildcard elements only: tag -> occurrence count *)
}

type t =
  | Empty  (** the empty sequence [()] *)
  | Scalar of scalar_kind * scalar_stats option
  | Attr of string * t  (** [@name[ t ]] — [t] is a scalar *)
  | Elem of elem  (** [label[ content ]] *)
  | Seq of t list  (** [t1, t2, ...] — invariant: ≥2 items, no nested Seq/Empty *)
  | Choice of t list  (** [(t1 | t2 | ...)] — invariant: ≥2 items *)
  | Rep of t * occurs  (** [t{m,n}] — invariant: not [{1,1}] *)
  | Ref of string  (** a type name *)

and elem = { label : Label.t; content : t; ann : ann }

(** {1 Smart constructors}

    These enforce the invariants noted above: [seq] and [choice] flatten
    nested lists and collapse singletons, [seq] drops [Empty], [rep]
    collapses [{1,1}] and fuses [Rep (Rep _)] by multiplying bounds. *)

val no_ann : ann
val scalar : scalar_kind -> t
val string_ : t
val integer : t
val attr : string -> t -> t
val elem : ?ann:ann -> Label.t -> t -> t
val named_elem : ?ann:ann -> string -> t -> t
val seq : t list -> t
val choice : t list -> t
val rep : t -> occurs -> t
val optional : t -> t
val ref_ : string -> t

(** {1 Queries over types} *)

val equal : t -> t -> bool
(** Structural equality {e ignoring} statistics annotations. *)

val equal_strict : t -> t -> bool
(** Structural equality including annotations. *)

val size : t -> int
(** Number of AST nodes. *)

val refs : t -> string list
(** Type names referenced, with duplicates, in left-to-right order. *)

val elements : t -> elem list
(** All element nodes, pre-order. *)

val nullable : t -> bool
(** Does the type accept the empty sequence?  [Ref] is conservatively
    non-nullable (use {!Xschema.nullable} for the closed version). *)

val map_ref : (string -> string) -> t -> t
(** Rename type references. *)

val scale_counts : float -> t -> t
(** Multiply every count annotation (element counts and scalar
    distincts are scaled; widths and min/max are kept).  Used when a
    rewriting splits a type into weighted parts. *)

(** {1 Sub-term addressing}

    A location is a path of child indices from the root of a type body:
    [Attr]/[Elem]/[Rep] have one child (index 0), [Seq]/[Choice] have
    one child per item. *)

type loc = int list

val subterm : t -> loc -> t option

val replace : t -> loc -> t -> t
(** [replace t loc u] substitutes [u] at [loc].  The result is
    re-normalized with the smart constructors.
    @raise Invalid_argument if [loc] does not address a sub-term. *)

val locations : t -> (loc * t) list
(** Every sub-term with its location, pre-order (root first). *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Paper-style notation, e.g.
    [show \[ @type\[ String \], title\[ String \], Aka{1,10}, (Movie | TV) \]]. *)

val pp_with_stats : Format.formatter -> t -> unit
(** Like {!pp} but showing statistics annotations, e.g.
    [String<#50,#34798>] and [Review*<#10>]. *)

val to_string : t -> string
