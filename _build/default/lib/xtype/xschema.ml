module SMap = Map.Make (String)
module SSet = Set.Make (String)

type defn = { name : string; body : Xtype.t }

type t = { root : string; order : string list; index : Xtype.t SMap.t }

let make ~root defn_list =
  let index =
    List.fold_left
      (fun m { name; body } ->
        if SMap.mem name m then
          invalid_arg (Printf.sprintf "Xschema.make: duplicate type %s" name)
        else SMap.add name body m)
      SMap.empty defn_list
  in
  { root; order = List.map (fun d -> d.name) defn_list; index }

let root s = s.root

let defs s =
  List.map (fun name -> { name; body = SMap.find name s.index }) s.order

let find s name = SMap.find name s.index
let find_opt s name = SMap.find_opt name s.index
let mem s name = SMap.mem name s.index

let add s name body =
  if SMap.mem name s.index then
    invalid_arg (Printf.sprintf "Xschema.add: duplicate type %s" name)
  else
    { s with order = s.order @ [ name ]; index = SMap.add name body s.index }

let update s name body =
  if not (SMap.mem name s.index) then raise Not_found
  else { s with index = SMap.add name body s.index }

let remove s name =
  {
    s with
    order = List.filter (fun n -> not (String.equal n name)) s.order;
    index = SMap.remove name s.index;
  }

let set_root s name = { s with root = name }

let fresh_name s base =
  let rec go candidate =
    if SMap.mem candidate s.index then go (candidate ^ "'") else candidate
  in
  go base

let reachable s =
  let rec visit seen order name =
    if SSet.mem name seen then (seen, order)
    else
      match SMap.find_opt name s.index with
      | None -> (seen, order)
      | Some body ->
          let seen = SSet.add name seen in
          let order = name :: order in
          List.fold_left
            (fun (seen, order) n -> visit seen order n)
            (seen, order) (Xtype.refs body)
  in
  let _, order = visit SSet.empty [] s.root in
  List.rev order

let gc s =
  let live = SSet.of_list (reachable s) in
  {
    s with
    order = List.filter (fun n -> SSet.mem n live) s.order;
    index = SMap.filter (fun n _ -> SSet.mem n live) s.index;
  }

let use_count s name =
  let live = reachable s in
  List.fold_left
    (fun n def_name ->
      let body = SMap.find def_name s.index in
      n
      + List.length (List.filter (String.equal name) (Xtype.refs body)))
    0 live

let parents s name =
  List.filter
    (fun def_name ->
      List.exists (String.equal name) (Xtype.refs (SMap.find def_name s.index)))
    s.order

let recursive s name =
  (* is there a cycle through [name] in the ref graph? *)
  let rec reaches seen from =
    match SMap.find_opt from s.index with
    | None -> false
    | Some body ->
        let targets = Xtype.refs body in
        List.exists (String.equal name) targets
        || List.exists
             (fun n -> (not (SSet.mem n seen)) && reaches (SSet.add n seen) n)
             targets
  in
  reaches (SSet.singleton name) name

let check s =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  if not (SMap.mem s.root s.index) then err "root type %s is not defined" s.root;
  List.iter
    (fun name ->
      let body = SMap.find name s.index in
      List.iter
        (fun r ->
          if not (SMap.mem r s.index) then
            err "type %s references undefined type %s" name r)
        (Xtype.refs body))
    s.order;
  (* reject unguarded recursion: a cycle of refs never crossing an element *)
  let rec unguarded visiting name =
    if SSet.mem name visiting then true
    else
      match SMap.find_opt name s.index with
      | None -> false
      | Some body ->
          let visiting = SSet.add name visiting in
          let rec top_refs t =
            (* refs not under an element boundary *)
            match t with
            | Xtype.Ref n -> [ n ]
            | Xtype.Elem _ -> []
            | Xtype.Empty | Xtype.Scalar _ -> []
            | Xtype.Attr (_, u) | Xtype.Rep (u, _) -> top_refs u
            | Xtype.Seq ts | Xtype.Choice ts -> List.concat_map top_refs ts
          in
          List.exists (unguarded visiting) (top_refs body)
  in
  List.iter
    (fun name ->
      if unguarded SSet.empty name then
        err "type %s is recursive without an element boundary" name)
    s.order;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let rec nullable s t =
  match t with
  | Xtype.Ref n -> (
      match SMap.find_opt n s.index with
      | Some body -> nullable s body
      | None -> false)
  | Xtype.Empty -> true
  | Xtype.Scalar _ | Xtype.Attr _ | Xtype.Elem _ -> false
  | Xtype.Seq ts -> List.for_all (nullable s) ts
  | Xtype.Choice ts -> List.exists (nullable s) ts
  | Xtype.Rep (u, o) -> o.Xtype.lo = 0 || nullable s u

let rec expand ?(depth = 1) s t =
  if depth <= 0 then t
  else
    match t with
    | Xtype.Ref n -> (
        match SMap.find_opt n s.index with
        | Some body -> expand ~depth:(depth - 1) s body
        | None -> t)
    | Xtype.Empty | Xtype.Scalar _ -> t
    | Xtype.Attr (n, u) -> Xtype.Attr (n, expand ~depth s u)
    | Xtype.Elem e -> Xtype.Elem { e with content = expand ~depth s e.content }
    | Xtype.Seq ts -> Xtype.seq (List.map (expand ~depth s) ts)
    | Xtype.Choice ts -> Xtype.choice (List.map (expand ~depth s) ts)
    | Xtype.Rep (u, o) -> Xtype.rep (expand ~depth s u) o

let equal a b =
  String.equal a.root b.root
  && SMap.cardinal a.index = SMap.cardinal b.index
  && SMap.for_all
       (fun name body ->
         match SMap.find_opt name b.index with
         | Some body' -> Xtype.equal body body'
         | None -> false)
       a.index

let pp_gen pp_body fmt s =
  List.iter
    (fun name ->
      Format.fprintf fmt "@[<hov 2>type %s =@ %a@]@." name pp_body
        (SMap.find name s.index))
    s.order

let pp = pp_gen Xtype.pp
let pp_with_stats = pp_gen Xtype.pp_with_stats
let to_string s = Format.asprintf "%a" pp s
