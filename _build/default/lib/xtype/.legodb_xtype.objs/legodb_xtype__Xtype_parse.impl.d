lib/xtype/xtype_parse.ml: Label List Printf String Xschema Xtype
