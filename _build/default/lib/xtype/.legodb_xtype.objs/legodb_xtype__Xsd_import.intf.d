lib/xtype/xsd_import.mli: Legodb_xml Xschema
