lib/xtype/xtype.mli: Format Label
