lib/xtype/xschema.mli: Format Xtype
