lib/xtype/xschema.ml: Format List Map Printf Set String Xtype
