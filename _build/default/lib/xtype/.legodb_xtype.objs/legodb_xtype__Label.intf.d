lib/xtype/label.mli: Format
