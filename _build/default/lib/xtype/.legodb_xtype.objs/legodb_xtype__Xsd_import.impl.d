lib/xtype/xsd_import.ml: Format Label Legodb_xml List Option String Xml Xml_parse Xschema Xtype
