lib/xtype/validate.ml: Format Hashtbl Label Legodb_xml List Option Printf String Xml Xschema Xtype
