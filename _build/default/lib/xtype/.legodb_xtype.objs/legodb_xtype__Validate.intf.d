lib/xtype/validate.mli: Format Legodb_xml Xschema Xtype
