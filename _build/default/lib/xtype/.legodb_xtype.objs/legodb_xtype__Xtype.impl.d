lib/xtype/xtype.ml: Float Format Label List Option Seq String
