lib/xtype/label.ml: Format Int List String
