lib/xtype/xtype_parse.mli: Xschema Xtype
