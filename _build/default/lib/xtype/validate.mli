(** Validation of XML documents against schemas.

    Matching of element content against the regular-expression types
    uses Brzozowski derivatives over the sequence of an element's items
    (its attributes, in the order the type declares them, followed by
    its children).  Scalar-only content ([title\[ String \]]) is checked
    directly against the scalar kind. *)

type error = { path : string list; message : string }
(** [path] is the chain of element tags from the root to the node where
    validation failed. *)

val pp_error : Format.formatter -> error -> unit

val document : Xschema.t -> Legodb_xml.Xml.t -> (unit, error) result
(** Validate a whole document against the schema's root type. *)

val element : Xschema.t -> Xtype.t -> Legodb_xml.Xml.t -> (unit, error) result
(** [element s t node] validates a single element node against a type
    that denotes exactly one element (an [Elem], a [Ref] to one, or a
    [Choice] of such). *)

val matches : Xschema.t -> Xtype.t -> Legodb_xml.Xml.t list -> bool
(** [matches s t nodes] checks a sequence of sibling nodes against a
    type, ignoring attributes.  Exposed for property-based testing of
    the derivative matcher and of semantics-preserving rewritings. *)
