type bound = Bounded of int | Unbounded

type occurs = { lo : int; hi : bound }

let occ lo hi = { lo; hi }
let opt = { lo = 0; hi = Bounded 1 }
let star = { lo = 0; hi = Unbounded }
let plus = { lo = 1; hi = Unbounded }
let once = { lo = 1; hi = Bounded 1 }

let occurs_equal a b =
  a.lo = b.lo
  &&
  match (a.hi, b.hi) with
  | Bounded x, Bounded y -> x = y
  | Unbounded, Unbounded -> true
  | Bounded _, Unbounded | Unbounded, Bounded _ -> false

let pp_occurs fmt o =
  match (o.lo, o.hi) with
  | 0, Bounded 1 -> Format.pp_print_string fmt "?"
  | 0, Unbounded -> Format.pp_print_string fmt "*"
  | 1, Unbounded -> Format.pp_print_string fmt "+"
  | lo, Unbounded -> Format.fprintf fmt "{%d,*}" lo
  | lo, Bounded hi -> Format.fprintf fmt "{%d,%d}" lo hi

type scalar_kind = String_t | Integer_t

type scalar_stats = {
  width : int;
  s_min : int option;
  s_max : int option;
  distinct : int option;
}

let scalar_kind_equal a b =
  match (a, b) with
  | String_t, String_t | Integer_t, Integer_t -> true
  | (String_t | Integer_t), _ -> false

let default_width = function String_t -> 32 | Integer_t -> 4

let scalar_ok kind text =
  match kind with
  | String_t -> true
  | Integer_t ->
      let cleaned =
        String.to_seq (String.trim text)
        |> Seq.filter (fun c -> c <> ',')
        |> String.of_seq
      in
      cleaned <> "" && Option.is_some (int_of_string_opt cleaned)

type ann = { count : float option; labels : (string * float) list }

type t =
  | Empty
  | Scalar of scalar_kind * scalar_stats option
  | Attr of string * t
  | Elem of elem
  | Seq of t list
  | Choice of t list
  | Rep of t * occurs
  | Ref of string

and elem = { label : Label.t; content : t; ann : ann }

let no_ann = { count = None; labels = [] }

let scalar kind = Scalar (kind, None)
let string_ = scalar String_t
let integer = scalar Integer_t
let attr name t = Attr (name, t)
let elem ?(ann = no_ann) label content = Elem { label; content; ann }
let named_elem ?ann name content = elem ?ann (Label.Name name) content
let ref_ name = Ref name

let seq items =
  let rec flatten = function
    | [] -> []
    | Empty :: rest -> flatten rest
    | Seq inner :: rest -> flatten inner @ flatten rest
    | t :: rest -> t :: flatten rest
  in
  match flatten items with [] -> Empty | [ t ] -> t | ts -> Seq ts

let choice items =
  let rec flatten = function
    | [] -> []
    | Choice inner :: rest -> flatten inner @ flatten rest
    | t :: rest -> t :: flatten rest
  in
  match flatten items with [] -> Empty | [ t ] -> t | ts -> Choice ts

let mult_bound a b =
  match (a, b) with
  | Bounded x, Bounded y -> Bounded (x * y)
  | (Unbounded | Bounded _), Unbounded | Unbounded, Bounded _ -> Unbounded

let rec rep t occurs =
  match t with
  | _ when occurs_equal occurs once -> t
  | Empty -> Empty
  | Rep (inner, o2) ->
      (* collapse nested repetitions by multiplying bounds; sound when the
         outer repetition's contribution to counting is interval-like,
         which holds for the {0/1, n/*} shapes rewritings produce *)
      rep inner { lo = occurs.lo * o2.lo; hi = mult_bound occurs.hi o2.hi }
  | Scalar _ | Attr _ | Elem _ | Seq _ | Choice _ | Ref _ -> Rep (t, occurs)

let optional t = rep t opt

let rec equal_gen ~strict a b =
  match (a, b) with
  | Empty, Empty -> true
  | Scalar (k1, s1), Scalar (k2, s2) ->
      scalar_kind_equal k1 k2 && ((not strict) || s1 = s2)
  | Attr (n1, t1), Attr (n2, t2) ->
      String.equal n1 n2 && equal_gen ~strict t1 t2
  | Elem e1, Elem e2 ->
      Label.equal e1.label e2.label
      && equal_gen ~strict e1.content e2.content
      && ((not strict) || e1.ann = e2.ann)
  | Seq l1, Seq l2 | Choice l1, Choice l2 ->
      List.length l1 = List.length l2
      && List.for_all2 (equal_gen ~strict) l1 l2
  | Rep (t1, o1), Rep (t2, o2) -> occurs_equal o1 o2 && equal_gen ~strict t1 t2
  | Ref n1, Ref n2 -> String.equal n1 n2
  | (Empty | Scalar _ | Attr _ | Elem _ | Seq _ | Choice _ | Rep _ | Ref _), _
    ->
      false

let equal = equal_gen ~strict:false
let equal_strict = equal_gen ~strict:true

let children = function
  | Empty | Scalar _ | Ref _ -> []
  | Attr (_, t) | Elem { content = t; _ } | Rep (t, _) -> [ t ]
  | Seq ts | Choice ts -> ts

let rec size t = 1 + List.fold_left (fun n c -> n + size c) 0 (children t)

let rec refs t =
  match t with
  | Ref n -> [ n ]
  | _ -> List.concat_map refs (children t)

let rec elements t =
  match t with
  | Elem e -> e :: elements e.content
  | _ -> List.concat_map elements (children t)

let rec nullable = function
  | Empty -> true
  | Scalar (String_t, _) -> false
  | Scalar (Integer_t, _) -> false
  | Attr _ | Elem _ | Ref _ -> false
  | Seq ts -> List.for_all nullable ts
  | Choice ts -> List.exists nullable ts
  | Rep (t, o) -> o.lo = 0 || nullable t

let rec map_ref f t =
  match t with
  | Ref n -> Ref (f n)
  | Empty | Scalar _ -> t
  | Attr (n, u) -> Attr (n, map_ref f u)
  | Elem e -> Elem { e with content = map_ref f e.content }
  | Seq ts -> Seq (List.map (map_ref f) ts)
  | Choice ts -> Choice (List.map (map_ref f) ts)
  | Rep (u, o) -> Rep (map_ref f u, o)

let scale_ann factor ann =
  {
    count = Option.map (fun c -> c *. factor) ann.count;
    labels = List.map (fun (l, c) -> (l, c *. factor)) ann.labels;
  }

let rec scale_counts factor t =
  match t with
  | Empty | Ref _ -> t
  | Scalar (k, Some st) ->
      let distinct =
        Option.map
          (fun d -> max 1 (int_of_float (Float.round (float_of_int d *. factor))))
          st.distinct
      in
      Scalar (k, Some { st with distinct })
  | Scalar (_, None) -> t
  | Attr (n, u) -> Attr (n, scale_counts factor u)
  | Elem e ->
      Elem
        {
          e with
          ann = scale_ann factor e.ann;
          content = scale_counts factor e.content;
        }
  | Seq ts -> Seq (List.map (scale_counts factor) ts)
  | Choice ts -> Choice (List.map (scale_counts factor) ts)
  | Rep (u, o) -> Rep (scale_counts factor u, o)

type loc = int list

let rec subterm t loc =
  match loc with
  | [] -> Some t
  | i :: rest -> (
      match List.nth_opt (children t) i with
      | Some c -> subterm c rest
      | None -> None)

let rec replace t loc u =
  match loc with
  | [] -> u
  | i :: rest -> (
      let replace_nth ts =
        if i < 0 || i >= List.length ts then
          invalid_arg "Xtype.replace: location out of range"
        else List.mapi (fun j c -> if j = i then replace c rest u else c) ts
      in
      match t with
      | Empty | Scalar _ | Ref _ ->
          invalid_arg "Xtype.replace: location into a leaf"
      | Attr (n, c) ->
          if i <> 0 then invalid_arg "Xtype.replace: bad attr index"
          else Attr (n, replace c rest u)
      | Elem e ->
          if i <> 0 then invalid_arg "Xtype.replace: bad elem index"
          else Elem { e with content = replace e.content rest u }
      | Rep (c, o) ->
          if i <> 0 then invalid_arg "Xtype.replace: bad rep index"
          else rep (replace c rest u) o
      | Seq ts -> seq (replace_nth ts)
      | Choice ts -> choice (replace_nth ts))

let locations t =
  let rec go rev_loc t acc =
    let here = (List.rev rev_loc, t) in
    let acc =
      List.fold_left
        (fun acc (i, c) -> go (i :: rev_loc) c acc)
        acc
        (List.mapi (fun i c -> (i, c)) (children t) |> List.rev)
    in
    here :: acc
  in
  go [] t []

(* -- printing ---------------------------------------------------------- *)

(* Each stat slot is printed even when absent ("#?") so the notation is
   unambiguous and parses back (see Xtype_parse). *)
let pp_scalar_stats fmt (kind, st) =
  match st with
  | None -> ()
  | Some st -> (
      let pp_opt fmt = function
        | Some v -> Format.fprintf fmt ",#%d" v
        | None -> Format.pp_print_string fmt ",#?"
      in
      match kind with
      | String_t ->
          Format.fprintf fmt "<#%d%a>" st.width pp_opt st.distinct
      | Integer_t ->
          Format.fprintf fmt "<#%d%a%a%a>" st.width pp_opt st.s_min pp_opt
            st.s_max pp_opt st.distinct)

let pp_gen ~stats fmt t =
  let rec go fmt t =
    match t with
    | Empty -> Format.pp_print_string fmt "()"
    | Scalar (String_t, st) ->
        Format.pp_print_string fmt "String";
        if stats then pp_scalar_stats fmt (String_t, st)
    | Scalar (Integer_t, st) ->
        Format.pp_print_string fmt "Integer";
        if stats then pp_scalar_stats fmt (Integer_t, st)
    | Attr (n, u) -> Format.fprintf fmt "@[@%s[ %a ]@]" n go u
    | Elem e ->
        Format.fprintf fmt "@[%a[ %a ]@]" Label.pp e.label go e.content;
        if stats then
          Option.iter (fun c -> Format.fprintf fmt "<#%.0f>" c) e.ann.count
    | Seq ts ->
        Format.pp_open_box fmt 0;
        List.iteri
          (fun i u ->
            if i > 0 then Format.fprintf fmt ",@ ";
            go fmt u)
          ts;
        Format.pp_close_box fmt ()
    | Choice ts ->
        Format.pp_open_box fmt 1;
        Format.pp_print_string fmt "(";
        List.iteri
          (fun i u ->
            if i > 0 then Format.fprintf fmt "@ | ";
            go fmt u)
          ts;
        Format.pp_print_string fmt ")";
        Format.pp_close_box fmt ()
    | Rep (u, o) ->
        (match u with
        | Seq _ -> Format.fprintf fmt "(%a)" go u
        | _ -> go fmt u);
        pp_occurs fmt o
    | Ref n -> Format.pp_print_string fmt n
  in
  go fmt t

let pp = pp_gen ~stats:false
let pp_with_stats = pp_gen ~stats:true
let to_string t = Format.asprintf "%a" pp t
