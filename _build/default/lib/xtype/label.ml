type t = Name of string | Any | Any_except of string list

let name tag = Name tag

let matches label tag =
  match label with
  | Name n -> String.equal n tag
  | Any -> true
  | Any_except excl -> not (List.exists (String.equal tag) excl)

let overlap a b =
  match (a, b) with
  | Name x, Name y -> String.equal x y
  | Name x, Any_except excl | Any_except excl, Name x ->
      not (List.exists (String.equal x) excl)
  | Any, _ | _, Any -> true
  | Any_except _, Any_except _ -> true

let remove label tag =
  match label with
  | Name n -> if String.equal n tag then None else Some label
  | Any -> Some (Any_except [ tag ])
  | Any_except excl ->
      if List.exists (String.equal tag) excl then Some label
      else Some (Any_except (List.sort String.compare (tag :: excl)))

let equal a b =
  match (a, b) with
  | Name x, Name y -> String.equal x y
  | Any, Any -> true
  | Any_except x, Any_except y ->
      List.sort String.compare x = List.sort String.compare y
  | (Name _ | Any | Any_except _), _ -> false

let compare a b =
  let rank = function Name _ -> 0 | Any -> 1 | Any_except _ -> 2 in
  match (a, b) with
  | Name x, Name y -> String.compare x y
  | Any_except x, Any_except y ->
      compare (List.sort String.compare x) (List.sort String.compare y)
  | _ -> Int.compare (rank a) (rank b)

let to_string = function
  | Name n -> n
  | Any -> "~"
  | Any_except excl -> "~!" ^ String.concat "," excl

let pp fmt l = Format.pp_print_string fmt (to_string l)

let column_name = function Name n -> n | Any | Any_except _ -> "tilde"
