(** Import of W3C XML Schema (XSD) documents — the paper's input format
    (its Appendix B gives the IMDB schema in both the algebra notation
    and XSD).

    The supported subset covers what the paper's schemas use:
    [xsd:element] (global and local, by named type, inline
    [complexType], or scalar), [complexType], [sequence], [choice],
    [group] (definitions and references), [attribute], [any]
    (wildcards), [minOccurs]/[maxOccurs].  Namespace prefixes are
    ignored (matching is on local names).  Scalar types map to the
    algebra's [String]/[Integer]: [xsd:integer], [xsd:int],
    [xsd:number] become [Integer]; everything else becomes [String].

    Following the paper's convention, the definition created for an
    element of named complex type [CT] is called [CT]; if [CT] is
    instantiated under several different element names, later
    instantiations get fresh names.  Elements declared with neither a
    type nor content are imported as string elements. *)

exception Import_error of string

val schema_of_xml : Legodb_xml.Xml.t -> Xschema.t
(** Import a parsed [<schema>] document.  The root type is the first
    global element declaration.  @raise Import_error *)

val schema_of_string : string -> Xschema.t
(** Parse and import.  @raise Import_error on unsupported constructs,
    {!Legodb_xml.Xml_parse.Parse_error} on malformed XML. *)

val schema_of_file : string -> Xschema.t
