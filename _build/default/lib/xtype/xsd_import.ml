open Legodb_xml

exception Import_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Import_error m)) fmt

let local_name tag =
  match String.rindex_opt tag ':' with
  | Some i -> String.sub tag (i + 1) (String.length tag - i - 1)
  | None -> tag

let is_tag name node =
  match Xml.tag node with
  | Some t -> String.equal (local_name t) name
  | None -> false

let scalar_of_type_name t =
  match local_name t with
  | "integer" | "int" | "long" | "number" | "decimal" -> Some Xtype.integer
  | "string" | "date" | "dateTime" | "boolean" | "anyURI" | "token"
  | "normalizedString" ->
      Some Xtype.string_
  | _ -> None

let is_xsd_scalar t =
  (* a type reference with an xsd/xs prefix is a built-in scalar *)
  match String.index_opt t ':' with
  | Some _ -> scalar_of_type_name t <> None
  | None -> false

let occurs_of node =
  let lo =
    match Xml.attribute "minOccurs" node with
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> fail "bad minOccurs %S" v)
    | None -> 1
  in
  let hi =
    match Xml.attribute "maxOccurs" node with
    | Some "unbounded" -> Xtype.Unbounded
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> Xtype.Bounded n
        | None -> fail "bad maxOccurs %S" v)
    | None -> Xtype.Bounded 1
  in
  { Xtype.lo; hi }

type env = {
  complex_types : (string * Xml.t) list;
  element_groups : (string * Xml.t) list;
  (* definitions created so far, in creation order (reversed) *)
  mutable defs : Xschema.defn list;
  (* (complex type, element tag) -> definition name *)
  mutable instantiated : ((string * string) * string) list;
  mutable group_defs : (string * string) list;  (* group name -> def name *)
}

let def_name_taken env n =
  List.exists (fun (d : Xschema.defn) -> String.equal d.name n) env.defs

let fresh_def_name env base =
  let rec go candidate =
    if def_name_taken env candidate then go (candidate ^ "'") else candidate
  in
  go base

(* content model of a complexType / group / sequence node *)
let rec content_of env node =
  Xtype.seq
    (List.filter_map
       (fun child ->
         match child with
         | Xml.Text _ -> None
         | Xml.Element _ -> item_of env child)
       (Xml.children node))

and item_of env node : Xtype.t option =
  if is_tag "sequence" node then Some (content_of env node)
  else if is_tag "choice" node then
    Some
      (Xtype.choice
         (List.filter_map (item_of env) (Xml.element_children node))
      |> fun t -> Xtype.rep t (occurs_of node))
  else if is_tag "element" node then Some (element_of env node)
  else if is_tag "attribute" node then (
    match Xml.attribute "name" node with
    | Some n ->
        let content =
          match Xml.attribute "type" node with
          | Some t -> Option.value ~default:Xtype.string_ (scalar_of_type_name t)
          | None -> Xtype.string_
        in
        Some (Xtype.attr n content)
    | None -> fail "attribute without a name")
  else if is_tag "any" node then
    Some (Xtype.rep (Xtype.elem Label.Any Xtype.string_) (occurs_of node))
  else if is_tag "group" node then (
    let name = Xml.attribute "name" node and ref = Xml.attribute "ref" node in
    let is_reference = Xml.element_children node = [] in
    match (ref, name) with
    | Some r, _ when is_reference ->
        Some (Xtype.rep (Xtype.ref_ (group_def env (local_name r))) (occurs_of node))
    | None, Some r when is_reference ->
        (* the paper's appendix writes references as <group name="Movie"/> *)
        Some (Xtype.rep (Xtype.ref_ (group_def env (local_name r))) (occurs_of node))
    | _, Some _ ->
        (* an inline group definition used in place *)
        Some (content_of env node)
    | _, None -> fail "group without name or ref")
  else if is_tag "annotation" node || is_tag "documentation" node then None
  else if is_tag "simpleType" node then None
  else fail "unsupported construct <%s>" (Option.value ~default:"?" (Xml.tag node))

and element_of env node =
  let tag =
    match Xml.attribute "name" node with
    | Some n -> n
    | None -> fail "element without a name"
  in
  let occ = occurs_of node in
  let base =
    match Xml.attribute "type" node with
    | Some t when is_xsd_scalar t || scalar_of_type_name t <> None ->
        (* built-in scalar, or an unprefixed scalar name *)
        let scalar =
          match scalar_of_type_name t with
          | Some s -> s
          | None -> Xtype.string_
        in
        Xtype.named_elem tag scalar
    | Some t ->
        let ct = local_name t in
        Xtype.ref_ (instantiate env ct tag)
    | None -> (
        (* inline complexType, or a bare element *)
        match
          List.find_opt (is_tag "complexType") (Xml.element_children node)
        with
        | Some ct -> Xtype.named_elem tag (content_of env ct)
        | None -> Xtype.named_elem tag Xtype.string_)
  in
  Xtype.rep base occ

and instantiate env ct tag =
  match List.assoc_opt (ct, tag) env.instantiated with
  | Some def -> def
  | None -> (
      match List.assoc_opt ct env.complex_types with
      | None -> fail "reference to undefined complexType %s" ct
      | Some ct_node ->
          let def = fresh_def_name env ct in
          (* reserve the name before descending: recursive types *)
          env.instantiated <- ((ct, tag), def) :: env.instantiated;
          env.defs <- { Xschema.name = def; body = Xtype.Empty } :: env.defs;
          let body = Xtype.named_elem tag (content_of env ct_node) in
          env.defs <-
            List.map
              (fun (d : Xschema.defn) ->
                if String.equal d.name def then { d with body } else d)
              env.defs;
          def)

and group_def env g =
  match List.assoc_opt g env.group_defs with
  | Some def -> def
  | None -> (
      match List.assoc_opt g env.element_groups with
      | None -> fail "reference to undefined group %s" g
      | Some g_node ->
          let def = fresh_def_name env (String.capitalize_ascii g) in
          env.group_defs <- (g, def) :: env.group_defs;
          env.defs <- { Xschema.name = def; body = Xtype.Empty } :: env.defs;
          let body = content_of env g_node in
          env.defs <-
            List.map
              (fun (d : Xschema.defn) ->
                if String.equal d.name def then { d with body } else d)
              env.defs;
          def)

let schema_of_xml doc =
  if not (is_tag "schema" doc) then fail "document root is not <schema>";
  let tops = Xml.element_children doc in
  let named tag =
    List.filter_map
      (fun n ->
        if is_tag tag n then
          match Xml.attribute "name" n with
          | Some name -> Some (name, n)
          | None -> None
        else None)
      tops
  in
  let env =
    {
      complex_types = named "complexType";
      element_groups = named "group";
      defs = [];
      instantiated = [];
      group_defs = [];
    }
  in
  let globals = List.filter (is_tag "element") tops in
  match globals with
  | [] -> fail "no global element declaration"
  | _ ->
      let roots =
        List.map
          (fun g ->
            match element_of env g with
            | Xtype.Elem _ as e ->
                (* a global element with inline or scalar content: wrap
                   it in its own definition *)
                let tag = Option.value ~default:"root" (Xml.attribute "name" g) in
                let def = fresh_def_name env (String.capitalize_ascii tag) in
                env.defs <- { Xschema.name = def; body = e } :: env.defs;
                def
            | Xtype.Ref def -> def
            | t -> fail "unsupported global element shape: %s" (Xtype.to_string t))
          globals
      in
      let root = List.hd roots in
      Xschema.make ~root (List.rev env.defs)

let schema_of_string s = schema_of_xml (Xml_parse.parse_string s)
let schema_of_file path = schema_of_xml (Xml_parse.parse_file path)
