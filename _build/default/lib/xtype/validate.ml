open Legodb_xml

type error = { path : string list; message : string }

let pp_error fmt e =
  Format.fprintf fmt "%s: %s" (String.concat "/" e.path) e.message

type item = IAttr of string * string | INode of Xml.t

(* The deepest error seen during a matching attempt: derivative matching
   explores alternatives, so a single authoritative error does not exist;
   we keep the one with the longest path, a useful heuristic. *)
type ctx = { schema : Xschema.t; mutable deepest : error option }

let record ctx path message =
  let better =
    match ctx.deepest with
    | None -> true
    | Some e -> List.length path >= List.length e.path
  in
  if better then ctx.deepest <- Some { path; message }

(* A type whose denotation is a scalar value (possibly a choice of
   scalar kinds, e.g. AnyScalar = Integer | String). *)
let rec scalar_kinds schema t =
  match t with
  | Xtype.Scalar (k, _) -> Some [ k ]
  | Xtype.Ref n -> (
      match Xschema.find_opt schema n with
      | Some body -> scalar_kinds schema body
      | None -> None)
  | Xtype.Choice ts ->
      let kinds = List.map (scalar_kinds schema) ts in
      if List.for_all Option.is_some kinds then
        Some (List.concat_map Option.get kinds)
      else None
  | Xtype.Empty | Xtype.Attr _ | Xtype.Elem _ | Xtype.Seq _ | Xtype.Rep _ ->
      None

(* Attribute names mentioned by a type, without crossing element
   boundaries, in declaration order. *)
let attr_order schema t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go visiting t =
    match t with
    | Xtype.Attr (n, _) ->
        if not (Hashtbl.mem seen n) then begin
          Hashtbl.add seen n ();
          out := n :: !out
        end
    | Xtype.Ref n ->
        if not (List.mem n visiting) then
          Option.iter (go (n :: visiting)) (Xschema.find_opt schema n)
    | Xtype.Elem _ | Xtype.Empty | Xtype.Scalar _ -> ()
    | Xtype.Seq ts | Xtype.Choice ts -> List.iter (go visiting) ts
    | Xtype.Rep (u, _) -> go visiting u
  in
  go [] t;
  List.rev !out

let dec_occurs (o : Xtype.occurs) =
  let hi =
    match o.hi with
    | Xtype.Bounded n -> Xtype.Bounded (n - 1)
    | Xtype.Unbounded -> Xtype.Unbounded
  in
  { Xtype.lo = max 0 (o.lo - 1); hi }

let can_repeat (o : Xtype.occurs) =
  match o.hi with Xtype.Bounded n -> n >= 1 | Xtype.Unbounded -> true

(* Find the attribute scalar type behind refs. *)
let attr_value_ok ctx t v =
  match scalar_kinds ctx.schema t with
  | Some kinds -> List.exists (fun k -> Xtype.scalar_ok k v) kinds
  | None -> false

let rec deriv ctx path t item : Xtype.t option =
  match t with
  | Xtype.Empty -> None
  | Xtype.Scalar (k, _) -> (
      match item with
      | INode (Xml.Text s) when Xtype.scalar_ok k s -> Some Xtype.Empty
      | INode _ | IAttr _ -> None)
  | Xtype.Attr (n, st) -> (
      match item with
      | IAttr (n', v) when String.equal n n' ->
          if attr_value_ok ctx st v then Some Xtype.Empty
          else begin
            record ctx path
              (Printf.sprintf "attribute %s has ill-typed value %S" n v);
            None
          end
      | IAttr _ | INode _ -> None)
  | Xtype.Elem e -> (
      match item with
      | INode (Xml.Element (tag, _, _) as node) when Label.matches e.label tag
        ->
          if element_ok ctx (path @ [ tag ]) e node then Some Xtype.Empty
          else None
      | INode _ | IAttr _ -> None)
  | Xtype.Seq ts -> (
      match ts with
      | [] -> None
      | t1 :: rest ->
          let via_first =
            match deriv ctx path t1 item with
            | Some r -> Some (Xtype.seq (r :: rest))
            | None -> None
          in
          let via_rest =
            if Xschema.nullable ctx.schema t1 then
              deriv ctx path (Xtype.seq rest) item
            else None
          in
          (match (via_first, via_rest) with
          | Some a, Some b ->
              if Xtype.equal a b then Some a else Some (Xtype.choice [ a; b ])
          | (Some _ as r), None | None, (Some _ as r) -> r
          | None, None -> None))
  | Xtype.Choice ts -> (
      let residuals = List.filter_map (fun u -> deriv ctx path u item) ts in
      match residuals with [] -> None | rs -> Some (Xtype.choice rs))
  | Xtype.Rep (u, o) ->
      if not (can_repeat o) then None
      else
        Option.map
          (fun r -> Xtype.seq [ r; Xtype.rep u (dec_occurs o) ])
          (deriv ctx path u item)
  | Xtype.Ref n -> (
      match Xschema.find_opt ctx.schema n with
      | Some body -> deriv ctx path body item
      | None ->
          record ctx path (Printf.sprintf "undefined type %s" n);
          None)

and match_items ctx path t items =
  match items with
  | [] ->
      if Xschema.nullable ctx.schema t then true
      else begin
        record ctx path "content ended before the type was satisfied";
        false
      end
  | item :: rest -> (
      match deriv ctx path t item with
      | Some residual -> match_items ctx path residual rest
      | None ->
          let what =
            match item with
            | IAttr (n, _) -> Printf.sprintf "attribute @%s" n
            | INode (Xml.Element (tag, _, _)) -> Printf.sprintf "element <%s>" tag
            | INode (Xml.Text s) ->
                Printf.sprintf "text %S"
                  (if String.length s > 20 then String.sub s 0 20 ^ "..." else s)
          in
          record ctx path (what ^ " not allowed here");
          false)

(* Attributes are unordered in documents, so their position among the
   siblings of a sequence is irrelevant: hoist attribute particles to
   the front of every sequence level (matching the order the items are
   presented in). *)
and hoist_attrs t =
  let is_attr_like = function
    | Xtype.Attr _ | Xtype.Rep (Xtype.Attr _, _) -> true
    | _ -> false
  in
  match t with
  | Xtype.Seq ts ->
      let ts = List.map hoist_attrs ts in
      let attrs, rest = List.partition is_attr_like ts in
      Xtype.seq (attrs @ rest)
  | Xtype.Choice ts -> Xtype.choice (List.map hoist_attrs ts)
  | Xtype.Rep (u, o) -> Xtype.rep (hoist_attrs u) o
  | Xtype.Empty | Xtype.Scalar _ | Xtype.Attr _ | Xtype.Elem _ | Xtype.Ref _ ->
      t

and element_ok ctx path (e : Xtype.elem) node =
  let attrs = Xml.attributes node in
  let kids = Xml.children node in
  match scalar_kinds ctx.schema e.content with
  | Some kinds ->
      if attrs <> [] then begin
        record ctx path "attributes not allowed on a scalar element";
        false
      end
      else if
        List.for_all (function Xml.Text _ -> true | Xml.Element _ -> false) kids
      then
        let text = Xml.text_content node in
        if List.exists (fun k -> Xtype.scalar_ok k text) kinds then true
        else begin
          record ctx path (Printf.sprintf "text %S has the wrong scalar type" text);
          false
        end
      else begin
        record ctx path "element content where scalar text was expected";
        false
      end
  | None ->
      let order = attr_order ctx.schema e.content in
      let undeclared =
        List.filter (fun (n, _) -> not (List.mem n order)) attrs
      in
      if undeclared <> [] then begin
        record ctx path
          (Printf.sprintf "undeclared attribute @%s" (fst (List.hd undeclared)));
        false
      end
      else
        let attr_items =
          List.filter_map
            (fun n ->
              Option.map (fun v -> IAttr (n, v)) (List.assoc_opt n attrs))
            order
        in
        let kid_items =
          List.filter_map
            (function
              | Xml.Text s when String.trim s = "" -> None
              | node -> Some (INode node))
            kids
        in
        match_items ctx path (hoist_attrs e.content) (attr_items @ kid_items)

(* A type denoting a single element: Elem, Ref to one, or Choice. *)
let rec element_types schema t =
  match t with
  | Xtype.Elem e -> [ e ]
  | Xtype.Ref n -> (
      match Xschema.find_opt schema n with
      | Some body -> element_types schema body
      | None -> [])
  | Xtype.Choice ts -> List.concat_map (element_types schema) ts
  | Xtype.Empty | Xtype.Scalar _ | Xtype.Attr _ | Xtype.Seq _ | Xtype.Rep _ ->
      []

let element schema t node =
  let ctx = { schema; deepest = None } in
  let tag = Option.value ~default:"#text" (Xml.tag node) in
  let candidates =
    List.filter
      (fun (e : Xtype.elem) -> Label.matches e.label tag)
      (element_types schema t)
  in
  if candidates = [] then
    Error { path = [ tag ]; message = "no element type matches tag " ^ tag }
  else if
    List.exists (fun e -> element_ok ctx [ tag ] e node) candidates
  then Ok ()
  else
    Error
      (Option.value ctx.deepest
         ~default:{ path = [ tag ]; message = "element does not match its type" })

let document schema doc =
  match Xschema.find_opt schema (Xschema.root schema) with
  | None ->
      Error { path = []; message = "root type not defined: " ^ Xschema.root schema }
  | Some body -> element schema body doc

let matches schema t nodes =
  let ctx = { schema; deepest = None } in
  match_items ctx [] t (List.map (fun n -> INode n) nodes)
