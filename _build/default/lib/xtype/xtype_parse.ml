exception Parse_error of { position : int; message : string }

(* ---------------- lexer ---------------- *)

type token =
  | TType  (* the keyword "type" *)
  | TName of string
  | TInt of int
  | TStatHole  (* #? *)
  | TEq
  | TComma
  | TPipe
  | TLbracket
  | TRbracket
  | TLparen
  | TRparen
  | TLbrace
  | TRbrace
  | TLangle
  | TRangle
  | THash
  | TAt
  | TTilde
  | TBang
  | TQuestion
  | TStar
  | TPlus
  | TEof

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '\''

let tokenize input =
  let n = String.length input in
  let out = ref [] in
  let push pos t = out := (pos, t) :: !out in
  let fail pos message = raise (Parse_error { position = pos; message }) in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' && !i + 1 < n && input.[!i + 1] = ':' then begin
      let pos = !i in
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail pos "unterminated comment"
        else if input.[!i] = ':' && input.[!i + 1] = ')' then i := !i + 2
        else begin
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if is_name_start c then begin
      let pos = !i in
      let start = !i in
      while !i < n && is_name_char input.[!i] do
        incr i
      done;
      let name = String.sub input start (!i - start) in
      push pos (if String.equal name "type" then TType else TName name)
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9')
    then begin
      let pos = !i in
      let start = !i in
      if c = '-' then incr i;
      while !i < n && input.[!i] >= '0' && input.[!i] <= '9' do
        incr i
      done;
      match int_of_string_opt (String.sub input start (!i - start)) with
      | Some v -> push pos (TInt v)
      | None -> fail pos "malformed number"
    end
    else begin
      let pos = !i in
      (match c with
      | '=' -> push pos TEq
      | ',' -> push pos TComma
      | '|' -> push pos TPipe
      | '[' -> push pos TLbracket
      | ']' -> push pos TRbracket
      | '(' -> push pos TLparen
      | ')' -> push pos TRparen
      | '{' -> push pos TLbrace
      | '}' -> push pos TRbrace
      | '<' -> push pos TLangle
      | '>' -> push pos TRangle
      | '#' ->
          if !i + 1 < n && input.[!i + 1] = '?' then begin
            incr i;
            push pos TStatHole
          end
          else push pos THash
      | '@' -> push pos TAt
      | '~' -> push pos TTilde
      | '!' -> push pos TBang
      | '?' -> push pos TQuestion
      | '*' -> push pos TStar
      | '+' -> push pos TPlus
      | _ -> fail pos (Printf.sprintf "unexpected character %C" c));
      incr i
    end
  done;
  push n TEof;
  List.rev !out

(* ---------------- parser ---------------- *)

type state = { mutable toks : (int * token) list }

let peek st = match st.toks with (_, t) :: _ -> t | [] -> TEof
let pos st = match st.toks with (p, _) :: _ -> p | [] -> 0
let advance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()
let fail st message = raise (Parse_error { position = pos st; message })

let expect st t msg = if peek st = t then advance st else fail st ("expected " ^ msg)

let name st =
  match peek st with
  | TName n ->
      advance st;
      n
  | TType ->
      (* "type" is a keyword only at definition boundaries; elements and
         attributes named "type" are common (the IMDB schema has both) *)
      advance st;
      "type"
  | _ -> fail st "expected a name"

(* <#a,#b,...> with #? holes; returns the slots in order *)
let parse_stat_slots st =
  expect st TLangle "<";
  let slot () =
    match peek st with
    | THash -> (
        advance st;
        match peek st with
        | TInt v ->
            advance st;
            Some v
        | _ -> fail st "expected a number after #")
    | TStatHole ->
        advance st;
        None
    | _ -> fail st "expected #number or #?"
  in
  let rec more acc =
    if peek st = TComma then begin
      advance st;
      more (slot () :: acc)
    end
    else List.rev acc
  in
  let slots = more [ slot () ] in
  expect st TRangle ">";
  slots

let scalar_stats_of_slots st kind slots : Xtype.scalar_stats =
  match (kind, slots) with
  | Xtype.String_t, [ Some w ] ->
      { Xtype.width = w; s_min = None; s_max = None; distinct = None }
  | Xtype.String_t, [ Some w; d ] ->
      { Xtype.width = w; s_min = None; s_max = None; distinct = d }
  | Xtype.Integer_t, [ Some w ] ->
      { Xtype.width = w; s_min = None; s_max = None; distinct = None }
  | Xtype.Integer_t, [ Some w; mn; mx; d ] ->
      { Xtype.width = w; s_min = mn; s_max = mx; distinct = d }
  | _ -> fail st "malformed statistics annotation"

let rec parse_union st =
  let first = parse_seq st in
  if peek st = TPipe then begin
    let rec more acc =
      if peek st = TPipe then begin
        advance st;
        more (parse_seq st :: acc)
      end
      else List.rev acc
    in
    Xtype.choice (more [ first ])
  end
  else first

and parse_seq st =
  let first = parse_postfix st in
  if peek st = TComma then begin
    let rec more acc =
      if peek st = TComma then begin
        advance st;
        more (parse_postfix st :: acc)
      end
      else List.rev acc
    in
    Xtype.seq (more [ first ])
  end
  else first

and parse_postfix st =
  let atom = parse_atom st in
  let rec occs t =
    match peek st with
    | TQuestion ->
        advance st;
        occs (Xtype.rep t Xtype.opt)
    | TStar ->
        advance st;
        occs (Xtype.rep t Xtype.star)
    | TPlus ->
        advance st;
        occs (Xtype.rep t Xtype.plus)
    | TLbrace -> (
        advance st;
        let lo =
          match peek st with
          | TInt v ->
              advance st;
              v
          | _ -> fail st "expected a lower bound"
        in
        expect st TComma ", in {m,n}";
        let hi =
          match peek st with
          | TInt v ->
              advance st;
              Xtype.Bounded v
          | TStar ->
              advance st;
              Xtype.Unbounded
          | _ -> fail st "expected an upper bound or *"
        in
        expect st TRbrace "}";
        occs (Xtype.rep t (Xtype.occ lo hi)))
    | _ -> t
  in
  occs atom

and parse_elem_tail st label =
  (* after the label: [ content ] with an optional <#count> annotation *)
  expect st TLbracket "[";
  let content = parse_union st in
  expect st TRbracket "]";
  let ann =
    if peek st = TLangle then begin
      match parse_stat_slots st with
      | [ Some c ] -> { Xtype.count = Some (float_of_int c); labels = [] }
      | [ None ] -> Xtype.no_ann
      | _ -> fail st "element annotations carry a single count"
    end
    else Xtype.no_ann
  in
  Xtype.elem ~ann label content

and parse_atom st =
  match peek st with
  | TLparen -> (
      advance st;
      match peek st with
      | TRparen ->
          advance st;
          Xtype.Empty
      | _ ->
          let t = parse_union st in
          expect st TRparen ")";
          t)
  | TAt ->
      advance st;
      let n = name st in
      expect st TLbracket "[ after an attribute name";
      let content = parse_union st in
      expect st TRbracket "]";
      Xtype.attr n content
  | TTilde ->
      advance st;
      let label =
        if peek st = TBang then begin
          advance st;
          let rec names acc =
            let n = name st in
            if peek st = TComma then begin
              advance st;
              names (n :: acc)
            end
            else List.rev (n :: acc)
          in
          Label.Any_except (names [])
        end
        else Label.Any
      in
      parse_elem_tail st label
  | TName "String" -> (
      advance st;
      match peek st with
      | TLangle ->
          let slots = parse_stat_slots st in
          Xtype.Scalar
            (Xtype.String_t, Some (scalar_stats_of_slots st Xtype.String_t slots))
      | _ -> Xtype.string_)
  | TName "Integer" -> (
      advance st;
      match peek st with
      | TLangle ->
          let slots = parse_stat_slots st in
          Xtype.Scalar
            ( Xtype.Integer_t,
              Some (scalar_stats_of_slots st Xtype.Integer_t slots) )
      | _ -> Xtype.integer)
  | TName n -> (
      advance st;
      match peek st with
      | TLbracket -> parse_elem_tail st (Label.Name n)
      | _ -> Xtype.ref_ n)
  | TType -> (
      advance st;
      match peek st with
      | TLbracket -> parse_elem_tail st (Label.Name "type")
      | _ -> Xtype.ref_ "type")
  | _ -> fail st "expected a type expression"

let parse_defs st =
  let rec go acc =
    match peek st with
    | TType ->
        advance st;
        let n = name st in
        expect st TEq "=";
        let body = parse_union st in
        go ({ Xschema.name = n; body } :: acc)
    | TEof -> List.rev acc
    | _ -> fail st "expected 'type' or end of input"
  in
  go []

let type_of_string input =
  let st = { toks = tokenize input } in
  let t = parse_union st in
  match peek st with
  | TEof -> t
  | _ -> fail st "trailing tokens after the type"

let schema_of_string ?root input =
  let st = { toks = tokenize input } in
  match parse_defs st with
  | [] -> raise (Parse_error { position = 0; message = "no type definitions" })
  | defs ->
      let root =
        match root with Some r -> r | None -> (List.hd defs).Xschema.name
      in
      Xschema.make ~root defs

let schema_of_file ?root path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  schema_of_string ?root s
