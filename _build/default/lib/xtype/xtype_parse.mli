(** Parser for the XML Query Algebra type notation — the paper's own
    schema syntax (Figure 2(b), Appendix B):

    {v
    type IMDB = imdb [ Show{0,*}, Director{0,*}, Actor{0,*} ]
    type Show = show [ @type[ String ], title[ String ],
                       Aka{1,10}, Review*, (Movie | TV) ]
    type Aka  = aka[ String ]
    v}

    Accepted constructs: scalar types [String] and [Integer] (optionally
    with statistics, [String<#50,#34798>]); elements [tag\[ t \]];
    attributes [@name\[ t \]]; wildcards [~\[ t \]] and [~!a,b\[ t \]];
    sequences [t1, t2]; unions [(t1 | t2)]; repetitions [t?], [t*],
    [t+], [t{m,n}], [t{m,*}]; type references (capitalized or not — any
    bare name); the empty sequence [()]; and [(: comments :)].

    {!Xtype.pp} / {!Xschema.pp} output parses back to an equal schema
    (and [pp_with_stats] round-trips the annotations). *)

exception Parse_error of { position : int; message : string }

val type_of_string : string -> Xtype.t
(** Parse a single type expression.  @raise Parse_error *)

val schema_of_string : ?root:string -> string -> Xschema.t
(** Parse a sequence of [type N = ...] definitions.  The root is the
    first definition unless [?root] overrides it.
    @raise Parse_error on malformed input or if there are no
    definitions. *)

val schema_of_file : ?root:string -> string -> Xschema.t
