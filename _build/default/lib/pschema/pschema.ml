open Legodb_xtype

type violation = { tname : string; loc : Xtype.loc; reason : string }

let pp_violation fmt v =
  Format.fprintf fmt "type %s at [%s]: %s" v.tname
    (String.concat "." (List.map string_of_int v.loc))
    v.reason

let rec scalar_like schema t =
  match t with
  | Xtype.Scalar _ -> true
  | Xtype.Ref n -> (
      match Xschema.find_opt schema n with
      | Some body -> scalar_like schema body
      | None -> false)
  | Xtype.Choice ts -> List.for_all (scalar_like schema) ts
  | Xtype.Empty | Xtype.Attr _ | Xtype.Elem _ | Xtype.Seq _ | Xtype.Rep _ ->
      false

let is_optional (o : Xtype.occurs) =
  o.lo = 0 && match o.hi with Xtype.Bounded 1 -> true | _ -> false

let violations_of_body schema tname body =
  let out = ref [] in
  let bad rev_loc reason =
    out := { tname; loc = List.rev rev_loc; reason } :: !out
  in
  (* the named layer: only type names, combined by seq/choice/rep *)
  let rec named rev_loc t =
    match t with
    | Xtype.Ref _ | Xtype.Empty -> ()
    | Xtype.Seq ts | Xtype.Choice ts ->
        List.iteri (fun i u -> named (i :: rev_loc) u) ts
    | Xtype.Rep (u, _) -> named (0 :: rev_loc) u
    | Xtype.Elem _ ->
        bad rev_loc "element under a repetition or union must be a type name"
    | Xtype.Scalar _ ->
        bad rev_loc "scalar under a repetition or union must be a type name"
    | Xtype.Attr _ ->
        bad rev_loc "attribute cannot occur under a repetition or union"
  in
  (* the physical layer *)
  let rec physical rev_loc t =
    match t with
    | Xtype.Empty | Xtype.Scalar _ | Xtype.Ref _ -> ()
    | Xtype.Attr (_, u) ->
        if not (scalar_like schema u) then
          bad (0 :: rev_loc) "attribute content must be a scalar type"
    | Xtype.Elem e -> physical (0 :: rev_loc) e.content
    | Xtype.Seq ts -> List.iteri (fun i u -> physical (i :: rev_loc) u) ts
    | Xtype.Rep (u, o) when is_optional o -> physical (0 :: rev_loc) u
    | Xtype.Rep (u, _) -> named (0 :: rev_loc) u
    | Xtype.Choice ts ->
        if scalar_like schema t then ()
        else List.iteri (fun i u -> named (i :: rev_loc) u) ts
  in
  physical [] body;
  List.rev !out

let check schema =
  match Xschema.check schema with
  | Error es ->
      Error
        (List.map (fun m -> { tname = Xschema.root schema; loc = []; reason = m }) es)
  | Ok () -> (
      let vs =
        List.concat_map
          (fun name ->
            match Xschema.find_opt schema name with
            | Some body -> violations_of_body schema name body
            | None -> [])
          (Xschema.reachable schema)
      in
      match vs with [] -> Ok () | _ -> Error vs)

let is_pschema schema = match check schema with Ok () -> true | Error _ -> false
