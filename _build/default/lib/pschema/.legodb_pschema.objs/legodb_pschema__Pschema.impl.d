lib/pschema/pschema.ml: Format Legodb_xtype List String Xschema Xtype
