lib/pschema/pschema.mli: Format Legodb_xtype Xschema Xtype
