(** Physical XML schemas: the stratified type grammar of Figure 9.

    A schema is a {e p-schema} when every type definition body lies in
    the stratified fragment, which guarantees the fixed relational
    mapping of Table 1 applies:

    - the {b physical} layer (scalars, attributes, singleton elements,
      sequences, optional physical types) maps to ordinary columns;
    - the {b optional} layer ([pt{0,1}]) maps to nullable columns;
    - the {b named} layer (type references, and sequences / unions /
      repetitions thereof) maps to child tables linked by foreign keys —
      so every union and every multi-occurrence position must mention
      only type names. *)

open Legodb_xtype

type violation = {
  tname : string;  (** the definition in which the violation occurs *)
  loc : Xtype.loc;  (** location of the offending sub-term in its body *)
  reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check : Xschema.t -> (unit, violation list) result
(** All violations of the stratified grammar across reachable
    definitions, or [Ok ()] if the schema is a p-schema.  Also requires
    {!Xschema.check} well-formedness. *)

val is_pschema : Xschema.t -> bool

val violations_of_body : Xschema.t -> string -> Xtype.t -> violation list
(** Violations of a single definition body (exposed so rewritings can
    target exactly the offending locations when normalizing to PS0). *)
