type t = R_int | R_string of int option

let default_string_width = 32

let equal a b =
  match (a, b) with
  | R_int, R_int -> true
  | R_string x, R_string y -> x = y
  | (R_int | R_string _), _ -> false

let width = function
  | R_int -> 4
  | R_string (Some n) -> n
  | R_string None -> default_string_width

let pp fmt = function
  | R_int -> Format.pp_print_string fmt "INT"
  | R_string (Some n) -> Format.fprintf fmt "CHAR(%d)" n
  | R_string None -> Format.pp_print_string fmt "STRING"

let to_sql t = Format.asprintf "%a" pp t

type value = V_int of int | V_string of string | V_null

let value_equal a b =
  match (a, b) with
  | V_int x, V_int y -> x = y
  | V_string x, V_string y -> String.equal x y
  | V_null, V_null -> true
  | (V_int _ | V_string _ | V_null), _ -> false

let compare_value a b =
  match (a, b) with
  | V_null, V_null -> 0
  | V_null, _ -> -1
  | _, V_null -> 1
  | V_int x, V_int y -> Int.compare x y
  | V_int _, V_string _ -> -1
  | V_string _, V_int _ -> 1
  | V_string x, V_string y -> String.compare x y

let value_width = function
  | V_int _ -> 4
  | V_string s -> String.length s
  | V_null -> 1

let is_null = function V_null -> true | V_int _ | V_string _ -> false

let pp_value fmt = function
  | V_int n -> Format.pp_print_int fmt n
  | V_string s -> Format.pp_print_string fmt s
  | V_null -> Format.pp_print_string fmt "NULL"

let value_to_sql = function
  | V_int n -> string_of_int n
  | V_null -> "NULL"
  | V_string s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Buffer.contents buf
