type table_ref = { table : string; alias : string }
type col_ref = { calias : string; col : string }
type operand = Col of col_ref | Int of int | Str of string
type op = Eq | Ne | Lt | Le | Gt | Ge
type cond = { op : op; lhs : operand; rhs : operand }

type select = {
  proj : col_ref list;
  from : table_ref list;
  where : cond list;
}

type statement = Select of select | Union_all of select list

let col calias col = { calias; col }
let eq lhs rhs = { op = Eq; lhs; rhs }

let pp_col fmt c =
  if c.calias = "" then Format.pp_print_string fmt c.col
  else Format.fprintf fmt "%s.%s" c.calias c.col

let pp_operand fmt = function
  | Col c -> pp_col fmt c
  | Int n -> Format.pp_print_int fmt n
  | Str s -> Format.pp_print_string fmt (Rtype.value_to_sql (Rtype.V_string s))

let op_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_cond fmt c =
  Format.fprintf fmt "%a %s %a" pp_operand c.lhs (op_string c.op) pp_operand
    c.rhs

let pp_list sep pp fmt l =
  List.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "%s@ " sep;
      pp fmt x)
    l

let pp_select fmt s =
  Format.fprintf fmt "@[<hv 2>SELECT @[<hov>%a@]@ FROM @[<hov>%a@]"
    (fun fmt -> function
      | [] -> Format.pp_print_string fmt "*"
      | proj -> pp_list "," pp_col fmt proj)
    s.proj
    (pp_list ","
       (fun fmt (t : table_ref) ->
         if String.equal t.table t.alias || t.alias = "" then
           Format.pp_print_string fmt t.table
         else Format.fprintf fmt "%s %s" t.table t.alias))
    s.from;
  if s.where <> [] then
    Format.fprintf fmt "@ WHERE @[<hov>%a@]" (pp_list " AND" pp_cond) s.where;
  Format.fprintf fmt "@]"

let pp_statement fmt = function
  | Select s -> pp_select fmt s
  | Union_all ss ->
      pp_list "  UNION ALL"
        (fun fmt s -> Format.fprintf fmt "(%a)" pp_select s)
        fmt ss

let to_string s = Format.asprintf "%a" pp_statement s

let ddl (cat : Rschema.t) =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter
    (fun (tbl : Rschema.table) ->
      Format.fprintf fmt "@[<v 2>CREATE TABLE %s (" tbl.tname;
      let n = List.length tbl.columns in
      List.iteri
        (fun i (c : Rschema.column) ->
          Format.fprintf fmt "@,%s %s%s%s%s" c.cname (Rtype.to_sql c.ctype)
            (if not c.nullable then " NOT NULL" else "")
            (if String.equal c.cname tbl.key then " PRIMARY KEY" else "")
            (match List.assoc_opt c.cname tbl.fks with
            | Some parent ->
                Printf.sprintf " REFERENCES %s(%s_id)" parent parent
            | None -> "");
          if i < n - 1 then Format.fprintf fmt ",")
        tbl.columns;
      Format.fprintf fmt "@]@,);@,";
      List.iter
        (fun cname ->
          if not (String.equal cname tbl.key) then
            Format.fprintf fmt "CREATE INDEX idx_%s_%s ON %s(%s);@," tbl.tname
              cname tbl.tname cname)
        tbl.indexed)
    cat.tables;
  Format.pp_print_flush fmt ();
  Buffer.contents buf
