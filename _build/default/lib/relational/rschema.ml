type col_stats = {
  distinct : float;
  null_frac : float;
  v_min : int option;
  v_max : int option;
  avg_width : float;
}

let default_col_stats ctype ~card =
  {
    distinct = Float.max 1. (card /. 10.);
    null_frac = 0.;
    v_min = None;
    v_max = None;
    avg_width = float_of_int (Rtype.width ctype);
  }

type column = {
  cname : string;
  ctype : Rtype.t;
  nullable : bool;
  stats : col_stats;
}

type table = {
  tname : string;
  key : string;
  columns : column list;
  fks : (string * string) list;
  indexed : string list;
  card : float;
}

type t = { tables : table list }

let empty = { tables = [] }

let find_table cat name =
  List.find_opt (fun t -> String.equal t.tname name) cat.tables

let table cat name =
  match find_table cat name with Some t -> t | None -> raise Not_found

let find_column tbl name =
  List.find_opt (fun c -> String.equal c.cname name) tbl.columns

let column tbl name =
  match find_column tbl name with Some c -> c | None -> raise Not_found

let row_width tbl =
  List.fold_left (fun w c -> w +. c.stats.avg_width) 0. tbl.columns

let has_index tbl cname = List.exists (String.equal cname) tbl.indexed

let with_index tbl cname =
  if has_index tbl cname then tbl else { tbl with indexed = cname :: tbl.indexed }

let add_indexes cat pairs =
  {
    tables =
      List.map
        (fun tbl ->
          List.fold_left
            (fun tbl (tname, cname) ->
              if String.equal tname tbl.tname && find_column tbl cname <> None
              then with_index tbl cname
              else tbl)
            tbl pairs)
        cat.tables;
  }

let validate cat =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let names = List.map (fun t -> t.tname) cat.tables in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    err "duplicate table names";
  List.iter
    (fun tbl ->
      let cnames = List.map (fun c -> c.cname) tbl.columns in
      if
        List.length (List.sort_uniq String.compare cnames)
        <> List.length cnames
      then err "table %s: duplicate column names" tbl.tname;
      if find_column tbl tbl.key = None then
        err "table %s: key column %s missing" tbl.tname tbl.key;
      List.iter
        (fun (col, parent) ->
          if find_column tbl col = None then
            err "table %s: foreign key column %s missing" tbl.tname col;
          if find_table cat parent = None then
            err "table %s: foreign key to unknown table %s" tbl.tname parent)
        tbl.fks;
      List.iter
        (fun c ->
          if c.stats.null_frac < 0. || c.stats.null_frac > 1. then
            err "table %s: column %s null_frac out of range" tbl.tname c.cname;
          if c.stats.distinct < 0. then
            err "table %s: column %s negative distinct" tbl.tname c.cname)
        tbl.columns;
      if tbl.card < 0. then err "table %s: negative cardinality" tbl.tname)
    cat.tables;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp_table fmt tbl =
  Format.fprintf fmt "@[<v 2>TABLE %s (" tbl.tname;
  let n = List.length tbl.columns in
  List.iteri
    (fun i c ->
      Format.fprintf fmt "@,%s %a%s%s" c.cname Rtype.pp c.ctype
        (if c.nullable then " NULL" else "")
        (if i < n - 1 then "," else ""))
    tbl.columns;
  Format.fprintf fmt " )@]";
  List.iter
    (fun (col, parent) ->
      Format.fprintf fmt "@,  -- %s REFERENCES %s(%s_id)" col parent parent)
    tbl.fks

let pp fmt cat =
  List.iteri
    (fun i tbl ->
      if i > 0 then Format.fprintf fmt "@,";
      Format.fprintf fmt "%a  -- %.0f rows@," pp_table tbl tbl.card)
    cat.tables
