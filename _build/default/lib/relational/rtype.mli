(** Relational column types and runtime values. *)

type t =
  | R_int  (** INTEGER *)
  | R_string of int option  (** CHAR(n) when sized, STRING otherwise *)

val equal : t -> t -> bool

val width : t -> int
(** Storage width in bytes: 4 for integers, the declared size for
    sized strings, a default for unsized strings. *)

val default_string_width : int
val pp : Format.formatter -> t -> unit
val to_sql : t -> string

(** {1 Values} *)

type value = V_int of int | V_string of string | V_null

val value_equal : value -> value -> bool
val compare_value : value -> value -> int

val value_width : value -> int
(** Actual width of a stored value. *)

val is_null : value -> bool
val pp_value : Format.formatter -> value -> unit

val value_to_sql : value -> string
(** SQL literal syntax (strings quoted and escaped, NULL). *)
