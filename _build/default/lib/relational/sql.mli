(** A small SQL abstract syntax with printing — the "SQL queries" output
    of the Query/Schema translation module (Figure 7).  The optimizer
    works on logical plans; this module exists so translated workloads
    can be displayed and shipped to an external RDBMS. *)

type table_ref = { table : string; alias : string }
type col_ref = { calias : string; col : string }

type operand = Col of col_ref | Int of int | Str of string

type op = Eq | Ne | Lt | Le | Gt | Ge

type cond = { op : op; lhs : operand; rhs : operand }

type select = {
  proj : col_ref list;  (** empty means [SELECT *] *)
  from : table_ref list;
  where : cond list;  (** conjunction *)
}

type statement =
  | Select of select
  | Union_all of select list
      (** the outer-union decomposition of publishing queries *)

val col : string -> string -> col_ref
val eq : operand -> operand -> cond
val pp_select : Format.formatter -> select -> unit
val pp_statement : Format.formatter -> statement -> unit
val to_string : statement -> string

val ddl : Rschema.t -> string
(** CREATE TABLE statements (with PRIMARY KEY and REFERENCES clauses)
    for a whole catalog. *)
