(** In-memory row storage with hash indexes.

    This is the execution substrate behind the cost model: integration
    tests shred documents into it, run translated queries with
    {!Legodb_optimizer.Executor}, and check that the optimizer's
    estimate {e orderings} agree with actual work done. *)

type row = Rtype.value array
(** One value per column, in catalog column order. *)

type t

val create : Rschema.t -> t
(** An empty database for the catalog.  Indexes declared in the catalog
    are maintained incrementally on insert. *)

val catalog : t -> Rschema.t

val insert : t -> string -> row -> unit
(** Append a row.  @raise Invalid_argument if the table is unknown or
    the row has the wrong arity. *)

val row_count : t -> string -> int
val scan : t -> string -> row Seq.t

val get : t -> string -> int -> row
(** Row by position (0-based). *)

val lookup : t -> table:string -> column:string -> Rtype.value -> row list
(** Index lookup; falls back to a scan when the column has no index. *)

val column_position : t -> table:string -> column:string -> int
(** @raise Not_found *)

val refresh_stats : t -> t
(** Recompute catalog statistics (cardinalities, distinct counts, null
    fractions, widths, min/max) from the stored data.  Returns a
    database sharing the same rows with an updated catalog. *)

val total_rows : t -> int
val pp_summary : Format.formatter -> t -> unit
