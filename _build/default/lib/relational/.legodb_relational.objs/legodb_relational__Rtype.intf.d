lib/relational/rtype.mli: Format
