lib/relational/storage.ml: Array Format Hashtbl List Option Printf Rschema Rtype Seq
