lib/relational/sql.ml: Buffer Format List Printf Rschema Rtype String
