lib/relational/storage.mli: Format Rschema Rtype Seq
