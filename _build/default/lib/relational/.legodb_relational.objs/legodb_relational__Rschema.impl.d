lib/relational/rschema.ml: Float Format List Rtype String
