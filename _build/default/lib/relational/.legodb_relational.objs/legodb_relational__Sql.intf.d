lib/relational/sql.mli: Format Rschema
