lib/relational/rtype.ml: Buffer Format Int String
