lib/relational/rschema.mli: Format Rtype
