(** Relational catalogs: schemas plus the statistics the optimizer
    consumes (the "Relational schema + statistics" box of Figure 7). *)

type col_stats = {
  distinct : float;  (** number of distinct non-null values *)
  null_frac : float;  (** fraction of rows that are NULL, in [0,1] *)
  v_min : int option;  (** integers only *)
  v_max : int option;
  avg_width : float;  (** average stored width, bytes *)
}

val default_col_stats : Rtype.t -> card:float -> col_stats

type column = {
  cname : string;
  ctype : Rtype.t;
  nullable : bool;
  stats : col_stats;
}

type table = {
  tname : string;
  key : string;  (** name of the id column (also in [columns]) *)
  columns : column list;
  fks : (string * string) list;  (** (column, parent table) *)
  indexed : string list;  (** columns with an index; the key's is clustered *)
  card : float;  (** number of rows *)
}

type t = { tables : table list }

val empty : t
val find_table : t -> string -> table option

val table : t -> string -> table
(** @raise Not_found *)

val find_column : table -> string -> column option

val column : table -> string -> column
(** @raise Not_found *)

val row_width : table -> float
(** Average stored row width: sum of column average widths. *)

val has_index : table -> string -> bool
val with_index : table -> string -> table

val add_indexes : t -> (string * string) list -> t
(** Add an index on every listed (table, column) that exists. *)

val validate : t -> (unit, string list) result
(** Table names unique; column names unique per table; key and FK
    columns exist; fractions within range. *)

val pp : Format.formatter -> t -> unit
(** DDL-like rendering as in Figures 3/4:
    [TABLE Show ( Show_id INT, type STRING, ... )]. *)

val pp_table : Format.formatter -> table -> unit
