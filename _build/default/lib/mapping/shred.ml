open Legodb_xml
open Legodb_xtype
open Legodb_relational

exception Shred_error of { path : string list; message : string }

let fail path fmt =
  Format.kasprintf (fun message -> raise (Shred_error { path; message })) fmt

type st = {
  db : Storage.t;
  m : Mapping.t;
  counters : (string, int ref) Hashtbl.t;
  mutable tick : int;  (* global document order, when the mapping asks *)
}

let fresh_id st ty =
  let r =
    match Hashtbl.find_opt st.counters ty with
    | Some r -> r
    | None ->
        let r = ref (Storage.row_count st.db ty) in
        Hashtbl.replace st.counters ty r;
        r
  in
  incr r;
  !r

type open_row = { o_ty : string; o_id : int; o_row : Storage.row }

let new_row st ty ~parent =
  let tbl = Rschema.table (Storage.catalog st.db) ty in
  let row = Array.make (List.length tbl.Rschema.columns) Rtype.V_null in
  let id = fresh_id st ty in
  row.(Storage.column_position st.db ~table:ty ~column:tbl.Rschema.key) <-
    Rtype.V_int id;
  if st.m.Mapping.ordered then begin
    st.tick <- st.tick + 1;
    row.(Storage.column_position st.db ~table:ty ~column:Naming.order_col) <-
      Rtype.V_int st.tick
  end;
  (match parent with
  | Some p ->
      let fk = Naming.fk_col p.o_ty in
      (match Storage.column_position st.db ~table:ty ~column:fk with
      | pos -> row.(pos) <- Rtype.V_int p.o_id
      | exception Not_found -> ())
  | None -> ());
  { o_ty = ty; o_id = id; o_row = row }

let set_col st path o column text =
  match Storage.column_position st.db ~table:o.o_ty ~column with
  | exception Not_found ->
      fail path "internal: no column %s.%s" o.o_ty column
  | pos ->
      let tbl = Rschema.table (Storage.catalog st.db) o.o_ty in
      let col = Rschema.column tbl column in
      let v =
        match col.Rschema.ctype with
        | Rtype.R_int -> (
            let cleaned =
              String.to_seq (String.trim text)
              |> Seq.filter (fun c -> c <> ',')
              |> String.of_seq
            in
            match int_of_string_opt cleaned with
            | Some n -> Rtype.V_int n
            | None -> fail path "value %S is not an integer" text)
        | Rtype.R_string _ -> Rtype.V_string text
      in
      o.o_row.(pos) <- v

let insert st o = Storage.insert st.db o.o_ty o.o_row

(* one-level structural lookahead used to pick among candidates *)
let accepts st (found : Navigate.found) (child : Xml.t) =
  let text_only =
    List.for_all
      (function Xml.Text _ -> true | Xml.Element _ -> false)
      (Xml.children child)
  in
  match found with
  | Navigate.F_column _ | Navigate.F_wild _ -> text_only
  | Navigate.F_elem { place; _ } ->
      let ok_step s = Navigate.navigate st.m place s <> [] in
      List.for_all (fun (n, _) -> ok_step n) (Xml.attributes child)
      && List.for_all
           (function
             | Xml.Element (tag, _, _) -> ok_step tag
             | Xml.Text s -> String.trim s = "")
           (Xml.children child)

let pick_candidate st path founds child =
  match founds with
  | [] -> fail path "no storage location for element <%s>" (Option.value ~default:"?" (Xml.tag child))
  | [ f ] -> f
  | fs -> (
      match List.find_opt (fun f -> accepts st f child) fs with
      | Some f -> f
      | None -> List.hd fs)

(* Is the (non-transparent) type's body rooted in an element?  If so a
   fresh row is created per occurrence; otherwise the type's content is
   spliced into its parent element and one cached row is shared. *)
let element_rooted st ty =
  match Xschema.find_opt st.m.Mapping.schema ty with
  | Some (Xtype.Elem _) -> true
  | Some _ | None -> false

let wildcard_rooted st ty =
  match Xschema.find_opt st.m.Mapping.schema ty with
  | Some (Xtype.Elem { label = Label.Any | Label.Any_except _; _ }) -> true
  | Some _ | None -> false

let rec fill st path (o : open_row) (place : Navigate.place) node =
  (* rows of spliced chains created while filling this element *)
  let cache : (string list, open_row) Hashtbl.t = Hashtbl.create 4 in
  let spliced = ref [] in
  let rec chain_row hops_done anchor hops ~fresh_last =
    match hops with
    | [] -> anchor
    | ty :: rest ->
        let key = hops_done @ [ ty ] in
        let is_last = rest = [] in
        if is_last && fresh_last then new_row st ty ~parent:(Some anchor)
        else (
          match Hashtbl.find_opt cache key with
          | Some r -> chain_row key r rest ~fresh_last
          | None ->
              let r = new_row st ty ~parent:(Some anchor) in
              Hashtbl.replace cache key r;
              spliced := r :: !spliced;
              chain_row key r rest ~fresh_last)
  in
  let handle_scalar found text path' =
    match found with
    | Navigate.F_column { hops; column; _ } ->
        let fresh_last = hops <> [] && element_rooted st (List.nth hops (List.length hops - 1)) in
        let target = chain_row [] o hops ~fresh_last in
        set_col st path' target column text;
        if fresh_last then insert st target
    | Navigate.F_wild { hops; tilde; data; tag; _ } ->
        let fresh_last = hops <> [] && element_rooted st (List.nth hops (List.length hops - 1)) in
        let target = chain_row [] o hops ~fresh_last in
        set_col st path' target tilde tag;
        set_col st path' target data text;
        if fresh_last then insert st target
    | Navigate.F_elem _ -> fail path' "expected scalar storage"
  in
  (* attributes *)
  List.iter
    (fun (n, v) ->
      match Navigate.navigate st.m place n with
      | [] -> fail path "no storage location for attribute @%s" n
      | found :: _ -> handle_scalar found v (path @ [ "@" ^ n ]))
    (Xml.attributes node);
  (* children *)
  List.iter
    (fun child ->
      match child with
      | Xml.Text s ->
          if String.trim s <> "" then
            (* scalar content of the current element *)
            let root_tag =
              match Xschema.find_opt st.m.Mapping.schema place.ty with
              | Some (Xtype.Elem e) -> Label.column_name e.Xtype.label
              | _ -> ""
            in
            set_col st path o (Naming.data_col place.prefix ~root_tag) s
      | Xml.Element (tag, _, _) -> (
          let path' = path @ [ tag ] in
          let founds = Navigate.navigate st.m place tag in
          let found = pick_candidate st path' founds child in
          match found with
          | Navigate.F_column _ | Navigate.F_wild _ ->
              handle_scalar found (Xml.text_content child) path'
          | Navigate.F_elem { hops; place = place' } ->
              (* a structured wildcard element stores its concrete tag in
                 the tilde column *)
              let store_tag target =
                if hops = [] then begin
                  match List.rev place'.Navigate.prefix with
                  | "tilde" :: rev_parent ->
                      let root_tag =
                        match Xschema.find_opt st.m.Mapping.schema place'.Navigate.ty with
                        | Some (Xtype.Elem e) -> Label.column_name e.Xtype.label
                        | _ -> ""
                      in
                      set_col st path' target
                        (Naming.tilde_col (List.rev rev_parent) ~root_tag)
                        tag
                  | _ -> ()
                end
                else if wildcard_rooted st (List.nth hops (List.length hops - 1))
                then
                  set_col st path' target
                    (Naming.tilde_col [] ~root_tag:"tilde")
                    tag
              in
              if hops = [] then begin
                store_tag o;
                fill st path' o place' child
              end
              else begin
                let fresh_last =
                  element_rooted st (List.nth hops (List.length hops - 1))
                in
                let target = chain_row [] o hops ~fresh_last in
                store_tag target;
                fill st path' target place' child;
                if fresh_last then insert st target
              end))
    (Xml.children node);
  List.iter (insert st) !spliced

let shred_into db m doc =
  let st = { db; m; counters = Hashtbl.create 16; tick = Storage.total_rows db } in
  let root_tag = match Xml.tag doc with Some t -> t | None -> "" in
  match Navigate.enter_root m root_tag with
  | [] -> fail [ root_tag ] "document root <%s> does not match the schema" root_tag
  | founds -> (
      match pick_candidate st [ root_tag ] founds doc with
      | Navigate.F_elem { hops; place } ->
          (* materialize the chain from nothing: first hop has no parent *)
          let rec build parent created hops =
            match hops with
            | [] -> (parent, List.rev created)
            | ty :: rest ->
                let r = new_row st ty ~parent in
                build (Some r) (r :: created) rest
          in
          (match build None [] hops with
          | Some o, created ->
              if wildcard_rooted st o.o_ty then
                set_col st [ root_tag ] o
                  (Naming.tilde_col [] ~root_tag:"tilde")
                  root_tag;
              fill st [ root_tag ] o place doc;
              List.iter (insert st) created
          | None, _ -> fail [ root_tag ] "empty storage chain for the root")
      | Navigate.F_column _ | Navigate.F_wild _ ->
          fail [ root_tag ] "document root resolves to a scalar")

let shred m doc =
  let db = Storage.create m.Mapping.catalog in
  shred_into db m doc;
  db
