(** Publishing: reconstructing XML from the relational store (the
    inverse of {!Shred}; what a [RETURN $v] materializes).

    Children are emitted in schema order (the order the sequence type
    prescribes) and, within a repetition, in key order — which equals
    document order for documents loaded by {!Shred}. *)

val element :
  Legodb_relational.Storage.t -> Mapping.t -> ty:string -> id:int ->
  Legodb_xml.Xml.t
(** Rebuild the element stored as row [id] of type [ty]'s table,
    including its whole subtree.
    @raise Invalid_argument if the type is unknown, transparent, or not
    rooted in an element; @raise Not_found if the row does not exist. *)

val document : Legodb_relational.Storage.t -> Mapping.t -> Legodb_xml.Xml.t
(** Rebuild the whole document from the root table's single row.
    @raise Failure if the root table does not hold exactly one row. *)
