(** Shredding: loading XML documents into the relational store under a
    mapping (the "XML data → Data loading → Tuples" path of Figure 7).

    Each element is routed with the same {!Navigate} resolution the
    query translator uses: inlined scalars fill columns of the current
    row, spliced types (whose bodies have no root element, e.g. the
    Movie branch) share one cached row per parent element, and
    element-rooted types get a fresh row per occurrence with a foreign
    key to their parent.  Ambiguous resolutions (horizontal partitions)
    are disambiguated by a one-level structural lookahead on the
    child's content. *)

exception Shred_error of { path : string list; message : string }

val shred :
  Mapping.t -> Legodb_xml.Xml.t -> Legodb_relational.Storage.t
(** Create a database for the mapping's catalog and load one document.
    @raise Shred_error when the document does not fit the schema. *)

val shred_into :
  Legodb_relational.Storage.t -> Mapping.t -> Legodb_xml.Xml.t -> unit
(** Load an additional document into an existing database (ids continue
    from the current row counts). *)
