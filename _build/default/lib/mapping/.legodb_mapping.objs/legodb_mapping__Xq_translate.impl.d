lib/mapping/xq_translate.ml: Float Legodb_optimizer Legodb_relational Legodb_xquery List Logical Mapping Naming Navigate Printf Rtype String Xq_ast
