lib/mapping/shred.ml: Array Format Hashtbl Label Legodb_relational Legodb_xml Legodb_xtype List Mapping Naming Navigate Option Rschema Rtype Seq Storage String Xml Xschema Xtype
