lib/mapping/publish.mli: Legodb_relational Legodb_xml Mapping
