lib/mapping/mapping.mli: Legodb_relational Legodb_xtype Rschema Xschema
