lib/mapping/naming.ml: String
