lib/mapping/publish.ml: Array Int Label Legodb_relational Legodb_xml Legodb_xtype List Mapping Naming Printf Rschema Rtype Storage Xml Xschema Xtype
