lib/mapping/mapping.ml: Float Format Hashtbl Label Legodb_pschema Legodb_relational Legodb_transform Legodb_xtype List Naming Option Printf Rschema Rtype Set String Xschema Xtype
