lib/mapping/navigate.ml: Format Label Legodb_xtype List Mapping Naming String Xschema Xtype
