lib/mapping/shred.mli: Legodb_relational Legodb_xml Mapping
