lib/mapping/naming.mli:
