lib/mapping/navigate.mli: Format Mapping
