lib/mapping/xq_translate.mli: Legodb_optimizer Legodb_xquery Logical Mapping
