(** The fixed mapping [rel(ps)] from p-schemas to relational catalogs
    (Section 3.2, Table 1), including statistics translation.

    One table per reachable, {e non-transparent} type name; a
    transparent type (one whose body mentions only other type names,
    e.g. [type Show = (Show_Part1 | Show_Part2)] after union
    distribution) stores no data and is collapsed: its children attach
    directly to its nearest data-bearing ancestors, which is exactly
    the flat table set shown in Figure 4(c).

    Every table gets a key column [T_id]; a foreign key [parent_P] per
    (nearest non-transparent) parent type [P]; one column per scalar in
    the physical layer of the type's body (nullable when it sits under
    an optional); and for each wildcard element a tag column plus a
    value column.  Keys and foreign keys are indexed. *)

open Legodb_xtype
open Legodb_relational

type t = {
  schema : Xschema.t;  (** the p-schema this catalog was derived from *)
  catalog : Rschema.t;
  transparent : string list;  (** collapsed type names *)
  ordered : bool;  (** tables carry a {!Naming.order_col} column *)
}

val default_card : float
(** Table cardinality assumed when no statistics are annotated. *)

val of_pschema : ?order_columns:bool -> Xschema.t -> (t, string list) result
(** Fails with the stratification violations if the schema is not a
    p-schema, or with catalog-consistency errors (which indicate a bug
    rather than a user error).

    With [~order_columns:true] (default false, matching the paper)
    every table additionally stores the element's global document
    order, which lets {!Publish} reconstruct documents exactly even
    when a type is horizontally partitioned — at the cost of 4 bytes
    per row and slightly wider scans. *)

val is_transparent : Xschema.t -> string -> bool
val real_parents : Xschema.t -> string -> string list

val card : t -> string -> float
(** Cardinality of a type's table.  @raise Not_found for unknown or
    transparent types. *)

val root_tag : Xschema.t -> string -> string option
(** The tag of a definition's root element, when its body is a single
    element ([Label.column_name] for wildcard roots). *)

val table_columns : t -> string -> string list
(** Column names of a type's table, in order. *)
