(** Resolution of document paths against a mapped p-schema.

    Navigation answers, for an element position and a child step, where
    the step's data lives relationally: in a column of the same table
    (inlined), behind one or more foreign-key joins (outlined), in a
    wildcard's tag/value column pair, or in several of these at once
    (horizontally partitioned types, choices).  Transparent types add
    no hop — their children join directly to the data-bearing
    ancestor.

    This is what both the XQuery translator and the shredder use, so
    query translation and data placement can never disagree. *)

type place = { ty : string; prefix : string list }
(** "At an element": inside table [ty]'s type, at inline element path
    [prefix] below the definition's root element. *)

type found =
  | F_elem of { hops : string list; place : place }
      (** an element; [hops] are the types entered (each a foreign-key
          join), empty when the element is inlined in the same table *)
  | F_column of { hops : string list; ty : string; column : string }
      (** a scalar element or attribute stored in [ty.column] *)
  | F_wild of {
      hops : string list;
      ty : string;
      tilde : string;  (** tag column *)
      data : string;  (** value column *)
      tag : string;  (** the concrete tag the step asked for *)
    }  (** a step matched by a wildcard element *)

val enter_root : Mapping.t -> string -> found list
(** Match the document root element (the first binding step). *)

val navigate : Mapping.t -> place -> string -> found list
(** All resolutions of one child step from a place. *)

val navigate_path : Mapping.t -> place -> string list -> found list
(** Multi-step resolution; intermediate steps must land on elements,
    and hops accumulate. *)

val descendant_tables : Mapping.t -> place -> string list list
(** Join chains (as in [found.hops], always non-empty) to every
    descendant table below a place, depth-first; recursive types are
    expanded one level.  Used to decompose publishing queries. *)

val pp_found : Format.formatter -> found -> unit
