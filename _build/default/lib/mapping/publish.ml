open Legodb_xml
open Legodb_xtype
open Legodb_relational

type st = { db : Storage.t; m : Mapping.t }

let col_value st ty (row : Storage.row) column =
  match Storage.column_position st.db ~table:ty ~column with
  | exception Not_found -> Rtype.V_null
  | pos -> row.(pos)

let text_of_value = function
  | Rtype.V_int n -> Some (string_of_int n)
  | Rtype.V_string s -> Some s
  | Rtype.V_null -> None

let rec scalar_only = function
  | Xtype.Scalar _ -> true
  | Xtype.Choice ts -> ts <> [] && List.for_all scalar_only ts
  | Xtype.Empty | Xtype.Attr _ | Xtype.Elem _ | Xtype.Seq _ | Xtype.Rep _
  | Xtype.Ref _ ->
      false

let key_value st ty row =
  match col_value st ty row (Naming.key_col ty) with
  | Rtype.V_int id -> id
  | _ -> -1

(* the sort key for sibling rows: global document order when stored,
   insertion order (the key) otherwise *)
let order_value st ty row =
  if st.m.Mapping.ordered then
    match col_value st ty row Naming.order_col with
    | Rtype.V_int o -> o
    | _ -> key_value st ty row
  else key_value st ty row

(* children of (parent_ty, parent_row) stored under type [n] *)
let rec expand st (parent_ty, parent_row) n : (string * string) list * Xml.t list
    =
  let attrs, pairs = expand_pairs st (parent_ty, parent_row) n in
  let pairs =
    (* a transparent union (horizontal partitioning) interleaves rows of
       several tables: merge by document order when it is stored *)
    if st.m.Mapping.ordered then
      List.sort (fun (a, _) (b, _) -> Int.compare a b) pairs
    else pairs
  in
  (attrs, List.map snd pairs)

and expand_pairs st (parent_ty, parent_row) n :
    (string * string) list * (int * Xml.t) list =
  match Xschema.find_opt st.m.Mapping.schema n with
  | None -> ([], [])
  | Some body ->
      if Mapping.is_transparent st.m.Mapping.schema n then
        List.fold_left
          (fun (attrs, pairs) r ->
            let a, k = expand_pairs st (parent_ty, parent_row) r in
            (attrs @ a, pairs @ k))
          ([], []) (Xtype.refs body)
      else
        let parent_id = key_value st parent_ty parent_row in
        let rows =
          Storage.lookup st.db ~table:n ~column:(Naming.fk_col parent_ty)
            (Rtype.V_int parent_id)
        in
        let rows =
          List.sort (fun a b -> Int.compare (order_value st n a) (order_value st n b)) rows
        in
        List.fold_left
          (fun (attrs, pairs) row ->
            let o = order_value st n row in
            match body with
            | Xtype.Elem e -> (attrs, pairs @ [ (o, build_elem st (n, row) e) ])
            | body ->
                (* spliced type: its content belongs to the parent element *)
                let root_tag = "" in
                let a, k = process st (n, row) ~root_tag ~prefix:[] body in
                (attrs @ a, pairs @ List.map (fun node -> (o, node)) k))
          ([], []) rows

and process ?(optional = false) st (ty, row) ~root_tag ~prefix t :
    (string * string) list * Xml.t list =
  match t with
  | Xtype.Empty | Xtype.Scalar _ -> ([], [])
  | Xtype.Choice ts when scalar_only (Xtype.Choice ts) -> ([], [])
  | Xtype.Attr (n, _) -> (
      match
        text_of_value (col_value st ty row (Naming.data_col (prefix @ [ n ]) ~root_tag))
      with
      | Some v -> ([ (n, v) ], [])
      | None -> ([], []))
  | Xtype.Elem e -> (
      match e.label with
      | Label.Name n ->
          if scalar_only e.content then (
            match
              text_of_value
                (col_value st ty row (Naming.data_col (prefix @ [ n ]) ~root_tag))
            with
            | Some v -> ([], [ Xml.leaf n v ])
            | None -> ([], []))
          else
            let attrs, kids =
              process st (ty, row) ~root_tag ~prefix:(prefix @ [ n ]) e.content
            in
            (* an optional element whose content is entirely NULL was
               absent from the original document *)
            if optional && attrs = [] && kids = [] then ([], [])
            else ([], [ Xml.Element (n, attrs, kids) ])
      | Label.Any | Label.Any_except _ -> (
          match
            text_of_value (col_value st ty row (Naming.tilde_col prefix ~root_tag))
          with
          | None -> ([], [])
          | Some tag ->
              if scalar_only e.content then
                let v =
                  text_of_value
                    (col_value st ty row
                       (Naming.tilde_data_col prefix ~root_tag))
                in
                ( [],
                  [
                    Xml.Element
                      (tag, [], match v with Some v -> [ Xml.Text v ] | None -> []);
                  ] )
              else
                let attrs, kids =
                  process st (ty, row) ~root_tag
                    ~prefix:(prefix @ [ "tilde" ])
                    e.content
                in
                ([], [ Xml.Element (tag, attrs, kids) ])))
  | Xtype.Seq ts | Xtype.Choice ts ->
      List.fold_left
        (fun (attrs, nodes) u ->
          let a, k = process ~optional st (ty, row) ~root_tag ~prefix u in
          (attrs @ a, nodes @ k))
        ([], []) ts
  | Xtype.Rep (u, o) ->
      let optional = optional || o.Xtype.lo = 0 in
      process ~optional st (ty, row) ~root_tag ~prefix u
  | Xtype.Ref n -> expand st (ty, row) n

and build_elem st (ty, row) (e : Xtype.elem) =
  let root_tag = Label.column_name e.label in
  let tag =
    match e.label with
    | Label.Name n -> n
    | Label.Any | Label.Any_except _ -> (
        match
          text_of_value (col_value st ty row (Naming.tilde_col [] ~root_tag))
        with
        | Some t -> t
        | None -> "unknown")
  in
  if scalar_only e.content then
    let value_col =
      match e.label with
      | Label.Name _ -> Naming.data_col [] ~root_tag
      | Label.Any | Label.Any_except _ -> Naming.tilde_data_col [] ~root_tag
    in
    let v = text_of_value (col_value st ty row value_col) in
    Xml.Element (tag, [], match v with Some v -> [ Xml.Text v ] | None -> [])
  else
    let prefix =
      (* a wildcard root element's content columns live under "tilde" *)
      match e.label with
      | Label.Name _ -> []
      | Label.Any | Label.Any_except _ -> [ "tilde" ]
    in
    let attrs, kids = process st (ty, row) ~root_tag ~prefix e.content in
    Xml.Element (tag, attrs, kids)

let element db m ~ty ~id =
  let st = { db; m } in
  match Xschema.find_opt m.Mapping.schema ty with
  | None -> invalid_arg (Printf.sprintf "Publish.element: unknown type %s" ty)
  | Some (Xtype.Elem e) -> (
      match
        Storage.lookup db ~table:ty ~column:(Naming.key_col ty) (Rtype.V_int id)
      with
      | [] -> raise Not_found
      | row :: _ -> build_elem st (ty, row) e)
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Publish.element: type %s is not element-rooted" ty)

let document db m =
  let root = Legodb_xtype.Xschema.root m.Mapping.schema in
  let rec first_concrete ty =
    if Mapping.is_transparent m.Mapping.schema ty then
      match Xschema.find_opt m.Mapping.schema ty with
      | Some body -> (
          match Xtype.refs body with
          | r :: _ -> first_concrete r
          | [] -> ty)
      | None -> ty
    else ty
  in
  let ty = first_concrete root in
  (* for a recursive root type the table holds the whole spine: the
     document root is the row with no parent *)
  let tbl = Rschema.table (Storage.catalog db) ty in
  let rootless (row : Storage.row) =
    List.for_all
      (fun (col, _) ->
        match Storage.column_position db ~table:ty ~column:col with
        | pos -> row.(pos) = Rtype.V_null
        | exception Not_found -> true)
      tbl.Rschema.fks
  in
  match List.filter rootless (List.of_seq (Storage.scan db ty)) with
  | [ row ] ->
      let st = { db; m } in
      (match Xschema.find_opt m.Mapping.schema ty with
      | Some (Xtype.Elem e) -> build_elem st (ty, row) e
      | _ -> failwith "Publish.document: root type is not element-rooted")
  | rows ->
      failwith
        (Printf.sprintf "Publish.document: %d parentless rows in the root table"
           (List.length rows))
