(** The deterministic naming conventions of the fixed mapping.

    Shared by catalog generation ({!Mapping}), path navigation
    ({!Navigate}), shredding ({!Shred}) and publishing ({!Publish}), so
    that a column computed from a schema position always matches the
    column generated for it. *)

val key_col : string -> string
(** [key_col "Show"] is ["Show_id"]. *)

val fk_col : string -> string
(** [fk_col "Show"] is ["parent_Show"] — the foreign key a child table
    holds towards parent type [Show]. *)

val data_col : string list -> root_tag:string -> string
(** Column name for a scalar at element path [prefix] below a
    definition's root element: the path joined with ['_'], or the root
    element's own tag when the path is empty (the [TABLE Aka (aka ...)]
    convention), or ["data"] when there is no root element either. *)

val tilde_col : string list -> root_tag:string -> string
(** Column holding a wildcard element's concrete tag: the wildcard's
    path with a final ["tilde"] step. *)

val tilde_data_col : string list -> root_tag:string -> string
(** Column holding a wildcard element's scalar value: the wildcard's
    path with a final ["data"] step. *)

val order_col : string
(** ["doc_order"] — the global document-order column added to every
    table when the mapping is built with [~order_columns:true]. *)
