open Legodb_xtype

type place = { ty : string; prefix : string list }

type found =
  | F_elem of { hops : string list; place : place }
  | F_column of { hops : string list; ty : string; column : string }
  | F_wild of {
      hops : string list;
      ty : string;
      tilde : string;
      data : string;
      tag : string;
    }

let rec scalar_only = function
  | Xtype.Scalar _ -> true
  | Xtype.Choice ts -> ts <> [] && List.for_all scalar_only ts
  | Xtype.Empty | Xtype.Attr _ | Xtype.Elem _ | Xtype.Seq _ | Xtype.Rep _
  | Xtype.Ref _ ->
      false

let prefix_step_matches (label : Label.t) step =
  match label with
  | Label.Name n -> String.equal n step
  | Label.Any | Label.Any_except _ -> String.equal step "tilde"

(* Content types of the inline element at [prefix] within [ty]'s body. *)
let content_at schema ty prefix =
  match Xschema.find_opt schema ty with
  | None -> []
  | Some body ->
      let start = match body with Xtype.Elem e -> e.content | b -> b in
      let rec descend content steps =
        match steps with
        | [] -> [ content ]
        | s :: rest ->
            let rec scan t acc =
              match t with
              | Xtype.Elem e when prefix_step_matches e.label s ->
                  e.content :: acc
              | Xtype.Elem _ | Xtype.Empty | Xtype.Scalar _ | Xtype.Attr _
              | Xtype.Ref _ ->
                  acc
              | Xtype.Seq ts | Xtype.Choice ts ->
                  List.fold_left (fun acc t -> scan t acc) acc ts
              | Xtype.Rep (u, _) -> scan u acc
            in
            List.concat_map (fun c -> descend c rest) (List.rev (scan content []))
      in
      descend start prefix

let body_root_tag body =
  match body with
  | Xtype.Elem e -> Label.column_name e.Xtype.label
  | _ -> ""

let rec find_in m ~visited ~hops ~ty ~prefix ~root_tag step content acc =
  match content with
  | Xtype.Elem e -> (
      match e.label with
      | Label.Name n when String.equal n step ->
          if scalar_only e.content then
            F_column
              {
                hops;
                ty;
                column = Naming.data_col (prefix @ [ n ]) ~root_tag;
              }
            :: acc
          else F_elem { hops; place = { ty; prefix = prefix @ [ n ] } } :: acc
      | Label.Name _ -> acc
      | (Label.Any | Label.Any_except _) as wild ->
          if Label.matches wild step then
            if scalar_only e.content then
              F_wild
                {
                  hops;
                  ty;
                  tilde = Naming.tilde_col prefix ~root_tag;
                  data = Naming.tilde_data_col prefix ~root_tag;
                  tag = step;
                }
              :: acc
            else
              (* structured wildcard content (the AnyElement pattern):
                 an element position whose tag lives in the tilde column *)
              F_elem { hops; place = { ty; prefix = prefix @ [ "tilde" ] } }
              :: acc
          else acc)
  | Xtype.Attr (n, _) when String.equal n step ->
      F_column { hops; ty; column = Naming.data_col (prefix @ [ n ]) ~root_tag }
      :: acc
  | Xtype.Attr _ | Xtype.Scalar _ | Xtype.Empty -> acc
  | Xtype.Seq ts | Xtype.Choice ts ->
      List.fold_left
        (fun acc t -> find_in m ~visited ~hops ~ty ~prefix ~root_tag step t acc)
        acc ts
  | Xtype.Rep (u, _) -> find_in m ~visited ~hops ~ty ~prefix ~root_tag step u acc
  | Xtype.Ref n -> enter m ~visited ~hops step n acc

and enter (m : Mapping.t) ~visited ~hops step n acc =
  if List.mem n visited then acc
  else
    let visited = n :: visited in
    match Xschema.find_opt m.schema n with
    | None -> acc
    | Some body ->
        if Mapping.is_transparent m.schema n then
          (* no table of its own: look through to its references *)
          find_in m ~visited ~hops ~ty:n ~prefix:[] ~root_tag:"" step body acc
        else
          let hops = hops @ [ n ] in
          let root_tag = body_root_tag body in
          (match body with
          | Xtype.Elem e -> (
              match e.label with
              | Label.Name tag when String.equal tag step ->
                  if scalar_only e.content then
                    F_column
                      { hops; ty = n; column = Naming.data_col [] ~root_tag }
                    :: acc
                  else F_elem { hops; place = { ty = n; prefix = [] } } :: acc
              | Label.Name _ -> acc
              | (Label.Any | Label.Any_except _) as wild ->
                  if Label.matches wild step then
                    if scalar_only e.content then
                      F_wild
                        {
                          hops;
                          ty = n;
                          tilde = Naming.tilde_col [] ~root_tag;
                          data = Naming.tilde_data_col [] ~root_tag;
                          tag = step;
                        }
                      :: acc
                    else F_elem { hops; place = { ty = n; prefix = [] } } :: acc
                  else acc)
          | body ->
              (* a type without a root element splices its content into
                 the parent's element: match inside it *)
              find_in m ~visited ~hops ~ty:n ~prefix:[] ~root_tag step body acc)

(* When a step matches both a concretely named element and a wildcard at
   the same content level, prefer the named element (the unique-particle
   intuition of XML Schema; a wildcard sibling could in principle carry
   the same tag, but queries mean the declared element). *)
let prefer_named founds =
  let named =
    List.filter (function F_wild _ -> false | F_elem _ | F_column _ -> true) founds
  in
  if named <> [] then named else founds

let navigate (m : Mapping.t) place step =
  let root_tag =
    match Xschema.find_opt m.schema place.ty with
    | Some body -> body_root_tag body
    | None -> ""
  in
  prefer_named
    (List.concat_map
       (fun content ->
         List.rev
           (find_in m ~visited:[] ~hops:[] ~ty:place.ty ~prefix:place.prefix
              ~root_tag step content []))
       (content_at m.schema place.ty place.prefix))

let enter_root (m : Mapping.t) step =
  prefer_named (List.rev (enter m ~visited:[] ~hops:[] step (Xschema.root m.schema) []))

let navigate_path m place path =
  let start = [ F_elem { hops = []; place } ] in
  List.fold_left
    (fun frontier step ->
      List.concat_map
        (function
          | F_elem { hops; place } ->
              List.map
                (function
                  | F_elem f -> F_elem { f with hops = hops @ f.hops }
                  | F_column f -> F_column { f with hops = hops @ f.hops }
                  | F_wild f -> F_wild { f with hops = hops @ f.hops })
                (navigate m place step)
          | F_column _ | F_wild _ -> [])
        frontier)
    start path

let descendant_tables (m : Mapping.t) place =
  let out = ref [] in
  let rec from_content hops visited content =
    match content with
    | Xtype.Elem e -> from_content hops visited e.Xtype.content
    | Xtype.Seq ts | Xtype.Choice ts ->
        List.iter (from_content hops visited) ts
    | Xtype.Rep (u, _) -> from_content hops visited u
    | Xtype.Ref n -> enter_desc hops visited n
    | Xtype.Scalar _ | Xtype.Attr _ | Xtype.Empty -> ()
  and enter_desc hops visited n =
    if List.mem n visited then ()
    else
      let visited = n :: visited in
      match Xschema.find_opt m.schema n with
      | None -> ()
      | Some body ->
          if Mapping.is_transparent m.schema n then
            from_content hops visited body
          else begin
            let hops = hops @ [ n ] in
            out := hops :: !out;
            from_content hops visited body
          end
  in
  List.iter
    (fun content -> from_content [] [] content)
    (content_at m.schema place.ty place.prefix);
  List.rev !out

let pp_found fmt = function
  | F_elem { hops; place } ->
      Format.fprintf fmt "element in %s at %s (via %s)" place.ty
        (String.concat "/" place.prefix)
        (String.concat "->" hops)
  | F_column { hops; ty; column } ->
      Format.fprintf fmt "column %s.%s (via %s)" ty column
        (String.concat "->" hops)
  | F_wild { hops; ty; tilde; data; tag } ->
      Format.fprintf fmt "wildcard %s: %s.%s/%s (via %s)" tag ty tilde data
        (String.concat "->" hops)
