let key_col ty = ty ^ "_id"
let fk_col parent = "parent_" ^ parent

let data_col prefix ~root_tag =
  match prefix with
  | [] -> if root_tag = "" then "data" else root_tag
  | _ -> String.concat "_" prefix

let tilde_col prefix ~root_tag:_ = String.concat "_" (prefix @ [ "tilde" ])

(* The wildcard's value column follows the ordinary scalar rule at the
   wildcard's position: the paper's Reviews table stores the tag in
   "tilde" and the value in "reviews" (the root element's tag).  When
   the wildcard is itself the definition's root element the ordinary
   rule would collide with the tag column, so the value gets
   "tilde_data". *)
let tilde_data_col prefix ~root_tag =
  let c = data_col prefix ~root_tag in
  if String.equal c (tilde_col prefix ~root_tag) then c ^ "_data" else c

(* global document-order column (opt-in, see Mapping.of_pschema) *)
let order_col = "doc_order"
