lib/search/search.ml: Float Format Hashtbl Init Legodb_mapping Legodb_optimizer Legodb_relational Legodb_transform Legodb_xquery Legodb_xtype List Printf Rschema Space String Xschema
