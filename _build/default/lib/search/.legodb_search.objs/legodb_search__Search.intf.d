lib/search/search.mli: Format Legodb_optimizer Legodb_transform Legodb_xquery Legodb_xtype Space Xschema
