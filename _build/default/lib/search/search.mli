(** The greedy search of Algorithm 4.1.

    Each iteration evaluates every single-step transformation of the
    current p-schema ([ApplyTransformations]) with the relational
    optimizer ([GetPSchemaCost]) and moves to the cheapest neighbour,
    stopping when no step improves the cost (or when the improvement
    falls below a relative threshold, the optimization suggested in
    Section 5.2). *)

open Legodb_xtype
open Legodb_transform

exception Cost_error of string
(** Raised when a configuration cannot be costed (mapping or
    translation failure) — indicates a schema outside the supported
    fragment. *)

val pschema_cost :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  workload:Legodb_xquery.Workload.t ->
  Xschema.t ->
  float
(** [GetPSchemaCost]: derive the relational catalog and statistics,
    translate the workload, and return its weighted optimizer cost.
    By default only the keys and foreign keys the mapping generates are
    indexed (the paper's setting); [~workload_indexes:true] additionally
    grants an index on every column the workload compares to a constant,
    modelling a tuned installation.  [?updates] adds weighted update
    statements to the objective (Section 7's future-work extension):
    wider tables and deeper outlining both make writes more expensive,
    so update-heavy workloads pull the search toward fewer, narrower
    tables. *)

type trace_entry = {
  iteration : int;
  cost : float;
  step : Space.step option;  (** [None] for the initial configuration *)
  tables : int;  (** size of the configuration's catalog *)
}

type result = {
  schema : Xschema.t;  (** the selected configuration *)
  cost : float;
  trace : trace_entry list;  (** iteration 0 first *)
}

val greedy :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  ?kinds:Space.kind list ->
  ?threshold:float ->
  ?max_iterations:int ->
  workload:Legodb_xquery.Workload.t ->
  Xschema.t ->
  result
(** Greedy descent from the given p-schema.  [kinds] defaults to
    {!Space.default_kinds} (inline/outline); [threshold] (default [0.])
    stops early when the relative improvement drops below it;
    [max_iterations] defaults to 200. *)

val greedy_so :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  ?threshold:float ->
  workload:Legodb_xquery.Workload.t ->
  Xschema.t ->
  result
(** The paper's [greedy-so]: start from the all-outlined configuration
    and explore inlining steps. *)

val greedy_si :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  ?threshold:float ->
  workload:Legodb_xquery.Workload.t ->
  Xschema.t ->
  result
(** The paper's [greedy-si]: start from the all-inlined configuration
    and explore outlining steps. *)

val pp_trace : Format.formatter -> trace_entry list -> unit

val beam :
  ?params:Legodb_optimizer.Cost.params ->
  ?workload_indexes:bool ->
  ?updates:(Legodb_xquery.Xq_ast.update * float) list ->
  ?kinds:Space.kind list ->
  ?width:int ->
  ?patience:int ->
  ?max_iterations:int ->
  workload:Legodb_xquery.Workload.t ->
  Xschema.t ->
  result
(** Beam search over transformation sequences (the "dynamic programming
    search strategies" of Section 7's future work): keeps the [width]
    (default 4) cheapest {e distinct} configurations per level —
    distinctness judged by a name-independent fingerprint of the mapped
    catalog — and can therefore cross small cost hills the greedy
    descent cannot (it stops after [patience] levels without
    improvement, default 3).  Returns the best configuration seen. *)
