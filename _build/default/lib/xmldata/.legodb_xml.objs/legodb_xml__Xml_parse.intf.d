lib/xmldata/xml_parse.mli: Xml
