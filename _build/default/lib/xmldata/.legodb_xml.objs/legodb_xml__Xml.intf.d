lib/xmldata/xml.mli: Format
