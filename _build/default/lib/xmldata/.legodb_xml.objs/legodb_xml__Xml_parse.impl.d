lib/xmldata/xml_parse.ml: Buffer Char List Printf String Uchar Xml
