lib/xmldata/xml.ml: Buffer Format List String
