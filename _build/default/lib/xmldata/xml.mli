(** XML document trees.

    The data model is deliberately small: an XML document is an element
    tree where each element has a tag name, a list of attributes and a
    list of children; children are elements or text nodes.  Namespaces,
    processing instructions and comments are outside the scope of the
    LegoDB mapping problem and are dropped at parse time. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (tag, attributes, children)] *)
  | Text of string  (** character data *)

(** {1 Constructors} *)

val elem : ?attrs:(string * string) list -> string -> t list -> t
(** [elem tag children] builds an element node. *)

val text : string -> t
(** [text s] builds a text node. *)

val leaf : ?attrs:(string * string) list -> string -> string -> t
(** [leaf tag s] is [elem tag [text s]]: an element with text content. *)

(** {1 Accessors} *)

val tag : t -> string option
(** Tag name of an element node, [None] for text. *)

val attributes : t -> (string * string) list
(** Attributes of an element node, [[]] for text. *)

val attribute : string -> t -> string option
(** [attribute name node] looks an attribute up by name. *)

val children : t -> t list
(** Children of an element node, [[]] for text. *)

val element_children : t -> t list
(** Children that are elements, in document order. *)

val text_content : t -> string
(** Concatenation of every text descendant, in document order. *)

val child_elements : string -> t -> t list
(** [child_elements tag node] returns the element children named [tag]. *)

val first_child : string -> t -> t option
(** First element child with the given tag, if any. *)

(** {1 Traversal} *)

val fold : ('a -> string list -> t -> 'a) -> 'a -> t -> 'a
(** [fold f init doc] folds [f] over every element node in document
    order.  [f acc path node] receives the tag path from the root to the
    node (inclusive). *)

val select : string list -> t -> t list
(** [select path doc] evaluates a simple child-axis path.  The first
    component must match the root tag; e.g.
    [select ["imdb"; "show"; "title"] doc]. *)

val count_elements : t -> int
(** Total number of element nodes in the tree. *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Structural equality.  Adjacent text nodes are normalized (merged)
    before comparison, and empty text nodes are ignored, so documents
    that serialize identically compare equal. *)

val normalize : t -> t
(** Merge adjacent text children and drop empty text nodes, recursively. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print with indentation (not round-trip safe for mixed
    content; use {!to_string} for exchange). *)

val to_string : t -> string
(** Serialize compactly with correct escaping; round-trips through
    {!Xml_parse.parse_string}. *)
