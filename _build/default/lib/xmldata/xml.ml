type t =
  | Element of string * (string * string) list * t list
  | Text of string

let elem ?(attrs = []) tag children = Element (tag, attrs, children)
let text s = Text s
let leaf ?(attrs = []) tag s = Element (tag, attrs, [ Text s ])

let tag = function Element (t, _, _) -> Some t | Text _ -> None
let attributes = function Element (_, a, _) -> a | Text _ -> []
let children = function Element (_, _, c) -> c | Text _ -> []

let attribute name node =
  List.assoc_opt name (attributes node)

let element_children node =
  List.filter (function Element _ -> true | Text _ -> false) (children node)

let rec text_content = function
  | Text s -> s
  | Element (_, _, c) -> String.concat "" (List.map text_content c)

let child_elements name node =
  List.filter
    (function Element (t, _, _) -> String.equal t name | Text _ -> false)
    (children node)

let first_child name node =
  match child_elements name node with [] -> None | c :: _ -> Some c

let fold f init doc =
  let rec go acc rev_path node =
    match node with
    | Text _ -> acc
    | Element (t, _, c) ->
        let rev_path = t :: rev_path in
        let acc = f acc (List.rev rev_path) node in
        List.fold_left (fun acc child -> go acc rev_path child) acc c
  in
  go init [] doc

let select path doc =
  let step nodes name =
    List.concat_map (child_elements name) nodes
  in
  match path with
  | [] -> []
  | root :: rest -> (
      match doc with
      | Element (t, _, _) when String.equal t root ->
          List.fold_left step [ doc ] rest
      | Element _ | Text _ -> [])

let count_elements doc = fold (fun n _ _ -> n + 1) 0 doc

let rec normalize node =
  match node with
  | Text _ -> node
  | Element (t, a, c) ->
      let c = List.map normalize c in
      (* merge adjacent text nodes, drop empty ones *)
      let rec merge = function
        | Text a :: Text b :: rest -> merge (Text (a ^ b) :: rest)
        | Text "" :: rest -> merge rest
        | x :: rest -> x :: merge rest
        | [] -> []
      in
      Element (t, a, merge c)

let rec equal_norm a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element (t1, a1, c1), Element (t2, a2, c2) ->
      String.equal t1 t2
      && List.length a1 = List.length a2
      && List.for_all2
           (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && String.equal v1 v2)
           a1 a2
      && List.length c1 = List.length c2
      && List.for_all2 equal_norm c1 c2
  | Element _, Text _ | Text _, Element _ -> false

let equal a b = equal_norm (normalize a) (normalize b)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s

let to_string doc =
  let buf = Buffer.create 1024 in
  let rec go = function
    | Text s -> escape buf s
    | Element (t, attrs, c) ->
        Buffer.add_char buf '<';
        Buffer.add_string buf t;
        List.iter
          (fun (n, v) ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf n;
            Buffer.add_string buf "=\"";
            escape buf v;
            Buffer.add_char buf '"')
          attrs;
        if c = [] then Buffer.add_string buf "/>"
        else begin
          Buffer.add_char buf '>';
          List.iter go c;
          Buffer.add_string buf "</";
          Buffer.add_string buf t;
          Buffer.add_char buf '>'
        end
  in
  go (normalize doc);
  Buffer.contents buf

let rec pp fmt node =
  match node with
  | Text s -> Format.pp_print_string fmt s
  | Element (t, attrs, c) ->
      let pp_attr fmt (n, v) = Format.fprintf fmt " %s=%S" n v in
      let only_text = List.for_all (function Text _ -> true | _ -> false) c in
      if c = [] then
        Format.fprintf fmt "<%s%a/>" t (Format.pp_print_list pp_attr) attrs
      else if only_text then
        Format.fprintf fmt "<%s%a>%s</%s>" t
          (Format.pp_print_list pp_attr)
          attrs
          (text_content node)
          t
      else begin
        Format.fprintf fmt "@[<v 2><%s%a>" t
          (Format.pp_print_list pp_attr)
          attrs;
        List.iter (fun child -> Format.fprintf fmt "@,%a" pp child) c;
        Format.fprintf fmt "@]@,</%s>" t
      end
