(** A small, dependency-free XML parser.

    Supports the XML subset needed for LegoDB test and benchmark data:
    elements, attributes (single- or double-quoted), character data, the
    five predefined entities plus decimal/hex character references,
    comments, CDATA sections, and an optional XML declaration /
    DOCTYPE (both skipped).  Namespaces are not interpreted (prefixes
    are kept as part of the tag name). *)

exception Parse_error of { position : int; message : string }
(** Raised on malformed input; [position] is a byte offset. *)

val parse_string : string -> Xml.t
(** Parse a complete document from a string.  Whitespace-only text
    between elements is dropped; other text is preserved verbatim.
    @raise Parse_error on malformed input. *)

val parse_file : string -> Xml.t
(** Read a file and {!parse_string} it. *)

val error_message : int -> string -> string -> string
(** [error_message pos msg input] renders a one-line diagnostic with
    line/column information computed from [input]. *)
