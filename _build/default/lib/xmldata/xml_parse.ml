exception Parse_error of { position : int; message : string }

type state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })

let eof st = st.pos >= String.length st.input
let peek st = st.input.[st.pos]
let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input
  && String.equal (String.sub st.input st.pos n) s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if eof st || not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Decode an entity/character reference; [st.pos] is just past '&'. *)
let parse_reference st =
  let start = st.pos in
  let upto =
    match String.index_from_opt st.input st.pos ';' with
    | Some i -> i
    | None -> fail st "unterminated entity reference"
  in
  let body = String.sub st.input start (upto - start) in
  st.pos <- upto + 1;
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      let code =
        if String.length body > 2 && body.[0] = '#' && body.[1] = 'x' then
          int_of_string_opt ("0x" ^ String.sub body 2 (String.length body - 2))
        else if String.length body > 1 && body.[0] = '#' then
          int_of_string_opt (String.sub body 1 (String.length body - 1))
        else None
      in
      (match code with
      | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
      | Some c ->
          (* encode as UTF-8 *)
          let b = Buffer.create 4 in
          Buffer.add_utf_8_uchar b (Uchar.of_int c);
          Buffer.contents b
      | None -> fail st (Printf.sprintf "unknown entity &%s;" body))

let skip_comment st =
  expect st "<!--";
  match
    let rec find i =
      if i + 3 > String.length st.input then None
      else if String.equal (String.sub st.input i 3) "-->" then Some i
      else find (i + 1)
    in
    find st.pos
  with
  | Some i -> st.pos <- i + 3
  | None -> fail st "unterminated comment"

let skip_doctype st =
  (* skip until matching '>' , allowing one level of [...] *)
  expect st "<!DOCTYPE";
  let depth = ref 1 in
  while !depth > 0 do
    if eof st then fail st "unterminated DOCTYPE";
    (match peek st with
    | '<' -> incr depth
    | '>' -> decr depth
    | _ -> ());
    advance st
  done

let skip_pi st =
  expect st "<?";
  match
    let rec find i =
      if i + 2 > String.length st.input then None
      else if String.equal (String.sub st.input i 2) "?>" then Some i
      else find (i + 1)
    in
    find st.pos
  with
  | Some i -> st.pos <- i + 2
  | None -> fail st "unterminated processing instruction"

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else
      match peek st with
      | c when c = quote -> advance st
      | '&' ->
          advance st;
          Buffer.add_string buf (parse_reference st);
          go ()
      | c ->
          Buffer.add_char buf c;
          advance st;
          go ()
  in
  go ();
  Buffer.contents buf

let parse_attributes st =
  let rec go acc =
    skip_space st;
    if eof st then fail st "unterminated start tag"
    else if peek st = '>' || peek st = '/' then List.rev acc
    else begin
      let name = parse_name st in
      skip_space st;
      expect st "=";
      skip_space st;
      let value = parse_attr_value st in
      go ((name, value) :: acc)
    end
  in
  go []

let parse_cdata st =
  expect st "<![CDATA[";
  match
    let rec find i =
      if i + 3 > String.length st.input then None
      else if String.equal (String.sub st.input i 3) "]]>" then Some i
      else find (i + 1)
    in
    find st.pos
  with
  | Some i ->
      let s = String.sub st.input st.pos (i - st.pos) in
      st.pos <- i + 3;
      s
  | None -> fail st "unterminated CDATA section"

let rec parse_element st =
  expect st "<";
  let name = parse_name st in
  let attrs = parse_attributes st in
  skip_space st;
  if looking_at st "/>" then begin
    expect st "/>";
    Xml.Element (name, attrs, [])
  end
  else begin
    expect st ">";
    let children = parse_content st in
    expect st "</";
    let close = parse_name st in
    if not (String.equal close name) then
      fail st (Printf.sprintf "mismatched close tag </%s> for <%s>" close name);
    skip_space st;
    expect st ">";
    Xml.Element (name, attrs, children)
  end

and parse_content st =
  let buf = Buffer.create 64 in
  let flush_text acc =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if String.equal (String.trim s) "" then acc else Xml.Text s :: acc
  in
  let rec go acc =
    if eof st then fail st "unexpected end of input inside element"
    else if looking_at st "</" then List.rev (flush_text acc)
    else if looking_at st "<!--" then begin
      skip_comment st;
      go acc
    end
    else if looking_at st "<![CDATA[" then begin
      Buffer.add_string buf (parse_cdata st);
      go acc
    end
    else if looking_at st "<?" then begin
      skip_pi st;
      go acc
    end
    else if peek st = '<' then begin
      let acc = flush_text acc in
      let child = parse_element st in
      go (child :: acc)
    end
    else if peek st = '&' then begin
      advance st;
      Buffer.add_string buf (parse_reference st);
      go acc
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go acc
    end
  in
  go []

let parse_prolog st =
  let rec go () =
    skip_space st;
    if looking_at st "<?" then begin
      skip_pi st;
      go ()
    end
    else if looking_at st "<!--" then begin
      skip_comment st;
      go ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_doctype st;
      go ()
    end
  in
  go ()

let parse_string input =
  let st = { input; pos = 0 } in
  parse_prolog st;
  if eof st || peek st <> '<' then fail st "expected a root element";
  let root = parse_element st in
  skip_space st;
  while (not (eof st)) && looking_at st "<!--" do
    skip_comment st;
    skip_space st
  done;
  if not (eof st) then fail st "trailing content after root element";
  root

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s

let error_message pos msg input =
  let line = ref 1 and col = ref 1 in
  String.iteri
    (fun i c ->
      if i < pos then
        if c = '\n' then begin
          incr line;
          col := 1
        end
        else incr col)
    input;
  Printf.sprintf "XML parse error at line %d, column %d: %s" !line !col msg
