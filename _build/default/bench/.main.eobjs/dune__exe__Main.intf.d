bench/main.mli:
