bench/experiments.ml: Annotate Cost Float Imdb Init Label Lazy Legodb List Logical Mapping Optimizer Printf Rewrite Rschema Search String Workload Xq_parse Xq_translate Xschema Xtype
