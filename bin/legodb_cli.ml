(* The LegoDB command-line tool.

   Subcommands:
     design     run the cost-based storage design for a workload
     serve      stand up a query server over a shredded corpus
     sql        translate queries under a storage configuration
     shred      load an XML document and show the resulting tables
     publish    shred and reconstruct a document (round-trip check)
     generate   produce a synthetic IMDB document
     stats      collect path statistics from a document
     validate   validate a document against the schema
     transforms list the transformations applicable to a configuration *)

open Legodb
open Cmdliner

(* ---------------- shared arguments ---------------- *)

let schema_of_name = function
  | "imdb" -> Ok Imdb.Schema.schema
  | "imdb-section2" -> Ok Imdb.Schema.section2
  | file when Sys.file_exists file -> (
      match Xtype_parse.schema_of_file file with
      | s -> Ok s
      | exception Xtype_parse.Parse_error { position; message } ->
          Error (Printf.sprintf "%s: parse error at %d: %s" file position message))
  | s -> Error (Printf.sprintf "unknown schema %S (try: imdb, imdb-section2, or a .xta file in the type notation)" s)

let schema_arg =
  let doc =
    "Schema: a built-in name (imdb, imdb-section2) or a file in the XML \
     Query Algebra type notation (type N = tag [ ... ])."
  in
  Arg.(value & opt string "imdb" & info [ "schema" ] ~docv:"NAME|FILE" ~doc)

let sample_arg =
  let doc = "Sample XML document; statistics are collected from it." in
  Arg.(value & opt (some file) None & info [ "sample" ] ~docv:"FILE" ~doc)

let config_arg =
  let doc =
    "Storage configuration: inlined (union-to-options + inline-all), \
     outlined (every element its own table), or ps0 (minimal \
     normalization)."
  in
  Arg.(value & opt string "inlined" & info [ "config" ] ~docv:"KIND" ~doc)

let workload_arg =
  let doc =
    "Workload: lookup, publish, mixed:K (lookup fraction K), or a file of \
     XQuery queries separated by blank lines."
  in
  Arg.(value & opt string "lookup" & info [ "workload" ] ~docv:"SPEC" ~doc)

let fail fmt = Printf.ksprintf (fun m -> `Error (false, m)) fmt

let load_stats schema sample =
  match sample with
  | Some file -> Collector.collect (Xml_parse.parse_file file)
  | None ->
      if schema == Imdb.Schema.schema then Imdb.Stats.full else Pathstat.empty

let split_on_blank_lines text =
  let lines = String.split_on_char '\n' text in
  let chunks, current =
    List.fold_left
      (fun (chunks, current) line ->
        if String.trim line = "" then
          match current with
          | [] -> (chunks, [])
          | c -> (String.concat "\n" (List.rev c) :: chunks, [])
        else (chunks, line :: current))
      ([], []) lines
  in
  let chunks =
    match current with
    | [] -> chunks
    | c -> String.concat "\n" (List.rev c) :: chunks
  in
  List.rev chunks

let parse_queries_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  List.mapi
    (fun i c -> Xq_parse.parse ~name:(Printf.sprintf "query%d" (i + 1)) c)
    (split_on_blank_lines text)

let load_workload spec =
  match spec with
  | "lookup" -> Ok Imdb.Workloads.lookup
  | "publish" -> Ok Imdb.Workloads.publish
  | s when String.length s > 6 && String.sub s 0 6 = "mixed:" -> (
      match float_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some k when k >= 0. && k <= 1. -> Ok (Imdb.Workloads.mixed k)
      | _ -> Error "mixed:K needs K in [0,1]")
  | file when Sys.file_exists file -> (
      match parse_queries_file file with
      | [] -> Error "no queries in file"
      | qs -> Ok (Workload.of_queries qs)
      | exception Xq_parse.Parse_error { position; message } ->
          Error (Printf.sprintf "parse error at %d: %s" position message))
  | s -> Error (Printf.sprintf "unknown workload %S" s)

let configuration schema stats kind =
  let annotated = Annotate.schema stats schema in
  match kind with
  | "inlined" -> Ok (Init.all_inlined annotated)
  | "outlined" -> Ok (Init.all_outlined annotated)
  | "ps0" -> Ok (Init.normalize annotated)
  | k -> Error (Printf.sprintf "unknown configuration %S" k)

(* ---------------- design ---------------- *)

let design_cmd =
  let strategy =
    let doc = "Greedy strategy: si (start inlined) or so (start outlined)." in
    Arg.(value & opt string "si" & info [ "strategy" ] ~doc)
  in
  let threshold =
    let doc = "Stop when the relative improvement falls below T." in
    Arg.(value & opt float 0. & info [ "threshold" ] ~docv:"T" ~doc)
  in
  let indexes =
    let doc = "Assume indexes on workload equality columns." in
    Arg.(value & flag & info [ "workload-indexes" ] ~doc)
  in
  let jobs =
    let doc =
      "Cost the neighbor configurations of each search iteration on $(docv) \
       cores (0 = one per core).  The selected design is bit-identical for \
       every value; requires an OCaml 5 build for actual parallelism."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let budget_ms =
    let doc =
      "Stop the search after $(docv) milliseconds of wall-clock time and \
       report the best design found so far (anytime mode)."
    in
    Arg.(value & opt (some float) None & info [ "budget-ms" ] ~docv:"MS" ~doc)
  in
  let max_iters =
    let doc = "Stop the search after $(docv) completed iterations." in
    Arg.(value & opt (some int) None & info [ "max-iters" ] ~docv:"N" ~doc)
  in
  let max_evals =
    let doc =
      "Stop the search after costing $(docv) candidate configurations."
    in
    Arg.(value & opt (some int) None & info [ "max-evals" ] ~docv:"N" ~doc)
  in
  let checkpoint =
    let doc =
      "Write a durable snapshot of the search state to $(docv) (atomically: \
       tmp + rename) at iteration barriers and on every stop — including \
       Ctrl-C — so an interrupted run can be continued with $(b,--resume)."
    in
    Arg.(
      value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_every =
    let doc = "Snapshot every $(docv) completed iterations." in
    Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let resume =
    let doc =
      "Continue a search from a snapshot written by $(b,--checkpoint) instead \
       of starting fresh; the strategy, transformation kinds, threshold, and \
       progress so far come from the snapshot ($(b,--schema), \
       $(b,--strategy), and $(b,--threshold) are ignored), while the \
       workload, budget, and $(b,-j) are taken from this invocation and must \
       match the original run's for bit-identical continuation.  Unless \
       $(b,--checkpoint) says otherwise, the resumed run keeps snapshotting \
       to the same file."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)
  in
  let run schema_name sample workload strategy threshold indexes jobs budget_ms
      max_iters max_evals ckpt_path ckpt_every resume_path =
    match schema_of_name schema_name with
    | Error m -> fail "%s" m
    | Ok schema -> (
        match load_workload workload with
        | Error m -> fail "%s" m
        | Ok w -> (
            let stats = load_stats schema sample in
            let annotated = Annotate.schema stats schema in
            (* the budget doubles as the Ctrl-C channel: SIGINT trips it,
               the search unwinds cooperatively, the final snapshot is
               written at the barrier, and the best-so-far design is
               reported instead of a backtrace *)
            let budget =
              Budget.create ?wall_ms:budget_ms ?max_iterations:max_iters
                ?max_evaluations:max_evals ()
            in
            let checkpoint =
              match (ckpt_path, resume_path) with
              | Some p, _ | None, Some p -> Some (p, ckpt_every)
              | None, None -> None
            in
            let search =
              match resume_path with
              | Some path ->
                  Ok
                    (fun _initial ->
                      Search.resume ~workload_indexes:indexes ~jobs ~budget
                        ?checkpoint ~workload:w path)
              | None -> (
                  match strategy with
                  | "si" ->
                      Ok
                        (Search.greedy_si ~workload_indexes:indexes ~threshold
                           ~jobs ~budget ?checkpoint ~workload:w)
                  | "so" ->
                      Ok
                        (Search.greedy_so ~workload_indexes:indexes ~threshold
                           ~jobs ~budget ?checkpoint ~workload:w)
                  | s -> Error (Printf.sprintf "unknown strategy %S" s))
            in
            match search with
            | Error m -> fail "%s" m
            | Ok search -> (
                let previous =
                  Sys.signal Sys.sigint
                    (Sys.Signal_handle (fun _ -> Budget.interrupt budget))
                in
                let r =
                  Fun.protect
                    ~finally:(fun () -> Sys.set_signal Sys.sigint previous)
                    (fun () -> search annotated)
                in
                match Mapping.of_pschema r.Search.schema with
                | Error es -> fail "%s" (String.concat "; " es)
                | Ok mapping ->
                    Format.printf "%a@." Legodb.report
                      {
                        Legodb.schema = r.Search.schema;
                        mapping;
                        cost = r.Search.cost;
                        trace = r.Search.trace;
                        engine = r.Search.engine;
                        stopped = r.Search.stopped;
                        failures = r.Search.failures;
                      };
                    if r.Search.stopped = `Interrupted then begin
                      prerr_endline "legodb: interrupted; best design so far shown above";
                      exit 130
                    end;
                    `Ok ())))
  in
  let term =
    Term.(
      ret
        (const run $ schema_arg $ sample_arg $ workload_arg $ strategy
       $ threshold $ indexes $ jobs $ budget_ms $ max_iters $ max_evals
       $ checkpoint $ checkpoint_every $ resume))
  in
  Cmd.v
    (Cmd.info "design"
       ~doc:"Find an efficient XML-to-relational mapping for a workload")
    term

(* ---------------- serve ---------------- *)

let serve_cmd =
  let scale =
    let doc =
      "Generate a synthetic IMDB corpus at this scale factor (1.0 = the \
       paper's dataset) when no $(b,--doc) is given."
    in
    Arg.(value & opt float 0.01 & info [ "scale" ] ~docv:"F" ~doc)
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")
  in
  let served_doc =
    let doc = "Serve this XML document instead of a generated corpus." in
    Arg.(value & opt (some file) None & info [ "doc" ] ~docv:"FILE" ~doc)
  in
  let requests =
    let doc = "Replay the workload queries round-robin as $(docv) requests." in
    Arg.(value & opt int 200 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let jobs =
    let doc =
      "Answer each request batch on $(docv) cores (0 = one per core); \
       requires an OCaml 5 build for actual parallelism."
    in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let data_dir =
    let doc =
      "Serve durably out of $(docv): appends are write-ahead logged and \
       fsynced before they are acknowledged, publishes snapshot the store \
       atomically.  If the directory already holds a snapshot the server is \
       $(i,recovered) from it (snapshot + log replay; a torn log tail is \
       truncated and reported, real corruption exits with code 8) and the \
       corpus/schema flags are ignored."
    in
    Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)
  in
  let appends =
    let doc =
      "After the query passes, append $(docv) small generated IMDB documents \
       (seeded deterministically from $(b,--seed))."
    in
    Arg.(value & opt int 0 & info [ "appends" ] ~docv:"N" ~doc)
  in
  let publish_every =
    let doc = "Publish after every $(docv) appends (0 = never)." in
    Arg.(value & opt int 0 & info [ "publish-every" ] ~docv:"K" ~doc)
  in
  let crash_after =
    let doc =
      "Fault injection: SIGKILL this process immediately after the $(docv)-th \
       append is acknowledged — the crash the recovery path (and the CI \
       durability smoke) is tested against."
    in
    Arg.(value & opt (some int) None & info [ "crash-after" ] ~docv:"K" ~doc)
  in
  let timeout_ms =
    let doc =
      "Give every request a $(docv)-millisecond wall-clock budget; a request \
       over budget degrades to an error slot instead of wedging its worker."
    in
    Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let listen =
    let doc =
      "Serve over TCP on 127.0.0.1:$(docv) (0 = an ephemeral port, printed \
       on startup) instead of replaying the workload in-process.  Runs \
       until SIGINT; connect with $(b,legodb query --connect)."
    in
    Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT" ~doc)
  in
  let group_commit_ms =
    let doc =
      "Group commit window: an append waits up to $(docv) milliseconds for \
       company before its group's single fsync acknowledges them all (0 \
       still groups appends arriving in the same server loop round)."
    in
    Arg.(value & opt int 5 & info [ "group-commit-ms" ] ~docv:"MS" ~doc)
  in
  let max_group =
    let doc = "Commit an append group once it holds $(docv) appends." in
    Arg.(value & opt int 64 & info [ "max-group" ] ~docv:"N" ~doc)
  in
  let idle_timeout_ms =
    let doc =
      "Reap a connection that has neither moved a byte nor been owed a \
       response for $(docv) milliseconds (network mode only)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "idle-timeout-ms" ] ~docv:"MS" ~doc)
  in
  let max_conns =
    let doc =
      "Park the listener while $(docv) connections are open — pending peers \
       wait in the kernel backlog and are accepted as slots free up \
       (network mode only)."
    in
    Arg.(value & opt (some int) None & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let run schema_name config workload scale seed served_doc requests jobs
      data_dir appends publish_every crash_after timeout_ms listen
      group_commit_ms max_group idle_timeout_ms max_conns =
    if group_commit_ms < 0 then
      fail "--group-commit-ms must be >= 0 (got %d)" group_commit_ms
    else if max_group < 1 then fail "--max-group must be >= 1 (got %d)" max_group
    else if (match idle_timeout_ms with Some ms -> ms < 1 | None -> false) then
      fail "--idle-timeout-ms must be >= 1"
    else if (match max_conns with Some m -> m < 1 | None -> false) then
      fail "--max-conns must be >= 1"
    else
    let server =
      match data_dir with
      | Some dir when Sys.file_exists (Wal.snapshot_file dir) ->
          let server, r = Serve.recover ~jobs ~dir () in
          Format.printf "recovered %s: %a@." dir Serve.pp_recovery r;
          Ok server
      | _ -> (
          match schema_of_name schema_name with
          | Error m -> Error m
          | Ok schema -> (
              let doc =
                match served_doc with
                | Some f -> Xml_parse.parse_file f
                | None ->
                    Imdb.Gen.generate
                      { (Imdb.Gen.scaled scale) with Imdb.Gen.seed }
              in
              let stats = Collector.collect doc in
              match configuration schema stats config with
              | Error m -> Error m
              | Ok ps -> (
                  match Mapping.of_pschema ps with
                  | Error es -> Error (String.concat "; " es)
                  | Ok m ->
                      Ok (Serve.create ~jobs ?data_dir m (Shred.shred m doc)))))
    in
    match server with
    | Error m -> fail "%s" m
    | Ok server when listen <> None ->
        (* network mode: requests come from the wire, not the workload
           replay.  SIGINT stops the loop; stats print on the way out. *)
        let port = Option.get listen in
        Format.printf "%a@." Storage.pp_summary (Serve.snapshot server);
        let stop = ref false in
        let previous =
          Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
        in
        let net =
          Fun.protect
            ~finally:(fun () -> Sys.set_signal Sys.sigint previous)
            (fun () ->
              Net.serve ~group_commit_ms ~max_group ?idle_timeout_ms
                ?max_conns ?timeout_ms ~stop
                ~on_listen:(fun p ->
                  Format.printf "listening on 127.0.0.1:%d@." p)
                ~port server)
        in
        Format.printf "%a@." Serve.pp_stats (Serve.stats server);
        Format.printf "%a@." Net.pp_net_stats net;
        `Ok ()
    | Ok server -> (
        match load_workload workload with
        | Error m -> fail "%s" m
        | Ok w ->
        Format.printf "%a@." Storage.pp_summary (Serve.snapshot server);
        let qs = Array.of_list (List.map fst w) in
        let reqs =
          Array.init (max 1 requests) (fun i -> qs.(i mod Array.length qs))
        in
        (* the first batch compiles every distinct statement into
           the plan cache; the second replays the same requests
           and should be all cache hits *)
        let pass label =
          let t0 = Unix.gettimeofday () in
          let replies = Serve.run_batch ?timeout_ms server reqs in
          let wall_s = Unix.gettimeofday () -. t0 in
          let latencies =
            Array.to_list replies
            |> List.filter_map (function
                 | Ok (r : Serve.reply) -> Some r.Serve.latency_s
                 | Error _ -> None)
            |> Array.of_list
          in
          let errs =
            Array.fold_left
              (fun acc -> function Error _ -> acc + 1 | Ok _ -> acc)
              0 replies
          in
          Format.printf "%s: %a%s@." label Serve.pp_summary
            (Serve.summarize ~wall_s latencies)
            (if errs > 0 then Printf.sprintf " (%d errors)" errs else "");
          errs
        in
        let errs = pass "cold" in
        ignore (pass "warm");
        for i = 1 to max 0 appends do
          let p = { (Imdb.Gen.scaled 0.002) with Imdb.Gen.seed = seed + i } in
          Serve.append server (Imdb.Gen.generate p);
          (* after the ack: an acknowledged append must survive the kill *)
          if crash_after = Some i then Unix.kill (Unix.getpid ()) Sys.sigkill;
          if publish_every > 0 && i mod publish_every = 0 then
            Serve.publish server
        done;
        Format.printf "%a@." Serve.pp_stats (Serve.stats server);
        if errs = Array.length reqs then
          fail "no workload query is answerable under this configuration"
        else `Ok ())
  in
  let term =
    Term.(
      ret
        (const run $ schema_arg $ config_arg $ workload_arg $ scale $ seed
       $ served_doc $ requests $ jobs $ data_dir $ appends $ publish_every
       $ crash_after $ timeout_ms $ listen $ group_commit_ms $ max_group
       $ idle_timeout_ms $ max_conns))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Shred a corpus and answer workload queries concurrently over a \
          frozen snapshot")
    term

(* ---------------- query (network client) ---------------- *)

let query_cmd =
  let connect =
    let doc = "Server endpoint, as printed by $(b,legodb serve --listen)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let ping =
    Arg.(value & flag & info [ "ping" ] ~doc:"Round-trip a ping frame first.")
  in
  let appends =
    let doc =
      "Pipeline $(docv) appends of small generated IMDB documents (all \
       frames sent before any ack is awaited, so they share commit groups)."
    in
    Arg.(value & opt int 0 & info [ "appends" ] ~docv:"N" ~doc)
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")
  in
  let do_publish =
    Arg.(
      value & flag
      & info [ "publish" ] ~doc:"Request a publish barrier after the appends.")
  in
  let requests =
    let doc = "Replay the workload's queries round-robin as $(docv) requests." in
    Arg.(value & opt int 0 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let server_stats =
    Arg.(
      value & flag
      & info [ "server-stats" ] ~doc:"Print the server's counters at the end.")
  in
  let concurrency =
    let doc =
      "Drive the $(b,--requests) replay over $(docv) pipelined connections \
       from this one process: each round sends one query per connection \
       before awaiting any response, so the server sees them in one select \
       tick and answers them as one shared batch.  A sample of the answers \
       is re-asked sequentially afterwards and checked bit-identical."
    in
    Arg.(value & opt int 1 & info [ "concurrency" ] ~docv:"N" ~doc)
  in
  let depth =
    let doc =
      "Pipeline $(docv) queries per connection per round, corked into a \
       single write each — the whole chunk reaches the server in one read, \
       so shared batches form deterministically instead of depending on \
       scheduler timing.  Only meaningful with $(b,--concurrency)."
    in
    Arg.(value & opt int 1 & info [ "depth" ] ~docv:"D" ~doc)
  in
  let corrupt_probe =
    let doc =
      "Protocol check: send a deliberately bit-flipped request frame and \
       report whether the server answers with a structured error and closes \
       this connection cleanly (it must keep serving others)."
    in
    Arg.(value & flag & info [ "corrupt-probe" ] ~doc)
  in
  let query_text =
    let doc = "One XQuery request to send; its rows print to stdout." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let pp_row fmt row =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " | ")
      Rtype.pp_value fmt row
  in
  let run connect_s workload ping appends seed do_publish requests
      server_stats concurrency depth corrupt_probe query_text =
    match Net.parse_endpoint connect_s with
    | Error m -> fail "%s" m
    | Ok (host, port) when concurrency < 1 ->
        ignore host;
        ignore port;
        fail "--concurrency must be >= 1 (got %d)" concurrency
    | Ok _ when depth < 1 -> fail "--depth must be >= 1 (got %d)" depth
    | Ok (host, port) -> (
        if corrupt_probe then begin
          (* a framing error costs the connection, so the probe gets a
             connection of its own *)
          let c = Net.connect ~host ~port () in
          let frame =
            Bytes.of_string
              (Net.encode_request (Net.Query "FOR $v in imdb/show RETURN $v"))
          in
          let i = Bytes.length frame - 1 in
          Bytes.set frame i (Char.chr (Char.code (Bytes.get frame i) lxor 0x01));
          Net.send_raw c (Bytes.to_string frame);
          (match Net.recv c with
          | Net.Error_reply m -> Format.printf "corrupt probe: rejected (%s)@." m
          | _ -> Format.printf "corrupt probe: UNEXPECTED non-error reply@.");
          (match Net.recv c with
          | exception Net.Closed ->
              Format.printf "corrupt probe: connection closed cleanly@."
          | exception Net.Protocol_error _ ->
              Format.printf "corrupt probe: connection dropped@."
          | _ -> Format.printf "corrupt probe: UNEXPECTED second reply@.");
          Net.close c
        end;
        let c = Net.connect ~host ~port () in
        Fun.protect ~finally:(fun () -> Net.close c) @@ fun () ->
        let describe = function
          | Net.Rows { rows; cached } ->
              Printf.sprintf "%d rows%s" (List.length rows)
                (if cached then " (cached)" else "")
          | Net.Acked -> "acked"
          | Net.Published -> "published"
          | Net.Stats_reply _ -> "stats"
          | Net.Pong -> "pong"
          | Net.Error_reply m -> Printf.sprintf "error: %s" m
        in
        if ping then Format.printf "ping: %s@." (describe (Net.rpc c Net.Ping));
        if appends > 0 then begin
          for i = 1 to appends do
            let p = { (Imdb.Gen.scaled 0.002) with Imdb.Gen.seed = seed + i } in
            Net.send c (Net.Append (Xml.to_string (Imdb.Gen.generate p)))
          done;
          let acked = ref 0 in
          for _ = 1 to appends do
            match Net.recv c with
            | Net.Acked -> incr acked
            | r -> Format.eprintf "append: %s@." (describe r)
          done;
          Format.printf "acked %d/%d appends@." !acked appends
        end;
        if do_publish then
          Format.printf "publish: %s@." (describe (Net.rpc c Net.Publish));
        let failed = ref false in
        (match query_text with
        | None -> ()
        | Some text -> (
            match Net.rpc c (Net.Query text) with
            | Net.Rows { rows; cached } ->
                List.iter (fun row -> Format.printf "%a@." pp_row row) rows;
                Format.eprintf "%d rows%s@." (List.length rows)
                  (if cached then " (cached)" else "")
            | r ->
                failed := true;
                Format.eprintf "query: %s@." (describe r)));
        (if requests > 0 then
           match load_workload workload with
           | Error m -> Format.eprintf "workload: %s@." m
           | Ok w ->
               let texts =
                 Array.of_list
                   (List.map
                      (fun ((q : Xq_ast.t), _) ->
                        Format.asprintf "%a" Xq_ast.pp q)
                      w)
               in
               (* the [cached] flag legitimately differs between a
                  query's first and later answers; everything else must
                  be bit-identical *)
               let canon = function
                 | Net.Rows { rows; _ } ->
                     Some (Net.encode_response (Net.Rows { rows; cached = false }))
                 | _ -> None
               in
               let latencies = Array.make requests 0. in
               let errs = ref 0 in
               (* first concurrent-path answer per distinct query text,
                  for the sequential recheck below *)
               let samples = Hashtbl.create 16 in
               if concurrency = 1 then begin
                 let t0 = Unix.gettimeofday () in
                 for i = 0 to requests - 1 do
                   let q0 = Unix.gettimeofday () in
                   (match
                      Net.rpc c (Net.Query texts.(i mod Array.length texts))
                    with
                   | Net.Rows _ -> ()
                   | _ -> incr errs);
                   latencies.(i) <- Unix.gettimeofday () -. q0
                 done;
                 let wall_s = Unix.gettimeofday () -. t0 in
                 Format.printf "network: %a%s@." Serve.pp_summary
                   (Serve.summarize ~wall_s latencies)
                   (if !errs > 0 then Printf.sprintf " (%d errors)" !errs
                    else "")
               end
               else begin
                 let peers =
                   Array.init concurrency (fun _ -> Net.connect ~host ~port ())
                 in
                 Fun.protect
                   ~finally:(fun () -> Array.iter Net.close peers)
                 @@ fun () ->
                 let t0 = Unix.gettimeofday () in
                 let cork = Buffer.create 1024 in
                 let i = ref 0 in
                 while !i < requests do
                   (* one round: request !i + t rides connection
                      (t mod concurrency); every connection's [depth]
                      queries go out corked into one write before any
                      response is awaited, so the server reads whole
                      chunks in one tick and answers them as shared
                      batches *)
                   let k = min (concurrency * depth) (requests - !i) in
                   let sent = Unix.gettimeofday () in
                   for j = 0 to min concurrency k - 1 do
                     Buffer.clear cork;
                     let t = ref j in
                     while !t < k do
                       Buffer.add_string cork
                         (Net.encode_request
                            (Net.Query
                               texts.((!i + !t) mod Array.length texts)));
                       t := !t + concurrency
                     done;
                     Net.send_raw peers.(j) (Buffer.contents cork)
                   done;
                   for t = 0 to k - 1 do
                     let text = texts.((!i + t) mod Array.length texts) in
                     (match Net.recv peers.(t mod concurrency) with
                     | Net.Rows _ as r ->
                         if not (Hashtbl.mem samples text) then
                           Option.iter
                             (Hashtbl.add samples text)
                             (canon r)
                     | _ -> incr errs);
                     latencies.(!i + t) <- Unix.gettimeofday () -. sent
                   done;
                   i := !i + k
                 done;
                 let wall_s = Unix.gettimeofday () -. t0 in
                 Format.printf "network (%d conns%s): %a%s@." concurrency
                   (if depth > 1 then Printf.sprintf " x %d deep" depth
                    else "")
                   Serve.pp_summary
                   (Serve.summarize ~wall_s latencies)
                   (if !errs > 0 then Printf.sprintf " (%d errors)" !errs
                    else "");
                 (* every distinct answer seen concurrently must match
                    the same query asked sequentially *)
                 let total = ref 0 and same = ref 0 in
                 Hashtbl.iter
                   (fun text enc ->
                     incr total;
                     match canon (Net.rpc c (Net.Query text)) with
                     | Some enc' when String.equal enc enc' -> incr same
                     | _ -> ())
                   samples;
                 Format.printf "sampled recheck: %d/%d answers bit-identical@."
                   !same !total;
                 if !same < !total then failed := true
               end);
        (if server_stats then
           match Net.rpc c Net.Stats with
           | Net.Stats_reply { serve; net } ->
               Format.printf "%a@." Serve.pp_stats serve;
               if net.Net.ticks > 0 then
                 Format.printf "%a@." Net.pp_net_stats net
           | r -> Format.eprintf "stats: %s@." (describe r));
        if !failed then fail "the query was not answered" else `Ok ())
  in
  let term =
    Term.(
      ret
        (const run $ connect $ workload_arg $ ping $ appends $ seed
       $ do_publish $ requests $ server_stats $ concurrency $ depth
       $ corrupt_probe $ query_text))
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Talk to a running legodb serve --listen over TCP")
    term

(* ---------------- sql ---------------- *)

let sql_cmd =
  let run schema_name sample config workload =
    match schema_of_name schema_name with
    | Error m -> fail "%s" m
    | Ok schema -> (
        let stats = load_stats schema sample in
        match configuration schema stats config with
        | Error m -> fail "%s" m
        | Ok ps -> (
            match (Mapping.of_pschema ps, load_workload workload) with
            | Error es, _ -> fail "%s" (String.concat "; " es)
            | _, Error m -> fail "%s" m
            | Ok m, Ok w ->
                Format.printf "-- schema --@.%s@." (Sql.ddl m.Mapping.catalog);
                List.iter
                  (fun ((q : Xq_ast.t), _) ->
                    match Xq_translate.translate m q with
                    | lq ->
                        let _, cost =
                          Optimizer.query_cost m.Mapping.catalog lq
                        in
                        Format.printf "%a@.-- estimated cost: %.1f@.@."
                          Logical.pp_query lq cost
                    | exception Xq_translate.Untranslatable msg ->
                        Format.printf "-- %s: untranslatable (%s)@.@."
                          q.Xq_ast.name msg)
                  w;
                `Ok ()))
  in
  let term =
    Term.(ret (const run $ schema_arg $ sample_arg $ config_arg $ workload_arg))
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Show the DDL and translated SQL for a configuration")
    term

(* ---------------- shred / publish ---------------- *)

let doc_arg =
  let doc = "XML document to load." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let shred_cmd =
  let run schema_name config file =
    match schema_of_name schema_name with
    | Error m -> fail "%s" m
    | Ok schema -> (
        let doc = Xml_parse.parse_file file in
        let stats = Collector.collect doc in
        match configuration schema stats config with
        | Error m -> fail "%s" m
        | Ok ps -> (
            match Mapping.of_pschema ps with
            | Error es -> fail "%s" (String.concat "; " es)
            | Ok m -> (
                match Shred.shred m doc with
                | db ->
                    Format.printf "%a@." Storage.pp_summary db;
                    `Ok ()
                | exception Shred.Shred_error { path; message } ->
                    fail "shredding failed at %s: %s" (String.concat "/" path)
                      message)))
  in
  let term = Term.(ret (const run $ schema_arg $ config_arg $ doc_arg)) in
  Cmd.v
    (Cmd.info "shred" ~doc:"Load a document and show the resulting tables")
    term

let publish_cmd =
  let run schema_name config file =
    match schema_of_name schema_name with
    | Error m -> fail "%s" m
    | Ok schema -> (
        let doc = Xml_parse.parse_file file in
        let stats = Collector.collect doc in
        match configuration schema stats config with
        | Error m -> fail "%s" m
        | Ok ps -> (
            match Mapping.of_pschema ps with
            | Error es -> fail "%s" (String.concat "; " es)
            | Ok m ->
                let db = Shred.shred m doc in
                let doc' = Publish.document db m in
                print_endline (Xml.to_string doc');
                Printf.eprintf "round trip: %s\n"
                  (if Xml.equal doc doc' then "exact" else "differs");
                `Ok ()))
  in
  let term = Term.(ret (const run $ schema_arg $ config_arg $ doc_arg)) in
  Cmd.v
    (Cmd.info "publish"
       ~doc:"Shred a document, rebuild it from the tables, and print it")
    term

(* ---------------- generate / stats / validate / transforms ------------- *)

let generate_cmd =
  let scale =
    let doc = "Scale factor relative to the paper's dataset (1.0 = full)." in
    Arg.(value & opt float 0.01 & info [ "scale" ] ~docv:"F" ~doc)
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout by default).")
  in
  let run scale seed out =
    let p = { (Imdb.Gen.scaled scale) with Imdb.Gen.seed } in
    let doc = Imdb.Gen.generate p in
    let text = Xml.to_string doc in
    (match out with
    | Some file ->
        let oc = open_out file in
        output_string oc text;
        close_out oc;
        Printf.eprintf "wrote %d elements to %s\n" (Xml.count_elements doc) file
    | None -> print_endline text);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic IMDB document")
    Term.(ret (const run $ scale $ seed $ out))

let stats_cmd =
  let run file =
    let doc = Xml_parse.parse_file file in
    Format.printf "%a@." Pathstat.pp (Collector.collect doc);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Collect path statistics from a document")
    Term.(ret (const run $ doc_arg))

let validate_cmd =
  let run schema_name file =
    match schema_of_name schema_name with
    | Error m -> fail "%s" m
    | Ok schema -> (
        let doc = Xml_parse.parse_file file in
        match Validate.document schema doc with
        | Ok () ->
            print_endline "valid";
            `Ok ()
        | Error e ->
            fail "invalid: %s" (Format.asprintf "%a" Validate.pp_error e))
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate a document against the schema")
    Term.(ret (const run $ schema_arg $ doc_arg))

let transforms_cmd =
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Include every rewriting kind, not just inline/outline.")
  in
  let run schema_name sample config all =
    match schema_of_name schema_name with
    | Error m -> fail "%s" m
    | Ok schema -> (
        let stats = load_stats schema sample in
        match configuration schema stats config with
        | Error m -> fail "%s" m
        | Ok ps ->
            let kinds = if all then Space.all_kinds else Space.default_kinds in
            let steps = Space.applicable ~kinds ps in
            Format.printf "%d applicable transformations:@." (List.length steps);
            List.iter (fun s -> Format.printf "  %a@." Space.pp_step s) steps;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "transforms"
       ~doc:"List the schema transformations applicable to a configuration")
    Term.(ret (const run $ schema_arg $ sample_arg $ config_arg $ all))

(* Error hygiene: domain failures print one line on stderr and exit
   with a distinct code — no backtraces for expected failure modes.
     2  I/O (missing/unreadable file)
     3  configuration cannot be costed
     4  untranslatable query
     5  parse error (schema, query, or XML)
     6  shredding failure
     7  corrupt checkpoint snapshot (--resume refuses it; never a
        silent restart)
     8  corrupt store (serve --data-dir found a snapshot or WAL that is
        bit-flipped, truncated mid-file, wrong-version, or
        wrong-magic; recovery refuses to serve rather than guess)
     9  network/system failure (port already bound, connection refused,
        peer broke the frame protocol)
   130  interrupted (SIGINT; the best-so-far design is still printed,
        and with --checkpoint a final snapshot is written first)
   Flag-validation failures (--group-commit-ms < 0, malformed
   --connect, ...) are cmdliner one-liners with its usual code 124. *)
let () =
  let info =
    Cmd.info "legodb" ~version:"1.0.0"
      ~doc:"Cost-based XML-to-relational storage design (LegoDB)"
  in
  let group =
    Cmd.group info
      [
        design_cmd;
        serve_cmd;
        query_cmd;
        sql_cmd;
        shred_cmd;
        publish_cmd;
        generate_cmd;
        stats_cmd;
        validate_cmd;
        transforms_cmd;
      ]
  in
  let oneliner fmt = Printf.ksprintf (fun m -> prerr_endline ("legodb: " ^ m)) fmt in
  exit
    (try Cmd.eval ~catch:false group with
    | Search.Cost_error m ->
        oneliner "cannot cost this configuration: %s" m;
        3
    | Xq_translate.Untranslatable m ->
        oneliner "untranslatable query: %s" m;
        4
    | Xtype_parse.Parse_error { position; message } ->
        oneliner "schema parse error at offset %d: %s" position message;
        5
    | Xq_parse.Parse_error { position; message } ->
        oneliner "query parse error at offset %d: %s" position message;
        5
    | Xml_parse.Parse_error { position; message } ->
        oneliner "XML parse error at offset %d: %s" position message;
        5
    | Shred.Shred_error { path; message } ->
        oneliner "shredding failed at %s: %s" (String.concat "/" path) message;
        6
    | Checkpoint.Corrupt m ->
        oneliner "corrupt checkpoint: %s" m;
        7
    | Wal.Corrupt m ->
        oneliner "corrupt store: %s" m;
        8
    | Net.Protocol_error m ->
        oneliner "protocol error: %s" m;
        9
    | Net.Closed ->
        oneliner "connection closed by server";
        9
    | Unix.Unix_error (e, fn, arg) ->
        oneliner "network/system error: %s (%s %s)" (Unix.error_message e) fn
          arg;
        9
    | Sys_error m ->
        oneliner "%s" m;
        2)
